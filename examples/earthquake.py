"""Hayward-fault earthquake scenario (SW4's early science; Fig 7).

Runs the real wave-propagation proxy — layered basin velocity model,
propagating rupture, peak-ground-velocity tracking — prints the shake
map as ASCII art, and reproduces the Sierra-vs-Cori throughput story.

Run:  python examples/earthquake.py
"""

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.stencil.grid import CartesianGrid3D
from repro.stencil.hayward import HaywardScenario
from repro.util.tables import Table

SHADES = " .:-=+*#%@"


def ascii_map(pgv: np.ndarray, width: int = 48) -> str:
    stride = max(1, pgv.shape[0] // width)
    sub = pgv[::stride, ::stride]
    top = sub.max() or 1.0
    rows = []
    for j in range(sub.shape[1]):
        row = "".join(
            SHADES[min(int(sub[i, j] / top * (len(SHADES) - 1)),
                       len(SHADES) - 1)]
            for i in range(sub.shape[0])
        )
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    print("Setting up the regional domain (layered speeds + slow basin,")
    print("8 time-delayed subfault sources along strike)...\n")
    grid = CartesianGrid3D(64, 64, 24, h=1.0)
    ctx = ExecutionContext()
    scenario = HaywardScenario(grid, n_subfaults=8, ctx=ctx)
    pgv = scenario.run(n_steps=400)

    print("Peak-ground-velocity shake map (the Fig 7 content; darker =")
    print("stronger shaking; the basin concentrates energy):\n")
    print(ascii_map(pgv))
    print()
    stats = scenario.shaking_stats()
    t = Table(["metric", "value"], title="Shaking statistics")
    t.add_row("peak PGV", f"{stats['pgv_max']:.3g}")
    t.add_row("mean PGV", f"{stats['pgv_mean']:.3g}")
    t.add_row("area with >50% of peak shaking",
              f"{100 * stats['area_strong']:.0f}%")
    print(t)
    print()

    # Sierra vs Cori (the paper's 10-hour parity / 14X throughput story)
    sierra, cori = get_machine("sierra"), get_machine("cori-ii")
    t_gpu = RooflineModel(sierra).run_on_gpu(ctx.trace, gpus=4).total
    t_cpu = RooflineModel(cori).run_on_cpu(ctx.trace).total
    print(f"Modeled node time for this run: sierra {1e3 * t_gpu:.1f} ms, "
          f"cori-ii {1e3 * t_cpu:.1f} ms "
          f"({t_cpu / t_gpu:.1f}X per node at this small size; "
          "the production-size ratio is ~10-14X — see "
          "benchmarks/bench_sw4_hayward.py)")


if __name__ == "__main__":
    main()
