"""Topology optimization of a drone-arm bracket (§4.7, Fig 5).

Runs the real SIMP optimizer (matrix-free CG displacement solves,
sensitivity filtering, optimality-criteria updates) on a tip-loaded
cantilever — the structural problem class behind the paper's drone —
prints the evolving design as ASCII art, and reports the texture-cache
ablation that made CUDA necessary on the EA system but not on Sierra.

Run:  python examples/drone_design.py
"""

import numpy as np

from repro.core.machine import get_machine
from repro.topopt.fe2d import Cantilever2D
from repro.topopt.simp import SimpOptimizer
from repro.topopt.texture import texture_ablation
from repro.util.tables import Table

SHADES = " .:*#@"


def ascii_design(density: np.ndarray) -> str:
    rows = []
    for j in range(density.shape[1]):
        rows.append("".join(
            SHADES[min(int(density[i, j] * (len(SHADES) - 1) + 0.5),
                       len(SHADES) - 1)]
            for i in range(density.shape[0])
        ))
    return "\n".join(rows)


def main() -> None:
    print("Optimizing a 60x20 cantilever bracket (40% material budget,")
    print("tip load, matrix-free CG solves)...\n")
    domain = Cantilever2D(60, 20, load="tip")
    opt = SimpOptimizer(domain, volume_fraction=0.4, filter_radius=1.8)

    frames = []

    def watch(x, c):
        frames.append((x.copy(), c))

    result = opt.optimize(n_iters=25, callback=watch)

    for it in (0, 5, len(frames) - 1):
        x, c = frames[it]
        print(f"iteration {it:2d}  compliance {c:9.2f}")
    print()
    print("Final design (clamped at the left edge, load at bottom right):\n")
    print(ascii_design(result.density))
    print()
    t = Table(["metric", "value"], title="Design summary")
    t.add_row("final compliance", round(result.compliance, 2))
    t.add_row("compliance reduction",
              f"{result.compliance_history[0] / result.compliance:.1f}X")
    t.add_row("volume fraction", round(result.volume_fraction, 3))
    t.add_row("total CG iterations", result.cg_iterations)
    print(t)
    print()

    # the §4.7 hindsight: texture cache mattered on the EA system only
    t2 = Table(["machine", "plain loads (ms)", "texture loads (ms)",
                "texture benefit", "portable RAJA sufficient?"],
               title="Matrix-free gather kernel: texture-cache ablation")
    for name in ("ea-minsky", "sierra"):
        r = texture_ablation(get_machine(name))
        t2.add_row(name, round(1e3 * r["plain_time"], 2),
                   round(1e3 * r["texture_time"], 2),
                   f"{r['texture_benefit']:.1f}X",
                   "no" if r["needs_texture_path"] else "yes")
    print(t2)


if __name__ == "__main__":
    main()
