"""Multi-language topic modeling with SparkPlug (§4.4, Fig 2).

Generates a Wikipedia-shaped synthetic corpus (per-language vocabulary
blocks, Zipf word frequencies), fits LDA with the distributed
variational-EM driver on the mini Spark engine, verifies topic
recovery against the planted topics, and compares the default vs
optimized software stacks.

Run:  python examples/wikipedia_lda.py
"""

import numpy as np

from repro.lda.corpus import make_corpus
from repro.lda.sparkplug import SparkPlugLDA, compare_stacks
from repro.lda.vem import perplexity, topic_recovery_score
from repro.spark.engine import SparkEngine
from repro.spark.jvm import OPTIMIZED_STACK
from repro.util.tables import Table


def main() -> None:
    print("Generating a 3-language Zipf corpus (planted topics)...")
    corpus = make_corpus(n_docs=240, vocab_per_language=250,
                         n_languages=3, n_topics=4, doc_length=90, seed=0)
    print(f"  {corpus.n_docs} docs, vocabulary {corpus.vocab_size}, "
          f"{corpus.n_tokens} tokens\n")

    print("Fitting 12 topics with distributed variational EM "
          "(16 workers, optimized stack)...")
    engine = SparkEngine(16, stack=OPTIMIZED_STACK)
    lda = SparkPlugLDA(corpus, n_topics=12, engine=engine,
                       shuffle_algorithm="adaptive",
                       aggregate_algorithm="tree", seed=1)
    for round_ in range(4):
        lda.iterate(3)
        print(f"  after {3 * (round_ + 1):2d} iterations: "
              f"bound {lda.bound_history[-1]:12.1f}  "
              f"perplexity {perplexity(lda.model, corpus.docs[:40]):8.2f}")
    score = topic_recovery_score(lda.model, corpus.true_topics)
    print(f"\nPlanted-topic recovery (best-match cosine): {score:.3f}\n")

    print("Comparing software stacks (Fig 2)...")
    res = compare_stacks(corpus, 8, n_workers=32, n_iters=3, seed=0)
    t = Table(["stack", "compute (s)", "shuffle (s)", "aggregate (s)",
               "total (s)"],
              title="Modeled 32-node cluster time per 3 EM iterations")
    for label in ("default", "optimized"):
        r = res[label]
        t.add_row(label, round(r["compute"], 4), round(r["shuffle"], 4),
                  round(r["aggregate"], 4), round(r["total"], 4))
    print(t)
    print(f"\noptimized-stack speedup: "
          f"{res['default']['total'] / res['optimized']['total']:.1f}X "
          f"(paper: >2X)")


if __name__ == "__main__":
    main()
