"""Martini membrane MD + the MuMMI multiscale campaign (§4.6, Fig 4).

Part 1 runs a real coarse-grained bilayer simulation with the ddcMD
proxy (thermostat, bonds, angles, Martini-style shifted LJ) and shows
the bilayer holding together.  Part 2 runs the MuMMI-lite campaign —
macro model proposing patches, micro MD jobs farmed onto a simulated
GPU cluster — and compares campaign throughput with ddcMD vs the
GROMACS baseline.

Run:  python examples/membrane_campaign.py
"""

import numpy as np

from repro.md.ddcmd import DdcMD, make_martini_membrane
from repro.md.integrators import LangevinThermostat
from repro.util.tables import Table
from repro.workflow.mummi import MummiCampaign


def main() -> None:
    # --- part 1: a real membrane simulation ----------------------------
    print("Equilibrating a 3-bead-lipid bilayer (Martini-style)...")
    system, proc, bonds, angles = make_martini_membrane(
        n_lipids_per_leaflet=16, n_water=64, seed=0
    )
    sim = DdcMD(
        system, proc, dt=0.002, bonds=bonds, angles=angles,
        thermostat=LangevinThermostat(temperature=0.8, friction=5.0, seed=1),
    )
    z_mid = system.box.lengths[2] / 2
    for block in range(4):
        sim.run(150)
        z = system.x[:, 2]
        heads = np.abs(z[system.types == 0] - z_mid)
        tails = np.abs(z[system.types == 1] - z_mid)
        print(f"  t={sim.steps_taken * 0.002:6.2f}  T={system.temperature():.2f}  "
              f"head|z-mid|={np.median(heads):.2f}  "
              f"tail|z-mid|={np.median(tails):.2f}  "
              f"(bilayer intact: {np.median(heads) > np.median(tails)})")
    print()

    # --- part 2: the MuMMI campaign -------------------------------------
    print("Running MuMMI-lite campaigns (macro model -> micro MD jobs")
    print("on a 16-GPU simulated cluster; in-situ feedback)...\n")
    t = Table(
        ["MD engine", "sims completed", "GPU hours", "sims/hour",
         "composition coverage"],
        title="Campaign throughput: the per-step MD advantage compounds",
    )
    rates = {}
    for code in ("ddcmd", "gromacs"):
        camp = MummiCampaign(n_gpus=16, md_code=code, jobs_per_cycle=24,
                             seed=0)
        camp.run(4)
        rates[code] = camp.simulations_per_hour
        t.add_row(code, len(camp.results), round(camp.gpu_hours, 2),
                  round(camp.simulations_per_hour, 1),
                  f"{100 * camp.coverage():.0f}%")
    print(t)
    print(f"\nddcMD advantage inside MuMMI: "
          f"{rates['ddcmd'] / rates['gromacs']:.1f}X (paper: 2.3X)")


if __name__ == "__main__":
    main()
