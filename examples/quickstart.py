"""Quickstart: the core substrate in five minutes.

Tour of the pieces every proxy application builds on: the machine
catalog, the roofline model, the mini-RAJA portability layer with
device-residency checking, the mini-Umpire memory manager, and the
hypre-proxy solver stack.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ExecPolicy,
    ExecutionContext,
    Forall,
    KernelSpec,
    MemorySpace,
    RooflineModel,
    get_machine,
)
from repro.solvers import BoomerAMG, CsrMatrix, pcg, poisson_2d
from repro.util.tables import Table


def main() -> None:
    # --- 1. machines ---------------------------------------------------
    sierra = get_machine("sierra")
    cori = get_machine("cori-ii")
    print(f"Machines: {sierra} vs {cori}\n")

    # --- 2. price a kernel on both -------------------------------------
    stream = KernelSpec("stream-triad", flops=2e9, bytes_read=16e9,
                        bytes_written=8e9)
    t = Table(["machine", "side", "time (model, ms)"],
              title="A bandwidth-bound kernel on two machines")
    t.add_row("sierra", "4x V100",
              round(1e3 * RooflineModel(sierra).gpu_kernel_time(stream, gpus=4), 2))
    t.add_row("sierra", "2x P9",
              round(1e3 * RooflineModel(sierra).cpu_kernel_time(stream), 2))
    t.add_row("cori-ii", "KNL",
              round(1e3 * RooflineModel(cori).cpu_kernel_time(stream), 2))
    print(t)
    print()

    # --- 3. portable loops with residency checking ----------------------
    ctx = ExecutionContext(machine=sierra)
    dev = ctx.resources.allocate((1000,), space=MemorySpace.DEVICE,
                                 name="field", fill=0.0)
    fa = Forall(ctx, ExecPolicy.CUDA)
    fa.run("init", 1000, lambda i: dev.data.__setitem__(i, i * 0.5),
           arrays=[dev], flops_per_elem=1, bytes_per_elem=8)
    print(f"forall wrote {dev.data[-1]:.1f} at the end; "
          f"trace holds {len(ctx.trace.kernels)} kernel(s), "
          f"{ctx.trace.total_flops:.0f} flops\n")

    # --- 4. the hypre-proxy solver stack --------------------------------
    a = poisson_2d(48)
    b = np.ones(a.shape[0])
    amg = BoomerAMG(coarsening="pmis", ctx=ctx)
    amg.setup(a)
    x, info = pcg(CsrMatrix(a, ctx=ctx), b,
                  preconditioner=amg.as_preconditioner(), tol=1e-10)
    print(f"AMG-PCG solved a {a.shape[0]}-unknown Poisson system in "
          f"{info.iterations} iterations "
          f"(hierarchy: {amg.hierarchy.num_levels} levels, operator "
          f"complexity {amg.hierarchy.operator_complexity:.2f})")

    # --- 5. price the whole solve on the GPU ----------------------------
    model = RooflineModel(sierra)
    report = model.run_on_gpu(ctx.trace, gpus=1)
    print(f"modeled V100 time for everything above: "
          f"{1e3 * report.total:.3f} ms "
          f"({1e3 * report.launch_time:.3f} ms of it kernel launches)")


if __name__ == "__main__":
    main()
