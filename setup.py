"""Setup shim for environments without the `wheel` package.

`pip install -e .` on this machine (offline, no wheel module) falls back
to `setup.py develop`, which setuptools provides natively.  All project
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
