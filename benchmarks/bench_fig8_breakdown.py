"""Fig 8: timing breakdown of the nonlinear diffusion problem.

The paper breaks the run into linear-system formulation (SUNDIALS),
preconditioner setup, and solve (MFEM + hypre), comparing one P8 CPU
thread against one P100.  We run the real problem (small mesh), record
both the *measured* phase breakdown on this machine and the *modeled*
CPU(P8, 1 thread)-vs-GPU(P100) phase times from the captured kernel
trace scaled to the paper's 1M DoF.
"""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelTrace
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.fem.mesh import TensorMesh2D
from repro.fem.nonlinear import NonlinearDiffusion
from repro.util.tables import Table

EA = get_machine("ea-minsky")  # P8 + P100, the Fig 8 hardware
TARGET_DOFS = 1.0e6


def run_problem(order=4, nel=5):
    ctx = ExecutionContext()
    mesh = TensorMesh2D(nel, nel, order=order)
    prob = NonlinearDiffusion(mesh, k0=1.0, k1=0.5, ctx=ctx)
    gx, gy = mesh.node_coords()
    u0 = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()
    prob.integrate(u0, t_end=2e-3, rtol=1e-4, atol=1e-7)
    return prob, ctx.trace, mesh.n_dofs


def modeled_breakdown():
    prob, trace, n_small = run_problem()
    factor = TARGET_DOFS / n_small
    model = RooflineModel(EA)
    # bucket kernels into Fig 8's phases by name
    phases = {"formulation": [], "preconditioner+solve": []}
    for k in trace.kernels:
        scaled = k.scaled(factor)
        if k.name.startswith(("pa-", )):
            phases["formulation"].append(scaled)
        else:
            phases["preconditioner+solve"].append(scaled)
    out = {}
    for phase, kernels in phases.items():
        tr = KernelTrace()
        for k in kernels:
            tr.record_kernel(k)
        out[phase] = {
            "cpu": model.run_on_cpu(tr, cores=1).total,
            "gpu": model.run_on_gpu(tr, gpus=1).total,
        }
    measured = prob.timers.as_dict()
    return out, measured


def make_table(modeled, measured) -> Table:
    t = Table(
        ["Phase", "P8 1-thread (model, s)", "P100 (model, s)", "speedup"],
        title="Fig 8: nonlinear diffusion timing breakdown "
              "(1M DoF, modeled from the real run's trace)",
    )
    for phase, v in modeled.items():
        t.add_row(phase, round(v["cpu"], 3), round(v["gpu"], 4),
                  f"{v['cpu'] / v['gpu']:.1f}X")
    t2 = Table(
        ["Phase", "measured seconds (this machine)"],
        title="Measured laptop-scale phase breakdown (real run)",
    )
    for phase, sec in measured.items():
        t2.add_row(phase, round(sec, 4))
    return t, t2


def test_bdf_step_kernel(benchmark):
    """Time the real integrate-one-interval pipeline (small mesh)."""
    def run():
        mesh = TensorMesh2D(4, 4, order=2)
        prob = NonlinearDiffusion(mesh, k0=1.0, k1=0.5)
        gx, gy = mesh.node_coords()
        u0 = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()
        return prob.integrate(u0, t_end=1e-3, rtol=1e-4, atol=1e-7)

    times, states, integ = benchmark.pedantic(run, rounds=2, iterations=1)
    assert integ.stats.n_steps > 0


def test_fig8_shape(benchmark):
    modeled, measured = benchmark.pedantic(modeled_breakdown, rounds=1,
                                           iterations=1)
    for phase, v in modeled.items():
        # every phase benefits on the GPU at 1M DoF vs 1 CPU thread
        assert v["cpu"] / v["gpu"] > 3, phase
    # the measured laptop run populates all Fig 8 phases
    for phase in ("formulation", "preconditioner", "solve"):
        assert measured.get(phase, 0) > 0


if __name__ == "__main__":
    t1, t2 = make_table(*modeled_breakdown())
    print(t1)
    print()
    print(t2)
