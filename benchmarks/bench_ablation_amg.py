"""Ablation: RS vs PMIS coarsening and smoother choice in BoomerAMG.

DESIGN.md calls out the GPU-era algorithm swaps inside hypre (classical
sequential RS coarsening + Gauss-Seidel on the CPU vs data-parallel
PMIS + l1-Jacobi on the GPU).  This ablation quantifies what the swap
costs in convergence and buys in parallel structure, on real solves.
"""

import numpy as np
import pytest

from repro.solvers.boomeramg import BoomerAMG
from repro.solvers.problems import anisotropic_2d, poisson_2d
from repro.util.tables import Table


def study(n=40):
    """Components compared as PCG preconditioners (how the paper's
    stack uses them), which is also where PMIS + direct interpolation's
    weaker coarse grids matter least."""
    from repro.solvers.csr import CsrMatrix
    from repro.solvers.krylov import pcg

    a = poisson_2d(n)
    b = np.ones(a.shape[0])
    rows = []
    for coarsening in ("rs", "pmis"):
        for smoother in ("weighted-jacobi", "l1-jacobi"):
            amg = BoomerAMG(coarsening=coarsening, smoother=smoother)
            h = amg.setup(a)
            _, info = pcg(CsrMatrix(a), b,
                          preconditioner=amg.as_preconditioner(),
                          tol=1e-8, max_iter=300)
            rows.append({
                "coarsening": coarsening,
                "smoother": smoother,
                "levels": h.num_levels,
                "op_complexity": h.operator_complexity,
                "iterations": info.iterations,
                "converged": info.converged,
            })
    return rows


def make_table(rows) -> Table:
    t = Table(
        ["coarsening", "smoother", "levels", "operator cx",
         "PCG iterations"],
        title="BoomerAMG ablation on 1600-unknown 2D Poisson "
              "(CPU-era vs GPU-era component choices, as preconditioner)",
    )
    for r in rows:
        t.add_row(r["coarsening"], r["smoother"], r["levels"],
                  round(r["op_complexity"], 2), r["iterations"])
    return t


def test_vcycle_kernel(benchmark):
    """Time one real V-cycle at 2500 unknowns (GPU-era components)."""
    a = poisson_2d(50)
    amg = BoomerAMG(coarsening="pmis", smoother="l1-jacobi")
    amg.setup(a)
    b = np.ones(a.shape[0])
    x = benchmark(amg.vcycle, b)
    assert np.isfinite(x).all()


def test_ablation_shape(benchmark):
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    assert all(r["converged"] for r in rows)
    # GPU-era components cost extra iterations but stay in the same
    # ballpark (the trade hypre accepted for data parallelism)
    by = {(r["coarsening"], r["smoother"]): r for r in rows}
    cpu_era = by[("rs", "weighted-jacobi")]["iterations"]
    gpu_era = by[("pmis", "l1-jacobi")]["iterations"]
    assert gpu_era <= 3.0 * cpu_era
    # ...while building a cheaper hierarchy
    assert (by[("pmis", "l1-jacobi")]["op_complexity"]
            <= by[("rs", "weighted-jacobi")]["op_complexity"])
    # operator complexity stays bounded for both coarsenings
    assert all(r["op_complexity"] < 4.0 for r in rows)


def test_anisotropic_robustness(benchmark):
    """Both coarsenings must survive the anisotropic stressor."""
    a = anisotropic_2d(24, epsilon=0.01)
    b = np.ones(a.shape[0])

    def run():
        out = {}
        for coarsening in ("rs", "pmis"):
            amg = BoomerAMG(coarsening=coarsening, theta=0.25)
            amg.setup(a)
            _, info = amg.solve(b, tol=1e-8, max_iter=200)
            out[coarsening] = info
        return out

    infos = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(i.converged for i in infos.values())


if __name__ == "__main__":
    print(make_table(study()))
