#!/usr/bin/env python
"""Perf-regression harness: time the hot paths, emit BENCH_N.json.

Runs a curated subset of the repo's performance-critical kernels with
fixed seeds, timing both the SEQ reference implementation and the
vectorized fast path of each:

- ``gauss_seidel``   — lexicographic triangular-solve sweeps vs the
  multicolor (red-black) vectorized sweeps.
- ``md_neighbor``    — per-cell Python-loop neighbor build vs the
  compiled periodic kd-tree build.
- ``md_forces``      — ``np.add.at`` force scatter vs the per-component
  ``np.bincount`` scatter.
- ``sched_events``   — policy.select over a list (O(queue) per event)
  vs the heap-backed fast queue engine.
- ``trace_pricing``  — per-entry roofline pricing (memo disabled) of a
  plain trace vs pricing the record-time-compacted trace with memoized
  per-launch times; totals must agree.
- ``jit_warm_start`` — cold render+compile vs warm start from the
  persistent on-disk JIT cache.

Each case records ``wall_s`` (fast path), ``ref_wall_s`` (reference),
``speedup``, and — where the workload has a roofline trace —
``modeled_s``, the modeled execution time on the sierra node.  Modeled
times come from the performance model, not the host clock, so they are
bit-stable across machines; wall times are what the regression gate
checks.

Output is ``BENCH_<n>.json`` in the repo root (next free index, or
``--output``).  When an earlier ``BENCH_*.json`` exists, each case's
``wall_s`` is compared against the most recent baseline with the same
mode; a slowdown beyond ``--tolerance`` (default 1.5x, wall clocks are
noisy) fails the run with exit code 1.

``--smoke`` shrinks every case for CI (< ~1 minute total); full mode
uses the sizes the acceptance numbers quote (10^4-row Gauss-Seidel,
8000-particle neighbor build, 10^4-job schedule, 10^5-launch trace).
"""

from __future__ import annotations

import argparse
import gc
import json
import re
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA = 1


def _timed(fn: Callable[[], object]) -> Tuple[object, float]:
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _timed_best(fn: Callable[[], object], n: int) -> Tuple[object, float]:
    """Best-of-*n* wall time (and the last result).

    Scheduling and allocator noise is strictly additive, so the
    fastest sample is the closest estimate of the true cost.  Used on
    BOTH sides of a comparison — a best-of-N fast path against a
    single-sample reference flatters the speedup by however much
    noise the one reference sample happened to absorb.
    """
    best = float("inf")
    out = None
    for _ in range(n):
        out, t = _timed(fn)
        best = min(best, t)
    return out, best


def _case(name: str, wall_s: float, ref_wall_s: Optional[float] = None,
          modeled_s: Optional[float] = None, check: str = "ok") -> Dict:
    rec = {
        "name": name,
        "wall_s": round(wall_s, 6),
        "ref_wall_s": None if ref_wall_s is None else round(ref_wall_s, 6),
        "speedup": (
            None if ref_wall_s is None or wall_s == 0
            else round(ref_wall_s / wall_s, 2)
        ),
        "modeled_s": None if modeled_s is None else float(modeled_s),
        "check": check,
    }
    return rec


# ---------------------------------------------------------------------------
# cases
# ---------------------------------------------------------------------------


def case_gauss_seidel(smoke: bool) -> Dict:
    from repro.core.forall import ExecutionContext
    from repro.core.machine import get_machine
    from repro.core.roofline import RooflineModel
    from repro.solvers import (
        gauss_seidel,
        gauss_seidel_multicolor,
        poisson_2d,
    )
    from repro.solvers.csr import CsrMatrix

    grid = 40 if smoke else 100
    sweeps = 4 if smoke else 10
    ctx = ExecutionContext()
    a = CsrMatrix(poisson_2d(grid), ctx=ctx)
    n = a.shape[0]
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    x0 = np.zeros(n)

    ref, t_ref = _timed_best(
        lambda: gauss_seidel(a, b, x0, sweeps=sweeps), 3
    )
    gauss_seidel_multicolor(a, b, x0, sweeps=1)  # build/cache the coloring
    fast, t_fast = _timed_best(
        lambda: gauss_seidel_multicolor(a, b, x0, sweeps=sweeps), 3
    )
    r_ref = float(np.linalg.norm(b - a.tocsr() @ ref))
    r_fast = float(np.linalg.norm(b - a.tocsr() @ fast))
    ok = r_fast <= 1.5 * r_ref
    # modeled cost of the sweeps' SpMV work on sierra (1 GPU)
    ctx.trace.clear()
    for _ in range(sweeps):
        a.matvec(x0)
    model = RooflineModel(get_machine("sierra"))
    modeled = model.run_on_gpu(ctx.trace, compact=True).total
    return _case(
        "gauss_seidel", t_fast, t_ref, modeled,
        "ok" if ok else f"residual {r_fast:.3e} vs ref {r_ref:.3e}",
    )


def _md_setup(smoke: bool):
    from repro.md.particles import ParticleSystem, PeriodicBox

    n = 1200 if smoke else 8000
    rho = 0.5
    side = (n / rho) ** (1.0 / 3.0)
    box = PeriodicBox([side, side, side])
    return ParticleSystem.random_gas(n, box, seed=11)


def case_md_neighbor(smoke: bool) -> Dict:
    from repro.md.neighbor import NeighborList

    system = _md_setup(smoke)
    ref_nl = NeighborList(cutoff=2.5, skin=0.3, method="reference")
    fast_nl = NeighborList(cutoff=2.5, skin=0.3, method="fast")
    _, t_ref = _timed_best(lambda: ref_nl.build(system), 3)
    _, t_fast = _timed_best(lambda: fast_nl.build(system), 3)
    ref_pairs = set(zip(np.minimum(ref_nl.pairs_i, ref_nl.pairs_j).tolist(),
                        np.maximum(ref_nl.pairs_i, ref_nl.pairs_j).tolist()))
    fast_pairs = set(zip(np.minimum(fast_nl.pairs_i, fast_nl.pairs_j).tolist(),
                         np.maximum(fast_nl.pairs_i, fast_nl.pairs_j).tolist()))
    ok = ref_pairs == fast_pairs
    return _case(
        "md_neighbor", t_fast, t_ref, None,
        "ok" if ok else "pair sets differ",
    )


def case_md_forces(smoke: bool) -> Dict:
    from repro.md.neighbor import NeighborList
    from repro.md.potentials import LennardJones, PairProcessor

    system = _md_setup(smoke)
    nl = NeighborList(cutoff=2.5, skin=0.3)
    nl.build(system)
    proc = PairProcessor(LennardJones(cutoff=2.5))
    reps = 3 if smoke else 5

    def run(method: str):
        for _ in range(reps):
            out = proc.compute(system, nl.pairs_i, nl.pairs_j, method=method)
        return out

    (f_ref, e_ref, _), t_ref = _timed_best(lambda: run("reference"), 3)
    (f_fast, e_fast, _), t_fast = _timed_best(lambda: run("fused"), 3)
    (f_bc, e_bc, _), t_bincount = _timed_best(lambda: run("fast"), 3)
    ok = (
        np.allclose(f_ref, f_fast, atol=1e-9) and np.isclose(e_ref, e_fast)
        and np.allclose(f_ref, f_bc, atol=1e-9) and np.isclose(e_ref, e_bc)
    )
    case = _case(
        "md_forces", t_fast, t_ref, None,
        "ok" if ok else "forces differ",
    )
    # the pre-fusion fast path rides along so the fused kernel's win
    # over plain bincount scatter stays visible in the report
    case["bincount_wall_s"] = round(t_bincount, 6)
    return case


def case_sched_events(smoke: bool) -> Dict:
    from repro.sched import ClusterSimulator, Sjf, batch_workload

    n_jobs = 1500 if smoke else 10_000
    jobs = batch_workload(n_jobs=n_jobs, seed=7)
    sim = ClusterSimulator(16)
    policy = Sjf()
    r_ref, t_ref = _timed(lambda: sim.run(jobs, policy, engine="reference"))
    r_fast, t_fast = _timed(lambda: sim.run(jobs, policy, engine="fast"))
    ok = (
        r_ref.makespan == r_fast.makespan
        and r_ref.mean_wait == r_fast.mean_wait
        and r_ref.queue_series == r_fast.queue_series
    )
    return _case(
        "sched_events", t_fast, t_ref, None,
        "ok" if ok else "schedules differ",
    )


def case_trace_pricing(smoke: bool) -> Dict:
    from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
    from repro.core.machine import get_machine
    from repro.core.roofline import RooflineModel

    n_launches = 10_000 if smoke else 100_000
    specs = [
        KernelSpec(name=f"k{i}", flops=1e9 + i * 1e7, bytes_read=4e8,
                   bytes_written=2e8, compute_efficiency=0.4,
                   bandwidth_efficiency=0.6)
        for i in range(8)
    ]

    def record_into(trace: KernelTrace) -> None:
        # blocks of repeated launches: the hot-loop shape compaction
        # targets (same kernel re-launched every sweep/step)
        i = 0
        for spec in specs:
            for _ in range(n_launches // len(specs)):
                trace.record_kernel(spec)
                if i % 100 == 0:
                    trace.record_transfer(
                        TransferSpec(name="halo", nbytes=1e6,
                                     direction="h2d")
                    )
                i += 1

    plain = KernelTrace()
    record_into(plain)
    compacting = KernelTrace(compacting=True)
    record_into(compacting)

    machine = get_machine("sierra")
    ref_model = RooflineModel(machine, memo_size=0)
    fast_model = RooflineModel(machine)
    rep_ref, t_ref = _timed_best(lambda: ref_model.run_on_gpu(plain), 3)
    # the fast pricing is microseconds; average it for a stable wall
    reps = 100

    def price_fast():
        rep = None
        for _ in range(reps):
            rep = fast_model.run_on_gpu(compacting, compact=True)
        return rep

    rep_fast, t_fast = _timed(price_fast)
    t_fast /= reps
    ok = (
        np.isclose(rep_ref.total, rep_fast.total, rtol=1e-9)
        and np.isclose(rep_ref.kernel_time, rep_fast.kernel_time, rtol=1e-9)
    )
    return _case(
        "trace_pricing", t_fast, t_ref, rep_fast.total,
        "ok" if ok else
        f"totals differ: {rep_ref.total} vs {rep_fast.total}",
    )


def case_jit_warm_start(smoke: bool) -> Dict:
    from repro.core.jit import JitCache

    n_kernels = 12 if smoke else 40
    template = "\n".join(
        ["def kern(x):", "    acc = x"]
        + [f"    acc = acc * $A + $B + {i}" for i in range(30)]
        + ["    return acc"]
    )
    tmps: List[str] = []
    try:
        def compile_all(cache: JitCache) -> float:
            total = 0.0
            for i in range(n_kernels):
                k = cache.compile(
                    "kern", template, {"A": 1.0 + i, "B": float(i)}
                )
                total += k(1.0)
            return total

        # each cold sample gets its own empty persist dir (a reused
        # dir would turn samples 2-3 into warm starts); best-of-3 on
        # the cold side mirrors the warm side's statistic
        t_cold = float("inf")
        v_cold = None
        for _ in range(3):
            tmp = tempfile.mkdtemp(prefix="bench-jit-")
            tmps.append(tmp)
            cold = JitCache(persist_dir=tmp)
            v_cold, t = _timed(lambda: compile_all(cold))
            t_cold = min(t_cold, t)
        # each fresh cache instance is a genuine warm start (in-memory
        # cache empty, disk populated); best-of-3 keeps this ~1 ms
        # sample from being poisoned by a scheduling hiccup
        t_warm = float("inf")
        v_warm = None
        ok = True
        for _ in range(3):
            warm = JitCache(persist_dir=tmps[-1])
            v_warm, t = _timed(lambda: compile_all(warm))
            t_warm = min(t_warm, t)
            ok = ok and warm.disk_hits == n_kernels
        ok = ok and v_cold == v_warm
        return _case(
            "jit_warm_start", t_warm, t_cold, None,
            "ok" if ok else
            f"disk hits {warm.disk_hits}/{n_kernels}",
        )
    finally:
        for tmp in tmps:
            shutil.rmtree(tmp, ignore_errors=True)


def case_guard_overhead(smoke: bool) -> Dict:
    """Disabled-guard overhead on the PCG hot loop, asserted < 3%.

    The reference is a subclass of :class:`PcgSolver` whose ``step``
    is the pre-instrumentation body verbatim — guard lines deleted,
    everything else (``__init__``, allocation order, object layout)
    inherited — so the only difference between the timed paths is the
    guard's ``is None`` tests.  Sharing the constructor matters: a
    separate replica class allocates its arrays in a different order,
    and on this hardware the resulting cache-aliasing differences
    swing a naive A/B by several percent per process, either sign.

    Samples are paired (adjacent runs share the ambient machine
    speed, which drifts far more than 3% over a full series), order
    alternates within pairs, and the verdict is the median of the
    per-pair time ratios — robust to contention bursts, which only
    poison the pairs they overlap.  A strict-mode fallback-chain
    exercise afterwards populates the ``guard.*`` counters recorded
    in the report snapshot.
    """
    from repro.guard import (
        AdmissionController,
        amg_fallback_chain,
        guard_override,
    )
    from repro.sched.policies import Fcfs
    from repro.sched.simulator import ClusterSimulator, Job
    from repro.solvers import poisson_2d
    from repro.solvers.csr import CsrMatrix
    from repro.solvers.krylov import PcgSolver

    # a grid this size keeps each iteration dominated by the numpy
    # kernels both paths share; on tiny problems run-to-run code/data
    # layout shifts in the Python dispatch swamp the ~0.5% signal
    grid = 96 if smoke else 192
    max_iter = 60 if smoke else 100
    a = CsrMatrix(poisson_2d(grid))
    rng = np.random.default_rng(3)
    b = rng.standard_normal(a.n_rows)

    from repro.solvers.krylov import _apply

    class _PrePrPcg(PcgSolver):
        """The pre-guard PcgSolver step, verbatim, minus guard lines."""

        def step(self) -> bool:
            if self.done:
                return True
            ap = _apply(self.a, self.p)
            pap = float(self.p @ ap)
            if pap <= 0:
                self.done = True
                return True
            alpha = self.rz / pap
            self.x += alpha * self.p
            self.r -= alpha * ap
            rnorm = float(np.linalg.norm(self.r))
            self.norms.append(rnorm)
            self.it += 1
            if rnorm <= self.target:
                self.converged = True
                self.done = True
                return True
            if self.it >= self.max_iter:
                self.done = True
                return True
            z = (
                _apply(self.preconditioner, self.r)
                if self.preconditioner is not None else self.r
            )
            rz_new = float(self.r @ z)
            beta = rz_new / self.rz
            self.rz = rz_new
            self.p = z + beta * self.p
            return False

    def bare_pcg() -> np.ndarray:
        # tol=0 never converges, so both paths run exactly max_iter
        solver = _PrePrPcg(a, b, tol=0.0, max_iter=max_iter)
        x, _ = solver.solve()
        return x

    def guarded_off_pcg() -> np.ndarray:
        solver = PcgSolver(a, b, tol=0.0, max_iter=max_iter)
        x, _ = solver.solve()
        return x

    reps = 80 if smoke else 40
    ratios: List[float] = []
    t_bare: List[float] = []
    t_guarded: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with guard_override("off"):
            x_bare = x_guarded = None
            for i in range(reps):
                if i % 2 == 0:
                    x_bare, t_b = _timed(bare_pcg)
                    x_guarded, t_g = _timed(guarded_off_pcg)
                else:
                    x_guarded, t_g = _timed(guarded_off_pcg)
                    x_bare, t_b = _timed(bare_pcg)
                ratios.append(t_g / t_b)
                t_bare.append(t_b)
                t_guarded.append(t_g)
    finally:
        if gc_was_enabled:
            gc.enable()
    best_bare = min(t_bare)
    best_guarded = min(t_guarded)
    overhead = float(np.median(ratios)) - 1.0
    same = np.array_equal(x_bare, x_guarded)
    if not same:
        check = "guard-off PCG diverged from the bare loop"
    elif overhead > 0.03:
        check = f"disabled-guard overhead {overhead * 100:.2f}% > 3%"
    else:
        check = "ok"

    # populate guard.* counters for the report snapshot: a chain that
    # escalates to the dense rescue, and a shed decision
    with guard_override("strict"):
        n = 32
        lap = np.zeros((n, n))
        for i in range(n):
            lap[i, i] = 2.0
            if i:
                lap[i, i - 1] = lap[i - 1, i] = -1.0
        amg_fallback_chain(lap, max_iter=20).run(np.full(n, 1e150))
        ClusterSimulator(1).run(
            [Job(job_id=0, arrival=0.0, service=10.0, deadline=5.0),
             Job(job_id=1, arrival=0.0, service=1.0)],
            Fcfs(), admission=AdmissionController(),
        )
    return _case("guard_overhead", best_guarded, best_bare, None, check)


def _par_fanout_task(args):
    """One latency-bound task: a modeled service wait plus a small
    deterministic reduction (the fan-out unit must be pure)."""
    seq, n, delay = args
    time.sleep(delay)
    rng = np.random.default_rng(seq)
    m = rng.standard_normal((n, n))
    return float(np.linalg.norm(m @ m.T))


def case_par_fanout(smoke: bool) -> Dict:
    """repro.par fan-out: speedup at 4 workers + serial-path overhead.

    The workload is latency-bound (each task models a blocking service
    wait, the ensemble-member shape of the paper's workflow layer), so
    the 4-worker speedup is meaningful even on a single-core host.
    Checks: process results bit-equal to serial, serial ``map_fanout``
    within 3% of a direct loop, and >= 2x wall-clock speedup with 4
    process workers.
    """
    from repro.par import map_fanout

    n_tasks = 8 if smoke else 16
    delay = 0.05 if smoke else 0.15
    size = 48
    seqs = np.random.SeedSequence(17).spawn(n_tasks)
    items = [(seqs[i], size, delay) for i in range(n_tasks)]

    direct, t_direct = _timed(
        lambda: [_par_fanout_task(it) for it in items]
    )
    serial, t_serial = _timed(
        lambda: map_fanout(_par_fanout_task, items, backend="serial")
    )
    map_fanout(_par_fanout_task, items[:2], backend="process:4")  # warm pool
    par, t_par = _timed(
        lambda: map_fanout(_par_fanout_task, items, backend="process:4")
    )
    overhead = t_serial / t_direct - 1.0
    speedup = t_serial / t_par
    if serial != direct or par != serial:
        check = "backend results differ"
    elif overhead > 0.03:
        check = f"serial-path overhead {overhead * 100:.2f}% > 3%"
    elif speedup < 2.0:
        check = f"speedup {speedup:.2f}x < 2x at 4 workers"
    else:
        check = "ok"
    return _case("par_fanout", t_par, t_serial, None, check)


def case_durability_overhead(smoke: bool) -> Dict:
    """WAL-journaling tax on a ddcMD ensemble member, gated < 5%.

    The member is driven by :class:`repro.durable.ResumableCampaign`
    committing its full ``checkpoint_state()`` to a
    :class:`repro.durable.DurableStore` every ``journal_every=8``
    steps (so a SIGKILL loses at most 8 steps — seconds of simulated
    work against the paper's minutes-long MD segments).  The gated
    configuration is ``sync=False``: flushed-not-fsynced commits,
    which survive process death (the chaos harness's SIGKILL threat
    model — the page cache belongs to the OS) but not a kernel crash.
    The fully-fsynced ``sync=True`` overhead rides along in the
    report as ``fsync_overhead_pct``, informational: it is dominated
    by device sync latency, which varies an order of magnitude across
    hosts and says nothing about the journaling machinery.

    Samples are paired with alternating order and the verdict is the
    best-of-N ratio (``min(t_journaled) / min(t_bare)``): with ~0.7 s
    samples, scheduling and allocator noise is strictly additive and
    multi-percent, so the fastest sample on each side is the closest
    estimate of the true cost; the median per-pair ratio rides along
    as ``overhead_median_pct`` for the noise picture.  Construction
    (particle system, first neighbor build) happens outside the timed
    region on both sides — its allocation-layout jitter is several
    percent per run, pure noise against a few-percent signal.
    Correctness rides along: the journaled trajectory must be
    bit-identical to the bare run (journaling must observe, never
    perturb), and the store must recover the final committed state
    bit-exactly.
    """
    from repro.durable import DurableStore, ResumableCampaign, state_mismatches
    from repro.md.ddcmd import DdcMD
    from repro.md.particles import ParticleSystem, PeriodicBox
    from repro.md.potentials import LennardJones, PairProcessor

    n = 1500 if smoke else 4000
    n_steps = 24
    journal_every = 8
    cadence = 24
    # the verdict is a median of per-pair ratios; below ~12 pairs a
    # single multi-percent OS-noise excursion can drag the median over
    # the gate, so full mode pays for the same sample count as smoke
    reps = 12

    def make_md() -> DdcMD:
        rho = 0.5
        side = (n / rho) ** (1.0 / 3.0)
        box = PeriodicBox([side, side, side])
        system = ParticleSystem.random_gas(n, box, seed=11)
        return DdcMD(system, PairProcessor(LennardJones(cutoff=2.5)))

    def run_bare() -> Tuple[DdcMD, float]:
        md = make_md()

        def drive():
            while md.progress < n_steps:
                md.step()

        _, t = _timed(drive)
        return md, t

    def run_journaled(sync: bool, root: str) -> Tuple[DdcMD, float]:
        md = make_md()
        with DurableStore(root, sync=sync) as store:
            campaign = ResumableCampaign(
                md, store, cadence=cadence, journal_every=journal_every,
            )
            _, t = _timed(lambda: campaign.run(n_steps))
        return md, t

    def sample_journaled(sync: bool) -> Tuple[DdcMD, float]:
        with tempfile.TemporaryDirectory(prefix="bench-dur-") as root:
            return run_journaled(sync, root)

    ratios: List[float] = []
    t_bare: List[float] = []
    t_journaled: List[float] = []
    md_bare = md_journaled = None
    # earlier cases leave pool workers and a fragmented heap behind;
    # both inflate the journaled side (its large pickle blobs churn
    # the allocator) without touching the bare side symmetrically
    from repro.par import shutdown_pools

    shutdown_pools()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(reps):
            if i % 2 == 0:
                md_bare, t_b = run_bare()
                md_journaled, t_j = sample_journaled(False)
            else:
                md_journaled, t_j = sample_journaled(False)
                md_bare, t_b = run_bare()
            ratios.append(t_j / t_b)
            t_bare.append(t_b)
            t_journaled.append(t_j)
        _, t_fsync = sample_journaled(True)
    finally:
        if gc_was_enabled:
            gc.enable()
    # the gated statistic is best-of-N on each side: scheduling and
    # allocator noise is strictly additive, so the fastest sample is
    # the closest estimate of the true cost on both sides; the median
    # per-pair ratio rides along for the noise picture
    overhead = min(t_journaled) / min(t_bare) - 1.0
    overhead_median = float(np.median(ratios)) - 1.0
    fsync_overhead = t_fsync / min(t_bare) - 1.0

    # journaling must observe, never perturb: bit-identical trajectory
    same_traj = np.array_equal(
        md_bare.system.x, md_journaled.system.x
    ) and np.array_equal(
        md_bare.system.v, md_journaled.system.v
    )
    # and the store must hand back exactly the final committed state
    with tempfile.TemporaryDirectory(prefix="bench-dur-") as root:
        md_final, _ = run_journaled(False, root)
        with DurableStore(root) as store:
            rec = store.recover()
        recovered_ok = (
            rec is not None
            and rec[0] == n_steps
            and not state_mismatches(rec[1]["state"],
                                     md_final.checkpoint_state())
        )

    if not same_traj:
        check = "journaled trajectory diverged from the bare run"
    elif not recovered_ok:
        check = "recovered state is not bit-exact"
    elif overhead > 0.05:
        check = f"journaling overhead {overhead * 100:.2f}% > 5%"
    else:
        check = "ok"
    case = _case("durability_overhead", min(t_journaled), min(t_bare),
                 None, check)
    case["overhead_pct"] = round(overhead * 100, 2)
    case["overhead_median_pct"] = round(overhead_median * 100, 2)
    case["fsync_overhead_pct"] = round(fsync_overhead * 100, 2)
    return case


def _sleep_task(args):
    """One sub-millisecond fan-out unit: a modeled service wait plus a
    deterministic value so result lists are comparable bit-for-bit."""
    idx, delay = args
    time.sleep(delay)
    return idx * 3 + 1


def case_fine_grain_fanout(smoke: bool) -> Dict:
    """Work stealing vs static chunking on a skewed fine-grained fan-out.

    ~1000 sub-millisecond tasks with a heavy cluster at the *front* of
    the item list — the adversarial shape for static chunking, which
    hands the whole cluster to whichever worker draws the first chunk
    and leaves the rest idle.  The steal backend splits the cluster on
    demand.  Gates: steal-thread:4 speedup over serial above the bar
    AND static thread:4 below it on the same items (if static chunking
    also clears the bar, the case is not measuring stealing), plus
    bit-exact result lists across all three backends.
    """
    from repro.par import map_fanout

    n = 300 if smoke else 1000
    n_heavy = 12 if smoke else 30
    heavy = 0.010 if smoke else 0.014
    light = 0.0003
    steal_min = 2.0 if smoke else 2.5
    static_max = 2.2 if smoke else 2.0
    items = [(i, heavy if i < n_heavy else light) for i in range(n)]

    serial, t_serial = _timed_best(
        lambda: map_fanout(_sleep_task, items, backend="serial"), 2
    )
    map_fanout(_sleep_task, items[:8], backend="thread:4")  # warm pool
    static, t_static = _timed_best(
        lambda: map_fanout(_sleep_task, items, backend="thread:4"), 2
    )
    steal, t_steal = _timed_best(
        lambda: map_fanout(_sleep_task, items, backend="steal-thread:4"), 2
    )
    static_speedup = t_serial / t_static
    steal_speedup = t_serial / t_steal
    if static != serial or steal != serial:
        check = "backend results differ"
    elif steal_speedup < steal_min:
        check = (f"steal speedup {steal_speedup:.2f}x < {steal_min}x "
                 "at 4 workers")
    elif static_speedup >= static_max:
        check = (f"static chunking already {static_speedup:.2f}x >= "
                 f"{static_max}x; skew too weak to measure stealing")
    else:
        check = "ok"
    case = _case("fine_grain_fanout", t_steal, t_serial, None, check)
    case["static_wall_s"] = round(t_static, 6)
    case["static_speedup"] = round(static_speedup, 2)
    case["steal_speedup"] = round(steal_speedup, 2)
    return case


def case_scaling_curve(smoke: bool) -> Dict:
    """steal-thread strong-scaling curve at 1/2/4 workers.

    Uniform latency-bound tasks, so ideal scaling is achievable on any
    host and the curve measures scheduler overhead (deque contention,
    steal traffic, assembly) rather than core count.  Gate: parallel
    efficiency at 4 workers ``t1 / (4 * t4)`` >= 0.75, with all worker
    counts returning bit-identical results.
    """
    from repro.par import map_fanout

    n = 32 if smoke else 64
    delay = 0.002 if smoke else 0.003
    items = [(i, delay) for i in range(n)]

    walls: Dict[int, float] = {}
    results = {}
    for w in (1, 2, 4):
        results[w], walls[w] = _timed_best(
            lambda: map_fanout(_sleep_task, items,
                               backend=f"steal-thread:{w}"), 2
        )
    eff4 = walls[1] / (4 * walls[4])
    if not (results[1] == results[2] == results[4]):
        check = "results differ across worker counts"
    elif eff4 < 0.75:
        check = f"efficiency at 4 workers {eff4:.2f} < 0.75"
    else:
        check = "ok"
    case = _case("scaling_curve", walls[4], walls[1], None, check)
    case["wall_by_workers"] = {str(w): round(t, 6)
                               for w, t in walls.items()}
    case["efficiency_4"] = round(eff4, 3)
    return case


def case_traffic_openloop(smoke: bool) -> Dict:
    """Open-loop traffic through the guarded scheduler, with replay.

    A Poisson stream at throttled offered load (~0.8) from a simulated
    user population, with deadlines, admission shedding, a breaker,
    and FaultInjector chaos all active — the §4.7 regime the traffic
    layer exists to exercise.  The experiment is recorded to a trace
    and replayed; gates:

    - **replay**: the replay fingerprint (shed decisions + reasons,
      ``guard.*`` counter deltas, completion order and times) must be
      bit-identical to the recorded run;
    - **latency**: p50/p99 turnaround on the *simulated* clock — a
      deterministic function of the seeds, so the bands are exact
      across hosts (p50 under 4x mean service, p99 under 20x);
    - **shed rate**: nonzero (the guard paths actually ran) and under
      25% (throttled load must not collapse into mass shedding).

    ``wall_s`` is the recorded run (generation + simulation),
    ``ref_wall_s`` the replay pass; only these wall clocks are
    host-dependent.
    """
    from repro.traffic import (
        AdmissionSpec, ChaosSpec, OpenLoopDriver, PoissonArrivals,
        UserPopulation, record_experiment, replay_experiment,
    )

    n_jobs = 400 if smoke else 2000
    # smoke's short stream never builds a backlog on 8 GPUs; a
    # 4-GPU machine at the same offered load saturates (and sheds)
    # within 400 jobs
    n_gpus = 4 if smoke else 8
    mean_service = 10.0
    rate = 0.8 * n_gpus / mean_service  # offered load ~0.8
    process = PoissonArrivals(rate=rate)
    population = UserPopulation(
        n_users=50_000, seed=0, mean_service=mean_service,
        best_effort_fraction=0.3,
    )
    driver = OpenLoopDriver(
        n_gpus=n_gpus,
        policy="fcfs",
        admission=AdmissionSpec(
            max_queue=3 * n_gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=40.0,
        ),
        chaos=ChaosSpec(mtbf=300.0, seed=1),
    )

    with tempfile.TemporaryDirectory(prefix="bench-traffic-") as root:
        path = Path(root) / "openloop.trace"

        def record():
            return record_experiment(path, process, population, driver,
                                     n_jobs=n_jobs)

        (_, recorded), t_record = _timed(record)
        (replayed, _), t_replay = _timed(lambda: replay_experiment(path))

    p50 = recorded.p50_turnaround
    p99 = recorded.p99_turnaround
    shed_rate = recorded.shed_rate
    if replayed.fingerprint() != recorded.fingerprint():
        check = "replay fingerprint diverged from the recorded run"
    elif recorded.result.failures == 0:
        check = "chaos never fired; case not exercising fault paths"
    elif not (0.0 < shed_rate < 0.25):
        check = f"shed rate {shed_rate:.3f} outside (0, 0.25)"
    elif p50 > 4.0 * mean_service:
        check = f"p50 turnaround {p50:.1f} > {4.0 * mean_service}"
    elif p99 > 20.0 * mean_service:
        check = f"p99 turnaround {p99:.1f} > {20.0 * mean_service}"
    else:
        check = "ok"
    case = _case("traffic_openloop", t_record, t_replay, None, check)
    case["p50_turnaround"] = round(p50, 6)
    case["p99_turnaround"] = round(p99, 6)
    case["p50_wait"] = round(recorded.p50_wait, 6)
    case["p99_wait"] = round(recorded.p99_wait, 6)
    case["shed_rate"] = round(shed_rate, 6)
    case["shed_reasons"] = sorted(
        {reason for _, reason in recorded.shed_log}
    )
    case["failures"] = recorded.result.failures
    return case


def case_multitenant_pileup(smoke: bool) -> Dict:
    """Noisy-neighbor containment by the tenant layer, end to end.

    The standard pile-up: three compliant tenants each offering 0.8x
    their fair share, one noisy tenant offering 4x, all on one
    machine.  Every gated number runs on the *simulated* clock, so the
    bands are exact across hosts:

    - **fairness**: Jain index over per-tenant delivered service
      >= 0.9 (equal weights — without the arbiter the noisy stream
      starves everyone and the index collapses);
    - **containment**: each compliant tenant's p99 turnaround within
      3x of its isolated baseline (same jobs, empty machine), and its
      shed rate within 5 points of isolated;
    - **replay**: the dumped incident trace must replay with a
      fingerprint bit-identical to the recorded run
      (:func:`repro.tenant.verify_incident` replays twice and checks
      both);
    - **overhead**: wall-clock tax of the registry with the arbiter
      disabled, against a plain dict of the very same per-tenant
      controllers on the identical stream — the arbiter machinery
      must be nearly free when switched off (gated < 3%).  The
      irreducible price of per-tenant isolation itself (that guard
      dict vs one shared controller) is reported alongside as
      ``isolation_overhead_pct``, ungated.

    ``wall_s`` is the arbitrated pile-up run + incident dump;
    ``ref_wall_s`` is the replay-verify pass (two replays).
    """
    import dataclasses

    from repro.tenant import (
        jain_index,
        multitenant_pileup,
        record_incident,
        verify_incident,
    )
    from repro.traffic.driver import AdmissionSpec, OpenLoopDriver

    n_gpus = 8
    n_jobs = 120 if smoke else 400
    bundle = multitenant_pileup(
        n_gpus=n_gpus, n_compliant=3, noisy_factor=4.0,
        n_jobs_per_tenant=n_jobs, seed=0,
    )
    compliant = [n for n in sorted(bundle.rates) if n != bundle.noisy]

    def tenancy_driver(tenancy):
        return OpenLoopDriver(n_gpus=n_gpus, policy="fcfs",
                              tenancy=tenancy)

    with tempfile.TemporaryDirectory(prefix="bench-tenant-") as root:
        path = Path(root) / "incident-pileup.trace"
        (_, report), t_record = _timed(
            lambda: record_incident(
                path, bundle.jobs, tenancy_driver(bundle.tenancy),
                reason="bench",
            )
        )
        replay_problem = None
        t_replay = 0.0
        try:
            _, t_replay = _timed(lambda: verify_incident(path))
        except AssertionError as exc:
            replay_problem = str(exc)
    result = report.result
    fairness = jain_index(
        result.tenant_completed_service.get(n, 0.0)
        for n in sorted(bundle.rates)
    )

    # isolated baselines: each compliant tenant's own stream on an
    # empty machine, under the same contract
    band_problems: List[str] = []
    p99_shared: Dict[str, float] = {}
    p99_iso: Dict[str, float] = {}
    for name in compliant:
        iso = tenancy_driver(bundle.tenancy).run(
            list(bundle.jobs_by_tenant[name])
        ).result
        p99_iso[name] = iso.tenant_turnaround_percentile(name, 99.0)
        p99_shared[name] = result.tenant_turnaround_percentile(
            name, 99.0
        )
        if p99_shared[name] > 3.0 * p99_iso[name]:
            band_problems.append(
                f"{name} p99 {p99_shared[name]:.2f} > 3x isolated "
                f"{p99_iso[name]:.2f}"
            )
        shed_delta = (result.tenant_shed_rate(name)
                      - iso.tenant_shed_rate(name))
        if shed_delta > 0.05:
            band_problems.append(
                f"{name} shed rate +{shed_delta:.3f} over isolated"
            )

    # tenant-layer overhead with arbitration off.  Two comparisons,
    # both on the identical tagged stream:
    #
    # - the **gate**: disabled registry vs a plain dict of the very
    #   same per-tenant controllers (``TenantSpec.make_controller``)
    #   — the arbiter machinery must cost < 3% over the guard stack a
    #   user would run without it;
    # - the **isolation tax** (informational): that guard dict vs the
    #   single shared controller — the irreducible price of
    #   per-tenant isolation, a feature chosen on its own merits.
    #
    # Methodology: the true delta is tens of microseconds on a
    # millisecond run, well below this host's steal noise, so the
    # estimator is one-sided-robust: back-to-back pairs in
    # alternating order, median of per-pair ratios within a block
    # (slow-host episodes hit both halves of a pair and cancel), best
    # of three blocks with freshly constructed drivers (steal spikes
    # and unlucky heap layout only ever inflate a block).  An
    # identical-driver A/A control of this estimator reads 0.99-1.01
    # here; min/min and single-block medians both swing past 3% on
    # their own.
    ab_bundle = multitenant_pileup(
        n_gpus=n_gpus, n_compliant=3, noisy_factor=4.0,
        n_jobs_per_tenant=120, seed=1,
    )
    disabled = dataclasses.replace(ab_bundle.tenancy,
                                   arbiter_enabled=False)
    shared_jobs = list(ab_bundle.jobs)

    class _GuardStack:
        """Reference baseline: the registry's own per-tenant
        controllers behind one dict probe, no arbiter machinery."""

        breaker = None
        shed_log: Tuple = ()

        def __init__(self):
            ctls = {t.name: t.make_controller()
                    for t in disabled.tenants}
            self._admits = {n: c.admit for n, c in ctls.items()}
            self._successes = {
                n: c.breaker.record_success
                for n, c in ctls.items() if c.breaker is not None
            }

        def admit(self, job, now, queue_len, n_running, n_gpus):
            admit = self._admits.get(job.tenant)
            return admit is None or admit(
                job, now, queue_len, n_running, n_gpus
            )

        def record_success(self, now, job=None):
            if job is not None:
                record = self._successes.get(job.tenant)
                if record is not None:
                    record(now)

        def record_failure(self, now, job=None):
            pass

    class _InstanceSpec:
        def __init__(self, factory):
            self.make = factory

    def stack_driver():
        return OpenLoopDriver(n_gpus=n_gpus, policy="fcfs",
                              admission=_InstanceSpec(_GuardStack))

    def registry_driver():
        return OpenLoopDriver(n_gpus=n_gpus, policy="fcfs",
                              tenancy=disabled)

    def single_driver():
        return OpenLoopDriver(
            n_gpus=n_gpus, policy="fcfs",
            admission=AdmissionSpec(
                protect_priority=1, breaker_failure_threshold=8,
            ),
        )

    def paired_ratio(make_base, make_test, pairs=12):
        """Median of back-to-back test/base wall ratios, fresh
        drivers, one warmup run each before timing."""
        base, test = make_base(), make_test()
        base.run(shared_jobs)
        test.run(shared_jobs)
        ratios = []
        for i in range(pairs):
            if i % 2 == 0:
                _, tb = _timed(lambda: base.run(shared_jobs))
                _, tt = _timed(lambda: test.run(shared_jobs))
            else:
                _, tt = _timed(lambda: test.run(shared_jobs))
                _, tb = _timed(lambda: base.run(shared_jobs))
            ratios.append(tt / tb)
        ratios.sort()
        return ratios[len(ratios) // 2]

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        overhead = min(
            paired_ratio(stack_driver, registry_driver)
            for _ in range(3)
        ) - 1.0
        isolation = paired_ratio(single_driver, stack_driver) - 1.0
    finally:
        if gc_was_enabled:
            gc.enable()

    if replay_problem is not None:
        check = f"incident replay diverged: {replay_problem[:120]}"
    elif fairness < 0.9:
        check = f"jain fairness {fairness:.3f} < 0.9"
    elif band_problems:
        check = "; ".join(band_problems)
    elif overhead > 0.03:
        check = f"arbiter-disabled overhead {overhead * 100:.2f}% > 3%"
    else:
        check = "ok"
    case = _case("multitenant_pileup", t_record, t_replay, None, check)
    case["jain_fairness"] = round(fairness, 6)
    case["noisy_shed_rate"] = round(
        result.tenant_shed_rate(bundle.noisy), 6
    )
    case["compliant_p99"] = {
        n: round(p99_shared[n], 6) for n in compliant
    }
    case["isolated_p99"] = {
        n: round(p99_iso[n], 6) for n in compliant
    }
    case["overhead_pct"] = round(overhead * 100, 2)
    case["isolation_overhead_pct"] = round(isolation * 100, 2)
    case["breaker_trips"] = report.trips
    return case


def case_ab_replay(smoke: bool) -> Dict:
    """Live capture + A/B differential replay, end to end.

    Three gates:

    - **seal**: a live capture must finish complete with the run's
      fingerprint sealed in the trailer;
    - **contract**: :func:`repro.traffic.ab_replay` on the captured
      trace must report ``fingerprint_matched`` (replay-vs-record,
      bit for bit) and no same-config divergence under a two-variant
      matrix (sjf policy, half the GPUs);
    - **overhead**: capture mode's *streaming* tax.  The uncaptured
      alternative that produces the same replayable artifact is the
      ``record_experiment`` shape — write every job frame up front,
      then run.  The gate compares that (TraceWriter batch write +
      bare run + seal) against the live tap (identical frames,
      written from inside the hot loop as jobs are offered,
      ``decisions=False``) and demands < 3%.  Per-decision frames are
      extra *data* the batch path cannot produce at all; their cost
      is reported ungated as ``decision_frames_overhead_pct``.
      (Against a run with *no* trace at all the comparison is
      meaningless here: serializing a job costs a few µs while the
      simulator spends a few µs per job *total* — the paper's system
      amortizes capture against jobs that run for minutes.)

    The overhead estimator is the ``multitenant_pileup`` one: median
    of back-to-back pair ratios in alternating order, best of three
    blocks, gc off (the true delta is small enough that min/min or a
    single block swings past the gate on steal noise alone).

    ``wall_s`` is the captured run (tap on, trailer sealed);
    ``ref_wall_s`` is the A/B replay pass (baseline twice + two
    variants).
    """
    from repro.traffic import (
        ABVariant,
        AdmissionSpec,
        CaptureTap,
        ChaosSpec,
        OpenLoopDriver,
        PoissonArrivals,
        UserPopulation,
        ab_replay,
        capture_experiment,
        generate_jobs,
    )

    n_gpus = 8
    n_jobs = 150 if smoke else 500
    process = PoissonArrivals(rate=0.9)

    def population():
        return UserPopulation(n_users=20_000, seed=0,
                              mean_service=10.0,
                              best_effort_fraction=0.3)

    def make_driver():
        return OpenLoopDriver(
            n_gpus=n_gpus, policy="fcfs",
            admission=AdmissionSpec(
                max_queue=3 * n_gpus, protect_priority=2,
                breaker_failure_threshold=3,
                breaker_recovery_time=40.0,
            ),
            chaos=ChaosSpec(mtbf=250.0, seed=1),
        )

    with tempfile.TemporaryDirectory(prefix="bench-ab-") as root:
        path = Path(root) / "live.trace"
        (trace, report), t_capture = _timed(
            lambda: capture_experiment(
                path, process, population(), make_driver(),
                n_jobs=n_jobs,
            )
        )
        sealed = (trace.complete
                  and trace.fingerprint == report.fingerprint())
        ab, t_ab = _timed(lambda: ab_replay(path, [
            ABVariant("sjf", {"policy": "sjf"}),
            ABVariant("half_gpus", {"n_gpus": n_gpus // 2}),
        ]))

        # streaming tax: batch write-then-run vs live tap, identical
        # frames and fresh drivers, paired alternating order (see
        # docstring)
        from repro.traffic import TraceWriter

        # the overhead run is kept at full length even in smoke mode:
        # shorter runs put pair-ratio noise on the same order as the
        # 3% gate itself
        jobs = generate_jobs(process, population(), 300, arrival_seed=2)
        scratch = Path(root) / "overhead.trace"

        def run_batch():
            writer = TraceWriter(scratch, n_jobs=len(jobs))
            try:
                for job in jobs:
                    writer.append_job(job)
                report = make_driver().run(jobs)
                writer.seal(report.fingerprint())
            finally:
                writer.close()
            return report

        def run_tapped(decisions=False):
            tap = CaptureTap(scratch, n_jobs=len(jobs),
                             decisions=decisions)
            try:
                report = make_driver().run(jobs, tap=tap)
                tap.seal(report.fingerprint())
            finally:
                tap.close()
            return report

        def paired_ratio(test, base, pairs=16):
            base()
            test()
            ratios = []
            for i in range(pairs):
                if i % 2 == 0:
                    _, tb = _timed(base)
                    _, tt = _timed(test)
                else:
                    _, tt = _timed(test)
                    _, tb = _timed(base)
                ratios.append(tt / tb)
            ratios.sort()
            return ratios[len(ratios) // 2]

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            # five blocks: a single block's A/A control reads up to
            # +-8% on this host; the min across blocks is the robust
            # one-sided estimate (noise only ever inflates a block)
            overhead = min(
                paired_ratio(run_tapped, run_batch) for _ in range(5)
            ) - 1.0
            decision_tax = min(
                paired_ratio(lambda: run_tapped(True), run_batch)
                for _ in range(3)
            ) - 1.0
        finally:
            if gc_was_enabled:
                gc.enable()

    if not sealed:
        check = "capture did not seal the run fingerprint"
    elif ab.fingerprint_matched is not True:
        check = "replay fingerprint does not match the sealed trailer"
    elif ab.diverged:
        check = "same-config replay diverged"
    elif overhead > 0.03:
        check = f"capture overhead {overhead * 100:.2f}% > 3%"
    else:
        check = "ok"
    case = _case("ab_replay", t_capture, t_ab, None, check)
    case["n_jobs"] = len(trace)
    case["capture_overhead_pct"] = round(overhead * 100, 2)
    case["decision_frames_overhead_pct"] = round(decision_tax * 100, 2)
    case["fingerprint_matched"] = ab.fingerprint_matched
    case["variant_deltas"] = {
        v["name"]: {
            "p99_wait": round(v["deltas"]["p99_wait"], 4),
            "shed_rate": round(v["deltas"]["shed_rate"], 4),
            "completed": v["deltas"]["completed"],
        }
        for v in ab.variants
    }
    return case


CASES: List[Tuple[str, Callable[[bool], Dict]]] = [
    ("gauss_seidel", case_gauss_seidel),
    ("md_neighbor", case_md_neighbor),
    ("md_forces", case_md_forces),
    ("sched_events", case_sched_events),
    ("trace_pricing", case_trace_pricing),
    ("jit_warm_start", case_jit_warm_start),
    ("guard_overhead", case_guard_overhead),
    ("par_fanout", case_par_fanout),
    ("fine_grain_fanout", case_fine_grain_fanout),
    ("scaling_curve", case_scaling_curve),
    ("durability_overhead", case_durability_overhead),
    ("traffic_openloop", case_traffic_openloop),
    ("multitenant_pileup", case_multitenant_pileup),
    ("ab_replay", case_ab_replay),
]


# ---------------------------------------------------------------------------
# baseline comparison
# ---------------------------------------------------------------------------


def _bench_files(root: Path) -> List[Tuple[int, Path]]:
    out = []
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            out.append((int(m.group(1)), p))
    return sorted(out)


def _next_output(root: Path) -> Path:
    files = _bench_files(root)
    nxt = max((i for i, _ in files), default=1) + 1
    return root / f"BENCH_{nxt}.json"


def _select_baseline(root: Path, out_path: Path, mode: str) -> Optional[Path]:
    """Newest prior BENCH_<n>.json (by numeric index) with matching *mode*.

    Numeric ordering matters (BENCH_10 is newer than BENCH_2, which
    lexicographic name sorting gets wrong), and so does the mode: a
    smoke run compared against a full-size baseline (or vice versa)
    would either silently skip the gate or flag nonsense ratios.
    Unreadable candidates are skipped rather than fatal.
    """
    for _, p in sorted(_bench_files(root), reverse=True):
        if p == out_path:
            continue
        try:
            prior = json.loads(p.read_text())
        except (OSError, ValueError):
            continue
        if prior.get("mode") == mode:
            return p
    return None


def compare(report: Dict, baseline: Dict, tolerance: float) -> List[str]:
    """Regressions of *report* against *baseline* (empty list = clean).

    Gates on wall-time ratios per case, and — when both reports carry a
    counter snapshot and ran the same case set — on exact equality of
    the semantic counters (events processed, rebuilds, cache hits, ...):
    a fast path that got quicker by doing different *work* is a bug the
    clock cannot see.
    """
    problems: List[str] = []
    if baseline.get("mode") != report.get("mode"):
        # different sizes: nothing comparable, not a failure
        return problems
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    for c in report["cases"]:
        old = base_cases.get(c["name"])
        if old is None or not old.get("wall_s"):
            continue
        ratio = c["wall_s"] / old["wall_s"]
        if ratio > tolerance:
            problems.append(
                f"{c['name']}: wall {c['wall_s']:.4f}s vs baseline "
                f"{old['wall_s']:.4f}s ({ratio:.2f}x > {tolerance:.2f}x)"
            )
    base_counters = baseline.get("counters")
    if base_counters is not None and report.get("counters") is not None:
        base_names = {c["name"] for c in baseline.get("cases", [])}
        if base_names == {c["name"] for c in report["cases"]}:
            for key in sorted(set(base_counters) | set(report["counters"])):
                old_v = base_counters.get(key)
                new_v = report["counters"].get(key)
                if old_v != new_v:
                    problems.append(
                        f"counter {key}: {new_v} vs baseline {old_v}"
                    )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small sizes for CI (< ~1 minute)")
    ap.add_argument("--output", type=Path, default=None,
                    help="output JSON path (default: next BENCH_<n>.json)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="explicit baseline JSON (default: newest BENCH_*)")
    ap.add_argument("--tolerance", type=float, default=1.5,
                    help="allowed wall-time ratio vs baseline (default 1.5)")
    ap.add_argument("--only", action="append", default=None,
                    help="run only the named case (repeatable)")
    ap.add_argument("--par", default="serial",
                    help="repro.par backend spec for the case runner "
                         "(default serial: cases time themselves, so "
                         "parallel case execution adds contention noise)")
    args = ap.parse_args(argv)

    from repro.obs import reset_metrics, snapshot

    mode = "smoke" if args.smoke else "full"
    out_path = args.output or _next_output(REPO)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = _select_baseline(REPO, out_path, mode)

    from repro.par import Task, run_ensemble

    reset_metrics()
    cases = []
    failures = []
    selected = [(name, fn) for name, fn in CASES
                if not args.only or name in args.only]
    recs = run_ensemble(
        [Task(fn, (args.smoke,), name=name) for name, fn in selected],
        backend=args.par,
    )
    for (name, _), rec in zip(selected, recs):
        cases.append(rec)
        speed = f"{rec['speedup']}x" if rec["speedup"] else "-"
        print(f"{name:16s} wall {rec['wall_s']:.4f}s  "
              f"ref {rec['ref_wall_s']}s  speedup {speed}  [{rec['check']}]")
        if rec["check"] != "ok":
            failures.append(f"{name}: {rec['check']}")

    metrics = snapshot()
    report = {
        "schema": SCHEMA,
        "mode": mode,
        "cases": cases,
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    if failures:
        print("CORRECTNESS FAILURES:")
        for f in failures:
            print(f"  {f}")
        return 2

    if baseline_path is not None and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        problems = compare(report, baseline, args.tolerance)
        if problems:
            print(f"REGRESSIONS vs {baseline_path.name}:")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"no regressions vs {baseline_path.name}")
    else:
        print("no baseline found; skipping comparison")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
