"""Ablation: loop fusion helps GPUs and hurts CPUs (§4.8's tension).

"The initial port was slow due to kernel launch overheads because
ParaDyn contains many small loops.  To improve performance, we merged
many loops ... Unfortunately, these optimizations, in particular, the
merged loops, significantly decreased CPU performance.  The existing
small loops operate on a subset of the data that remains cache resident
across loops."

Sweep the fusion group size over the ParaDyn kernel and price each
variant on both sides:

- **GPU**: launch overhead x loops + DRAM traffic under per-loop
  register scoping (fusion removes launches and intermediate traffic).
- **CPU**: segmented execution keeps the active subset LLC-resident
  across *separate* loops (cross-loop reuse at cache bandwidth); a
  fully fused mega-loop exceeds the register budget, spilling
  intermediates back to memory traffic.

The crossing of the two curves is the reason the team went to the
compiler (SLNSP) instead of source-level fusion.
"""

import pytest

from repro.core.machine import get_machine
from repro.paradyn.counters import count_memory_ops
from repro.paradyn.ir import Program
from repro.paradyn.kernels import paradyn_kernel
from repro.paradyn.passes import merge_loops, slnsp
from repro.util.tables import Table

N = 5_000_000
SIERRA = get_machine("sierra")
#: effective LLC bandwidth multiplier for segment-resident CPU loops
CPU_CACHE_MULT = 4.0
#: statements a fused loop can hold before intermediates spill
REGISTER_BUDGET_STATEMENTS = 4


def gpu_time(prog: Program) -> float:
    ops = count_memory_ops(prog)
    nbytes = 8.0 * ops.total * prog.n
    gpu = SIERRA.gpu
    return nbytes / (gpu.mem_bw * 0.7) + prog.n_loops * gpu.launch_overhead


def cpu_time(prog: Program) -> float:
    """Segmented CPU execution with cache-resident cross-loop reuse.

    Separate loops: traffic counted with cross-loop reuse (the subset
    stays in LLC) at cache bandwidth.  Loops fused beyond the register
    budget lose the reuse for their overflow statements and stream at
    DRAM bandwidth.
    """
    reuse_ops = count_memory_ops(slnsp(prog))
    plain_ops = count_memory_ops(prog)
    dram_bw = SIERRA.cpu_mem_bw * 0.8
    cache_bw = dram_bw * CPU_CACHE_MULT
    t = 0.0
    for loop in prog.loops:
        frac = len(loop.body) / prog.n_statements
        if len(loop.body) <= REGISTER_BUDGET_STATEMENTS:
            # within-register-budget loop: reuse holds, cache-resident
            t += frac * 8.0 * reuse_ops.total * prog.n / cache_bw
        else:
            # spilled mega-loop: every statement's traffic hits DRAM
            t += frac * 8.0 * plain_ops.total * prog.n / dram_bw
    return t


def sweep():
    base = paradyn_kernel(n=N)
    rows = []
    for group in (1, 2, 4, 11):
        prog = merge_loops(base, group_size=group) if group > 1 else base
        rows.append({
            "group": group,
            "loops": prog.n_loops,
            "gpu": gpu_time(prog),
            "cpu": cpu_time(prog),
        })
    return rows


def make_table(rows) -> Table:
    t = Table(
        ["fusion group", "loops", "GPU time (ms)", "CPU time (ms)"],
        title="Loop-fusion ablation: GPUs want fusion, CPUs do not (§4.8)",
    )
    for r in rows:
        t.add_row(r["group"], r["loops"], round(1e3 * r["gpu"], 3),
                  round(1e3 * r["cpu"], 3))
    return t


def test_fusion_sweep_kernel(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_group = {r["group"]: r for r in rows}
    # GPU: full fusion is fastest; unfused slowest
    assert by_group[11]["gpu"] < by_group[1]["gpu"]
    # CPU: unfused (cache-resident) beats full fusion (spilled)
    assert by_group[1]["cpu"] < by_group[11]["cpu"]


def test_merged_results_identical(benchmark):
    import numpy as np

    small = paradyn_kernel(n=64)
    rng = np.random.default_rng(0)
    inputs = {k: rng.random(64)
              for k, v in small.array_kinds.items() if v == "input"}
    ref = small.run(inputs)

    def check():
        for group in (2, 4, 11):
            out = merge_loops(small, group_size=group).run(inputs)
            for k in ref:
                np.testing.assert_array_equal(out[k], ref[k])
        return True

    assert benchmark(check)


if __name__ == "__main__":
    print(make_table(sweep()))
