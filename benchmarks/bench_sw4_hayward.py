"""§4.9 + abstract: SW4 backends, kernel fusion, and Sierra-vs-Cori.

Four results in one harness, all driven by the real sw4lite proxy:

1. backend kernel-time comparison (CUDA < RAJA < naive; RAJA ~30% off),
2. fusion + offload speedup (~2X per optimization),
3. the Hayward-class node-count equivalence: 256 Sierra nodes finish
   the run in roughly the time Cori-II needs (the paper's 10-hour
   parity), implying the abstract's ~14X per-node throughput edge,
4. a real Hayward-proxy run producing the shake map behind Fig 7.
"""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.stencil.grid import CartesianGrid3D
from repro.stencil.hayward import HaywardScenario
from repro.stencil.sw4lite import Sw4Lite, Sw4Options
from repro.util.tables import Table

SIERRA = get_machine("sierra")
CORI = get_machine("cori-ii")

#: the Hayward production run: 26e9 grid points on 256 Sierra nodes
HAYWARD_POINTS = 26e9
SIERRA_NODES = 256


def backend_times(n=48, steps=3):
    model = RooflineModel(SIERRA)
    out = {}
    for backend in ("cuda", "raja", "naive"):
        ctx = ExecutionContext()
        s = Sw4Lite(CartesianGrid3D(n, n, n), 1.0,
                    options=Sw4Options(backend=backend), ctx=ctx)
        s.run(steps)
        out[backend] = model.run_on_gpu(ctx.trace).kernel_time
    return out


def node_throughput():
    """Per-node wave-propagation throughput (points*steps/s, modeled).

    The captured small-run trace is scaled to the production per-node
    load (26e9 points / 256 nodes ~ 1e8 points per node) so GPU launch
    overhead is amortized as it is in the real run.
    """
    from repro.core.kernels import KernelTrace

    ctx = ExecutionContext()
    small_n = 48**3
    s = Sw4Lite(CartesianGrid3D(48, 48, 48), 1.0,
                options=Sw4Options(backend="cuda"), ctx=ctx)
    s.run(3)
    per_node_points = HAYWARD_POINTS / SIERRA_NODES
    factor = per_node_points / small_n
    trace = KernelTrace()
    for k in ctx.trace.kernels:
        trace.record_kernel(k.scaled(factor))
    work = 3 * per_node_points
    t_sierra = RooflineModel(SIERRA).run_on_gpu(trace, gpus=4).total
    t_cori = RooflineModel(CORI).run_on_cpu(trace).total
    return {
        "sierra_node": work / t_sierra,
        "cori_node": work / t_cori,
        "per_node_ratio": (work / t_sierra) / (work / t_cori),
    }


def make_tables():
    bt = backend_times()
    t1 = Table(["Backend", "kernel time (model, ms)", "vs CUDA"],
               title="sw4lite backend comparison (modeled V100 kernel time)")
    for b in ("cuda", "raja", "naive"):
        t1.add_row(b, round(bt[b] * 1e3, 3), f"{bt[b] / bt['cuda']:.2f}X")

    nt = node_throughput()
    t2 = Table(["Quantity", "value"], title="SW4 Hayward throughput model")
    t2.add_row("Sierra node / Cori node throughput",
               f"{nt['per_node_ratio']:.1f}X (paper abstract: 14X)")
    cori_nodes_equiv = SIERRA_NODES * nt["per_node_ratio"]
    t2.add_row("Cori nodes matching 256 Sierra nodes",
               f"{cori_nodes_equiv:.0f} (paper: same wall time as Cori-II run)")
    return t1, t2


def test_stencil_kernel(benchmark):
    """Time the real fused 4th-order wave RHS at 64^3."""
    from repro.stencil.kernels import apply_wave_rhs_fused

    g = CartesianGrid3D(64, 64, 64)
    rng = np.random.default_rng(0)
    u = rng.random(g.shape)
    c2 = np.ones((64, 64, 64))
    rhs = benchmark(apply_wave_rhs_fused, g, u, c2)
    assert np.isfinite(rhs).all()


def test_hayward_scenario(benchmark):
    """Time real Hayward-proxy steps (the Fig 7 computation)."""
    g = CartesianGrid3D(24, 24, 12)
    sc = HaywardScenario(g, n_subfaults=4)
    pgv = benchmark.pedantic(sc.run, args=(60,), rounds=2, iterations=1)
    assert pgv.max() > 0


def test_sw4_shape(benchmark):
    bt = benchmark.pedantic(backend_times, rounds=1, iterations=1)
    assert bt["cuda"] < bt["raja"] < bt["naive"]
    assert 1.1 < bt["raja"] / bt["cuda"] < 1.8   # RAJA ~30% off CUDA
    nt = node_throughput()
    assert 8 < nt["per_node_ratio"] < 22         # ~14X per node


if __name__ == "__main__":
    t1, t2 = make_tables()
    print(t1)
    print()
    print(t2)
