"""§4.11: GPUDirect vs cudaMemcpy crossover and the transpose study.

Regenerates the transfer-path crossover table (H2D crossover at a few
KB, D2H at a few hundred bytes, UM = 64 KiB blocks) and benchmarks the
real tiled transpose.
"""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.vbl.transfer import TransferPath, crossover_size, transfer_time
from repro.vbl.transpose import transpose_cuda_style, transpose_raja_style
from repro.util.tables import Table

SIZES = [64, 512, 4096, 65536, 1 << 20]


def make_tables():
    t1 = Table(
        ["bytes", "GPUDirect H2D (us)", "memcpy H2D (us)",
         "GPUDirect D2H (us)", "memcpy D2H (us)", "UM (us)"],
        title="Transfer-path times (model); paper: memcpy overtakes "
              "GPUDirect at ~KBs H2D, ~100s B D2H; UM = 64 KiB blocks",
    )
    for n in SIZES:
        t1.add_row(
            n,
            round(1e6 * transfer_time(TransferPath.GPUDIRECT, n, "h2d"), 2),
            round(1e6 * transfer_time(TransferPath.MEMCPY, n, "h2d"), 2),
            round(1e6 * transfer_time(TransferPath.GPUDIRECT, n, "d2h"), 2),
            round(1e6 * transfer_time(TransferPath.MEMCPY, n, "d2h"), 2),
            round(1e6 * transfer_time(TransferPath.UNIFIED, n, "h2d"), 2),
        )
    t2 = Table(["direction", "crossover (bytes)", "paper"],
               title="cudaMemcpy-overtakes-GPUDirect crossover")
    t2.add_row("h2d", round(crossover_size("h2d")), "a few kilobytes")
    t2.add_row("d2h", round(crossover_size("d2h")), "a few hundred bytes")

    model = RooflineModel(get_machine("sierra"))
    a = np.zeros((2048, 2048))
    ctx_r, ctx_c = ExecutionContext(), ExecutionContext()
    transpose_raja_style(a, ctx_r)
    transpose_cuda_style(a, ctx_c)
    tr = model.run_on_gpu(ctx_r.trace).kernel_time
    tc = model.run_on_gpu(ctx_c.trace).kernel_time
    t3 = Table(["variant", "kernel time (model, ms)", "vs CUDA"],
               title="Tiled transpose: RAJA vs hand CUDA (paper: CUDA "
                     "'significantly outperformed' RAJA)")
    t3.add_row("RAJA", round(tr * 1e3, 3), f"{tr / tc:.1f}X")
    t3.add_row("CUDA", round(tc * 1e3, 3), "1.0X")
    return t1, t2, t3


def test_transpose_kernel(benchmark):
    """Time the real tiled transpose at 1024^2 complex."""
    a = (np.arange(1024 * 1024, dtype=np.complex128)
         .reshape(1024, 1024))
    out = benchmark(transpose_cuda_style, a)
    assert out[3, 5] == a[5, 3]


def test_crossover_shape(benchmark):
    c_h2d, c_d2h = benchmark(
        lambda: (crossover_size("h2d"), crossover_size("d2h"))
    )
    assert 1e3 < c_h2d < 10e3
    assert 100 < c_d2h < 1e3


if __name__ == "__main__":
    for t in make_tables():
        print(t)
        print()
