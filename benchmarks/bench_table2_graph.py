"""Table 2: historically best graph scale and GTEPS per machine.

Regenerates every row of Table 2 from the storage-tier traversal model
(modeled GTEPS vs the paper's measured values) and benchmarks the real
BFS kernel the model is calibrated against.
"""

import numpy as np
import pytest

from repro.graphs.bfs import bfs_csr, build_csr
from repro.graphs.rmat import rmat_edges
from repro.graphs.scaling import TABLE2, table2_row
from repro.util.tables import Table


def make_table() -> Table:
    t = Table(
        ["Machine", "Year", "Nodes", "Scale", "GTEPS (paper)",
         "GTEPS (model)", "ratio"],
        title="Table 2: historically best graph scale and performance",
    )
    for name in TABLE2:
        r = table2_row(name)
        t.add_row(
            name, int(r["year"]), int(r["nodes"]), int(r["scale"]),
            r["paper_gteps"], round(r["modeled_gteps"], 3),
            f"{r['ratio']:.2f}X",
        )
    return t


@pytest.fixture(scope="module")
def graph():
    edges = rmat_edges(14, seed=0)
    return build_csr(edges, 1 << 14)


def test_bfs_kernel(benchmark, graph):
    """Time the real level-synchronous BFS at scale 14."""
    degrees = np.diff(graph.indptr)
    src = int(degrees.argmax())
    parents, levels, traversed = benchmark(bfs_csr, graph, src)
    assert traversed > 0
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["edges_traversed"] = traversed
        benchmark.extra_info["local_mteps"] = round(
            traversed / benchmark.stats["mean"] / 1e6, 1
        )


def test_table2_shape(benchmark):
    rows = benchmark(lambda: [table2_row(n) for n in TABLE2])
    # the headline: 2018 system beats every 2011 machine by >100X
    final = next(r for r in rows if r["nodes"] == 2048)
    kraken = rows[0]
    assert final["modeled_gteps"] / kraken["modeled_gteps"] > 100
    for r in rows:
        assert 0.6 < r["ratio"] < 1.4


if __name__ == "__main__":
    print(make_table())
