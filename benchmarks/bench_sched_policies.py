"""§4.7: job-scheduler policy study for the Opt workflow.

Regenerates both of the paper's conclusions — throttle distribution
arrivals below capacity; use SJF-with-quota for batches — and
benchmarks the real event-driven simulator.
"""

import pytest

from repro.sched.policies import Fcfs, Sjf, SjfWithQuota
from repro.sched.simulator import ClusterSimulator
from repro.sched.workloads import batch_workload, offered_load, poisson_workload
from repro.util.tables import Table

N_GPUS = 16


def batch_study():
    jobs = batch_workload(n_jobs=300, long_fraction=0.1, seed=0)
    sim = ClusterSimulator(N_GPUS)
    return {
        "FCFS": sim.run(jobs, Fcfs()),
        "SJF": sim.run(jobs, Sjf()),
        "SJF+quota": sim.run(jobs, SjfWithQuota(N_GPUS, 0.25)),
    }


def throttle_study():
    sim = ClusterSimulator(N_GPUS)
    out = {}
    for label, rate in (("unthrottled", 2.7), ("throttled", 0.85)):
        jobs = poisson_workload(n_jobs=400, arrival_rate=rate,
                                mean_service=10.0, seed=1)
        out[label] = (offered_load(jobs, N_GPUS), sim.run(jobs, Fcfs()))
    return out


def make_tables():
    t1 = Table(
        ["Policy", "utilization", "makespan", "mean wait", "max wait"],
        title="Batch arrivals: policy comparison (paper: use SJF+quota)",
    )
    for label, r in batch_study().items():
        t1.add_row(label, round(r.utilization, 3), round(r.makespan, 1),
                   round(r.mean_wait, 1), round(r.max_wait, 1))
    t2 = Table(
        ["Arrivals", "offered load", "peak queue", "mean wait"],
        title="Distribution arrivals: throttling (paper: keep load < capacity)",
    )
    for label, (load, r) in throttle_study().items():
        t2.add_row(label, round(load, 2), r.peak_queue,
                   round(r.mean_wait, 1))
    return t1, t2


def test_simulator_kernel(benchmark):
    """Time the real event-driven simulation of a 400-job batch."""
    jobs = batch_workload(n_jobs=300, seed=0)
    sim = ClusterSimulator(N_GPUS)
    result = benchmark(sim.run, jobs, SjfWithQuota(N_GPUS, 0.25))
    assert result.completed == 300


def test_policy_shape(benchmark):
    results = benchmark.pedantic(batch_study, rounds=1, iterations=1)
    assert results["SJF+quota"].utilization > results["SJF"].utilization
    assert results["SJF"].mean_wait < results["FCFS"].mean_wait
    thr = throttle_study()
    assert thr["unthrottled"][1].peak_queue > (
        3 * thr["throttled"][1].peak_queue
    )


if __name__ == "__main__":
    t1, t2 = make_tables()
    print(t1)
    print()
    print(t2)
