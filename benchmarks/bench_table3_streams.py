"""Table 3: validation accuracies for three-stream approaches.

Regenerates the table's structure on the synthetic stream datasets
(paper values alongside; absolute percentages differ because the real
video datasets are substituted — DESIGN.md) and benchmarks the real
per-stream classifier training.
"""

import numpy as np
import pytest

from repro.dtrain.streams import (
    combine_and_score,
    make_stream_dataset,
    train_stream_classifiers,
)
from repro.util.tables import Table

#: Table 3 as printed in the paper (percent)
PAPER = {
    "ucf101-like": {
        "spatial": 85.06, "temporal": 84.70, "spynet": 88.32,
        "simple-average": 92.78, "weighted-average": 93.47,
        "logistic-regression": 92.60, "shallow-nn": 93.18,
    },
    "hmdb51-like": {
        "spatial": 61.44, "temporal": 56.34, "spynet": 58.69,
        "simple-average": 75.16, "weighted-average": 77.45,
        "logistic-regression": 81.24, "shallow-nn": 80.33,
    },
}

ROWS = ["spatial", "temporal", "spynet", "simple-average",
        "weighted-average", "logistic-regression", "shallow-nn"]


def run_study(seed: int = 0):
    out = {}
    for preset in PAPER:
        data = make_stream_dataset(preset, seed=seed)
        models = train_stream_classifiers(data, epochs=25, seed=seed)
        out[preset] = combine_and_score(data, models, seed=seed)
    return out


def make_table(scores) -> Table:
    t = Table(
        ["Approach", "UCF101 paper %", "UCF101-like %",
         "HMDB51 paper %", "HMDB51-like %"],
        title="Table 3: validation accuracies for three-stream approaches",
    )
    for row in ROWS:
        t.add_row(
            row,
            PAPER["ucf101-like"][row],
            round(100 * scores["ucf101-like"][row], 2),
            PAPER["hmdb51-like"][row],
            round(100 * scores["hmdb51-like"][row], 2),
        )
    return t


@pytest.fixture(scope="module")
def dataset():
    return make_stream_dataset("hmdb51-like", seed=0)


def test_stream_classifier_training(benchmark, dataset):
    """Time one stream's classifier training (the per-stream cost)."""
    from repro.dtrain.distributed import sgd_train
    from repro.dtrain.nn import MLP

    def train():
        model = MLP(dataset.train_x["spatial"].shape[1],
                    dataset.n_classes, seed=0)
        sgd_train(model, dataset.train_x["spatial"], dataset.train_y,
                  lr=0.3, epochs=10, batch_size=32, seed=0)
        return model

    model = benchmark(train)
    assert model.accuracy(dataset.val_x["spatial"], dataset.val_y) > 0.3


def test_table3_shape(benchmark):
    scores = benchmark.pedantic(run_study, rounds=1, iterations=1)
    for preset, s in scores.items():
        best_single = max(s[r] for r in ROWS[:3])
        for ens in ROWS[3:]:
            assert s[ens] >= best_single


if __name__ == "__main__":
    print(make_table(run_study()))
