"""§4.1: Cardioid reaction-kernel DSL and the placement decision.

Three results: the DSL's rational-polynomial kernels match the math
library within tolerance while removing every transcendental call
(benchmarked for real); baking coefficients as compile-time constants
beats runtime tables; and the data-placement analysis shows computing
diffusion on the GPU beats shipping the field to the CPU each step.
"""

import numpy as np
import pytest

from repro.cardioid.dsl import ReactionKernelGenerator
from repro.cardioid.ionmodels import RATE_FUNCTIONS, V_RANGE, reference_rates
from repro.cardioid.simulation import placement_decision
from repro.core.machine import get_machine
from repro.util.tables import Table


@pytest.fixture(scope="module")
def generator():
    return ReactionKernelGenerator(RATE_FUNCTIONS, V_RANGE, tolerance=1e-6)


def make_tables():
    gen = ReactionKernelGenerator(RATE_FUNCTIONS, V_RANGE, tolerance=1e-6)
    t1 = Table(["rate", "max rel error", "num degree", "den degree"],
               title="Cardioid DSL: rational-polynomial fits of the "
                     "membrane rate functions")
    for name, fit in gen.fits.items():
        t1.add_row(name, f"{fit.max_rel_error:.2e}", fit.num_degree,
                   fit.den_degree)
    import timeit

    v = np.linspace(*V_RANGE, 20000)
    ref = lambda: reference_rates(v)
    baked = gen.generate_baked()
    runtime = gen.generate_runtime()
    t2 = Table(["kernel", "time per call (ms)", "transcendental calls"],
               title="Reaction-kernel variants (real numpy timing)")
    for label, fn, trans in (
        ("math library", ref, "6 exp per cell"),
        ("DSL runtime coeffs", lambda: runtime(v), "0"),
        ("DSL baked constants", lambda: baked(v), "0"),
    ):
        t = timeit.timeit(fn, number=20) / 20
        t2.add_row(label, round(t * 1e3, 3), trans)

    t3 = Table(["placement", "per-step time (model, ms)"],
               title="Diffusion placement on sierra (50M points); "
                     "paper: keep everything on the GPU")
    pd = placement_decision(get_machine("sierra"), 50_000_000)
    t3.add_row("all on GPU", round(1e3 * pd["all_gpu_per_step"], 3))
    t3.add_row("diffusion on CPU (2 transfers/step)",
               round(1e3 * pd["cpu_diffusion_per_step"], 3))
    t3.add_row("winner", pd["winner"])
    return t1, t2, t3


def test_baked_kernel(benchmark, generator):
    """Time the real DSL-generated (baked) rate kernel."""
    baked = generator.generate_baked()
    v = np.linspace(*V_RANGE, 20000)
    out = benchmark(baked, v)
    assert set(out) == set(RATE_FUNCTIONS)


def test_reference_kernel(benchmark):
    """Time the math-library rate kernel for comparison."""
    v = np.linspace(*V_RANGE, 20000)
    out = benchmark(reference_rates, v)
    assert set(out) == set(RATE_FUNCTIONS)


def test_dsl_shape(benchmark, generator):
    v = np.linspace(*V_RANGE, 5000)
    baked = generator.generate_baked()
    out = benchmark(baked, v)
    ref = reference_rates(v)
    for name in ref:
        rel = np.max(np.abs(out[name] - ref[name])
                     / np.maximum(np.abs(ref[name]), 1e-12))
        assert rel < 1e-5
    pd = placement_decision(get_machine("sierra"), 50_000_000)
    assert pd["winner"] == "all_gpu"


if __name__ == "__main__":
    for t in make_tables():
        print(t)
        print()
