"""§4.3: minikin GPU-vs-CPU node throughput by atomic-model size.

Regenerates the Cretin headline numbers — 5.75X for the second-largest
model, much more for the largest (where memory pressure idles ~60% of
CPU cores) — and benchmarks the real zone population solve.
"""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.kinetics.atomicmodel import MODEL_SIZES, make_model
from repro.kinetics.minikin import (
    Minikin,
    Zone,
    gpu_speedup,
    node_throughput,
    zone_memory_bytes,
)
from repro.util.tables import Table

SIERRA = get_machine("sierra")


def compute_rows():
    rows = []
    for size in MODEL_SIZES:
        model = make_model(size)
        cpu = node_throughput(SIERRA, model, "cpu")
        gpu = node_throughput(SIERRA, model, "gpu")
        rows.append({
            "size": size,
            "levels": model.n_levels,
            "zone_gb": zone_memory_bytes(model) / 2**30,
            "cpu_threads": cpu["threads"],
            "idle": cpu["idle_fraction"],
            "speedup": gpu["throughput"] / cpu["throughput"],
        })
    return rows


def make_table(rows) -> Table:
    t = Table(
        ["Model", "Levels", "Zone WS (GiB)", "CPU threads", "idle %",
         "GPU/CPU (model)", "paper"],
        title="minikin node throughput: GPU vs CPU threading strategies",
    )
    paper = {"small": "-", "medium": "-", "large": "5.75X",
             "xlarge": "much higher (60% cores idle)"}
    for r in rows:
        t.add_row(
            r["size"], r["levels"], round(r["zone_gb"], 2),
            int(r["cpu_threads"]), f"{100 * r['idle']:.0f}%",
            f"{r['speedup']:.2f}X", paper[r["size"]],
        )
    return t


def test_zone_solve_kernel(benchmark):
    """Time the real rate-matrix assembly + direct population solve."""
    mk = Minikin(make_model("medium"))
    pops = benchmark(mk.solve_zone, Zone(0.4, 1.0))
    assert pops.sum() == pytest.approx(1.0)


def test_minikin_shape(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    by_size = {r["size"]: r for r in rows}
    assert 4.5 < by_size["large"]["speedup"] < 7.0      # ~5.75X
    assert 0.45 < by_size["xlarge"]["idle"] < 0.7       # ~60% idle
    assert by_size["xlarge"]["speedup"] > 1.5 * by_size["large"]["speedup"]


if __name__ == "__main__":
    print(make_table(compute_rows()))
