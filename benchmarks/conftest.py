"""Shared benchmark configuration.

Every bench module doubles as a script: ``python benchmarks/<file>.py``
prints the regenerated table/figure series next to the paper's values
(the same text EXPERIMENTS.md records).  Under
``pytest benchmarks/ --benchmark-only`` the ``test_*`` functions also
time the real computational kernels behind each experiment.
"""

import pytest
