"""Fig 2: default vs optimized SparkPlug LDA performance.

Regenerates the per-phase breakdown (compute / shuffle / aggregate) on
32 modeled nodes for both software stacks, and benchmarks the real
variational E-step kernel.
"""

import numpy as np
import pytest

from repro.lda.corpus import make_corpus
from repro.lda.sparkplug import compare_stacks
from repro.lda.vem import LdaModel, e_step
from repro.util.tables import Table

N_TOPICS = 8
N_WORKERS = 32


def corpus():
    return make_corpus(n_docs=240, vocab_per_language=250, n_languages=3,
                       n_topics=4, doc_length=90, seed=0)


def run_fig2():
    return compare_stacks(corpus(), N_TOPICS, n_workers=N_WORKERS,
                          n_iters=3, seed=0)


def make_table(res) -> Table:
    t = Table(
        ["Stack", "compute (s)", "shuffle (s)", "aggregate (s)",
         "total (s)", "speedup"],
        title="Fig 2: default vs optimized SparkPlug LDA (32 nodes, modeled)",
    )
    base = res["default"]["total"]
    for label in ("default", "optimized"):
        r = res[label]
        t.add_row(
            label, round(r["compute"], 4), round(r["shuffle"], 4),
            round(r["aggregate"], 4), round(r["total"], 4),
            f"{base / r['total']:.2f}X",
        )
    t.add_row("paper", "-", "-", "-", "-", ">2X")
    return t


def test_estep_kernel(benchmark):
    """Time the real variational E-step over the corpus."""
    c = corpus()
    model = LdaModel.random_init(N_TOPICS, c.vocab_size, seed=0)
    ss, gammas, bound = benchmark(e_step, model, c.docs[:60])
    assert np.isfinite(bound)


def test_fig2_shape(benchmark):
    res = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    speedup = res["default"]["total"] / res["optimized"]["total"]
    assert speedup > 2.0  # "more than 2X over the default stack"
    # shuffle is the biggest beneficiary
    shuffle_gain = res["default"]["shuffle"] / res["optimized"]["shuffle"]
    assert shuffle_gain > speedup / 2


if __name__ == "__main__":
    print(make_table(run_fig2()))
