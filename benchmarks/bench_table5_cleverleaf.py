"""Table 5: CleverLeaf mini-app performance using SAMRAI.

Paper: full-node speedup (4x V100 vs 2x P9) ~7X; single P9 socket vs
single V100 ~15X.  Method: run the real patch-based Euler solver,
capture its kernel trace, price both sides with the roofline model.
The real hydro step is also timed.
"""

import numpy as np
import pytest

from repro.amr.cleverleaf import CleverLeaf
from repro.amr.euler import sod_initial_condition
from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.util.tables import Table

PAPER = {"full_node": 7.0, "p9_vs_v100": 15.0}
SIERRA = get_machine("sierra")


def captured_trace(n=96, steps=10):
    ctx = ExecutionContext()
    cl = CleverLeaf(n, n, h=1.0 / n, patch_size=n // 2, ctx=ctx)
    cl.set_initial(sod_initial_condition(n, n))
    for _ in range(steps):
        cl.step()
    return ctx.trace


#: production cells per node in the paper's runs (scales the measured
#: small-run trace; launch counts stay fixed)
PRODUCTION_CELLS = 2048 * 2048
SMALL_CELLS = 96 * 96


def _scaled(trace, factor):
    from repro.core.kernels import KernelTrace

    out = KernelTrace()
    for k in trace.kernels:
        out.record_kernel(k.scaled(factor))
    for tr in trace.transfers:
        out.record_transfer(tr)
    return out


def compute_speedups():
    trace = _scaled(captured_trace(), PRODUCTION_CELLS / SMALL_CELLS)
    model = RooflineModel(SIERRA)
    steps = 10
    # full node: 4 GPUs vs both sockets.  The 4-GPU run pays inter-GPU
    # halo exchange + residual UM traffic (~one field per step over
    # NVLink) that the single-GPU run does not (§4.10.5's "reducing
    # unnecessary CUDA Unified Memory traffic" — some remains).
    t_cpu_node = model.run_on_cpu(trace).total
    # four conserved fields make an UM-mediated round trip (device ->
    # host -> device) when patches migrate between GPUs each step
    exchange_bytes = 8.0 * PRODUCTION_CELLS * 4 * 2
    t_exchange = steps * SIERRA.host_device_link.transfer_time(exchange_bytes)
    t_gpu_node = model.run_on_gpu(trace, gpus=4).total + t_exchange
    # one socket vs one GPU (single-device runs: no exchange)
    t_cpu_socket = model.run_on_cpu(trace, cores=SIERRA.cpu.cores).total
    t_gpu_one = model.run_on_gpu(trace, gpus=1).total
    return {
        "cpu_node": t_cpu_node, "gpu_node": t_gpu_node,
        "full_node": t_cpu_node / t_gpu_node,
        "cpu_socket": t_cpu_socket, "gpu_one": t_gpu_one,
        "p9_vs_v100": t_cpu_socket / t_gpu_one,
    }


def make_table(r) -> Table:
    t = Table(
        ["Comparison", "CPU time (model)", "GPU time (model)",
         "Speedup (model)", "Speedup (paper)"],
        title="Table 5: CleverLeaf mini-app performance using SAMRAI",
    )
    t.add_row("Full node (2xP9 vs 4xV100)",
              f"{r['cpu_node']:.4g}", f"{r['gpu_node']:.4g}",
              f"{r['full_node']:.1f}X", f"{PAPER['full_node']:.0f}X")
    t.add_row("P9 socket vs V100",
              f"{r['cpu_socket']:.4g}", f"{r['gpu_one']:.4g}",
              f"{r['p9_vs_v100']:.1f}X", f"{PAPER['p9_vs_v100']:.0f}X")
    return t


def test_hydro_step(benchmark):
    """Time the real patch-based Euler step."""
    cl = CleverLeaf(64, 64, h=1.0 / 64, patch_size=32)
    cl.set_initial(sod_initial_condition(64, 64))

    benchmark(cl.step)
    assert np.isfinite(cl.global_state().rho).all()


def test_table5_shape(benchmark):
    r = benchmark.pedantic(compute_speedups, rounds=1, iterations=1)
    assert 4.0 < r["full_node"] < 11.0        # ~7X
    assert 9.0 < r["p9_vs_v100"] < 22.0       # ~15X
    assert r["p9_vs_v100"] > r["full_node"]   # the paper's ordering


if __name__ == "__main__":
    print(make_table(compute_speedups()))
