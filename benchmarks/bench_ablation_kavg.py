"""Ablation: the K sweep for K-step averaging (§4.5 / ref [34]).

"The optimal K for convergence is usually greater than one, so frequent
global reductions are unnecessary for the best training results."
Sweep K at a fixed budget of *global reductions* (the expensive
operation at scale) and at a fixed budget of *gradient evaluations*,
on a real training problem.
"""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.core.roofline import allreduce_time
from repro.dtrain.distributed import kavg_train
from repro.dtrain.nn import MLP
from repro.util.rng import make_rng
from repro.util.tables import Table

N_LEARNERS = 4
GRAD_BYTES = 1e6


def make_data(seed=3):
    rng = make_rng(seed)
    protos = rng.normal(0, 1, (5, 10)) * 2.0
    xs, ys = [], []
    for c in range(5):
        xs.append(protos[c] + rng.normal(0, 1, (80, 10)))
        ys.extend([c] * 80)
    return np.concatenate(xs), np.array(ys)


def sweep():
    x, y = make_data()
    sierra = get_machine("sierra")
    rows = []
    for k in (1, 2, 4, 8, 16):
        rounds = 48 // k  # fixed total gradient evaluations per learner
        model = MLP(x.shape[1], 5, seed=0)
        history = kavg_train(model, x, y, n_learners=N_LEARNERS,
                             k_steps=k, lr=0.25, rounds=rounds, seed=0)
        comm = rounds * allreduce_time(sierra, GRAD_BYTES, 64, "ring")
        rows.append({
            "k": k, "rounds": rounds, "loss": history[-1],
            "accuracy": model.accuracy(x, y),
            "comm_seconds": comm,
        })
    return rows


def make_table(rows) -> Table:
    t = Table(
        ["K", "reductions", "final loss", "accuracy",
         "allreduce time @64 nodes (ms)"],
        title="KAVG ablation: fixed gradient budget, varying averaging "
              "interval",
    )
    for r in rows:
        t.add_row(r["k"], r["rounds"], round(r["loss"], 4),
                  round(r["accuracy"], 3), round(1e3 * r["comm_seconds"], 2))
    return t


def test_kavg_round(benchmark):
    """Time one real KAVG round (4 learners x 4 local steps)."""
    x, y = make_data()
    model = MLP(x.shape[1], 5, seed=0)
    benchmark.pedantic(
        kavg_train, args=(model, x, y),
        kwargs=dict(n_learners=4, k_steps=4, lr=0.25, rounds=1, seed=0),
        rounds=3, iterations=1,
    )


def test_k_sweep_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_k = {r["k"]: r for r in rows}
    # every configuration trains (accuracy well above 20% chance)
    assert all(r["accuracy"] > 0.6 for r in rows)
    # K>1 matches or beats K=1 at the same gradient budget while
    # using a fraction of the reductions
    assert by_k[4]["loss"] <= by_k[1]["loss"] * 1.25
    assert by_k[4]["comm_seconds"] < 0.3 * by_k[1]["comm_seconds"]


if __name__ == "__main__":
    print(make_table(sweep()))
