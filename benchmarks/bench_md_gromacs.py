"""§4.6: ddcMD vs GROMACS Martini step times.

Regenerates the paper's three comparisons (2.31 vs 2.88 ms at 1 GPU;
1.3X at 4 GPUs; 2.3X inside MuMMI) from the step-time model, and
benchmarks the real pair-force kernel on the Martini membrane.
"""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.md.ddcmd import DdcMD, make_martini_membrane
from repro.md.gromacs_baseline import modeled_step_times
from repro.util.tables import Table

SIERRA = get_machine("sierra")


def compute_rows():
    r1 = modeled_step_times(SIERRA, gpus=1, cpu_sockets_for_md=1.0)
    r4 = modeled_step_times(SIERRA, gpus=4, cpu_sockets_for_md=2.0)
    rm = modeled_step_times(SIERRA, gpus=4, cpu_sockets_for_md=2.0,
                            cpu_available_fraction=0.65)
    return {"1 GPU + 1 CPU": (r1, "2.31 vs 2.88 ms (1.25X)"),
            "4 GPUs + CPUs": (r4, "1.3X"),
            "inside MuMMI": (rm, "2.3X")}


def make_table(rows) -> Table:
    t = Table(
        ["Configuration", "ddcMD (ms)", "GROMACS (ms)",
         "ddcMD speedup (model)", "paper"],
        title="ddcMD vs GROMACS per-step time (Martini membrane, modeled)",
    )
    for label, (r, paper) in rows.items():
        t.add_row(label, round(r["ddcmd"] * 1e3, 2),
                  round(r["gromacs"] * 1e3, 2),
                  f"{r['speedup']:.2f}X", paper)
    return t


def test_pair_force_kernel(benchmark):
    """Time the real generic-pair-infrastructure force evaluation."""
    system, proc, bonds, angles = make_martini_membrane(16, 64, seed=0)
    sim = DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles)
    sim.nlist.update(system)

    def forces():
        return proc.compute(system, sim.nlist.pairs_i, sim.nlist.pairs_j)

    f, e, w = benchmark(forces)
    assert np.isfinite(f).all()
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_md_step(benchmark):
    """Time a full real MD step (neighbor list + forces + integrate)."""
    system, proc, bonds, angles = make_martini_membrane(16, 64, seed=0)
    sim = DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles)
    benchmark(sim.step)
    assert np.isfinite(system.x).all()


def test_comparison_shape(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    r1, _ = rows["1 GPU + 1 CPU"]
    r4, _ = rows["4 GPUs + CPUs"]
    rm, _ = rows["inside MuMMI"]
    assert 1.5e-3 < r1["ddcmd"] < 3.0e-3     # ~2.31 ms
    assert r1["speedup"] > 1.1
    assert r4["speedup"] > 1.1
    assert rm["speedup"] > r4["speedup"]     # MuMMI widens the gap
    assert 1.8 < rm["speedup"] < 3.5         # ~2.3X


if __name__ == "__main__":
    print(make_table(compute_rows()))
