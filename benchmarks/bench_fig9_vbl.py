"""Fig 9: VBL simulation — phase defects ripple the fluence after 10 m.

Runs the real split-step propagation (Fig 9's computation) and reports
the ripple-contrast numbers; benchmarks the FFT+amplifier step.
"""

import numpy as np
import pytest

from repro.vbl.defects import fig9_experiment
from repro.vbl.splitstep import BeamGrid, SplitStepPropagator, gaussian_beam
from repro.util.tables import Table


def run_fig9():
    return fig9_experiment(n=256, n_steps=20)


def make_table(res) -> Table:
    t = Table(
        ["Quantity", "clean beam", "with 150um defects"],
        title="Fig 9: fluence ripple contrast after 10 m (real propagation)",
    )
    t.add_row("initial contrast",
              round(res["contrast_clean_initial"], 4),
              round(res["contrast_defect_initial"], 4))
    t.add_row("after 10 m",
              round(res["contrast_clean_final"], 4),
              round(res["contrast_defect_final"], 4))
    t.add_row("energy drift", "-", f"{abs(res['energy_final'] / res['energy_initial'] - 1):.2e}")
    return t


def test_splitstep_kernel(benchmark):
    """Time one real diffraction + amplifier step at 256^2."""
    grid = BeamGrid(n=256, length=5e-3)
    prop = SplitStepPropagator(grid)
    beam = gaussian_beam(grid, 1.2e-3)
    gain = np.full((256, 256), 1.02)

    def step():
        out = prop.diffraction_step(beam, 0.5)
        return prop.amplifier_step(out, gain)

    out = benchmark(step)
    assert np.isfinite(out).all()


def test_fig9_shape(benchmark):
    res = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    # phase-only defects: invisible at z=0
    assert res["contrast_defect_initial"] == pytest.approx(
        res["contrast_clean_initial"], rel=1e-9
    )
    # visible after 10 m (Fig 9's ripples)
    assert res["contrast_defect_final"] > 1.1 * res["contrast_clean_final"]


if __name__ == "__main__":
    print(make_table(run_fig9()))
