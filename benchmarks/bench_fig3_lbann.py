"""Fig 3: LBANN performance on up to 2048 GPUs.

Regenerates the weak-scaling throughput lines (one per GPUs-per-sample
configuration) and the strong-scaling speedups, and benchmarks the real
NN substrate's training step (the per-GPU work the model abstracts).
"""

import numpy as np
import pytest

from repro.dtrain.lbann import LbannScalingModel
from repro.dtrain.nn import MLP
from repro.util.tables import Table

GPU_COUNTS = (16, 64, 256, 1024, 2048)
PAPER_STRONG = {4: "near-perfect (~1.9X)", 8: "2.8X", 16: "3.4X"}


def run_fig3():
    model = LbannScalingModel()
    weak = {
        g: model.weak_scaling_curve(g, GPU_COUNTS)
        for g in (2, 4, 8, 16)
    }
    strong = {g: model.strong_scaling_speedup(g) for g in (4, 8, 16)}
    return weak, strong


def make_tables(weak, strong):
    t1 = Table(
        ["GPUs/sample"] + [f"{n} GPUs" for n in GPU_COUNTS],
        title="Fig 3 (solid lines): weak-scaling throughput (samples/s, modeled)",
    )
    for g, curve in weak.items():
        by_total = dict(curve)
        t1.add_row(g, *[round(by_total.get(n, float("nan")), 2)
                        for n in GPU_COUNTS])
    t2 = Table(
        ["GPUs/sample", "speedup vs 2 (model)", "paper"],
        title="Fig 3 (dotted lines): strong scaling per sample",
    )
    for g, s in strong.items():
        t2.add_row(g, f"{s:.2f}X", PAPER_STRONG[g])
    return t1, t2


def test_training_step_kernel(benchmark):
    """Time one real forward+backward pass of the NN substrate."""
    rng = np.random.default_rng(0)
    model = MLP(256, 16, hidden=(256, 128), seed=0)
    x = rng.random((64, 256))
    y = rng.integers(0, 16, 64)
    loss, grad = benchmark(model.gradient, x, y)
    assert np.isfinite(loss)


def test_fig3_shape(benchmark):
    weak, strong = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    assert strong[8] == pytest.approx(2.8, rel=0.05)
    assert strong[16] == pytest.approx(3.4, rel=0.05)
    for g, curve in weak.items():
        thr = [v for _, v in curve]
        assert all(b > a for a, b in zip(thr, thr[1:]))


if __name__ == "__main__":
    t1, t2 = make_tables(*run_fig3())
    print(t1)
    print()
    print(t2)
