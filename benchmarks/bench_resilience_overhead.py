"""Resilience-layer cost study: checkpoint overhead and goodput.

Two questions the resilience design has to answer before a MuMMI-scale
campaign can rely on it:

1. What does checkpointing cost when nothing fails?  At the default
   cadence (every 10 steps) the deep-copy snapshot of solver state must
   stay well under 10% of the plain solve's wall time, or nobody turns
   it on.
2. How does scheduler goodput (useful GPU-time over capacity) degrade
   as the machine's MTBF shrinks?  It must fall monotonically — if a
   less-reliable machine ever scores higher goodput, the failure
   accounting is broken.
"""

import time

import numpy as np
import pytest

from repro.resilience import CheckpointStore, FaultInjector, ResilientDriver
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator
from repro.sched.workloads import batch_workload
from repro.solvers.csr import CsrMatrix
from repro.solvers.krylov import PcgSolver
from repro.solvers.problems import poisson_2d
from repro.util.tables import Table

#: fault-free inter-arrival so only checkpointing is being timed
NO_FAULTS_MTBF = 1e12

#: MTBF settings (seconds of simulated time) from effectively
#: fault-free down to one fault every ~50 s of cluster time
MTBF_SETTINGS = (1e9, 200.0, 50.0)


def _solver(n=100):
    a = CsrMatrix(poisson_2d(n))
    b = np.ones(a.shape[0])
    return PcgSolver(a, b, tol=1e-10, max_iter=400)


def _one_solve(cadence):
    """Wall time of one full PCG solve, with or without the resilient
    driver wrapped around it (cadence=None -> bare loop)."""
    solver = _solver()
    t0 = time.perf_counter()
    if cadence is None:
        while not solver.done:
            solver.step()
    else:
        driver = ResilientDriver(
            solver, cadence=cadence, store=CheckpointStore(),
        )
        driver.run()
    return time.perf_counter() - t0


def overhead_study(repeats=15):
    """Checkpoint overhead vs cadence on a 10000-unknown PCG solve.

    Bare and wrapped solves are timed interleaved (best of N each) so
    frequency scaling or background load hits both sides equally."""
    cadences = (50, 10, 1)
    best = {c: float("inf") for c in (None, *cadences)}
    _one_solve(None)  # warm-up
    for _ in range(repeats):
        for c in best:
            best[c] = min(best[c], _one_solve(c))
    bare = best[None]
    return [
        {
            "cadence": c,
            "bare_s": bare,
            "wrapped_s": best[c],
            "overhead_pct": 100.0 * (best[c] - bare) / bare,
        }
        for c in cadences
    ]


def goodput_study():
    """Scheduler goodput across MTBF settings (200-job batch, 8 GPUs,
    immediate retry — the MuMMI campaign's configuration)."""
    jobs = batch_workload(n_jobs=200, seed=0)
    rows = []
    for mtbf in MTBF_SETTINGS:
        injector = FaultInjector(mtbf=mtbf, seed=1)
        result = ClusterSimulator(8).run(jobs, Fcfs(),
                                         fault_injector=injector)
        rows.append({
            "mtbf_s": mtbf,
            "failures": result.failures,
            "retries": result.retries,
            "wasted_h": result.wasted_time / 3600.0,
            "utilization": result.utilization,
            "goodput": result.goodput,
        })
    return rows


def make_tables(overhead_rows, goodput_rows):
    t1 = Table(
        ["cadence (steps)", "bare solve (s)", "with ckpt (s)",
         "overhead (%)"],
        title="Checkpoint overhead, PCG on 10000-unknown 2D Poisson "
              "(deep-copy snapshots, best of 15 interleaved)",
    )
    for r in overhead_rows:
        t1.add_row(r["cadence"], round(r["bare_s"], 4),
                   round(r["wrapped_s"], 4),
                   round(r["overhead_pct"], 1))

    t2 = Table(
        ["MTBF (s)", "failures", "retries", "wasted GPU-h",
         "utilization", "goodput"],
        title="Goodput vs machine reliability (200-job batch on 8 "
              "GPUs, immediate retry)",
    )
    for r in goodput_rows:
        t2.add_row(f"{r['mtbf_s']:g}", r["failures"], r["retries"],
                   round(r["wasted_h"], 2),
                   round(r["utilization"], 3), round(r["goodput"], 3))
    return t1, t2


def test_checkpoint_overhead(benchmark):
    """Default-cadence checkpointing costs <10% on top of the solve.

    Noise can only *inflate* a wall-time overhead measurement, so the
    assertion takes the best of a few study attempts."""
    rows = benchmark.pedantic(overhead_study, rounds=1, iterations=1)
    by_cadence = {r["cadence"]: r for r in rows}
    for _ in range(2):
        if by_cadence[10]["overhead_pct"] < 10.0:
            break
        retry = {r["cadence"]: r for r in overhead_study()}
        for c, r in retry.items():
            if r["overhead_pct"] < by_cadence[c]["overhead_pct"]:
                by_cadence[c] = r
    assert by_cadence[10]["overhead_pct"] < 10.0
    # checkpointing can only add time as cadence tightens; allow
    # timing noise at the cheap end
    assert by_cadence[1]["wrapped_s"] >= by_cadence[50]["wrapped_s"] * 0.8


def test_goodput_degrades_with_mtbf(benchmark):
    """Goodput falls strictly as MTBF shrinks; utilization stays
    higher than goodput once faults waste occupied GPU time."""
    rows = benchmark.pedantic(goodput_study, rounds=1, iterations=1)
    goodputs = [r["goodput"] for r in rows]
    assert goodputs == sorted(goodputs, reverse=True)
    assert goodputs[0] > goodputs[-1]
    for r in rows[1:]:
        assert r["failures"] > 0
        assert r["utilization"] >= r["goodput"]


def test_sdc_detection_rate(benchmark):
    """ABFT residual check catches 100% of injected corruptions above
    the detection tolerance."""
    def run():
        rng = np.random.default_rng(0)
        detected = 0
        trials = 20
        for _ in range(trials):
            solver = _solver(n=30)
            for _ in range(10):
                solver.step()
            solver.corrupt(rng, magnitude=float(rng.uniform(0.1, 100.0)))
            if solver.abft_error() > 1e-6:
                detected += 1
        return detected, trials

    detected, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    assert detected == trials


if __name__ == "__main__":
    overhead_rows = overhead_study()
    goodput_rows = goodput_study()
    for table in make_tables(overhead_rows, goodput_rows):
        print(table)
        print()
