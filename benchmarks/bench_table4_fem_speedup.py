"""Table 4: GPU speedup of the MFEM+hypre+SUNDIALS stack vs unknowns x order.

Method: run the real nonlinear-diffusion step (partial-assembly
operators + AMG-preconditioned PCG + BDF formulation) at a laptop-
runnable mesh for each polynomial order, capture the kernel/transfer
trace, scale the *work* to the paper's unknown counts (launch counts
stay fixed — exactly why small problems are launch-bound and big ones
bandwidth/compute-bound), and price CPU (one P9 socket) vs GPU (one
V100) with the roofline model.
"""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelTrace
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.fem.mesh import TensorMesh2D
from repro.fem.nonlinear import NonlinearDiffusion
from repro.util.tables import Table

#: Table 4 unknown counts and paper speedups
PAPER = {
    20.8e3: {2: 2.88, 4: 2.78, 8: 4.97},
    82.6e3: {2: 6.67, 4: 8.00, 8: 12.47},
    329.0e3: {2: 10.59, 4: 13.71, 8: 19.00},
    1.313e6: {2: 12.32, 4: 14.36, 8: 20.80},
}

ORDERS = (2, 4, 8)
SIERRA = get_machine("sierra")

#: CPU-baseline cores.  The paper's baseline is the pre-GPU CPU code
#: path; its dynamic range (2.9X small -> 20.8X large) matches a
#: single six-core NUMA-domain run in our model (EXPERIMENTS.md
#: records this calibration choice).
CPU_BASELINE_CORES = 6


def captured_trace(order: int) -> "tuple[KernelTrace, int]":
    """Trace one BDF step's worth of work at a small mesh."""
    nel = max(2, 12 // order * 2)
    ctx = ExecutionContext()
    mesh = TensorMesh2D(nel, nel, order=order)
    prob = NonlinearDiffusion(mesh, k0=1.0, k1=0.5, ctx=ctx)
    gx, gy = mesh.node_coords()
    u0 = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()
    prob.integrate(u0, t_end=2e-3, rtol=1e-4, atol=1e-7)
    return ctx.trace, mesh.n_dofs


def speedup_for(trace: KernelTrace, n_small: int, n_target: float) -> float:
    factor = n_target / n_small
    scaled = KernelTrace()
    for k in trace.kernels:
        scaled.record_kernel(k.scaled(factor))
    for tr in trace.transfers:
        scaled.record_transfer(tr)
    model = RooflineModel(SIERRA)
    t_cpu = model.run_on_cpu(scaled, cores=CPU_BASELINE_CORES).total
    t_gpu = model.run_on_gpu(scaled, gpus=1).total
    return t_cpu / t_gpu


def compute_table():
    rows = []
    traces = {p: captured_trace(p) for p in ORDERS}
    for n_target, paper_row in PAPER.items():
        row = {"unknowns": n_target}
        for p in ORDERS:
            trace, n_small = traces[p]
            row[p] = speedup_for(trace, n_small, n_target)
            row[f"paper_{p}"] = paper_row[p]
        rows.append(row)
    return rows


def make_table(rows) -> Table:
    t = Table(
        ["Unknowns", "p=2 paper", "p=2 model", "p=4 paper", "p=4 model",
         "p=8 paper", "p=8 model"],
        title="Table 4: GPU speedup using MFEM, HYPRE, and SUNDIALS",
    )
    for row in rows:
        t.add_row(
            f"{row['unknowns']:.3g}",
            row["paper_2"], round(row[2], 2),
            row["paper_4"], round(row[4], 2),
            row["paper_8"], round(row[8], 2),
        )
    return t


def test_pa_operator_apply(benchmark):
    """Time the real sum-factorized diffusion apply at p=4."""
    from repro.fem.operators import DiffusionOperator

    mesh = TensorMesh2D(16, 16, order=4)
    op = DiffusionOperator(mesh)
    u = np.random.default_rng(0).random(mesh.n_dofs)
    y = benchmark(op.mult, u)
    assert np.isfinite(y).all()


def test_table4_shape(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    for row in rows:
        # speedup grows with order at every size
        assert row[8] > row[2]
    # speedup grows with problem size at every order
    for p in ORDERS:
        sizes = [row[p] for row in rows]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))
    # largest configuration lands in the paper's band
    assert 8 < rows[-1][2] < 25
    assert 10 < rows[-1][8] < 40


if __name__ == "__main__":
    print(make_table(compute_table()))
