"""Fig 6: ParaDyn execution results — time and load/store counts.

Regenerates both panels (modeled GPU time; per-iteration global
loads/stores) for baseline, SLNSP, and SLNSP+DSE, and benchmarks the
real loop-IR execution (all variants produce bitwise-equal outputs).
"""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.paradyn.counters import count_memory_ops, modeled_time
from repro.paradyn.kernels import paradyn_kernel
from repro.paradyn.passes import dead_store_elimination, slnsp
from repro.util.tables import Table

N = 5_000_000
SIERRA = get_machine("sierra")


def variants():
    base = paradyn_kernel(n=N)
    with_slnsp = slnsp(base)
    with_dse = dead_store_elimination(with_slnsp)
    return [("baseline", base), ("SLNSP", with_slnsp),
            ("SLNSP+DSE", with_dse)]


def make_table() -> Table:
    t = Table(
        ["Variant", "loads/iter", "stores/iter", "time (model, ms)",
         "speedup", "paper"],
        title="Fig 6: ParaDyn execution results (time and load/store)",
    )
    rows = variants()
    t0 = modeled_time(SIERRA, rows[0][1])
    paper = {"baseline": "1X", "SLNSP": "~2X", "SLNSP+DSE": "~2.4X"}
    for label, prog in rows:
        ops = count_memory_ops(prog)
        tt = modeled_time(SIERRA, prog)
        t.add_row(label, ops.loads, ops.stores, round(tt * 1e3, 3),
                  f"{t0 / tt:.2f}X", paper[label])
    return t


def test_loop_ir_execution(benchmark):
    """Time real execution of the optimized kernel at n=200k."""
    prog = dead_store_elimination(slnsp(paradyn_kernel(n=200_000)))
    rng = np.random.default_rng(0)
    inputs = {
        k: rng.random(200_000)
        for k, v in prog.array_kinds.items() if v == "input"
    }
    out = benchmark(prog.run, inputs)
    assert set(out) == {"out_force", "out_energy"}


def test_fig6_shape(benchmark):
    rows = benchmark.pedantic(variants, rounds=1, iterations=1)
    t = [modeled_time(SIERRA, p) for _, p in rows]
    assert 1.6 < t[0] / t[1] < 2.4         # SLNSP ~2X
    assert 1.1 < t[1] / t[2] < 1.35        # DSE ~+20%


if __name__ == "__main__":
    print(make_table())
