"""Tests for the Cretin/minikin proxy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import get_machine
from repro.core.memory import AllocationError, ResourceManager
from repro.kinetics.atomicmodel import MODEL_SIZES, AtomicModel, make_model
from repro.kinetics.minikin import (
    Minikin,
    Zone,
    cpu_usable_threads,
    gpu_speedup,
    node_throughput,
    zone_memory_bytes,
)
from repro.kinetics.ratematrix import (
    assemble_rate_matrix,
    boltzmann_populations,
    evolve_populations,
    opacity_spectrum,
    steady_state_populations,
)
from repro.kinetics.rates import (
    collisional_deexcitation,
    collisional_excitation,
    radiative_decay,
)


@pytest.fixture(scope="module")
def model():
    return make_model("small", seed=3)


class TestAtomicModel:
    def test_size_classes(self):
        assert set(MODEL_SIZES) == {"small", "medium", "large", "xlarge"}
        for size, n in MODEL_SIZES.items():
            assert make_model(size).n_levels == n

    def test_energies_ascending(self, model):
        assert np.all(np.diff(model.energies) > 0)

    def test_connected_chain(self, model):
        """Every adjacent level pair must be radiatively connected so
        the rate matrix is irreducible."""
        f = model.oscillator_strengths
        for k in range(model.n_levels - 1):
            assert f[k, k + 1] > 0

    def test_memory_scales_quadratically(self):
        s, m = make_model("small"), make_model("medium")
        ratio = m.matrix_bytes / s.matrix_bytes
        assert ratio == pytest.approx((m.n_levels / s.n_levels) ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_model("giant")
        with pytest.raises(ValueError):
            make_model("small", transition_fill=0.0)
        with pytest.raises(ValueError):
            AtomicModel(
                "x", np.array([0.0, -1.0]), np.array([1.0, 1.0]),
                np.zeros((2, 2)),
            )


class TestRates:
    def test_excitation_upper_levels_only(self, model):
        r = collisional_excitation(model, 0.5, 1.0)
        # r[j, i] nonzero only for j > i (lower triangle of output)
        assert np.allclose(np.triu(r, k=0), 0.0)

    def test_deexcitation_lower_levels_only(self, model):
        r = collisional_deexcitation(model, 0.5, 1.0)
        assert np.allclose(np.tril(r, k=0), 0.0)

    def test_rates_scale_with_density(self, model):
        r1 = collisional_excitation(model, 0.5, 1.0)
        r2 = collisional_excitation(model, 0.5, 2.0)
        np.testing.assert_allclose(r2, 2.0 * r1)

    def test_radiative_independent_of_conditions(self, model):
        a = radiative_decay(model)
        assert np.allclose(np.tril(a, k=0), 0.0)
        assert a.max() > 0

    def test_detailed_balance_identity(self, model):
        """g_i n_i^B C_up(i->j) == g-weighted reverse rate at Boltzmann."""
        t = 0.4
        up = collisional_excitation(model, t, 1.0)
        down = collisional_deexcitation(model, t, 1.0)
        nb = boltzmann_populations(model, t)
        flow_up = up * nb[None, :]     # flux j<-i: up[j,i]*n_i
        flow_down = down * nb[None, :]
        np.testing.assert_allclose(flow_up, flow_down.T, rtol=1e-10,
                                   atol=1e-300)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            collisional_excitation(model, 0.0, 1.0)
        with pytest.raises(ValueError):
            collisional_excitation(model, 1.0, -1.0)


class TestRateMatrix:
    def test_columns_sum_to_zero(self, model):
        r = assemble_rate_matrix(model, 0.5, 1.0)
        np.testing.assert_allclose(r.sum(axis=0), 0.0, atol=1e-12)

    def test_collisional_limit_is_boltzmann(self, model):
        r = assemble_rate_matrix(model, 0.3, 10.0, include_radiative=False)
        pops = steady_state_populations(r)
        np.testing.assert_allclose(
            pops, boltzmann_populations(model, 0.3), atol=1e-12
        )

    def test_high_density_approaches_lte(self, model):
        """Radiative rates become negligible at high electron density."""
        t = 0.3
        lte = boltzmann_populations(model, t)
        err = []
        for n_e in (0.01, 100.0):
            pops = steady_state_populations(
                assemble_rate_matrix(model, t, n_e)
            )
            err.append(np.abs(pops - lte).max())
        assert err[1] < err[0]

    def test_iterative_matches_direct(self, model):
        r = assemble_rate_matrix(model, 0.4, 1.0)
        direct = steady_state_populations(r, solver="direct")
        iterative = steady_state_populations(r, solver="iterative")
        np.testing.assert_allclose(iterative, direct, atol=1e-9)

    def test_populations_normalized_positive(self, model):
        r = assemble_rate_matrix(model, 0.2, 0.5)
        pops = steady_state_populations(r)
        assert pops.sum() == pytest.approx(1.0)
        assert np.all(pops >= 0)

    def test_unknown_solver(self, model):
        r = assemble_rate_matrix(model, 0.5, 1.0)
        with pytest.raises(ValueError):
            steady_state_populations(r, solver="amgx")

    def test_time_evolution_reaches_steady_state(self, model):
        r = assemble_rate_matrix(model, 0.3, 5.0)
        n0 = np.zeros(model.n_levels)
        n0[0] = 1.0
        n_final = evolve_populations(r, n0, dt=10.0, n_steps=4000)
        steady = steady_state_populations(r)
        np.testing.assert_allclose(n_final, steady, atol=1e-6)

    def test_time_evolution_conserves_total(self, model):
        r = assemble_rate_matrix(model, 0.3, 1.0)
        n0 = boltzmann_populations(model, 1.0)
        n1 = evolve_populations(r, n0, dt=0.1, n_steps=100)
        assert n1.sum() == pytest.approx(1.0, rel=1e-9)

    @given(t=st.floats(min_value=0.1, max_value=2.0),
           n_e=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=10, deadline=None)
    def test_steady_state_property(self, t, n_e):
        m = make_model("small", seed=7)
        r = assemble_rate_matrix(m, t, n_e)
        pops = steady_state_populations(r)
        # R n = 0 up to solver tolerance
        assert np.abs(r @ pops).max() < 1e-8 * np.abs(r).max()


class TestOpacity:
    def test_spectrum_nonnegative(self, model):
        r = assemble_rate_matrix(model, 0.3, 1.0)
        pops = steady_state_populations(r)
        freqs = np.linspace(0.0, 1.0, 300)
        kappa = opacity_spectrum(model, pops, freqs)
        assert kappa.shape == (300,)
        assert np.all(kappa >= 0)
        assert kappa.max() > 0

    def test_lines_at_transition_energies(self, model):
        """Opacity must peak near the strongest transition energy."""
        pops = boltzmann_populations(model, 0.3)
        iu, ju = np.triu_indices(model.n_levels, k=1)
        f = model.oscillator_strengths[iu, ju]
        weights = pops[iu] * f
        strongest = (model.energies[ju] - model.energies[iu])[weights.argmax()]
        freqs = np.linspace(0.0, 1.2, 2000)
        kappa = opacity_spectrum(model, pops, freqs)
        assert abs(freqs[kappa.argmax()] - strongest) < 0.05

    def test_validation(self, model):
        with pytest.raises(ValueError):
            opacity_spectrum(model, np.ones(3), np.linspace(0, 1, 10))
        with pytest.raises(ValueError):
            opacity_spectrum(model, np.ones(model.n_levels),
                             np.linspace(0, 1, 10), line_width=0.0)


class TestMinikin:
    def test_solve_zones_shapes(self, model):
        mk = Minikin(model)
        zones = [Zone(0.3, 1.0), Zone(0.5, 2.0), Zone(1.0, 0.1)]
        pops = mk.solve_zones(zones)
        assert pops.shape == (3, model.n_levels)
        np.testing.assert_allclose(pops.sum(axis=1), 1.0)

    def test_zones_differ(self, model):
        mk = Minikin(model)
        pops = mk.solve_zones([Zone(0.1, 1.0), Zone(2.0, 1.0)])
        assert np.abs(pops[0] - pops[1]).max() > 0.01

    def test_empty_zones_rejected(self, model):
        with pytest.raises(ValueError):
            Minikin(model).solve_zones([])

    def test_zone_validation(self):
        with pytest.raises(ValueError):
            Zone(0.0, 1.0)
        with pytest.raises(ValueError):
            Zone(1.0, -1.0)

    def test_one_zone_at_a_time_fits_small_device(self, model):
        """The GPU strategy's memory profile: a capacity that holds one
        zone workspace is enough for any number of zones."""
        rm = ResourceManager(
            device_capacity_bytes=2 * model.matrix_bytes
        )
        mk = Minikin(model, resources=rm)
        pops = mk.solve_zones([Zone(0.3, 1.0)] * 5)
        assert pops.shape == (5, model.n_levels)

    def test_opacities_batch(self, model):
        mk = Minikin(model)
        freqs = np.linspace(0, 1, 50)
        out = mk.opacities([Zone(0.3, 1.0), Zone(0.6, 1.0)], freqs)
        assert out.shape == (2, 50)


class TestThroughputModel:
    def test_large_model_speedup_near_paper(self):
        """§4.3: 'For our second largest atomic model, the GPU
        processing rate per node is 5.75X the rate for CPUs.'"""
        s = gpu_speedup(get_machine("sierra"), make_model("large"))
        assert 4.5 < s < 7.0

    def test_largest_model_idles_most_cpu_cores(self):
        """§4.3: 'memory constraints require idling 60% of CPU cores'."""
        sierra = get_machine("sierra")
        info = node_throughput(sierra, make_model("xlarge"), "cpu")
        assert 0.45 < info["idle_fraction"] < 0.7

    def test_largest_model_speedup_much_higher(self):
        sierra = get_machine("sierra")
        s_large = gpu_speedup(sierra, make_model("large"))
        s_xl = gpu_speedup(sierra, make_model("xlarge"))
        assert s_xl > 1.5 * s_large

    def test_small_model_gpu_not_worth_it(self):
        """Tiny models do not amortize GPU launches — the reason the
        GPU port targets big models."""
        s = gpu_speedup(get_machine("sierra"), make_model("small"))
        assert s < 1.0

    def test_no_idling_for_second_largest(self):
        info = node_throughput(get_machine("sierra"), make_model("large"),
                               "cpu")
        assert info["idle_fraction"] == 0.0

    def test_zone_must_fit_gpu_memory(self):
        """A model whose single-zone workspace exceeds device memory is
        rejected — the hard constraint the threading redesign removed
        for CPUs is still real for the GPU."""
        sierra = get_machine("sierra")
        with pytest.raises(AllocationError):
            node_throughput(sierra, make_model("xlarge"), "gpu",
                            n_freq_bins=30000)

    def test_strategy_validation(self):
        sierra = get_machine("sierra")
        with pytest.raises(ValueError):
            node_throughput(sierra, make_model("small"), "tpu")
        with pytest.raises(ValueError):
            node_throughput(get_machine("cori-ii"), make_model("small"),
                            "gpu")

    def test_cpu_threads_monotone_in_model_size(self):
        sierra = get_machine("sierra")
        threads = [
            cpu_usable_threads(sierra, make_model(s))
            for s in ("small", "medium", "large", "xlarge")
        ]
        assert all(a >= b for a, b in zip(threads, threads[1:]))
