"""Tests for MD dynamics: integrators, thermostats, constraints, the
assembled ddcMD simulation and the GROMACS baseline comparison."""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.md.bonded import AngleTerm, BondTerm
from repro.md.ddcmd import DDCMD_KERNELS_PER_STEP, DdcMD, make_martini_membrane
from repro.md.gromacs_baseline import (
    GROMACS_KERNELS_PER_STEP,
    GromacsBaseline,
    modeled_step_times,
)
from repro.md.integrators import (
    BerendsenBarostat,
    LangevinThermostat,
    ShakeConstraints,
    VelocityVerlet,
)
from repro.md.particles import ParticleSystem, PeriodicBox
from repro.md.potentials import LennardJones, PairProcessor


def lj_gas(n=64, box_l=6.0, t=0.5, seed=1):
    box = PeriodicBox((box_l,) * 3)
    ps = ParticleSystem.random_gas(n, box, temperature=t, seed=seed,
                                   min_separation=1.0)
    return ps


class TestBonded:
    def test_bond_force_is_gradient(self):
        box = PeriodicBox((10.0,) * 3)
        ps = ParticleSystem(np.array([[1.0, 1, 1], [2.2, 1, 1]]), box)
        bonds = BondTerm(np.array([0]), np.array([1]), k=10.0, r0=1.0)
        f, e = bonds.compute(ps)
        eps = 1e-7
        ps.x[0, 0] += eps
        _, ep = bonds.compute(ps)
        ps.x[0, 0] -= 2 * eps
        _, em = bonds.compute(ps)
        assert f[0, 0] == pytest.approx(-(ep - em) / (2 * eps), rel=1e-5)

    def test_bond_at_rest_length_no_force(self):
        box = PeriodicBox((10.0,) * 3)
        ps = ParticleSystem(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box)
        bonds = BondTerm(np.array([0]), np.array([1]), k=10.0, r0=1.0)
        f, e = bonds.compute(ps)
        assert e == pytest.approx(0.0)
        np.testing.assert_allclose(f, 0.0, atol=1e-12)

    def test_angle_straight_no_force_for_pi(self):
        box = PeriodicBox((10.0,) * 3)
        x = np.array([[1.0, 1, 1], [2.0, 1, 1], [3.0, 1, 1]])
        ps = ParticleSystem(x, box)
        ang = AngleTerm(np.array([0]), np.array([1]), np.array([2]),
                        k=5.0, theta0=np.pi)
        f, e = ang.compute(ps)
        assert e == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(f, 0.0, atol=1e-10)

    def test_angle_force_is_gradient(self):
        box = PeriodicBox((10.0,) * 3)
        x = np.array([[1.0, 1, 1], [2.0, 1, 1], [2.5, 1.9, 1]])
        ps = ParticleSystem(x, box)
        ang = AngleTerm(np.array([0]), np.array([1]), np.array([2]),
                        k=5.0, theta0=2.0)
        f, _ = ang.compute(ps)
        eps = 1e-7
        for p, d in ((0, 1), (2, 0)):
            ps.x[p, d] += eps
            _, ep = ang.compute(ps)
            ps.x[p, d] -= 2 * eps
            _, em = ang.compute(ps)
            ps.x[p, d] += eps
            assert f[p, d] == pytest.approx(-(ep - em) / (2 * eps), rel=1e-4)

    def test_bonded_forces_sum_to_zero(self):
        box = PeriodicBox((10.0,) * 3)
        rng = np.random.default_rng(0)
        ps = ParticleSystem(1 + rng.random((6, 3)) * 2, box)
        bonds = BondTerm(np.array([0, 2]), np.array([1, 3]), k=3.0, r0=0.8)
        ang = AngleTerm(np.array([0]), np.array([1]), np.array([2]),
                        k=2.0, theta0=1.8)
        fb, _ = bonds.compute(ps)
        fa, _ = ang.compute(ps)
        np.testing.assert_allclose(fb.sum(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(fa.sum(axis=0), 0.0, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            BondTerm(np.array([0]), np.array([0]), k=1.0, r0=1.0)
        with pytest.raises(ValueError):
            BondTerm(np.array([0]), np.array([1]), k=-1.0, r0=1.0)
        with pytest.raises(ValueError):
            AngleTerm(np.array([0]), np.array([1]), np.array([2, 3]),
                      k=1.0, theta0=1.0)


class TestNve:
    def test_energy_conservation(self):
        ps = lj_gas()
        sim = DdcMD(ps, PairProcessor(LennardJones()), dt=0.002)
        sim.step()
        e0 = sim.total_energy()
        sim.run(400)
        drift = abs(sim.total_energy() - e0) / abs(e0)
        assert drift < 0.02

    def test_momentum_conservation(self):
        ps = lj_gas(seed=7)
        sim = DdcMD(ps, PairProcessor(LennardJones()), dt=0.002)
        sim.run(200)
        np.testing.assert_allclose(ps.momentum(), 0.0, atol=1e-10)

    def test_smaller_dt_conserves_better(self):
        drifts = []
        for dt in (0.004, 0.001):
            ps = lj_gas(seed=3)
            sim = DdcMD(ps, PairProcessor(LennardJones()), dt=dt)
            sim.step()
            e0 = sim.total_energy()
            sim.run(int(0.4 / dt))
            drifts.append(abs(sim.total_energy() - e0) / abs(e0))
        assert drifts[1] < drifts[0]


class TestThermostatBarostat:
    def test_langevin_reaches_target_temperature(self):
        ps = lj_gas(n=125, box_l=8.0, t=0.1, seed=2)
        therm = LangevinThermostat(temperature=0.8, friction=5.0, seed=0)
        sim = DdcMD(ps, PairProcessor(LennardJones()), dt=0.002,
                    thermostat=therm)
        sim.run(1500)
        temps = []
        for _ in range(500):
            sim.step()
            temps.append(ps.temperature())
        assert np.mean(temps) == pytest.approx(0.8, rel=0.2)

    def test_langevin_zero_temperature_damps(self):
        ps = lj_gas(t=1.0, seed=4)
        therm = LangevinThermostat(temperature=0.0, friction=10.0)
        ke0 = ps.kinetic_energy()
        for _ in range(100):
            therm.apply(ps, 0.01)
        assert ps.kinetic_energy() < 0.01 * ke0

    def test_berendsen_moves_pressure_toward_target(self):
        ps = lj_gas(n=125, box_l=6.5, t=0.5, seed=5)
        baro = BerendsenBarostat(pressure=0.1, tau=5.0)
        proc = PairProcessor(LennardJones())
        sim = DdcMD(ps, proc, dt=0.002, barostat=baro,
                    thermostat=LangevinThermostat(0.5, 2.0, seed=1))
        sim.run(50)
        p_start = baro.measure_pressure(ps, sim.virial)
        sim.run(800)
        p_end = baro.measure_pressure(ps, sim.virial)
        assert abs(p_end - 0.1) < abs(p_start - 0.1) + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            LangevinThermostat(-1.0, 1.0)
        with pytest.raises(ValueError):
            LangevinThermostat(1.0, 0.0)
        with pytest.raises(ValueError):
            BerendsenBarostat(1.0, tau=0.0)
        with pytest.raises(ValueError):
            VelocityVerlet(lambda s: None, dt=0.0)


class TestShake:
    def test_constraints_enforced(self):
        box = PeriodicBox((10.0,) * 3)
        rng = np.random.default_rng(0)
        x = np.array([[1.0, 1, 1], [2.1, 1, 1], [3.3, 1, 1]])
        ps = ParticleSystem(x, box)
        shake = ShakeConstraints(
            np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0])
        )
        ps.x += 0.05 * rng.random((3, 3))
        shake.apply(ps)
        assert shake.max_violation(ps) < 1e-4

    def test_already_satisfied_zero_iterations(self):
        box = PeriodicBox((10.0,) * 3)
        ps = ParticleSystem(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box)
        shake = ShakeConstraints(np.array([0]), np.array([1]),
                                 np.array([1.0]))
        assert shake.apply(ps) == 0

    def test_heavier_particle_moves_less(self):
        box = PeriodicBox((10.0,) * 3)
        ps = ParticleSystem(
            np.array([[1.0, 1, 1], [2.2, 1, 1]]), box,
            masses=np.array([10.0, 1.0]),
        )
        x_before = ps.x.copy()
        shake = ShakeConstraints(np.array([0]), np.array([1]),
                                 np.array([1.0]))
        shake.apply(ps)
        move0 = np.abs(ps.x[0] - x_before[0]).max()
        move1 = np.abs(ps.x[1] - x_before[1]).max()
        assert move0 < move1

    def test_md_with_constraints_keeps_lengths(self):
        box = PeriodicBox((8.0,) * 3)
        ps = ParticleSystem.random_gas(16, box, temperature=0.3, seed=6,
                                       min_separation=1.5)
        pairs = np.arange(16).reshape(8, 2)
        # put bonded partners adjacent
        ps.x[pairs[:, 1]] = box.wrap(ps.x[pairs[:, 0]] + [0.9, 0, 0])
        shake = ShakeConstraints(pairs[:, 0], pairs[:, 1],
                                 np.full(8, 0.9), tol=1e-10)
        sim = DdcMD(ps, PairProcessor(LennardJones(cutoff=2.0)), dt=0.002,
                    constraints=shake)
        sim.run(100)
        assert shake.max_violation(ps) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            ShakeConstraints(np.array([0]), np.array([1]),
                             np.array([0.0]))
        with pytest.raises(ValueError):
            ShakeConstraints(np.array([0]), np.array([1, 2]),
                             np.array([1.0]))


class TestMembrane:
    def test_membrane_stays_bounded(self):
        system, proc, bonds, angles = make_martini_membrane(9, 32, seed=0)
        sim = DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles,
                    thermostat=LangevinThermostat(1.0, 5.0, seed=1))
        sim.run(400)
        assert np.isfinite(system.x).all()
        assert system.temperature() < 5.0

    def test_bilayer_structure_persists(self):
        """Heads stay outside tails along z after equilibration."""
        system, proc, bonds, angles = make_martini_membrane(9, 32, seed=2)
        z_mid = system.box.lengths[2] / 2
        sim = DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles,
                    thermostat=LangevinThermostat(0.5, 5.0, seed=3))
        sim.run(300)
        z = system.x[:, 2]
        heads = np.abs(z[system.types == 0] - z_mid)
        tails = np.abs(z[system.types == 1] - z_mid)
        assert np.median(heads) > np.median(tails)

    def test_composition(self):
        system, _, bonds, angles = make_martini_membrane(4, 10)
        # 4 lipids/leaflet * 2 leaflets * 3 beads + 10 water
        assert system.n == 34
        assert bonds.n_bonds == 16
        assert angles.n_angles == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            make_martini_membrane(0)


class TestDdcmdVsGromacs:
    def test_kernel_counts(self):
        assert DDCMD_KERNELS_PER_STEP == 46
        assert GROMACS_KERNELS_PER_STEP == 8
        ctx = ExecutionContext()
        ps = lj_gas(n=27, box_l=5.0)
        sim = DdcMD(ps, PairProcessor(LennardJones()), dt=0.002, ctx=ctx)
        sim.run(2)
        assert ctx.trace.total_launches == 2 * DDCMD_KERNELS_PER_STEP

    def test_fp32_baseline_runs_same_physics(self):
        system, proc, bonds, angles = make_martini_membrane(4, 10, seed=1)
        sim = GromacsBaseline(system, proc, dt=0.002, bonds=bonds,
                              angles=angles)
        sim.run(50)
        assert system.x.dtype == np.float32
        assert np.isfinite(system.x).all()

    def test_fp64_conserves_energy_better_than_fp32(self):
        def drift(cls):
            box = PeriodicBox((6.0,) * 3)
            ps = ParticleSystem.random_gas(64, box, temperature=0.5,
                                           seed=11, min_separation=1.0)
            sim = cls(ps, PairProcessor(LennardJones()), dt=0.002)
            sim.step()
            e0 = sim.total_energy()
            sim.run(300)
            return abs(sim.total_energy() - e0) / abs(e0)

        assert drift(DdcMD) <= drift(GromacsBaseline) * 1.5

    def test_modeled_step_times_paper_shape(self):
        """§4.6's comparison: ddcMD wins at 1 GPU (2.31 vs 2.88 ms),
        still wins at 4 GPUs, wins bigger inside MuMMI."""
        sierra = get_machine("sierra")
        r1 = modeled_step_times(sierra, gpus=1, cpu_sockets_for_md=1.0)
        assert r1["speedup"] > 1.1
        assert 1.5e-3 < r1["ddcmd"] < 3.5e-3   # ~2.31 ms
        assert 2.0e-3 < r1["gromacs"] < 4.0e-3  # ~2.88 ms
        r4 = modeled_step_times(sierra, gpus=4, cpu_sockets_for_md=2.0)
        assert r4["speedup"] > 1.1
        rm = modeled_step_times(sierra, gpus=4, cpu_sockets_for_md=2.0,
                                cpu_available_fraction=0.65)
        assert rm["speedup"] > r4["speedup"]
        assert 1.8 < rm["speedup"] < 3.5

    def test_mummi_penalty_mechanism(self):
        """GROMACS's MuMMI penalty exists because it is CPU-bound once
        the macro model takes cores; ddcMD is unaffected."""
        sierra = get_machine("sierra")
        rm = modeled_step_times(sierra, gpus=4, cpu_sockets_for_md=2.0,
                                cpu_available_fraction=0.5)
        full = modeled_step_times(sierra, gpus=4, cpu_sockets_for_md=2.0)
        assert rm["gromacs_cpu_bound"]
        assert rm["ddcmd"] == full["ddcmd"]

    def test_model_validation(self):
        sierra = get_machine("sierra")
        with pytest.raises(ValueError):
            modeled_step_times(get_machine("cori-ii"))
        with pytest.raises(ValueError):
            modeled_step_times(sierra, gpus=0)
        with pytest.raises(ValueError):
            modeled_step_times(sierra, cpu_available_fraction=0.0)
