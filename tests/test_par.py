"""Tests for the repro.par execution backends.

The load-bearing contract: for pure task functions, ``process`` (and
``thread``) results are BIT-EXACT equal to ``serial`` — across the raw
fan-out primitives, and across every wired call site (minikin sweeps,
KAVG/ASGD training, the three-stream ensemble, a MuMMI cycle).  Plus
the failure surface (typed worker errors instead of hangs), the
merge-on-join of child observability, shared-memory transport, and the
concurrency bugfixes in the trace sink (locked atomic appends,
monotonic span timestamps).
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.guard.errors import DeadlineExceededError
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod
from repro.par import (
    Backend,
    SharedArray,
    Task,
    WorkerCrashError,
    WorkerTaskError,
    backend_from_env,
    get_backend,
    map_fanout,
    parse_backend_spec,
    run_ensemble,
)

BACKENDS = ["serial", "thread:2", "process:2",
            "steal-thread:2", "steal-process:2"]
#: every parallel engine — the bit-exactness lists for call sites
PAR_BACKENDS = BACKENDS[1:]


# -- top-level task fns (process backend pickles them by qualname) --------


def _square(x):
    return x * x


def _norm_of_seeded(args):
    seq, n = args
    rng = np.random.default_rng(seq)
    return float(np.linalg.norm(rng.standard_normal(n)))


def _bump_counter(args):
    name, k = args
    metrics_mod.counter(name).add(k)
    return k


def _set_gauge(args):
    name, v = args
    metrics_mod.gauge(name).set(v)
    return v


def _traced(x):
    with obs.span("par-child", x=x):
        return x + 1


def _boom(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x


def _die(x):
    os._exit(13)


def _slow(x):
    time.sleep(0.2)
    return x


def _shared_sum(args):
    sx, scale = args
    return float(sx.asarray().sum()) * scale


def _shared_boom(args):
    sx, i = args
    if i == 2:
        raise ValueError("mid-fanout failure with staged arrays live")
    return float(sx.asarray().sum()) * i


def _mul(a, b, offset=0):
    return a * b + offset


# -- backend selection ----------------------------------------------------


class TestBackendSelection:
    def test_parse_spec(self):
        assert parse_backend_spec("serial") == ("serial", None)
        assert parse_backend_spec("process:4") == ("process", 4)
        assert parse_backend_spec(" Thread:2 ") == ("thread", 2)

    @pytest.mark.parametrize("bad", ["gpu", "process:x", "process:0", ""])
    def test_parse_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_backend_spec(bad)

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            Backend("mpi", 2)
        with pytest.raises(ValueError):
            Backend("thread", 0)

    def test_env_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        assert backend_from_env() == "serial"
        assert get_backend().kind == "serial"
        assert get_backend().workers == 1

    def test_env_spec_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "thread:3")
        be = get_backend()
        assert (be.kind, be.workers) == ("thread", 3)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAR", "thread:3")
        assert get_backend("serial").kind == "serial"
        assert get_backend(Backend("process", 2)).workers == 2

    def test_workers_override(self):
        assert get_backend("process", workers=5).workers == 5
        assert get_backend(Backend("process", 2), workers=5).workers == 5


# -- fan-out primitives ---------------------------------------------------


class TestMapFanout:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_order(self, backend):
        assert map_fanout(_square, range(20), backend=backend) == [
            x * x for x in range(20)
        ]

    def test_empty_items(self):
        assert map_fanout(_square, [], backend="process:2") == []

    def test_bit_exact_across_backends_and_chunks(self):
        seqs = np.random.SeedSequence(5).spawn(9)
        items = [(seqs[i], 64) for i in range(9)]
        ref = map_fanout(_norm_of_seeded, items, backend="serial")
        for backend in ("thread:2", "process:2", "process:3"):
            for chunk in (None, 1, 4):
                got = map_fanout(_norm_of_seeded, items, backend=backend,
                                 chunk_size=chunk)
                assert got == ref  # float equality, not approx

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_ensemble_heterogeneous(self, backend):
        tasks = [
            Task(_square, (7,), name="sq"),
            Task(_mul, (3, 4), kwargs={"offset": 1}, name="mul"),
        ]
        assert run_ensemble(tasks, backend=backend) == [49, 13]

    def test_run_ensemble_rejects_non_tasks(self):
        with pytest.raises(TypeError):
            run_ensemble([lambda: 1])


# -- failure surface ------------------------------------------------------


class TestFailures:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_task_error_is_typed(self, backend):
        with pytest.raises(WorkerTaskError) as ei:
            map_fanout(_boom, range(6), backend=backend)
        err = ei.value
        assert err.task_index == 3
        assert err.error_type == "ValueError"
        assert "bad item 3" in str(err)

    def test_in_process_error_chains_cause(self):
        with pytest.raises(WorkerTaskError) as ei:
            map_fanout(_boom, range(6), backend="serial")
        assert isinstance(ei.value.__cause__, ValueError)

    def test_process_error_carries_worker_traceback(self):
        with pytest.raises(WorkerTaskError) as ei:
            map_fanout(_boom, range(6), backend="process:2")
        assert "ValueError" in ei.value.worker_traceback

    def test_crashed_worker_raises_not_hangs(self):
        with pytest.raises(WorkerCrashError):
            map_fanout(_die, range(4), backend="process:2")
        # the broken pool was evicted: the next fan-out works
        assert map_fanout(_square, [2, 3], backend="process:2") == [4, 9]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadline_surfaces_typed_error(self, backend):
        with pytest.raises(DeadlineExceededError):
            map_fanout(_slow, range(8), backend=backend, deadline=0.05)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            map_fanout(_square, [1], deadline=0.0)


# -- observability merge-on-join ------------------------------------------


class TestObsMerge:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_deltas_merged(self, backend):
        name = f"par.test.merge.{backend.replace(':', '_')}"
        before = metrics_mod.snapshot()["counters"].get(name, 0)
        map_fanout(_bump_counter, [(name, 2)] * 6, backend=backend)
        after = metrics_mod.snapshot()["counters"].get(name, 0)
        assert after - before == 12

    def test_gauge_merged_from_process(self):
        name = "par.test.gauge"
        map_fanout(_set_gauge, [(name, 4.5)], backend="process:2")
        assert metrics_mod.snapshot()["gauges"][name] == 4.5

    def test_spans_merged_with_worker_pid(self):
        sink = trace_mod.RingBufferSink()
        obs.TRACER.enable(sink)
        try:
            map_fanout(_traced, range(6), backend="process:2")
        finally:
            obs.TRACER.remove_sink(sink)
            obs.TRACER.disable()
        child = [r for r in sink if r["name"] == "par-child"]
        assert len(child) == 6
        assert all(r["worker_pid"] != os.getpid() for r in child)
        assert sorted(r["attrs"]["x"] for r in child) == list(range(6))

    def test_fanout_counters_recorded(self):
        before = metrics_mod.snapshot()["counters"]
        map_fanout(_square, range(5), backend="thread:2")
        after = metrics_mod.snapshot()["counters"]

        def delta(key):
            return after.get(key, 0) - before.get(key, 0)

        assert delta("par.fanouts") == 1
        assert delta("par.fanouts.thread") == 1
        assert delta("par.tasks_dispatched") == 5


# -- shared-memory transport ----------------------------------------------


class TestSharedArray:
    def test_inline_for_serial_and_thread(self):
        x = np.arange(6.0)
        for kind in ("serial", "thread"):
            sa = SharedArray.share(x, kind)
            assert sa.asarray() is x
            sa.unlink()

    def test_process_roundtrip_zero_copy(self):
        x = np.linspace(0.0, 1.0, 512).reshape(8, 64)
        sa = SharedArray.share(x, "process")
        try:
            out = map_fanout(_shared_sum, [(sa, k) for k in (1.0, 2.0)],
                             backend="process:2")
            assert out == [float(x.sum()), 2.0 * float(x.sum())]
        finally:
            sa.unlink()

    def test_close_is_idempotent_and_fences_asarray(self):
        from repro.par.errors import ParError

        x = np.arange(8.0)
        sa = SharedArray.share(x, "process")
        sa.unlink()
        sa.unlink()
        assert sa.closed
        with pytest.raises(ParError):
            sa.asarray()

    def test_attach_after_close_raises_typed(self):
        import pickle

        from repro.par.errors import ParError

        sa = SharedArray.share(np.arange(4.0), "process")
        blob = pickle.dumps(sa)
        sa.close()
        with pytest.raises(ParError):
            pickle.loads(blob)
        # and pickling an already-closed handle is refused up front
        with pytest.raises(ParError):
            pickle.dumps(sa)

    def test_addref_keeps_segment_alive(self):
        from repro.par import live_segments

        sa = SharedArray.share(np.arange(4.0), "process")
        ref = sa.addref()
        sa.close()
        assert len(live_segments()) == 1  # ref still holds it
        assert float(ref.asarray().sum()) == 6.0
        ref.close()
        assert live_segments() == ()

    def test_stage_releases_on_worker_exception(self):
        from repro.par import ShmStage, live_segments

        x = np.arange(12.0)
        for backend in ("process:2", "steal-process:2"):
            with pytest.raises(WorkerTaskError):
                with ShmStage("process") as stage:
                    sx = stage.share(x)
                    map_fanout(_shared_boom, [(sx, i) for i in range(6)],
                               backend=backend)
            assert live_segments() == ()

    def test_suite_leaves_no_leaked_segments(self):
        from repro.par import live_segments, sweep_leaked_segments

        assert sweep_leaked_segments() == []
        assert live_segments() == ()


# -- wired call sites: process must be bit-exact vs serial ----------------


class TestCallSitesBitExact:
    def test_minikin_sweep(self):
        from repro.kinetics import make_model, sweep_conditions

        model = make_model("small", seed=3)
        grids = ([60.0, 150.0], [1e20, 3e20, 1e21])
        ref = sweep_conditions(model, *grids, backend="serial")
        for backend in PAR_BACKENDS:
            got = sweep_conditions(model, *grids, backend=backend)
            assert np.array_equal(ref, got)

    def test_kavg_round(self):
        from repro.dtrain.distributed import kavg_train
        from repro.dtrain.nn import MLP

        rng = np.random.default_rng(0)
        x = rng.standard_normal((120, 6))
        y = rng.integers(0, 3, 120)

        def run(backend):
            model = MLP(6, 3, seed=1)
            hist = kavg_train(model, x, y, n_learners=3, k_steps=4,
                              rounds=3, seed=5, backend=backend)
            return hist, model.get_params()

        ref_hist, ref_params = run("serial")
        for backend in PAR_BACKENDS:
            hist, params = run(backend)
            assert hist == ref_hist
            assert np.array_equal(params, ref_params)

    def test_asgd_bounded_staleness(self):
        from repro.dtrain.distributed import AsgdServer
        from repro.dtrain.nn import MLP

        rng = np.random.default_rng(1)
        x = rng.standard_normal((90, 5))
        y = rng.integers(0, 3, 90)

        def run(backend):
            server = AsgdServer(MLP(5, 3, seed=2), lr=0.1, staleness=3)
            losses = server.train(x, y, n_updates=25, seed=9,
                                  backend=backend)
            return losses, server.params

        ref_losses, ref_params = run("serial")
        for backend in PAR_BACKENDS:
            losses, params = run(backend)
            assert losses == ref_losses
            assert np.array_equal(params, ref_params)

    def test_stream_ensemble(self):
        from repro.dtrain.streams import (
            combine_and_score,
            make_stream_dataset,
            train_stream_classifiers,
        )

        data = make_stream_dataset("hmdb51-like", n_train_per_class=6,
                                   n_val_per_class=3, dim=8, seed=2)

        def run(backend):
            models = train_stream_classifiers(data, epochs=3, seed=4,
                                              backend=backend)
            return combine_and_score(data, models, seed=4, backend=backend)

        ref = run("serial")
        for backend in PAR_BACKENDS:
            assert run(backend) == ref

    def test_mummi_cycle(self):
        from repro.workflow.mummi import MummiCampaign

        def run(backend):
            camp = MummiCampaign(n_gpus=4, jobs_per_cycle=6, seed=7,
                                 backend=backend)
            camp.run(1)
            return (np.asarray(camp.explored), camp.macro.field.copy(),
                    [r.observable for r in camp.results])

        ref = run("serial")
        for backend in PAR_BACKENDS:
            got = run(backend)
            assert all(np.array_equal(a, b) for a, b in zip(ref, got))


# -- trace-sink concurrency bugfixes --------------------------------------


class TestTraceSinkFixes:
    def test_file_sink_concurrent_writes_not_interleaved(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = trace_mod.FileSink(str(path))
        rec = {"name": "x" * 200, "i": 0}
        threads = [
            threading.Thread(
                target=lambda: [sink.emit(dict(rec, i=i)) for i in range(50)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 400
        for line in lines:  # every line parses: no torn/interleaved writes
            assert json.loads(line)["name"] == "x" * 200

    def test_file_sink_close_idempotent_then_emit_raises(self, tmp_path):
        sink = trace_mod.FileSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"name": "late"})

    def test_span_timestamps_monotonic_and_consistent(self):
        sink = trace_mod.RingBufferSink()
        obs.TRACER.enable(sink)
        try:
            for i in range(30):
                with obs.span(f"s{i}"):
                    pass
        finally:
            obs.TRACER.remove_sink(sink)
            obs.TRACER.disable()
        recs = list(sink)
        starts = [r["ts"] for r in recs]
        # start order == emit order (perf_counter anchored to one epoch;
        # the old per-span time.time() could go backwards between spans)
        assert starts == sorted(starts)
        for r in recs:
            assert r["dur"] >= 0.0
        # nested span: child's [ts, ts+dur] inside the parent's
        obs.TRACER.enable(sink2 := trace_mod.RingBufferSink())
        try:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        finally:
            obs.TRACER.remove_sink(sink2)
            obs.TRACER.disable()
        by_name = {r["name"]: r for r in sink2}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
