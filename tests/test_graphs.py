"""Tests for the HavoqGT proxy: RMAT, BFS, Table 2 scaling model."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.machine import get_machine
from repro.graphs.bfs import (
    _ranges,
    bfs_csr,
    build_csr,
    measured_teps,
    validate_bfs,
)
from repro.graphs.rmat import GRAPH500_PARAMS, rmat_edges
from repro.graphs.scaling import (
    TABLE2,
    graph_bytes,
    max_scale,
    modeled_gteps,
    storage_tier,
    table2_row,
)


class TestRmat:
    def test_edge_count_and_range(self):
        edges = rmat_edges(8, edge_factor=16, seed=0)
        assert edges.shape == (16 * 256, 2)
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_skewed_degree_distribution(self):
        """RMAT graphs must be heavy-tailed: the top 5% of vertices own
        a disproportionate share of edges."""
        edges = rmat_edges(12, seed=1)
        counts = np.bincount(edges.ravel(), minlength=1 << 12)
        counts = np.sort(counts)[::-1]
        top5 = counts[: (1 << 12) // 20].sum()
        assert top5 > 0.3 * counts.sum()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            rmat_edges(6, seed=5), rmat_edges(6, seed=5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_edges(0)
        with pytest.raises(ValueError):
            rmat_edges(5, edge_factor=0)
        with pytest.raises(ValueError):
            rmat_edges(5, params=(0.5, 0.5, 0.5, 0.5))


class TestRangesHelper:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)),
                    min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, runs):
        starts = np.array([r[0] for r in runs], dtype=np.int64)
        counts = np.array([r[1] for r in runs], dtype=np.int64)
        expect = np.concatenate(
            [np.arange(s, s + c) for s, c in runs]
        ) if counts.sum() else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(_ranges(starts, counts), expect)


class TestBfs:
    @pytest.fixture(scope="class")
    def graph(self):
        edges = rmat_edges(9, seed=2)
        return build_csr(edges, 1 << 9)

    def test_bfs_validates(self, graph):
        degrees = np.diff(graph.indptr)
        src = int(degrees.argmax())
        parents, levels, _ = bfs_csr(graph, src)
        validate_bfs(graph, src, parents, levels)

    def test_levels_match_networkx(self, graph):
        import networkx as nx

        src = int(np.diff(graph.indptr).argmax())
        _, levels, _ = bfs_csr(graph, src)
        g = nx.from_scipy_sparse_array(graph)
        ref = nx.single_source_shortest_path_length(g, src)
        for v, d in ref.items():
            assert levels[v] == d
        # unreached in one <=> unreached in the other
        assert (levels >= 0).sum() == len(ref)

    def test_path_graph_levels(self):
        edges = np.array([[i, i + 1] for i in range(9)])
        adj = build_csr(edges, 10)
        parents, levels, _ = bfs_csr(adj, 0)
        np.testing.assert_array_equal(levels, np.arange(10))

    def test_disconnected_unreached(self):
        edges = np.array([[0, 1], [2, 3]])
        adj = build_csr(edges, 4)
        _, levels, _ = bfs_csr(adj, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_self_loops_dropped(self):
        edges = np.array([[0, 0], [0, 1]])
        adj = build_csr(edges, 2)
        assert adj[0, 0] == 0
        assert adj[0, 1] == 1

    def test_validation_catches_corruption(self, graph):
        src = int(np.diff(graph.indptr).argmax())
        parents, levels, _ = bfs_csr(graph, src)
        bad_levels = levels.copy()
        reached = np.flatnonzero(levels > 0)
        bad_levels[reached[0]] += 5
        with pytest.raises(AssertionError):
            validate_bfs(graph, src, parents, bad_levels)

    def test_measured_teps_positive(self, graph):
        assert measured_teps(graph, n_sources=2) > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            build_csr(np.zeros((3, 3)), 4)
        with pytest.raises(ValueError):
            build_csr(np.array([[0, 9]]), 4)
        adj = build_csr(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            bfs_csr(adj, 5)


class TestScalingModel:
    def test_graph_bytes_doubles_per_scale(self):
        assert graph_bytes(20) == pytest.approx(2 * graph_bytes(19))

    def test_storage_tiers(self):
        sierra = get_machine("sierra")
        # small graph: DRAM; huge: NVMe; absurd: infeasible
        assert storage_tier(sierra, 1, 28) == "dram"
        assert storage_tier(sierra, 1, 33) == "nvme"
        with pytest.raises(ValueError):
            storage_tier(sierra, 1, 40)

    def test_nvme_extends_max_scale(self):
        """The §4.4 lesson: NVMe lets nodes hold far larger graphs."""
        sierra = get_machine("sierra")
        bgq = get_machine("bgq")  # no NVMe
        assert max_scale(sierra, 1) > max_scale(bgq, 1)

    def test_table2_scales_feasible(self):
        """Every Table 2 configuration must fit under the model."""
        for name, (_, nodes, scale, _) in TABLE2.items():
            storage_tier(get_machine(name), nodes, scale)  # must not raise

    def test_table2_rows_within_35_percent(self):
        for name in TABLE2:
            row = table2_row(name)
            assert 0.65 < row["ratio"] < 1.35, (name, row)

    def test_final_system_wins_by_orders_of_magnitude(self):
        kraken = table2_row("kraken")["modeled_gteps"]
        final = table2_row("sierra")["modeled_gteps"]
        assert final / kraken > 500

    def test_gteps_grow_with_nodes_sublinearly(self):
        sierra = get_machine("sierra")
        g256 = modeled_gteps(sierra, 256, 38)
        g1024 = modeled_gteps(sierra, 1024, 40)
        assert g1024 > g256
        assert g1024 < 4 * g256  # distributed penalty bites

    def test_unknown_row(self):
        with pytest.raises(KeyError):
            table2_row("summit")

    def test_node_bounds(self):
        with pytest.raises(ValueError):
            storage_tier(get_machine("kraken"), 2, 30)  # 1-node machine
