"""Tests for PCG and GMRES."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.csr import CsrMatrix
from repro.solvers.krylov import gmres, pcg
from repro.solvers.problems import poisson_2d, random_spd


@pytest.fixture
def spd_system():
    a = poisson_2d(12)
    rng = np.random.default_rng(3)
    x_true = rng.random(a.shape[0])
    return CsrMatrix(a), a @ x_true, x_true


class TestPcg:
    def test_converges_to_solution(self, spd_system):
        a, b, x_true = spd_system
        x, info = pcg(a, b, tol=1e-12, max_iter=1000)
        assert info.converged
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_residual_history_decreasing_envelope(self, spd_system):
        a, b, _ = spd_system
        _, info = pcg(a, b, tol=1e-10, max_iter=1000)
        # CG residuals oscillate but the trend must be down: final << first
        assert info.residual_norms[-1] < 1e-8 * info.residual_norms[0]

    def test_identity_one_iteration(self):
        a = CsrMatrix(sp.identity(50, format="csr"))
        b = np.ones(50)
        x, info = pcg(a, b)
        assert info.iterations <= 2
        np.testing.assert_allclose(x, b)

    def test_zero_rhs_converges_immediately(self, spd_system):
        a, _, _ = spd_system
        x, info = pcg(a, np.zeros(a.shape[0]))
        assert info.converged
        assert info.iterations == 0
        np.testing.assert_allclose(x, 0.0)

    def test_initial_guess_respected(self, spd_system):
        a, b, x_true = spd_system
        x, info = pcg(a, b, x0=x_true.copy(), tol=1e-10)
        assert info.iterations == 0

    def test_jacobi_preconditioner_reduces_iterations(self):
        a_raw = random_spd(200, density=0.05, seed=0)
        a = CsrMatrix(a_raw)
        b = np.ones(200)
        inv_d = 1.0 / a_raw.diagonal()
        _, plain = pcg(a, b, tol=1e-10, max_iter=2000)
        _, prec = pcg(a, b, preconditioner=lambda r: inv_d * r, tol=1e-10,
                      max_iter=2000)
        assert prec.iterations <= plain.iterations

    def test_callable_operator(self):
        d = np.array([1.0, 2.0, 3.0])
        x, info = pcg(lambda v: d * v, np.array([1.0, 4.0, 9.0]), tol=1e-12)
        assert info.converged
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])

    def test_non_spd_detected(self):
        a = CsrMatrix(np.diag([1.0, -1.0]))
        x, info = pcg(a, np.ones(2), max_iter=10)
        assert not info.converged

    def test_max_iter_zero(self, spd_system):
        a, b, _ = spd_system
        _, info = pcg(a, b, max_iter=0)
        assert not info.converged

    def test_negative_max_iter(self, spd_system):
        a, b, _ = spd_system
        with pytest.raises(ValueError):
            pcg(a, b, max_iter=-1)

    def test_convergence_info_properties(self, spd_system):
        a, b, _ = spd_system
        _, info = pcg(a, b, tol=1e-10, max_iter=500)
        assert info.final_residual == info.residual_norms[-1]
        assert 0 < info.reduction < 1e-8


class TestGmres:
    def nonsym_system(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        a = sp.random(n, n, density=0.15, random_state=rng).tocsr()
        a = a + sp.diags(5.0 + rng.random(n))
        x_true = rng.random(n)
        return CsrMatrix(a), a @ x_true, x_true

    def test_converges_nonsymmetric(self):
        a, b, x_true = self.nonsym_system()
        x, info = gmres(a, b, tol=1e-12, max_iter=500)
        assert info.converged
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_restart_still_converges(self):
        a, b, x_true = self.nonsym_system()
        x, info = gmres(a, b, tol=1e-10, restart=5, max_iter=2000)
        assert info.converged
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    def test_zero_rhs(self):
        a, _, _ = self.nonsym_system()
        x, info = gmres(a, np.zeros(a.shape[0]))
        assert info.converged and info.iterations == 0

    def test_preconditioner_helps(self):
        a, b, _ = self.nonsym_system(n=120, seed=2)
        inv_d = 1.0 / a.diagonal()
        _, plain = gmres(a, b, tol=1e-10, max_iter=500)
        _, prec = gmres(a, b, preconditioner=lambda r: inv_d * r, tol=1e-10,
                        max_iter=500)
        assert prec.iterations <= plain.iterations

    def test_spd_also_works(self):
        a = CsrMatrix(poisson_2d(8))
        b = np.ones(64)
        x, info = gmres(a, b, tol=1e-10, max_iter=300)
        assert info.converged
        np.testing.assert_allclose(a.matvec(x), b, atol=1e-7)

    def test_bad_restart(self):
        a, b, _ = self.nonsym_system()
        with pytest.raises(ValueError):
            gmres(a, b, restart=0)

    def test_identity_immediate(self):
        a = CsrMatrix(sp.identity(10, format="csr"))
        x, info = gmres(a, np.ones(10), tol=1e-12)
        assert info.converged
        np.testing.assert_allclose(x, 1.0)
