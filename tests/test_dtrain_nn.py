"""Tests for the NN substrate and distributed-training simulators."""

import numpy as np
import pytest

from repro.dtrain.distributed import (
    AsgdServer,
    kavg_reduction_count,
    kavg_train,
    sgd_train,
)
from repro.dtrain.nn import MLP, Dense, softmax
from repro.util.rng import make_rng


def blob_data(n_per_class=60, n_classes=3, dim=6, sep=2.5, seed=0):
    rng = make_rng(seed)
    protos = rng.normal(0, 1, (n_classes, dim)) * sep
    xs, ys = [], []
    for c in range(n_classes):
        xs.append(protos[c] + rng.normal(0, 1, (n_per_class, dim)))
        ys.extend([c] * n_per_class)
    return np.concatenate(xs), np.array(ys)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(p).all()
        assert p[0, 1] > p[0, 0]


class TestMlp:
    def test_gradient_matches_finite_differences(self):
        model = MLP(5, 3, hidden=(4,), seed=0)
        rng = make_rng(1)
        x = rng.random((7, 5))
        y = rng.integers(0, 3, 7)
        _, grad = model.gradient(x, y)
        params = model.get_params()
        eps = 1e-6
        for i in rng.choice(params.size, 20, replace=False):
            p = params.copy()
            p[i] += eps
            model.set_params(p)
            lp = model.loss(x, y)
            p[i] -= 2 * eps
            model.set_params(p)
            lm = model.loss(x, y)
            fd = (lp - lm) / (2 * eps)
            assert grad[i] == pytest.approx(fd, abs=1e-6)

    def test_param_roundtrip(self):
        model = MLP(4, 2, hidden=(3,), seed=0)
        p = model.get_params()
        model.set_params(p * 2)
        np.testing.assert_allclose(model.get_params(), p * 2)

    def test_param_length_check(self):
        model = MLP(4, 2)
        with pytest.raises(ValueError):
            model.set_params(np.zeros(3))

    def test_sgd_learns_separable_blobs(self):
        x, y = blob_data()
        model = MLP(x.shape[1], 3, seed=0)
        history = sgd_train(model, x, y, lr=0.3, epochs=20, seed=0)
        assert history[-1] < history[0]
        assert model.accuracy(x, y) > 0.9

    def test_hidden_layer_helps_xor(self):
        rng = make_rng(0)
        x = rng.integers(0, 2, (200, 2)).astype(float)
        y = (x[:, 0].astype(int) ^ x[:, 1].astype(int))
        x += rng.normal(0, 0.05, x.shape)
        linear = MLP(2, 2, seed=1)
        deep = MLP(2, 2, hidden=(8,), seed=1)
        sgd_train(linear, x, y, lr=0.5, epochs=60, seed=0)
        sgd_train(deep, x, y, lr=0.5, epochs=60, seed=0)
        assert deep.accuracy(x, y) > 0.95
        assert deep.accuracy(x, y) > linear.accuracy(x, y)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP(4, 1)
        with pytest.raises(ValueError):
            Dense(0, 3)
        model = MLP(4, 2)
        x, y = blob_data(10, 2, 4)
        with pytest.raises(ValueError):
            sgd_train(model, x, y, lr=0.0)


class TestAsgd:
    def test_zero_staleness_converges(self):
        x, y = blob_data()
        model = MLP(x.shape[1], 3, seed=0)
        server = AsgdServer(model, lr=0.2, staleness=0)
        server.train(x, y, n_updates=400, seed=0)
        assert model.accuracy(x, y) > 0.9

    def test_staleness_degrades_convergence(self):
        """The paper's ASGD finding: at a fixed practical learning
        rate, growing staleness hurts."""
        x, y = blob_data(seed=3)
        final_losses = []
        for staleness in (0, 16):
            model = MLP(x.shape[1], 3, seed=0)
            server = AsgdServer(model, lr=0.5, staleness=staleness)
            server.train(x, y, n_updates=300, seed=1)
            final_losses.append(model.loss(x, y))
        assert final_losses[1] > final_losses[0]

    def test_small_lr_restores_stale_convergence(self):
        """...and the fix (tiny lr) is impractical: many more updates."""
        x, y = blob_data(seed=3)
        model = MLP(x.shape[1], 3, seed=0)
        server = AsgdServer(model, lr=0.02, staleness=16)
        server.train(x, y, n_updates=2000, seed=1)
        assert model.accuracy(x, y) > 0.85

    def test_validation(self):
        model = MLP(4, 2)
        with pytest.raises(ValueError):
            AsgdServer(model, lr=0.0)
        with pytest.raises(ValueError):
            AsgdServer(model, lr=0.1, staleness=-1)
        server = AsgdServer(model, lr=0.1)
        with pytest.raises(ValueError):
            server.train(np.zeros((2, 4)), np.zeros(2, dtype=int), -1)


class TestKavg:
    def test_converges(self):
        x, y = blob_data()
        model = MLP(x.shape[1], 3, seed=0)
        history = kavg_train(model, x, y, n_learners=4, k_steps=4,
                             lr=0.2, rounds=15, seed=0)
        assert history[-1] < history[0]
        assert model.accuracy(x, y) > 0.9

    def test_k_greater_than_one_competitive(self):
        """§4.5: 'the optimal K for convergence is usually greater than
        one, so frequent global reductions are unnecessary' — per
        *reduction*, K=8 beats K=1."""
        x, y = blob_data(seed=5)
        losses = {}
        for k_steps in (1, 8):
            model = MLP(x.shape[1], 3, seed=0)
            # same number of global reductions for both
            history = kavg_train(model, x, y, n_learners=4,
                                 k_steps=k_steps, lr=0.2, rounds=10, seed=0)
            losses[k_steps] = history[-1]
        assert losses[8] < losses[1]

    def test_bulk_synchronous_communication_count(self):
        assert kavg_reduction_count(rounds=25) == 25

    def test_kavg_beats_stale_asgd_at_same_lr(self):
        """The headline comparison: on an ill-conditioned problem (high
        curvature along some directions), a practical lr that is fine
        for synchronous/KAVG updates makes stale ASGD gradients
        overshoot — KAVG reaches a much better model for the same
        total gradient evaluations."""
        x, y = blob_data(seed=7)
        x = x.copy()
        x[:, :2] *= 6.0  # stiff directions
        lr = 0.05
        n_learners, k_steps, rounds = 4, 8, 15
        total_updates = n_learners * k_steps * rounds
        kavg_model = MLP(x.shape[1], 3, seed=0)
        kavg_train(kavg_model, x, y, n_learners=n_learners,
                   k_steps=k_steps, lr=lr, rounds=rounds, seed=0)
        asgd_model = MLP(x.shape[1], 3, seed=0)
        AsgdServer(asgd_model, lr=lr, staleness=n_learners * 4).train(
            x, y, n_updates=total_updates, seed=0
        )
        assert kavg_model.loss(x, y) < asgd_model.loss(x, y)

    def test_validation(self):
        model = MLP(4, 2)
        x, y = blob_data(10, 2, 4)
        with pytest.raises(ValueError):
            kavg_train(model, x, y, n_learners=0, k_steps=1)
        with pytest.raises(ValueError):
            kavg_train(model, x, y, n_learners=2, k_steps=0)
        with pytest.raises(ValueError):
            kavg_train(model, x, y, n_learners=2, k_steps=1, lr=-1.0)
