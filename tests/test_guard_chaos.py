"""Chaos matrix: FaultInjector x sentinel trips x fallback chains.

The acceptance contract of the guard layer:

- **bit-exact when no rung fires** — with guards disabled (and with
  guards strict on a *healthy* problem) every instrumented path
  produces byte-identical results to the uninstrumented computation;
- **deterministic rung selection when one does** — replaying a seeded
  chaos scenario serves the request from the same rung every time;
- **never an unhandled exception** — a campaign under a fault storm
  ends every scenario in a recorded fallback rung or a shed decision,
  not a stack trace.
"""

import numpy as np
import pytest

from repro.guard import (
    AdmissionController,
    CircuitBreaker,
    FallbackExhaustedError,
    NumericalHealthError,
    amg_fallback_chain,
    bdf_fallback_chain,
    guard_override,
)
from repro.resilience.faults import FaultInjector
from repro.solvers.csr import CsrMatrix


def lap1d(n):
    a = np.zeros((n, n))
    for i in range(n):
        a[i, i] = 2.0
        if i:
            a[i, i - 1] = a[i - 1, i] = -1.0
    return a


def decay_rhs(t, u):
    return -u


def decay_lin(gamma, t, u):
    return lambda r: r / (1.0 + gamma)


# ---------------------------------------------------------------------------
# bit-exactness: guards off == guards strict when nothing trips
# ---------------------------------------------------------------------------


class TestBitExactWhenHealthy:
    def test_pcg_identical(self):
        from repro.solvers.krylov import pcg

        a = CsrMatrix(lap1d(48))
        b = np.sin(np.arange(48))
        with guard_override("off"):
            x_off, info_off = pcg(a, b, tol=1e-10, max_iter=500)
        with guard_override("strict"):
            x_on, info_on = pcg(a, b, tol=1e-10, max_iter=500)
        assert np.array_equal(x_off, x_on)
        assert info_off.iterations == info_on.iterations
        assert info_off.residual_norms == info_on.residual_norms

    def test_gmres_identical(self):
        from repro.solvers.krylov import gmres

        n = 40
        rng = np.random.default_rng(0)
        a = CsrMatrix(lap1d(n) + 0.1 * np.diag(rng.random(n)))
        b = rng.normal(size=n)
        with guard_override("off"):
            x_off, _ = gmres(a, b, tol=1e-10)
        with guard_override("strict"):
            x_on, _ = gmres(a, b, tol=1e-10)
        assert np.array_equal(x_off, x_on)

    def test_amg_identical(self):
        from repro.solvers.boomeramg import BoomerAMG

        a = CsrMatrix(lap1d(96))
        b = np.cos(np.arange(96))

        def solve():
            amg = BoomerAMG()
            amg.setup(a)
            return amg.solve(b, tol=1e-10, max_iter=60)

        with guard_override("off"):
            x_off, _ = solve()
        with guard_override("strict"):
            x_on, _ = solve()
        assert np.array_equal(x_off, x_on)

    def test_bdf_identical(self):
        from repro.ode.bdf import BdfIntegrator

        def run():
            return BdfIntegrator(decay_rhs, decay_lin).integrate(
                0.0, np.array([1.0, 2.0]), 1.0
            )

        with guard_override("off"):
            t_off, u_off = run()
        with guard_override("strict"):
            t_on, u_on = run()
        assert np.array_equal(t_off, t_on)
        assert np.array_equal(u_off, u_on)

    def test_ddcmd_trajectory_identical(self):
        from repro.md.ddcmd import DdcMD
        from repro.md.particles import ParticleSystem, PeriodicBox
        from repro.md.potentials import LennardJones, PairProcessor

        def run():
            box = PeriodicBox((6.0,) * 3)
            ps = ParticleSystem.random_gas(
                48, box, temperature=0.5, seed=4, min_separation=1.0
            )
            sim = DdcMD(ps, PairProcessor(LennardJones()), dt=0.002)
            sim.run(40)
            return ps.x.copy(), ps.v.copy()

        with guard_override("off"):
            x_off, v_off = run()
        with guard_override("strict"):
            x_on, v_on = run()
        assert np.array_equal(x_off, x_on)
        assert np.array_equal(v_off, v_on)

    def test_ionmodel_identical(self):
        from repro.cardioid.ionmodels import HodgkinHuxleyModel

        def run():
            model = HodgkinHuxleyModel(16)
            stim = np.full(16, 10.0)
            for _ in range(300):
                model.step_reaction(0.01, i_stim=stim)
            return model.state()

        with guard_override("off"):
            s_off = run()
        with guard_override("strict"):
            s_on = run()
        assert np.array_equal(s_off, s_on)

    def test_sched_result_identical(self):
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator, Job

        jobs = [Job(job_id=i, arrival=float(i), service=5.0)
                for i in range(20)]

        def run():
            fi = FaultInjector(mtbf=30.0, seed=9)
            return ClusterSimulator(3).run(jobs, Fcfs(),
                                           fault_injector=fi)

        with guard_override("off"):
            r_off = run()
        with guard_override("strict"):
            r_on = run()
        assert r_off == r_on

    def test_mummi_campaign_identical(self):
        from repro.workflow.mummi import MummiCampaign

        def run():
            fi = FaultInjector(mtbf=200.0, seed=1)
            camp = MummiCampaign(n_gpus=4, jobs_per_cycle=6,
                                 fault_injector=fi, seed=5)
            camp.run(3)
            return list(camp.explored), camp.wall_time

        with guard_override("off"):
            e_off = run()
        with guard_override("strict"):
            e_on = run()
        assert e_off == e_on


# ---------------------------------------------------------------------------
# chaos matrix: seeded corruption -> deterministic rung / shed, no crash
# ---------------------------------------------------------------------------


AMG_SCENARIOS = ["healthy", "sdc_spike", "overflow_b"]


class TestAmgChaosMatrix:
    def _scenario_b(self, scenario, seed):
        n = 64
        b = np.sin(0.1 * np.arange(n) + seed)
        injector = FaultInjector(sdc_per_step=1.0, sdc_magnitude=1e4,
                                 seed=seed)
        if scenario == "sdc_spike":
            # a silent data corruption in the RHS: large but finite,
            # every rung can still solve it
            k = int(injector.rng.integers(n))
            b[k] += injector.sdc_magnitude
        elif scenario == "overflow_b":
            # non-physical scale: AMG/PCG sentinels trip their
            # magnitude bound; only the dense rescue survives
            b *= 1e150
        return b

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scenario", AMG_SCENARIOS)
    def test_every_scenario_ends_in_a_rung(self, scenario, seed):
        a = lap1d(64)
        b = self._scenario_b(scenario, seed)
        with guard_override("strict"):
            chain = amg_fallback_chain(a, tol=1e-8, max_iter=200)
            out = chain.run(b)  # must not raise
        assert out.rung_name in [r.name for r in chain.rungs]
        assert chain.served == [out.rung_name]
        # the served rung really solved the system
        res = np.linalg.norm(lap1d(64) @ out.value - b)
        assert res <= 1e-6 * max(1.0, float(np.linalg.norm(b)))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scenario", AMG_SCENARIOS)
    def test_rung_selection_deterministic(self, scenario, seed):
        a = lap1d(64)

        def go():
            b = self._scenario_b(scenario, seed)
            with guard_override("strict"):
                chain = amg_fallback_chain(a, tol=1e-8, max_iter=200)
                out = chain.run(b)
            return out.rung_name, out.value

        r1, x1 = go()
        r2, x2 = go()
        assert r1 == r2
        assert np.array_equal(x1, x2)

    def test_healthy_serves_first_rung_bit_exact(self):
        a = lap1d(64)
        b = self._scenario_b("healthy", 0)
        with guard_override("strict"):
            chain = amg_fallback_chain(a, tol=1e-8, max_iter=200)
            out = chain.run(b)
        assert out.rung == 0  # no degradation on a healthy system
        # and the chain's rung-0 answer is exactly the plain solver's
        from repro.solvers.boomeramg import BoomerAMG

        with guard_override("off"):
            amg = BoomerAMG(smoother="l1-jacobi", pre_sweeps=1,
                            post_sweeps=1)
            amg.setup(CsrMatrix(a))
            x_plain, _ = amg.solve(b, tol=1e-8, max_iter=200)
        assert np.array_equal(out.value, x_plain)

    def test_overflow_b_escalates_to_dense(self):
        a = lap1d(64)
        b = self._scenario_b("overflow_b", 1)
        with guard_override("strict"):
            chain = amg_fallback_chain(a, tol=1e-8, max_iter=200)
            out = chain.run(b)
        assert out.rung_name == "dense-direct"
        assert len(out.trips) == 3  # every earlier rung tripped

    def test_nan_b_exhausts_with_typed_error(self):
        a = lap1d(16)
        b = np.full(16, np.nan)
        with guard_override("strict"):
            chain = amg_fallback_chain(a)
            with pytest.raises(FallbackExhaustedError) as exc:
                chain.run(b)
        assert len(exc.value.errors) == len(chain.rungs)


class TestBdfChaosMatrix:
    """Transient SDC storm on the RHS: the first k evaluations return
    garbage (a seeded burst), then the function heals — the model for
    a transiently corrupted device buffer feeding an integrator."""

    def _storm_rhs(self, seed):
        injector = FaultInjector(sdc_per_step=1.0, seed=seed)
        k_bad = 1 + int(injector.rng.integers(3))  # 1..3 bad calls
        calls = {"n": 0}

        def rhs(t, u):
            calls["n"] += 1
            if calls["n"] <= k_bad:
                return np.full_like(u, np.nan)
            return -u

        return rhs, k_bad

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_storm_ends_in_a_rung(self, seed):
        rhs, k_bad = self._storm_rhs(seed)
        with guard_override("strict"):
            chain = bdf_fallback_chain(rhs, decay_lin)
            out = chain.run(0.0, np.array([1.0]), 1.0)
        # some rung served, and its answer is the healed integration
        assert out.rung_name in [r.name for r in chain.rungs]
        assert np.all(np.isfinite(out.value[1]))
        assert out.value[1][-1] == pytest.approx(np.exp(-1.0), rel=1e-3)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_rung_selection_deterministic(self, seed):
        def go():
            rhs, _ = self._storm_rhs(seed)
            with guard_override("strict"):
                chain = bdf_fallback_chain(rhs, decay_lin)
                out = chain.run(0.0, np.array([1.0]), 1.0)
            return out.rung_name, out.value[1][-1]

        r1, v1 = go()
        r2, v2 = go()
        assert r1 == r2
        assert v1 == v2

    def test_healthy_serves_bdf2_bit_exact(self):
        from repro.ode.bdf import BdfIntegrator

        with guard_override("strict"):
            chain = bdf_fallback_chain(decay_rhs, decay_lin)
            out = chain.run(0.0, np.array([1.0]), 1.0)
        assert out.rung_name == "bdf-2"
        with guard_override("off"):
            t_plain, u_plain = BdfIntegrator(
                decay_rhs, decay_lin
            ).integrate(0.0, np.array([1.0]), 1.0)
        assert np.array_equal(out.value[1], u_plain)

    def test_sentinel_trips_are_counted(self):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter("guard.sentinel.trips").value
        rhs, k_bad = self._storm_rhs(0)
        with guard_override("strict"):
            chain = bdf_fallback_chain(rhs, decay_lin)
            out = chain.run(0.0, np.array([1.0]), 1.0)
        if out.degraded:
            assert obs_metrics.counter("guard.sentinel.trips").value > before


class TestMummiFaultStorm:
    """A campaign under a hard fault storm makes degraded progress —
    sheds and surrogate cycles, never an unhandled exception."""

    def _campaign(self, seed, mtbf=8.0):
        from repro.workflow.mummi import MummiCampaign

        br = CircuitBreaker(failure_threshold=2, recovery_time=2.0,
                            name=f"storm{seed}")
        adm = AdmissionController(max_queue=6, protect_priority=4)
        fi = FaultInjector(mtbf=mtbf, seed=seed)
        return MummiCampaign(
            n_gpus=4, jobs_per_cycle=8, seed=seed,
            fault_injector=fi, cycle_budget=5e4,
            breaker=br, admission=adm,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_storm_campaign_survives(self, seed):
        with guard_override("strict"):
            camp = self._campaign(seed)
            camp.run(6)  # must not raise
        assert camp.cycles_done == 6
        assert len(camp.rungs_served) == 6
        assert set(camp.rungs_served) <= {"micro-md", "surrogate"}
        # the storm left a trace: failures, sheds, or degraded cycles
        assert (camp.failures > 0 or camp.jobs_shed > 0
                or "surrogate" in camp.rungs_served)
        # every cycle still delivered its candidates
        assert len(camp.results) == 6 * 8

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_storm_outcome_deterministic(self, seed):
        def go():
            with guard_override("strict"):
                camp = self._campaign(seed)
                camp.run(6)
            return (camp.rungs_served, camp.jobs_shed, camp.failures,
                    list(camp.explored))

        assert go() == go()

    def test_goodput_accounting_under_shedding(self):
        with guard_override("strict"):
            camp = self._campaign(0, mtbf=5.0)
            m = camp.run_cycle()
        assert 0.0 <= m["goodput"] <= 1.0
        assert m["shed"] == float(camp.jobs_shed)
        # shedding + failures cannot create goodput out of thin air
        assert m["goodput"] <= m["utilization"] + 1e-12

    def test_calm_campaign_all_full_fidelity(self):
        from repro.workflow.mummi import MummiCampaign

        with guard_override("strict"):
            camp = MummiCampaign(
                n_gpus=8, jobs_per_cycle=4, seed=3,
                cycle_budget=1e12,
                breaker=CircuitBreaker(failure_threshold=2,
                                       recovery_time=2.0, name="calm"),
                admission=AdmissionController(),
            )
            camp.run(4)
        assert camp.rungs_served == ["micro-md"] * 4
        assert camp.jobs_shed == 0
        assert camp.cycles_over_budget == 0


class TestNeverUnhandled:
    """The full matrix in one sweep: for every (subsystem, seed) the
    strict-mode guard layer resolves the scenario via a typed guard
    outcome — a served rung, a shed decision, or a typed exhaustion —
    and never leaks a raw ZeroDivisionError/ValueError/RuntimeError."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matrix(self, seed):
        outcomes = []
        with guard_override("strict"):
            # AMG with a seeded SDC spike
            a = lap1d(32)
            b = np.ones(32)
            inj = FaultInjector(sdc_per_step=1.0, sdc_magnitude=1e4,
                                seed=seed)
            b[int(inj.rng.integers(32))] += inj.sdc_magnitude
            try:
                out = amg_fallback_chain(a, max_iter=100).run(b)
                outcomes.append(("amg", out.rung_name))
            except (FallbackExhaustedError, NumericalHealthError) as e:
                outcomes.append(("amg", type(e).__name__))
            # BDF with a transient NaN storm
            calls = {"n": 0}
            k_bad = 1 + seed % 3

            def rhs(t, u):
                calls["n"] += 1
                if calls["n"] <= k_bad:
                    return np.full_like(u, np.nan)
                return -u

            try:
                out = bdf_fallback_chain(rhs, decay_lin).run(
                    0.0, np.array([1.0]), 1.0
                )
                outcomes.append(("bdf", out.rung_name))
            except (FallbackExhaustedError, NumericalHealthError) as e:
                outcomes.append(("bdf", type(e).__name__))
            # the scheduler under storm + shedding
            from repro.sched.policies import Fcfs
            from repro.sched.simulator import ClusterSimulator, Job

            jobs = [Job(job_id=i, arrival=0.0, service=10.0,
                        deadline=25.0, priority=i % 3)
                    for i in range(10)]
            fi = FaultInjector(mtbf=6.0, seed=seed)
            res = ClusterSimulator(2).run(
                jobs, Fcfs(), fault_injector=fi,
                admission=AdmissionController(),
            )
            assert res.completed + res.dropped + res.shed == 10
            outcomes.append(("sched", res.shed))
        assert len(outcomes) == 3
