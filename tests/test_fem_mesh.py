"""Tests for the tensor-product mesh and DOF maps."""

import numpy as np
import pytest

from repro.fem.mesh import TensorMesh2D


class TestSizes:
    def test_dof_counts(self):
        m = TensorMesh2D(4, 3, order=2)
        assert m.n_elements == 12
        assert m.nodes_x == 9
        assert m.nodes_y == 7
        assert m.n_dofs == 63

    def test_spacings(self):
        m = TensorMesh2D(4, 2, order=1, lx=2.0, ly=1.0)
        assert m.hx == pytest.approx(0.5)
        assert m.hy == pytest.approx(0.5)

    @pytest.mark.parametrize("bad", [
        dict(nel_x=0, nel_y=1, order=1),
        dict(nel_x=1, nel_y=0, order=1),
        dict(nel_x=1, nel_y=1, order=0),
        dict(nel_x=1, nel_y=1, order=1, lx=-1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            TensorMesh2D(**bad)


class TestCoordinates:
    def test_1d_coords_cover_domain(self):
        m = TensorMesh2D(3, 3, order=4, lx=2.0)
        x = m.node_coords_1d("x")
        assert x[0] == pytest.approx(0.0)
        assert x[-1] == pytest.approx(2.0)
        assert x.size == m.nodes_x
        assert np.all(np.diff(x) > 0)

    def test_element_boundaries_are_nodes(self):
        m = TensorMesh2D(4, 4, order=3)
        x = m.node_coords_1d("x")
        for e in range(5):
            assert np.min(np.abs(x - e * m.hx)) < 1e-12

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            TensorMesh2D(2, 2, order=1).node_coords_1d("z")

    def test_meshgrid_shapes(self):
        m = TensorMesh2D(2, 3, order=2)
        gx, gy = m.node_coords()
        assert gx.shape == (m.nodes_x, m.nodes_y)
        assert gy.shape == (m.nodes_x, m.nodes_y)


class TestDofMaps:
    def test_element_dofs_shape(self):
        m = TensorMesh2D(3, 2, order=2)
        dofs = m.element_dofs()
        assert dofs.shape == (6, 3, 3)
        assert dofs.min() == 0
        assert dofs.max() == m.n_dofs - 1

    def test_shared_edge_dofs(self):
        """Adjacent elements share the DOFs on their common edge — the
        continuity requirement."""
        m = TensorMesh2D(2, 1, order=3)
        dofs = m.element_dofs()
        # element 0 is (ex=0), element 1 is (ex=1); shared edge:
        # last local column of e0 in x == first local column of e1
        np.testing.assert_array_equal(dofs[0, -1, :], dofs[1, 0, :])

    def test_every_dof_reachable(self):
        m = TensorMesh2D(3, 3, order=2)
        assert set(m.element_dofs().ravel()) == set(range(m.n_dofs))

    def test_boundary_mask(self):
        m = TensorMesh2D(2, 2, order=2)
        mask = m.boundary_mask()
        # 5x5 grid: 16 boundary nodes
        assert mask.sum() == 16
        assert m.interior_dofs().size == 9

    def test_gather_scatter_adjoint(self):
        """<gather(u), v_e> == <u, scatter(v_e)> — the E-vector
        transpose identity."""
        m = TensorMesh2D(3, 2, order=2)
        rng = np.random.default_rng(0)
        u = rng.random(m.n_dofs)
        ve = rng.random((m.n_elements, 3, 3))
        lhs = float((m.gather(u) * ve).sum())
        rhs = float(u @ m.scatter_add(ve))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_gather_wrong_length(self):
        m = TensorMesh2D(2, 2, order=1)
        with pytest.raises(ValueError):
            m.gather(np.ones(5))

    def test_scatter_counts_multiplicity(self):
        """Scattering all-ones counts how many elements touch each DOF."""
        m = TensorMesh2D(2, 2, order=1)
        ones = np.ones((m.n_elements, 2, 2))
        mult = m.scatter_add(ones)
        # corner of the domain: 1 element; center node: 4 elements
        assert mult.min() == 1.0
        assert mult.max() == 4.0
