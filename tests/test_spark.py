"""Tests for the mini Spark engine and JVM stack model."""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.spark.engine import SparkEngine, _payload_bytes
from repro.spark.jvm import DEFAULT_STACK, OPTIMIZED_STACK, JvmStack


class TestJvmStack:
    def test_presets_ordered(self):
        assert (
            OPTIMIZED_STACK.ser_seconds_per_byte
            < DEFAULT_STACK.ser_seconds_per_byte
        )
        assert OPTIMIZED_STACK.gc_overhead < DEFAULT_STACK.gc_overhead
        assert OPTIMIZED_STACK.lock_contention < DEFAULT_STACK.lock_contention

    def test_compute_time_inflated_by_gc(self):
        assert DEFAULT_STACK.compute_time(1.0) > 1.0
        assert OPTIMIZED_STACK.compute_time(1.0) < DEFAULT_STACK.compute_time(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            JvmStack("x", ser_seconds_per_byte=-1, gc_overhead=0.1,
                     lock_contention=1.0)
        with pytest.raises(ValueError):
            JvmStack("x", ser_seconds_per_byte=0, gc_overhead=1.0,
                     lock_contention=1.0)
        with pytest.raises(ValueError):
            JvmStack("x", ser_seconds_per_byte=0, gc_overhead=0.1,
                     lock_contention=0.5)


class TestPayloadBytes:
    def test_ndarray(self):
        assert _payload_bytes(np.zeros(10)) == 80.0

    def test_nested(self):
        assert _payload_bytes([np.zeros(2), np.zeros(3)]) == pytest.approx(72.0)

    def test_scalar_boxed(self):
        assert _payload_bytes(1.5) == 48.0


class TestEngine:
    def test_parallelize_round_robin(self):
        eng = SparkEngine(3)
        parts = eng.parallelize(list(range(10)))
        assert [len(p) for p in parts] == [4, 3, 3]
        assert sorted(sum(parts, [])) == list(range(10))

    def test_map_partitions_results_and_timing(self):
        eng = SparkEngine(4)
        parts = eng.parallelize(list(range(8)))
        out = eng.map_partitions(parts, lambda p: [x * 2 for x in p],
                                 flops_per_record=1e6)
        assert sorted(sum(out, [])) == [0, 2, 4, 6, 8, 10, 12, 14]
        assert eng.timers.total("compute") > 0

    def test_shuffle_regroups_by_key(self):
        eng = SparkEngine(4)
        parts = eng.parallelize([(k, k * 10) for k in range(20)])
        grouped = eng.shuffle(parts, key_fn=lambda rec: rec[0])
        for pid, part in enumerate(grouped):
            assert all(rec[0] % 4 == pid for rec in part)
        assert sum(len(p) for p in grouped) == 20

    def test_shuffle_hash_slower_than_adaptive(self):
        """The adaptive shuffle is the §4.4 optimization: fewer, larger
        messages."""
        records = [(k, np.zeros(1000)) for k in range(64)]
        times = {}
        for alg in ("hash", "adaptive"):
            eng = SparkEngine(16)
            parts = eng.parallelize(records)
            eng.shuffle(parts, key_fn=lambda rec: rec[0], algorithm=alg)
            times[alg] = eng.timers.total("shuffle")
        assert times["adaptive"] < times["hash"]

    def test_aggregate_result_exact(self):
        eng = SparkEngine(5)
        parts = eng.parallelize(list(range(100)))
        total = eng.aggregate(
            parts, seq_fn=lambda a, r: a + r, comb_fn=lambda a, b: a + b,
            zero=0, algorithm="tree",
        )
        assert total == 4950

    def test_tree_aggregate_faster_than_flat(self):
        payload = 1e6
        times = {}
        for alg in ("flat", "tree"):
            eng = SparkEngine(64)
            parts = [[np.zeros(1)] for _ in range(64)]
            eng.aggregate(parts, lambda a, r: a, lambda a, b: a,
                          zero=None, algorithm=alg, payload_bytes=payload)
            times[alg] = eng.timers.total("aggregate")
        assert times["tree"] < times["flat"]

    def test_optimized_stack_cheaper_everywhere(self):
        records = [(k, np.zeros(500)) for k in range(32)]
        totals = {}
        for stack in (DEFAULT_STACK, OPTIMIZED_STACK):
            eng = SparkEngine(8, stack=stack)
            parts = eng.parallelize(records)
            parts = eng.map_partitions(parts, lambda p: p,
                                       flops_per_record=1e7)
            eng.shuffle(parts, key_fn=lambda rec: rec[0])
            eng.aggregate(parts, lambda a, r: a, lambda a, b: a, zero=None,
                          payload_bytes=1e5)
            totals[stack.name] = sum(eng.timers.as_dict().values())
        assert totals["optimized"] < totals["default"]

    def test_broadcast_scales_log(self):
        eng2 = SparkEngine(2)
        eng64 = SparkEngine(64)
        t2 = eng2.broadcast_time(1e6)
        t64 = eng64.broadcast_time(1e6)
        assert t64 < 8 * t2  # log2(64)=6 rounds vs 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SparkEngine(0)
        with pytest.raises(ValueError):
            SparkEngine(2, worker_rate=0)
        eng = SparkEngine(2)
        with pytest.raises(ValueError):
            eng.shuffle([[]], key_fn=lambda r: 0, algorithm="sort")
        with pytest.raises(ValueError):
            eng.aggregate([[]], lambda a, r: a, lambda a, b: a, zero=None,
                          algorithm="ring")
