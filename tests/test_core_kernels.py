"""Tests for KernelSpec / TransferSpec / KernelTrace."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec


def spec(name="k", flops=1e6, br=8e6, bw=4e6, launches=1, **kw):
    return KernelSpec(
        name=name, flops=flops, bytes_read=br, bytes_written=bw,
        launches=launches, **kw
    )


class TestKernelSpec:
    def test_arithmetic_intensity(self):
        k = spec(flops=12e6, br=8e6, bw=4e6)
        assert k.arithmetic_intensity == pytest.approx(1.0)

    def test_pure_compute_intensity_inf(self):
        k = spec(flops=1e6, br=0, bw=0)
        assert k.arithmetic_intensity == float("inf")

    @pytest.mark.parametrize("field,value", [
        ("flops", -1.0), ("bytes_read", -1.0), ("bytes_written", -1.0),
    ])
    def test_negative_work_rejected(self, field, value):
        kwargs = dict(name="k", flops=1.0, bytes_read=1.0, bytes_written=1.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            KernelSpec(**kwargs)

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            spec(precision="fp16")

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            spec(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            spec(bandwidth_efficiency=1.5)

    def test_scaled(self):
        k = spec(flops=10, br=20, bw=30).scaled(2.0)
        assert k.flops == 20 and k.bytes_read == 40 and k.bytes_written == 60

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            spec().scaled(-1)


class TestFusion:
    def test_fusion_preserves_flops(self):
        a, b = spec("a"), spec("b")
        fused = a.fused(b)
        assert fused.flops == a.flops + b.flops

    def test_fusion_removes_intermediate_traffic(self):
        # a writes 4 MB that b then reads: fusing removes both.
        a = spec("a", br=8e6, bw=4e6)
        b = spec("b", br=4e6, bw=4e6)
        fused = a.fused(b)
        assert fused.bytes_total == a.bytes_total + b.bytes_total - 2 * 4e6

    def test_fusion_never_negative_traffic(self):
        a = spec("a", br=0, bw=10e6)
        b = spec("b", br=2e6, bw=0)
        fused = a.fused(b)
        assert fused.bytes_read >= 0 and fused.bytes_written >= 0

    def test_fusion_mismatched_launches_raises(self):
        with pytest.raises(ValueError):
            spec(launches=1).fused(spec(launches=2))

    def test_fusion_mismatched_precision_raises(self):
        with pytest.raises(ValueError):
            spec(precision="fp64").fused(spec(precision="fp32"))

    def test_fusion_name(self):
        assert spec("a").fused(spec("b")).name == "a+b"
        assert spec("a").fused(spec("b"), name="ab").name == "ab"

    @given(
        aw=st.floats(min_value=0, max_value=1e9),
        br=st.floats(min_value=0, max_value=1e9),
    )
    def test_fusion_traffic_never_exceeds_sum(self, aw, br):
        a = spec("a", br=1e6, bw=aw)
        b = spec("b", br=br, bw=1e6)
        fused = a.fused(b)
        assert fused.bytes_total <= a.bytes_total + b.bytes_total + 1e-6


class TestTransferSpec:
    def test_valid(self):
        t = TransferSpec("x", nbytes=1e6, direction="d2h", count=3)
        assert t.nbytes == 1e6

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            TransferSpec("x", nbytes=1.0, direction="sideways")

    def test_negative_size(self):
        with pytest.raises(ValueError):
            TransferSpec("x", nbytes=-1.0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            TransferSpec("x", nbytes=1.0, count=-2)


class TestKernelTrace:
    def test_totals(self):
        tr = KernelTrace()
        tr.record_kernel(spec(flops=10, br=20, bw=30, launches=2))
        tr.record_kernel(spec(flops=5, br=0, bw=0))
        assert tr.total_flops == pytest.approx(25)
        assert tr.total_bytes == pytest.approx(100)
        assert tr.total_launches == 3

    def test_transfer_totals(self):
        tr = KernelTrace()
        tr.record_transfer(TransferSpec("t", nbytes=100, count=3))
        assert tr.total_transfer_bytes == pytest.approx(300)

    def test_extend(self):
        a, b = KernelTrace(), KernelTrace()
        a.record_kernel(spec())
        b.record_kernel(spec())
        b.record_transfer(TransferSpec("t", nbytes=1))
        a.extend(b)
        assert len(a) == 3

    def test_clear(self):
        tr = KernelTrace()
        tr.record_kernel(spec())
        tr.clear()
        assert len(tr) == 0
        assert tr.total_flops == 0


class TestCompaction:
    def test_compacting_trace_folds_repeats(self):
        tr = KernelTrace(compacting=True)
        for _ in range(100):
            tr.record_kernel(spec("k"))
        assert len(tr.kernels) == 1
        assert tr.kernels[0].launches == 100
        assert tr.recorded_kernels == 100
        assert tr.total_launches == 100

    def test_compacting_distinguishes_names(self):
        tr = KernelTrace(compacting=True)
        tr.record_kernel(spec("a"))
        tr.record_kernel(spec("b"))
        tr.record_kernel(spec("a"))
        # a, b, a: the non-adjacent repeat starts a new entry
        assert [k.name for k in tr.kernels] == ["a", "b", "a"]

    def test_compacting_distinguishes_pricing_fields(self):
        tr = KernelTrace(compacting=True)
        tr.record_kernel(spec("k", flops=1e6))
        tr.record_kernel(spec("k", flops=2e6))
        assert len(tr.kernels) == 2

    def test_compacting_transfers(self):
        tr = KernelTrace(compacting=True)
        for _ in range(10):
            tr.record_transfer(TransferSpec("t", nbytes=100))
        assert len(tr.transfers) == 1
        assert tr.transfers[0].count == 10
        assert tr.total_transfer_bytes == pytest.approx(1000)

    def test_compacted_copy_preserves_totals(self):
        tr = KernelTrace()
        for i in range(60):
            tr.record_kernel(spec(f"k{i % 3}", flops=1e6 * (i % 3 + 1)))
            tr.record_transfer(TransferSpec("t", nbytes=10))
        c = tr.compacted()
        assert len(c.kernels) == 3
        assert c.total_flops == pytest.approx(tr.total_flops)
        assert c.total_bytes == pytest.approx(tr.total_bytes)
        assert c.total_launches == tr.total_launches
        assert c.total_transfer_bytes == pytest.approx(tr.total_transfer_bytes)

    def test_compacted_preserves_first_occurrence_order(self):
        tr = KernelTrace()
        for name in ["b", "a", "b", "c", "a"]:
            tr.record_kernel(spec(name))
        assert [k.name for k in tr.compacted().kernels] == ["b", "a", "c"]

    def test_compacted_of_compacting_trace_is_stable(self):
        tr = KernelTrace(compacting=True)
        for _ in range(5):
            tr.record_kernel(spec("k"))
        c = tr.compacted()
        assert len(c.kernels) == 1
        assert c.kernels[0].launches == 5

    def test_extend_into_compacting_trace(self):
        src = KernelTrace()
        for _ in range(4):
            src.record_kernel(spec("k"))
        dst = KernelTrace(compacting=True)
        dst.extend(src)
        assert len(dst.kernels) == 1
        assert dst.kernels[0].launches == 4

    def test_identity_vs_pricing_fingerprint(self):
        a, b = spec("a"), spec("b")
        assert a.pricing_fingerprint == b.pricing_fingerprint
        assert a.identity != b.identity
        assert a.identity == spec("a", launches=7).identity  # launches excluded
