"""Tests for the job-scheduler simulator (§4.7)."""

import numpy as np
import pytest

from repro.sched.policies import Fcfs, Sjf, SjfWithQuota
from repro.sched.simulator import ClusterSimulator, Job, SimResult
from repro.sched.workloads import (
    batch_workload,
    offered_load,
    poisson_workload,
)


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job(0, arrival=-1.0, service=1.0)
        with pytest.raises(ValueError):
            Job(0, arrival=0.0, service=0.0)


class TestSimulatorConservation:
    """Event-simulator invariants: no job lost, capacity respected."""

    def test_all_jobs_complete(self):
        jobs = batch_workload(n_jobs=50, seed=0)
        result = ClusterSimulator(4).run(jobs, Fcfs())
        assert result.completed == 50

    def test_single_gpu_serializes(self):
        jobs = [Job(k, 0.0, 2.0) for k in range(5)]
        result = ClusterSimulator(1).run(jobs, Fcfs())
        assert result.makespan == pytest.approx(10.0)
        assert result.utilization == pytest.approx(1.0)

    def test_capacity_never_exceeded(self):
        """Makespan can never beat total work / capacity."""
        jobs = batch_workload(n_jobs=100, seed=1)
        n_gpus = 8
        result = ClusterSimulator(n_gpus).run(jobs, Sjf())
        total = sum(j.service for j in jobs)
        assert result.makespan >= total / n_gpus - 1e-9
        assert result.utilization <= 1.0

    def test_parallel_speedup(self):
        jobs = batch_workload(n_jobs=64, seed=2)
        slow = ClusterSimulator(2).run(jobs, Fcfs()).makespan
        fast = ClusterSimulator(16).run(jobs, Fcfs()).makespan
        assert fast < slow

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator(2).run([], Fcfs())
        with pytest.raises(ValueError):
            ClusterSimulator(0)

    def test_waits_nonnegative(self):
        jobs = poisson_workload(n_jobs=80, arrival_rate=2.0, seed=3)
        result = ClusterSimulator(4).run(jobs, Fcfs())
        assert result.mean_wait >= 0
        assert result.max_wait >= result.mean_wait


class TestPolicies:
    def test_fcfs_order(self):
        jobs = [Job(0, 0.0, 10.0), Job(1, 1.0, 1.0), Job(2, 2.0, 1.0)]
        result = ClusterSimulator(1).run(jobs, Fcfs())
        # job 0 runs first, jobs 1,2 wait behind it
        assert result.max_wait == pytest.approx(9.0)

    def test_sjf_minimizes_mean_wait_on_batch(self):
        jobs = batch_workload(n_jobs=200, seed=4)
        sim = ClusterSimulator(8)
        w_fcfs = sim.run(jobs, Fcfs()).mean_wait
        w_sjf = sim.run(jobs, Sjf()).mean_wait
        assert w_sjf < w_fcfs

    def test_quota_restores_utilization(self):
        """§4.7's conclusion for batch arrivals: plain SJF defers the
        long tail (poor drain-out utilization); SJF with quota starts
        long jobs early and beats both."""
        jobs = batch_workload(n_jobs=300, long_fraction=0.1, seed=0)
        sim = ClusterSimulator(16)
        u = {
            "fcfs": sim.run(jobs, Fcfs()).utilization,
            "sjf": sim.run(jobs, Sjf()).utilization,
            "quota": sim.run(jobs, SjfWithQuota(16, 0.25)).utilization,
        }
        assert u["quota"] > u["sjf"]
        assert u["quota"] >= u["fcfs"] - 0.01

    def test_quota_bounds_long_job_wait(self):
        jobs = batch_workload(n_jobs=300, long_fraction=0.1, seed=0)
        sim = ClusterSimulator(16)
        m_sjf = sim.run(jobs, Sjf()).makespan
        m_quota = sim.run(jobs, SjfWithQuota(16, 0.25)).makespan
        assert m_quota < m_sjf

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            SjfWithQuota(4, long_quota=1.5)
        with pytest.raises(ValueError):
            SjfWithQuota(0)


class TestThrottling:
    """§4.7: 'job arrival rate should be throttled to less than the
    aggregated processing capacity of the GPUs.'"""

    def test_overload_grows_queue(self):
        n_gpus = 16
        mean_service = 10.0
        sim = ClusterSimulator(n_gpus)
        # overloaded: rate * service / gpus ~ 1.7
        over = poisson_workload(n_jobs=400, arrival_rate=2.7,
                                mean_service=mean_service, seed=1)
        # throttled: rate * service / gpus ~ 0.53
        throttled = poisson_workload(n_jobs=400, arrival_rate=0.85,
                                     mean_service=mean_service, seed=1)
        r_over = sim.run(over, Fcfs())
        r_thr = sim.run(throttled, Fcfs())
        assert offered_load(over, n_gpus) > 1.2
        assert offered_load(throttled, n_gpus) < 1.0
        assert r_over.peak_queue > 3 * r_thr.peak_queue
        assert r_over.mean_wait > 3 * r_thr.mean_wait

    def test_queue_series_recorded(self):
        jobs = poisson_workload(n_jobs=50, arrival_rate=1.0, seed=2)
        result = ClusterSimulator(4).run(jobs, Fcfs())
        assert len(result.queue_series) > 0
        times = [t for t, _ in result.queue_series]
        assert times == sorted(times)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            batch_workload(n_jobs=0)
        with pytest.raises(ValueError):
            poisson_workload(arrival_rate=0.0)
        with pytest.raises(ValueError):
            poisson_workload(mean_service=-1.0)

    def test_workloads_deterministic(self):
        a = poisson_workload(n_jobs=10, seed=9)
        b = poisson_workload(n_jobs=10, seed=9)
        assert [(j.arrival, j.service) for j in a] == [
            (j.arrival, j.service) for j in b
        ]

class TestHorizonAccounting:
    """Horizon truncation: utilization counts busy time only within
    [0, makespan], and in-flight work is visible in the result."""

    def test_horizon_mid_service(self):
        """2 GPUs, one job of service 10, horizon 5: the job is still
        in flight at the horizon, so utilization is (5 busy GPU-sec)
        over (2 GPUs * 5 sec) = 0.5 — not the pre-fix 10/10 = 1.0."""
        jobs = [Job(0, 0.0, 10.0)]
        result = ClusterSimulator(2).run(jobs, Fcfs(), horizon=5.0)
        assert result.makespan == pytest.approx(5.0)
        assert result.utilization == pytest.approx(0.5)
        assert result.completed == 0
        assert result.started == 1
        assert result.in_flight == 1

    def test_horizon_counts_only_completed(self):
        """`completed` means finished within the horizon; started-but-
        unfinished jobs show up in `in_flight` instead."""
        jobs = [Job(k, 0.0, 4.0) for k in range(3)]
        result = ClusterSimulator(1).run(jobs, Fcfs(), horizon=6.0)
        assert result.completed == 1
        assert result.in_flight == 1
        assert result.started == 2

    def test_no_horizon_all_in_flight_zero(self):
        jobs = batch_workload(n_jobs=20, seed=5)
        result = ClusterSimulator(4).run(jobs, Fcfs())
        assert result.in_flight == 0
        assert result.started == 20
        assert result.completed == 20

    def test_utilization_never_above_one_with_horizon(self):
        jobs = poisson_workload(n_jobs=60, arrival_rate=3.0, seed=6)
        for horizon in (1.0, 5.0, 20.0):
            result = ClusterSimulator(4).run(jobs, Fcfs(), horizon=horizon)
            assert result.utilization <= 1.0 + 1e-12


class _BadIndexPolicy:
    """Policy returning out-of-range and duplicate indices; the
    simulator must filter/dedupe them rather than crash or double-
    start a job."""

    def __init__(self, picks):
        self.picks = picks

    def select(self, queue, free_gpus, running):
        return list(self.picks)


class TestPolicyIndexSanitization:
    def test_out_of_range_indices_filtered(self):
        jobs = [Job(k, 0.0, 1.0) for k in range(3)]
        policy = _BadIndexPolicy([0, 99, -1])
        result = ClusterSimulator(2).run(jobs, policy)
        assert result.completed == 3
        assert result.utilization <= 1.0 + 1e-12

    def test_duplicate_indices_deduped(self):
        jobs = [Job(k, 0.0, 2.0) for k in range(4)]
        policy = _BadIndexPolicy([0, 0, 0])
        result = ClusterSimulator(4).run(jobs, policy)
        # duplicates collapse to one start per call; the fill loop
        # re-invokes the policy, so each job still starts exactly once
        assert result.completed == 4
        assert result.started == 4
        assert result.makespan == pytest.approx(2.0)
        assert result.utilization == pytest.approx(1.0)


class TestQueueSeriesProperties:
    def test_zero_length_queue_series(self):
        """peak_queue / final_queue on an empty series are 0, not an
        IndexError."""
        result = SimResult(
            makespan=0.0, utilization=0.0, mean_wait=0.0, max_wait=0.0,
            mean_turnaround=0.0, completed=0,
        )
        assert result.queue_series == []
        assert result.peak_queue == 0
        assert result.final_queue == 0


class TestFastEngine:
    """The heap-backed queue engine must reproduce the reference
    engine bit-for-bit — same waits, same schedules, same fault
    victims — it is purely an algorithmic substitution."""

    POLICIES = [
        ("fcfs", lambda: Fcfs()),
        ("sjf", lambda: Sjf()),
        ("quota", lambda: SjfWithQuota(8, 0.25)),
    ]

    @staticmethod
    def _identical(a: SimResult, b: SimResult) -> None:
        for f in ("makespan", "utilization", "mean_wait", "max_wait",
                  "mean_turnaround", "completed", "started", "in_flight",
                  "failures", "retries", "dropped", "wasted_time",
                  "goodput"):
            assert getattr(a, f) == getattr(b, f), f
        assert a.queue_series == b.queue_series

    @pytest.mark.parametrize("name,make", POLICIES)
    def test_batch_equivalence(self, name, make):
        jobs = batch_workload(n_jobs=200, seed=3)
        sim = ClusterSimulator(8)
        self._identical(
            sim.run(jobs, make(), engine="fast"),
            sim.run(jobs, make(), engine="reference"),
        )

    @pytest.mark.parametrize("name,make", POLICIES)
    def test_poisson_equivalence(self, name, make):
        jobs = poisson_workload(n_jobs=200, arrival_rate=2.0, seed=4)
        sim = ClusterSimulator(8)
        self._identical(
            sim.run(jobs, make(), engine="fast"),
            sim.run(jobs, make(), engine="reference"),
        )

    @pytest.mark.parametrize("name,make", POLICIES)
    def test_horizon_equivalence(self, name, make):
        jobs = batch_workload(n_jobs=150, seed=5)
        sim = ClusterSimulator(8)
        self._identical(
            sim.run(jobs, make(), horizon=40.0, engine="fast"),
            sim.run(jobs, make(), horizon=40.0, engine="reference"),
        )

    @pytest.mark.parametrize("name,make", POLICIES)
    def test_fault_retry_equivalence(self, name, make):
        from repro.resilience import CappedRetry, FaultInjector

        jobs = batch_workload(n_jobs=120, seed=6)
        sim = ClusterSimulator(8)
        fast = sim.run(
            jobs, make(), engine="fast",
            fault_injector=FaultInjector(mtbf=4.0, seed=9),
            retry_policy=CappedRetry(max_retries=2),
        )
        ref = sim.run(
            jobs, make(), engine="reference",
            fault_injector=FaultInjector(mtbf=4.0, seed=9),
            retry_policy=CappedRetry(max_retries=2),
        )
        assert fast.failures > 0  # the fault path actually exercised
        self._identical(fast, ref)

    def test_auto_uses_reference_for_hookless_policy(self):
        jobs = batch_workload(n_jobs=30, seed=0)
        result = ClusterSimulator(4).run(jobs, _BadIndexPolicy([0, 0, 99]))
        assert result.completed == 30  # sanitization still applies

    def test_fast_engine_requires_hook(self):
        jobs = batch_workload(n_jobs=5, seed=0)
        with pytest.raises(ValueError, match="no fast queue"):
            ClusterSimulator(4).run(jobs, _BadIndexPolicy([0]),
                                    engine="fast")

    def test_unknown_engine_rejected(self):
        jobs = batch_workload(n_jobs=5, seed=0)
        with pytest.raises(ValueError, match="unknown engine"):
            ClusterSimulator(4).run(jobs, Fcfs(), engine="warp")


class TestTieBreakEquivalence:
    """Jobs with *identical* sort keys are where heap order and list
    order can silently disagree: the quota fast queue must break ties
    exactly like the reference engine, down to queue_series and fault
    victimization."""

    @staticmethod
    def _tied_jobs(n=64, groups=4):
        """n jobs in `groups` batches; within a batch every job shares
        the same arrival AND service (and alternating long flags), so
        the only differentiator left is insertion order."""
        jobs = []
        for k in range(n):
            g = k % groups
            jobs.append(Job(
                job_id=k, arrival=float(g), service=2.0 + g,
                is_long=(k % 2 == 0),
            ))
        return jobs

    def _identical(self, a: SimResult, b: SimResult) -> None:
        assert a == b  # SimResult is a plain dataclass: full field equality
        assert a.queue_series == b.queue_series

    def test_quota_ties_bit_identical(self):
        jobs = self._tied_jobs()
        sim = ClusterSimulator(8)
        self._identical(
            sim.run(jobs, SjfWithQuota(8, 0.25), engine="fast"),
            sim.run(jobs, SjfWithQuota(8, 0.25), engine="reference"),
        )

    @pytest.mark.parametrize("make", [Fcfs, Sjf,
                                      lambda: SjfWithQuota(6, 0.5)])
    def test_all_policies_ties_identical(self, make):
        jobs = self._tied_jobs(n=48, groups=3)
        sim = ClusterSimulator(6)
        self._identical(
            sim.run(jobs, make(), engine="fast"),
            sim.run(jobs, make(), engine="reference"),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_quota_ties_with_faults_identical(self, seed):
        from repro.resilience import CappedRetry, FaultInjector

        jobs = self._tied_jobs()
        sim = ClusterSimulator(8)
        runs = []
        for engine in ("fast", "reference"):
            runs.append(sim.run(
                jobs, SjfWithQuota(8, 0.25), engine=engine,
                fault_injector=FaultInjector(mtbf=6.0, seed=seed),
                retry_policy=CappedRetry(max_retries=2),
            ))
        self._identical(*runs)

    def test_validated_run_matches_plain_fast_run(self, monkeypatch):
        """REPRO_OBS_VALIDATE=1 must not change the returned result
        (the replayed reference is compared, then discarded) — and the
        fault-injector RNG must end in the same state."""
        from repro.obs.validate import VALIDATE_ENV
        from repro.resilience import CappedRetry, FaultInjector

        jobs = self._tied_jobs()

        def run(validate: str):
            monkeypatch.setenv(VALIDATE_ENV, validate)
            inj = FaultInjector(mtbf=6.0, seed=3)
            res = ClusterSimulator(8).run(
                jobs, SjfWithQuota(8, 0.25), engine="fast",
                fault_injector=inj,
                retry_policy=CappedRetry(max_retries=2),
            )
            return res, inj.checkpoint_state()

        plain, rng_plain = run("0")
        validated, rng_validated = run("1")
        assert plain == validated
        assert repr(rng_plain) == repr(rng_validated)


class TestWorkloadCalibration:
    """Regressions for the offered_load window and the long-tail
    renormalization in draw_services."""

    def test_offered_load_batch_sane(self):
        """All-at-once batches have zero arrival span; the old window
        max(arrivals, 1e-12) reported load ~1e13x too high.  The
        makespan-aware window (span + mean service) puts an n-job
        batch on n_gpus at ~n_jobs / n_gpus."""
        n_jobs, n_gpus = 64, 16
        jobs = batch_workload(n_jobs=n_jobs, mean_service=10.0, seed=3)
        rho = offered_load(jobs, n_gpus)
        assert rho == pytest.approx(n_jobs / n_gpus, rel=0.01)
        assert rho < 1e3  # the bug reported ~1e13

    def test_offered_load_matches_poisson_nominal(self):
        """For a long Poisson stream the window estimate converges to
        rate * mean_service / n_gpus."""
        jobs = poisson_workload(n_jobs=4000, arrival_rate=1.6,
                                mean_service=10.0, seed=7)
        rho = offered_load(jobs, n_gpus=16)
        assert rho == pytest.approx(1.6 * 10.0 / 16.0, rel=0.1)

    def test_offered_load_validation(self):
        assert offered_load([], n_gpus=4) == 0.0
        with pytest.raises(ValueError):
            offered_load(batch_workload(n_jobs=2, seed=0), n_gpus=0)

    def test_draw_services_realized_mean(self):
        """The 6x long tail used to inflate the realized mean to
        (1 + 5 * long_fraction) * mean_service; after renormalization
        the realized mean matches the parameter for any tail share."""
        from repro.sched.workloads import draw_services

        rng = np.random.default_rng(11)
        for long_fraction in (0.0, 0.1, 0.3, 1.0):
            services, is_long = draw_services(
                rng, 200_000, mean_service=10.0, sigma=0.8,
                long_fraction=long_fraction,
            )
            assert services.mean() == pytest.approx(10.0, rel=0.05)
            assert abs(is_long.mean() - long_fraction) < 0.01

    def test_long_jobs_still_longer(self):
        """Renormalizing must not erase the tail itself: flagged jobs
        remain ~6x the body on average."""
        from repro.sched.workloads import draw_services

        rng = np.random.default_rng(12)
        services, is_long = draw_services(
            rng, 100_000, mean_service=10.0, sigma=0.8,
            long_fraction=0.2,
        )
        ratio = services[is_long].mean() / services[~is_long].mean()
        assert ratio == pytest.approx(6.0, rel=0.1)

    def test_poisson_workload_mean_service_calibrated(self):
        jobs = poisson_workload(n_jobs=50_000, arrival_rate=1.0,
                                mean_service=10.0, long_fraction=0.1,
                                seed=4)
        mean = float(np.mean([j.service for j in jobs]))
        assert mean == pytest.approx(10.0, rel=0.05)
