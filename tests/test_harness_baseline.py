"""Baseline selection and comparison logic of benchmarks/harness.py.

The bug these pin down: with BENCH_2.json and BENCH_10.json on disk,
the pre-fix harness could compare a fresh run against the wrong file —
lexicographic name ordering puts BENCH_10 before BENCH_2, and a
baseline of the wrong mode (smoke vs full) silently disabled the gate
entirely.  Baseline choice must be *numeric-newest among same-mode
reports*, exercised here with fake report files.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _load_harness():
    spec = importlib.util.spec_from_file_location(
        "bench_harness", REPO / "benchmarks" / "harness.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


harness = _load_harness()


def _write(root: Path, idx: int, mode: str, wall: float = 1.0,
           counters=None, name: str = "case_a") -> Path:
    path = root / f"BENCH_{idx}.json"
    report = {
        "schema": 1,
        "mode": mode,
        "cases": [{"name": name, "wall_s": wall, "ref_wall_s": None,
                   "speedup": None, "modeled_s": None, "check": "ok"}],
    }
    if counters is not None:
        report["counters"] = counters
        report["gauges"] = {}
    path.write_text(json.dumps(report))
    return path


class TestSelectBaseline:
    def test_numeric_not_lexicographic(self, tmp_path):
        """BENCH_10 is newer than BENCH_2 (lexicographic order lies)."""
        _write(tmp_path, 2, "full")
        want = _write(tmp_path, 10, "full")
        got = harness._select_baseline(
            tmp_path, tmp_path / "BENCH_11.json", "full"
        )
        assert got == want

    def test_mode_must_match(self, tmp_path):
        """A newer report of the other mode must not shadow the true
        baseline (the pre-fix failure: smoke BENCH_10 newer than full
        BENCH_2 made full runs compare against nothing)."""
        full = _write(tmp_path, 2, "full")
        smoke = _write(tmp_path, 10, "smoke")
        assert harness._select_baseline(
            tmp_path, tmp_path / "BENCH_11.json", "full") == full
        assert harness._select_baseline(
            tmp_path, tmp_path / "BENCH_11.json", "smoke") == smoke

    def test_output_path_excluded(self, tmp_path):
        """Re-running with --output BENCH_5.json must not self-compare."""
        want = _write(tmp_path, 3, "full")
        out = _write(tmp_path, 5, "full")
        assert harness._select_baseline(tmp_path, out, "full") == want

    def test_unreadable_candidate_skipped(self, tmp_path):
        want = _write(tmp_path, 3, "full")
        (tmp_path / "BENCH_9.json").write_text("{not json")
        assert harness._select_baseline(
            tmp_path, tmp_path / "BENCH_10.json", "full") == want

    def test_no_matching_mode_returns_none(self, tmp_path):
        _write(tmp_path, 2, "smoke")
        assert harness._select_baseline(
            tmp_path, tmp_path / "BENCH_3.json", "full") is None

    def test_bench_files_parse_indices(self, tmp_path):
        _write(tmp_path, 10, "full")
        _write(tmp_path, 2, "full")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored
        files = harness._bench_files(tmp_path)
        assert [i for i, _ in files] == [2, 10]


class TestCompare:
    def _report(self, wall: float, counters=None, name="case_a"):
        rep = {
            "schema": 1, "mode": "smoke",
            "cases": [{"name": name, "wall_s": wall}],
        }
        if counters is not None:
            rep["counters"] = counters
        return rep

    def test_slowdown_beyond_tolerance_flagged(self, tmp_path):
        baseline = json.loads(
            _write(tmp_path, 2, "smoke", wall=0.1).read_text()
        )
        problems = harness.compare(self._report(0.5), baseline, 1.5)
        assert len(problems) == 1
        assert "case_a" in problems[0]

    def test_within_tolerance_clean(self, tmp_path):
        baseline = json.loads(
            _write(tmp_path, 2, "smoke", wall=0.1).read_text()
        )
        assert harness.compare(self._report(0.12), baseline, 1.5) == []

    def test_mode_mismatch_not_compared(self):
        baseline = {"mode": "full",
                    "cases": [{"name": "case_a", "wall_s": 0.001}]}
        assert harness.compare(self._report(9.9), baseline, 1.5) == []

    def test_counter_drift_flagged(self):
        baseline = self._report(0.1, counters={"sched.events_processed": 100})
        report = self._report(0.1, counters={"sched.events_processed": 90})
        problems = harness.compare(report, baseline, 1.5)
        assert any("sched.events_processed" in p for p in problems)

    def test_counter_gate_skipped_for_different_case_sets(self):
        baseline = self._report(0.1, counters={"c": 1})
        report = {
            "schema": 1, "mode": "smoke",
            "cases": [{"name": "other_case", "wall_s": 0.1}],
            "counters": {"c": 2},
        }
        assert harness.compare(report, baseline, 1.5) == []

    def test_counter_gate_skipped_without_baseline_counters(self):
        baseline = self._report(0.1)  # pre-snapshot era report
        report = self._report(0.1, counters={"c": 2})
        assert harness.compare(report, baseline, 1.5) == []

    def test_new_and_missing_counters_flagged(self):
        baseline = self._report(0.1, counters={"old.only": 1})
        report = self._report(0.1, counters={"new.only": 1})
        problems = harness.compare(report, baseline, 1.5)
        assert any("old.only" in p for p in problems)
        assert any("new.only" in p for p in problems)


class TestEndToEndSelection:
    def test_slow_smoke_caught_against_true_baseline(self, tmp_path):
        """The full regression scenario: an old same-mode baseline
        plus a newer other-mode report on disk; a slowed run must be
        gated against the same-mode one."""
        _write(tmp_path, 2, "smoke", wall=0.01)
        _write(tmp_path, 10, "full", wall=5.0)
        out = tmp_path / "BENCH_11.json"
        baseline_path = harness._select_baseline(tmp_path, out, "smoke")
        assert baseline_path == tmp_path / "BENCH_2.json"
        baseline = json.loads(baseline_path.read_text())
        slowed = {
            "schema": 1, "mode": "smoke",
            "cases": [{"name": "case_a", "wall_s": 0.2}],
        }
        assert harness.compare(slowed, baseline, 1.5)
