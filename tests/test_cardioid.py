"""Tests for the Cardioid proxy: ion model, DSL, diffusion, placement."""

import numpy as np
import pytest

from repro.cardioid.diffusion import VariableCoefficientDiffusion
from repro.cardioid.dsl import RationalFit, ReactionKernelGenerator
from repro.cardioid.ionmodels import (
    RATE_FUNCTIONS,
    V_RANGE,
    HodgkinHuxleyModel,
    reference_rates,
)
from repro.cardioid.simulation import MonodomainSimulation, placement_decision
from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine


class TestIonModel:
    def test_resting_state_is_stable(self):
        m = HodgkinHuxleyModel(4)
        v0 = m.v.copy()
        for _ in range(500):
            m.step_reaction(0.02)
        np.testing.assert_allclose(m.v, v0, atol=0.5)

    def test_action_potential_fires_and_repolarizes(self):
        m = HodgkinHuxleyModel(1)
        stim = np.array([12.0])
        peak = -100.0
        for k in range(3000):
            m.step_reaction(0.01, i_stim=stim if k < 100 else None)
            peak = max(peak, float(m.v[0]))
        assert peak > 20.0            # depolarization overshoot
        assert m.v[0] < -50.0         # back near rest

    def test_subthreshold_stim_no_spike(self):
        m = HodgkinHuxleyModel(1)
        stim = np.array([1.0])
        peak = -100.0
        for k in range(2000):
            m.step_reaction(0.01, i_stim=stim if k < 50 else None)
            peak = max(peak, float(m.v[0]))
        assert peak < 0.0

    def test_gates_stay_in_unit_interval(self):
        m = HodgkinHuxleyModel(8)
        stim = np.full(8, 15.0)
        for k in range(1000):
            m.step_reaction(0.02, i_stim=stim if k < 100 else None)
            for g in (m.m, m.h, m.n):
                assert np.all(g >= 0.0) and np.all(g <= 1.0)

    def test_rates_positive_on_range(self):
        v = np.linspace(*V_RANGE, 500)
        for name, vals in reference_rates(v).items():
            assert np.all(vals > 0), name

    def test_validation(self):
        with pytest.raises(ValueError):
            HodgkinHuxleyModel(0)
        m = HodgkinHuxleyModel(1)
        with pytest.raises(ValueError):
            m.step_reaction(0.0)

    def test_state_shape(self):
        assert HodgkinHuxleyModel(5).state().shape == (5, 4)


class TestRationalFit:
    def test_exp_fit_tight(self):
        fit = RationalFit.fit(np.exp, (-3.0, 3.0), 8, 4)
        assert fit.max_rel_error < 1e-8

    def test_polynomial_fit_exact(self):
        fit = RationalFit.fit(lambda x: 1 + 2 * x + x**2, (0.0, 1.0), 4, 0)
        assert fit.max_rel_error < 1e-10

    def test_callable_matches_reported_error(self):
        fn = np.cos
        fit = RationalFit.fit(fn, (-1.0, 1.0), 6, 2)
        x = np.linspace(-1, 1, 777)
        err = np.max(np.abs(fit(x) - fn(x)) / np.maximum(np.abs(fn(x)), 1e-12))
        assert err <= fit.max_rel_error * 1.5 + 1e-14

    def test_empty_domain(self):
        with pytest.raises(ValueError):
            RationalFit.fit(np.exp, (1.0, 1.0))

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            RationalFit.fit(np.exp, (0.0, 1.0), num_degree=-1)

    def test_nonfinite_function_rejected(self):
        with pytest.raises(ValueError):
            with np.errstate(invalid="ignore"):
                RationalFit.fit(lambda x: np.log(x - 2.0), (0.0, 1.0))


class TestReactionKernelGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return ReactionKernelGenerator(RATE_FUNCTIONS, V_RANGE, tolerance=1e-5)

    def test_all_rates_fit_within_tolerance(self, gen):
        assert gen.worst_fit_error() <= 1e-5

    def test_baked_matches_reference(self, gen):
        v = np.linspace(*V_RANGE, 1200)
        ref = reference_rates(v)
        out = gen.generate_baked()(v)
        for name in ref:
            rel = np.max(
                np.abs(out[name] - ref[name])
                / np.maximum(np.abs(ref[name]), 1e-12)
            )
            assert rel < 2e-5, name

    def test_runtime_and_baked_agree(self, gen):
        v = np.linspace(*V_RANGE, 300)
        baked = gen.generate_baked()(v)
        runtime = gen.generate_runtime()(v)
        for name in baked:
            np.testing.assert_allclose(baked[name], runtime[name], rtol=1e-9)

    def test_baked_source_contains_literals_not_lookups(self, gen):
        gen.generate_baked()
        # the compiled source is cached in the JIT; inspect it
        sources = [k.source for k in gen.jit._cache.values()]
        baked_src = next(s for s in sources if "coefficients baked" in s)
        assert "_coeff_tables" not in baked_src
        assert "e-" in baked_src or "." in baked_src  # float literals

    def test_no_transcendentals_in_generated_kernel(self, gen):
        sources = [k.source for k in gen.jit._cache.values()]
        baked_src = next(s for s in sources if "coefficients baked" in s)
        assert "exp" not in baked_src

    def test_model_runs_with_dsl_rates(self, gen):
        """Full AP simulation with the DSL kernel tracks the reference
        model closely."""
        baked = gen.generate_baked()
        m_ref = HodgkinHuxleyModel(1)
        m_dsl = HodgkinHuxleyModel(1, rates=lambda v: baked(v))
        stim = np.array([12.0])
        for k in range(1500):
            s = stim if k < 100 else None
            m_ref.step_reaction(0.01, i_stim=s)
            m_dsl.step_reaction(0.01, i_stim=s)
        assert abs(m_ref.v[0] - m_dsl.v[0]) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactionKernelGenerator({}, V_RANGE)
        with pytest.raises(ValueError):
            ReactionKernelGenerator(RATE_FUNCTIONS, V_RANGE, tolerance=0.0)


class TestDiffusion:
    def test_conservation(self):
        rng = np.random.default_rng(0)
        d = VariableCoefficientDiffusion(1.0 + rng.random((5, 6, 7)))
        v = rng.random((5, 6, 7))
        assert abs(d.conservation_defect(v)) < 1e-12

    def test_constant_field_unchanged(self):
        d = VariableCoefficientDiffusion(np.ones((4, 4, 4)))
        out = d.apply(np.full((4, 4, 4), 3.0))
        np.testing.assert_allclose(out, 0.0, atol=1e-14)

    def test_uniform_sigma_matches_plain_laplacian(self):
        """With sigma = 1 the stencil reduces to the 7-point Laplacian
        (zero-flux boundaries)."""
        d = VariableCoefficientDiffusion(np.ones((8, 8, 8)), h=1.0)
        rng = np.random.default_rng(1)
        v = rng.random((8, 8, 8))
        out = d.apply(v)
        # interior check against the standard 7-point stencil
        lap = (
            v[:-2, 1:-1, 1:-1] + v[2:, 1:-1, 1:-1]
            + v[1:-1, :-2, 1:-1] + v[1:-1, 2:, 1:-1]
            + v[1:-1, 1:-1, :-2] + v[1:-1, 1:-1, 2:]
            - 6 * v[1:-1, 1:-1, 1:-1]
        )
        np.testing.assert_allclose(out[1:-1, 1:-1, 1:-1], lap, atol=1e-12)

    def test_smooths_towards_mean(self):
        rng = np.random.default_rng(2)
        d = VariableCoefficientDiffusion(1.0 + rng.random((6, 6, 6)))
        v = rng.random((6, 6, 6))
        mean0 = v.mean()
        for _ in range(200):
            v = v + 0.05 * d.apply(v)
        assert np.abs(v - mean0).max() < 0.05

    def test_unique_coefficients_per_point(self):
        d = VariableCoefficientDiffusion(
            1.0 + np.random.default_rng(3).random((4, 4, 4))
        )
        assert d.coefficients_per_point == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableCoefficientDiffusion(np.ones((4, 4)))
        with pytest.raises(ValueError):
            VariableCoefficientDiffusion(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            VariableCoefficientDiffusion(np.ones((4, 4, 4)), h=0.0)
        d = VariableCoefficientDiffusion(np.ones((4, 4, 4)))
        with pytest.raises(ValueError):
            d.apply(np.ones((3, 3, 3)))

    def test_kernel_recorded_memory_bound(self):
        ctx = ExecutionContext()
        d = VariableCoefficientDiffusion(np.ones((8, 8, 8)), ctx=ctx)
        d.apply(np.zeros((8, 8, 8)))
        k = ctx.trace.kernels[0]
        assert k.arithmetic_intensity < 0.5  # memory-bound profile


class TestMonodomain:
    def test_wave_depolarizes_tissue(self):
        sim = MonodomainSimulation((10, 4, 4), dt=0.02)
        stim = sim.stimulate_region((slice(0, 3), slice(None), slice(None)),
                                    30.0)
        peak_fraction = 0.0
        for k in range(600):
            sim.step(stim if k < 150 else None)
            peak_fraction = max(peak_fraction, sim.activated_fraction())
        assert peak_fraction > 0.2

    def test_no_stim_stays_at_rest(self):
        sim = MonodomainSimulation((6, 4, 4), dt=0.02)
        sim.run(300)
        assert sim.membrane.v.max() < -50.0

    def test_reaction_kernel_traced_compute_bound(self):
        ctx = ExecutionContext()
        sim = MonodomainSimulation((6, 4, 4), ctx=ctx)
        sim.run(3)
        reactions = [k for k in ctx.trace.kernels
                     if k.name == "cardioid-reaction"]
        diffusions = [k for k in ctx.trace.kernels
                      if k.name == "cardioid-diffusion"]
        assert len(reactions) == 3 and len(diffusions) == 3
        assert reactions[0].arithmetic_intensity > 1.0
        assert diffusions[0].arithmetic_intensity < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            MonodomainSimulation((4, 4, 4), dt=0.0)
        sim = MonodomainSimulation((4, 4, 4))
        with pytest.raises(ValueError):
            sim.run(-1)


class TestPlacement:
    def test_all_gpu_wins_on_sierra(self):
        """The §4.1 decision: keeping diffusion on the GPU beats moving
        data to the CPU every step, despite competitive CPU kernels."""
        result = placement_decision(get_machine("sierra"), 50_000_000)
        assert result["winner"] == "all_gpu"
        assert result["transfer_per_step"] > 0

    def test_transfer_cost_drives_decision(self):
        result = placement_decision(get_machine("sierra"), 50_000_000)
        # the CPU placement's penalty is dominated by transfers
        cpu_kernel_only = result["cpu_diffusion_per_step"] - result["transfer_per_step"]
        assert result["transfer_per_step"] > 0.2 * cpu_kernel_only

    def test_needs_gpu_machine(self):
        with pytest.raises(ValueError):
            placement_decision(get_machine("cori-ii"), 1000)
