"""Tests for the work-stealing executor (repro.par.steal).

The scheduler invariants (every index handed out exactly once, steals
take the back half, nothing splits below the grain), bit-exactness of
both steal backends against serial across grains, the typed failure
surface (including precise ``pending_indices`` on a worker crash),
scheduler counters, nested-fan-out degradation to an inline serial
loop, and the staged shared-memory md force fan-out.
"""

import os
import time

import numpy as np
import pytest

from repro.obs import metrics as metrics_mod
from repro.par import (
    StealScheduler,
    WorkerCrashError,
    WorkerTaskError,
    live_segments,
    map_fanout,
)
from repro.par.steal import default_min_grain, in_steal_worker

STEAL_BACKENDS = ["steal-thread:2", "steal-thread:4", "steal-process:2"]


# -- top-level task fns (process backend pickles them by qualname) --------


def _square(x):
    return x * x


def _norm_of_seeded(args):
    seq, n = args
    rng = np.random.default_rng(seq)
    return float(np.linalg.norm(rng.standard_normal(n)))


def _sleepy(args):
    idx, delay = args
    time.sleep(delay)
    return idx


def _boom(x):
    if x == 5:
        raise ValueError(f"bad item {x}")
    return x


def _die_on(x):
    if x == 7:
        os._exit(13)
    time.sleep(0.01)
    return x


def _nested_fanout(x):
    # a fan-out issued from inside a steal worker must degrade to an
    # inline serial loop rather than deadlock or nest real pools
    inner = map_fanout(_square, range(x + 1), backend="steal-thread:2")
    return sum(inner)


# -- scheduler invariants -------------------------------------------------


class TestStealScheduler:
    def _drain(self, sched, order):
        """Drive worker ids in *order* until the scheduler runs dry."""
        spans = []
        idle = set()
        k = 0
        while len(idle) < sched.workers:
            wid = order[k % len(order)]
            k += 1
            if wid in idle:
                continue
            span = sched.next_chunk(wid)
            if span is None:
                idle.add(wid)
            else:
                spans.append(span)
        return spans

    @pytest.mark.parametrize("n,workers,grain", [
        (100, 4, 5), (100, 4, 1), (7, 3, 2), (64, 8, 64), (1, 4, 1),
    ])
    def test_every_index_exactly_once(self, n, workers, grain):
        sched = StealScheduler(n, workers, grain)
        spans = self._drain(sched, list(range(workers)))
        seen = [i for s, e in spans for i in range(s, e)]
        assert sorted(seen) == list(range(n))
        assert len(seen) == len(set(seen))  # disjoint ranges

    def test_chunks_never_exceed_grain(self):
        sched = StealScheduler(120, 4, 7)
        spans = self._drain(sched, [0, 1, 2, 3])
        assert max(e - s for s, e in spans) <= 7

    def test_steal_takes_back_half(self):
        sched = StealScheduler(100, 2, 5)
        # worker 1's own range is (50, 100); drain it dry so the next
        # request steals from worker 0's untouched (0, 100//2) range
        while sched._deques[1]:
            sched.next_chunk(1)
        steals_before = sched.steals
        span = sched.next_chunk(1)
        assert sched.steals == steals_before + 1
        s, e = span
        # the stolen region is the back half of (0, 50), nibbled from
        # its front at grain size
        assert (s, e) == (25, 30)

    def test_small_range_moves_whole_not_split(self):
        sched = StealScheduler(8, 2, 4)  # each worker holds 4 = grain
        while sched._deques[1]:
            sched.next_chunk(1)
        splits_before = sched.splits
        span = sched.next_chunk(1)
        assert span == (0, 4)  # victim's whole range, unsplit
        assert sched.splits == splits_before

    def test_empty_and_underfull(self):
        assert StealScheduler(0, 4, 1).next_chunk(0) is None
        sched = StealScheduler(2, 4, 1)  # fewer items than workers
        spans = self._drain(sched, [3, 2, 1, 0])
        assert sorted(i for s, e in spans for i in range(s, e)) == [0, 1]

    def test_default_grain(self):
        assert default_min_grain("steal-thread", 1000, 4) == 3
        assert default_min_grain("steal-process", 1000, 4) == 15
        assert default_min_grain("steal-thread", 3, 4) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            StealScheduler(-1, 2, 1)
        with pytest.raises(ValueError):
            StealScheduler(4, 0, 1)


# -- fan-out semantics ----------------------------------------------------


class TestStealFanout:
    @pytest.mark.parametrize("backend", STEAL_BACKENDS)
    def test_bit_exact_vs_serial_across_grains(self, backend):
        seqs = np.random.SeedSequence(11).spawn(13)
        items = [(seqs[i], 64) for i in range(13)]
        ref = map_fanout(_norm_of_seeded, items, backend="serial")
        for grain in (None, 1, 4, 50):
            got = map_fanout(_norm_of_seeded, items, backend=backend,
                             chunk_size=grain)
            assert got == ref  # float equality, not approx

    def test_skewed_workload_actually_steals(self):
        # all the heavy items sit in worker 0's initial range; the
        # other workers finish instantly and must steal to help
        items = [(i, 0.02 if i < 8 else 0.0) for i in range(64)]
        before = metrics_mod.snapshot()["counters"].get(
            "par.steal.steals", 0)
        out = map_fanout(_sleepy, items, backend="steal-thread:4",
                         chunk_size=1)
        after = metrics_mod.snapshot()["counters"].get(
            "par.steal.steals", 0)
        assert out == list(range(64))
        assert after > before

    def test_scheduler_counters_recorded(self):
        before = metrics_mod.snapshot()["counters"]
        map_fanout(_square, range(40), backend="steal-thread:2")
        after = metrics_mod.snapshot()["counters"]

        def delta(key):
            return after.get(key, 0) - before.get(key, 0)

        assert delta("par.fanouts.steal-thread") == 1
        assert delta("par.tasks_dispatched") == 40
        assert delta("par.steal.chunks") > 0

    @pytest.mark.parametrize("backend", STEAL_BACKENDS)
    def test_worker_error_is_typed_and_first(self, backend):
        with pytest.raises(WorkerTaskError) as ei:
            map_fanout(_boom, range(12), backend=backend, chunk_size=2)
        assert ei.value.task_index == 5
        assert ei.value.error_type == "ValueError"

    def test_crash_reports_precise_pending_indices(self):
        n = 24
        with pytest.raises(WorkerCrashError) as ei:
            map_fanout(_die_on, range(n), backend="steal-process:2",
                       chunk_size=4)
        err = ei.value
        assert err.backend == "steal-process"
        assert list(err.pending_indices) == sorted(err.pending_indices)
        assert 7 in err.pending_indices  # the killed task is still owed
        assert all(0 <= i < n for i in err.pending_indices)
        # the broken pool was evicted: the next fan-out works
        assert map_fanout(_square, [2, 3],
                          backend="steal-process:2") == [4, 9]

    def test_nested_fanout_degrades_to_serial(self):
        out = map_fanout(_nested_fanout, range(6),
                         backend="steal-thread:2")
        assert out == [sum(x * x for x in range(k + 1)) for k in range(6)]
        assert not in_steal_worker()  # flag never leaks to the caller


# -- staged shared-memory md force fan-out --------------------------------


class TestMdForceFanout:
    def _system(self):
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox

        rng = np.random.default_rng(4)
        system = ParticleSystem(rng.uniform(0.0, 9.0, size=(600, 3)),
                                PeriodicBox((9.0, 9.0, 9.0)))
        nl = NeighborList(cutoff=2.5, skin=0.4)
        nl.build(system)
        return system, nl.pairs_i, nl.pairs_j

    def test_matches_serial_and_leaks_nothing(self):
        from repro.md.potentials import LennardJones, PairProcessor

        system, pi, pj = self._system()
        proc = PairProcessor(LennardJones())
        f0, e0, w0 = proc.compute(system, pi, pj)
        for backend in ("thread:2", "steal-thread:4", "steal-process:2"):
            f, e, w = proc.compute_fanout(system, pi, pj, backend=backend)
            assert np.allclose(f, f0, rtol=1e-9, atol=1e-9)
            assert np.isclose(e, e0, rtol=1e-12)
            assert np.isclose(w, w0, rtol=1e-12)
        assert live_segments() == ()

    def test_fixed_blocks_bit_exact_across_backends(self):
        from repro.md.potentials import LennardJones, PairProcessor

        system, pi, pj = self._system()
        proc = PairProcessor(LennardJones())
        ref = proc.compute_fanout(system, pi, pj, backend="thread:2",
                                  blocks=8)
        for backend in ("thread:4", "steal-thread:4", "steal-process:2"):
            f, e, w = proc.compute_fanout(system, pi, pj, backend=backend,
                                          blocks=8)
            assert np.array_equal(f, ref[0])
            assert e == ref[1] and w == ref[2]

    def test_serial_backend_falls_through(self):
        from repro.md.potentials import LennardJones, PairProcessor

        system, pi, pj = self._system()
        proc = PairProcessor(LennardJones())
        f0, e0, w0 = proc.compute(system, pi, pj)
        f, e, w = proc.compute_fanout(system, pi, pj, backend="serial")
        assert np.array_equal(f, f0) and e == e0 and w == w0
