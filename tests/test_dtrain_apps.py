"""Tests for the Table 3 stream study and the Fig 3 LBANN model."""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.dtrain.lbann import PARTITION_EFFICIENCY, LbannScalingModel
from repro.dtrain.streams import (
    STREAM_NAMES,
    combine_and_score,
    make_stream_dataset,
    train_stream_classifiers,
)

ENSEMBLES = ("simple-average", "weighted-average", "logistic-regression",
             "shallow-nn")


@pytest.fixture(scope="module")
def scores():
    out = {}
    for preset in ("ucf101-like", "hmdb51-like"):
        data = make_stream_dataset(preset, seed=0)
        models = train_stream_classifiers(data, epochs=25, seed=0)
        out[preset] = combine_and_score(data, models, seed=0)
    return out


class TestStreamDataset:
    def test_shapes(self):
        data = make_stream_dataset("ucf101-like", n_train_per_class=5,
                                   n_val_per_class=3, seed=0)
        assert set(data.streams) == set(STREAM_NAMES)
        assert data.train_y.shape[0] == 5 * data.n_classes
        assert data.val_y.shape[0] == 3 * data.n_classes

    def test_streams_correlated_not_identical(self):
        data = make_stream_dataset("ucf101-like", seed=0)
        a = data.train_x["spatial"].ravel()
        b = data.train_x["temporal"].ravel()
        corr = np.corrcoef(a, b)[0, 1]
        assert 0.1 < corr < 0.95

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            make_stream_dataset("kinetics-like")

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            make_stream_dataset(n_train_per_class=0)


class TestTable3Shape:
    """Robust structural claims of Table 3 (exact percentages depend on
    the real video datasets; EXPERIMENTS.md records the comparison)."""

    @pytest.mark.parametrize("preset", ["ucf101-like", "hmdb51-like"])
    def test_every_ensemble_beats_every_single(self, scores, preset):
        s = scores[preset]
        best_single = max(s[name] for name in STREAM_NAMES)
        for e in ENSEMBLES:
            assert s[e] >= best_single, (e, s)

    def test_spynet_best_single_on_ucf(self, scores):
        s = scores["ucf101-like"]
        assert s["spynet"] >= max(s["spatial"], s["temporal"])

    def test_temporal_weakest_on_hmdb(self, scores):
        s = scores["hmdb51-like"]
        assert s["temporal"] <= min(s["spatial"], s["spynet"])

    def test_hmdb_harder_than_ucf(self, scores):
        for name in STREAM_NAMES:
            assert scores["hmdb51-like"][name] < scores["ucf101-like"][name]

    def test_all_scores_are_probabilities(self, scores):
        for preset in scores:
            for v in scores[preset].values():
                assert 0.0 <= v <= 1.0


class TestLbann:
    @pytest.fixture
    def model(self):
        return LbannScalingModel()

    def test_model_does_not_fit_one_gpu(self, model):
        """Fig 3's premise: 'we had to use at least two GPUs per
        sample'."""
        assert model.min_gpus_per_sample() == 2
        with pytest.raises(ValueError):
            model.sample_time(1)
        big = LbannScalingModel(model_bytes=40 * 2**30)
        with pytest.raises(ValueError, match="does not fit"):
            big.sample_time(2)

    def test_strong_scaling_matches_paper(self, model):
        """'near-perfect scaling when scaling from two GPUs to four
        GPUs per sample, and 2.8X and 3.4X speedups with eight and
        sixteen GPUs.'"""
        assert model.strong_scaling_speedup(4) == pytest.approx(1.92, rel=0.05)
        assert model.strong_scaling_speedup(8) == pytest.approx(2.8, rel=0.05)
        assert model.strong_scaling_speedup(16) == pytest.approx(3.4, rel=0.05)

    def test_weak_scaling_good_to_2048(self, model):
        """Fig 3's solid lines: good weak scaling trends to 2048 GPUs."""
        for g in (2, 4, 8, 16):
            eff = model.weak_scaling_efficiency(g, 2048)
            assert eff > 0.75, (g, eff)
        # the baseline configuration scales best
        assert model.weak_scaling_efficiency(2, 2048) > 0.9

    def test_throughput_monotone_in_gpus(self, model):
        ts = [model.throughput(n, 2) for n in (2, 8, 64, 512, 2048)]
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_more_gpus_per_sample_lowers_per_gpu_efficiency(self, model):
        """The strong-scaling trade: 16 GPUs/sample is faster per
        sample but less efficient per GPU than 2."""
        thr2 = model.throughput(2048, 2)
        thr16 = model.throughput(2048, 16)
        assert thr2 > thr16

    def test_partition_table_covers_figure(self):
        assert set(PARTITION_EFFICIENCY) == {2, 4, 8, 16}

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.sample_time(3)
        with pytest.raises(ValueError):
            model.step_time(10, 4)
        with pytest.raises(ValueError):
            model.step_time(8, 4, samples_per_replica=0)
        with pytest.raises(ValueError):
            LbannScalingModel(machine=get_machine("cori-ii"))
        with pytest.raises(ValueError):
            LbannScalingModel(sample_flops=-1.0)

    def test_allreduce_charged_only_with_replicas(self, model):
        t_single = model.step_time(4, 4)
        t_multi = model.step_time(8, 4)
        assert t_multi > t_single
