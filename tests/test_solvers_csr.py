"""Tests for the CSR wrapper and SpMV accounting."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.forall import ExecutionContext
from repro.solvers.csr import CsrMatrix, spmv_spec
from repro.solvers.problems import poisson_2d


class TestSpmvSpec:
    def test_flops_two_per_nnz(self):
        k = spmv_spec(100, 500)
        assert k.flops == 1000

    def test_traffic_scales_with_nnz(self):
        assert spmv_spec(10, 1000).bytes_total > spmv_spec(10, 100).bytes_total

    def test_tuned_flag_changes_efficiency(self):
        assert (
            spmv_spec(10, 100, tuned=True).bandwidth_efficiency
            > spmv_spec(10, 100, tuned=False).bandwidth_efficiency
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spmv_spec(-1, 10)


class TestCsrMatrix:
    def test_matvec_matches_scipy(self):
        a = poisson_2d(8)
        x = np.arange(64, dtype=float)
        m = CsrMatrix(a)
        np.testing.assert_allclose(m.matvec(x), a @ x)

    def test_matvec_dim_mismatch(self):
        m = CsrMatrix(np.eye(3))
        with pytest.raises(ValueError):
            m.matvec(np.ones(4))

    def test_rmatvec(self):
        a = sp.random(5, 7, density=0.5, random_state=np.random.default_rng(0))
        m = CsrMatrix(a)
        x = np.ones(5)
        np.testing.assert_allclose(m.rmatvec(x), a.T @ x)

    def test_rmatvec_dim_mismatch(self):
        m = CsrMatrix(np.ones((3, 4)))
        with pytest.raises(ValueError):
            m.rmatvec(np.ones(4))

    def test_matvec_records_kernel(self):
        ctx = ExecutionContext()
        m = CsrMatrix(poisson_2d(4), ctx=ctx)
        m.matvec(np.ones(16))
        assert len(ctx.trace.kernels) == 1
        assert ctx.trace.kernels[0].flops == 2 * m.nnz

    def test_no_ctx_no_recording(self):
        m = CsrMatrix(poisson_2d(4))
        m.matvec(np.ones(16))  # must not raise

    def test_galerkin_is_ptap(self):
        a = poisson_2d(6)
        rng = np.random.default_rng(1)
        p = sp.random(36, 9, density=0.3, random_state=rng)
        ma, mp = CsrMatrix(a), CsrMatrix(p)
        coarse = ma.galerkin(mp)
        np.testing.assert_allclose(
            coarse.toarray(), (p.T @ a @ p).toarray(), atol=1e-12
        )

    def test_matmul_operator(self):
        a, b = CsrMatrix(np.eye(3) * 2), CsrMatrix(np.eye(3) * 3)
        np.testing.assert_allclose((a @ b).toarray(), np.eye(3) * 6)
        np.testing.assert_allclose(a @ np.ones(3), 2 * np.ones(3))

    def test_transpose(self):
        m = CsrMatrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        np.testing.assert_allclose(
            m.transpose().toarray(), np.array([[1.0, 0.0], [2.0, 3.0]])
        )

    def test_residual(self):
        a = np.diag([2.0, 4.0])
        m = CsrMatrix(a)
        r = m.residual(np.array([2.0, 4.0]), np.ones(2))
        np.testing.assert_allclose(r, 0.0)

    def test_row_abs_sums(self):
        m = CsrMatrix(np.array([[1.0, -2.0], [3.0, 0.0]]))
        np.testing.assert_allclose(m.row_abs_sums(), [3.0, 3.0])

    def test_diagonal(self):
        m = CsrMatrix(poisson_2d(3))
        np.testing.assert_allclose(m.diagonal(), 4.0)


class TestMatvecOut:
    def test_out_matches_allocating_path(self):
        a = CsrMatrix(poisson_2d(9))
        x = np.random.default_rng(0).random(a.shape[1])
        out = np.empty(a.n_rows)
        y = a.matvec(x, out=out)
        assert y is out
        np.testing.assert_allclose(out, a.tocsr() @ x, atol=1e-14)

    def test_out_reused_across_calls(self):
        a = CsrMatrix(poisson_2d(7))
        rng = np.random.default_rng(1)
        out = np.empty(a.n_rows)
        for _ in range(3):
            x = rng.random(a.shape[1])
            a.matvec(x, out=out)
            np.testing.assert_allclose(out, a.tocsr() @ x, atol=1e-14)

    def test_out_wrong_dtype_falls_back(self):
        a = CsrMatrix(poisson_2d(5))
        x = np.random.default_rng(2).random(a.shape[1])
        out = np.empty(a.n_rows, dtype=np.float32)
        y = a.matvec(x, out=out)
        assert y is out
        np.testing.assert_allclose(
            out, (a.tocsr() @ x).astype(np.float32), rtol=1e-6
        )

    def test_out_records_kernel(self):
        ctx = ExecutionContext()
        a = CsrMatrix(poisson_2d(5), ctx=ctx)
        x = np.zeros(a.shape[1])
        a.matvec(x, out=np.empty(a.n_rows))
        assert len(ctx.trace.kernels) == 1


class TestSpecCache:
    def test_same_spec_object_reused(self):
        ctx = ExecutionContext()
        a = CsrMatrix(poisson_2d(6), ctx=ctx)
        x = np.zeros(a.shape[1])
        a.matvec(x)
        a.matvec(x)
        k0, k1 = ctx.trace.kernels
        assert k0 is k1  # cached, not rebuilt

    def test_tuned_flag_keys_separately(self):
        ctx = ExecutionContext()
        a = CsrMatrix(poisson_2d(6), ctx=ctx)
        x = np.zeros(a.shape[1])
        a.matvec(x, tuned=True)
        a.matvec(x, tuned=False)
        k0, k1 = ctx.trace.kernels
        assert k0 is not k1
        assert k0.bandwidth_efficiency != k1.bandwidth_efficiency

    def test_rmatvec_spec_cached(self):
        ctx = ExecutionContext()
        a = CsrMatrix(poisson_2d(6), ctx=ctx)
        y = np.zeros(a.shape[0])
        a.rmatvec(y)
        a.rmatvec(y)
        k0, k1 = ctx.trace.kernels
        assert k0 is k1
