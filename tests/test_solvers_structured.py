"""Tests for Box, BoxLoop and the PFMG structured solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.forall import ExecPolicy, ExecutionContext
from repro.solvers.structured import (
    Box,
    BoxLoop,
    StructGrid,
    _prolong_bilinear,
    _restrict_full_weighting,
    pfmg_solve,
)


class TestBox:
    def test_shape_and_size(self):
        b = Box((0, 0), (4, 5))
        assert b.shape == (4, 5)
        assert b.size == 20
        assert b.ndim == 2

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Box((3,), (1,))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1,))

    def test_empty_rank(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_contains(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains(Box((2, 3), (5, 6)))
        assert not outer.contains(Box((2, 3), (5, 11)))

    def test_intersect(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 3), (8, 8))
        assert a.intersect(b) == Box((3, 3), (5, 5))

    def test_intersect_disjoint_none(self):
        assert Box((0,), (2,)).intersect(Box((5,), (7,))) is None

    def test_grow(self):
        assert Box((1, 1), (3, 3)).grow(1) == Box((0, 0), (4, 4))

    def test_coarsen_refine_roundtrip(self):
        b = Box((0, 0), (8, 8))
        assert b.coarsen(2).refine(2) == b

    def test_coarsen_rounds_up_hi(self):
        assert Box((0,), (5,)).coarsen(2) == Box((0,), (3,))

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            Box((0,), (4,)).coarsen(0)
        with pytest.raises(ValueError):
            Box((0,), (4,)).refine(0)

    def test_slices(self):
        b = Box((2, 3), (4, 6))
        arr = np.zeros((10, 10))
        arr[b.slices()] = 1.0
        assert arr.sum() == b.size

    @given(
        lo=st.integers(-10, 10), width=st.integers(0, 10),
        ratio=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_refine_preserves_containment(self, lo, width, ratio):
        b = Box((lo,), (lo + width,))
        fine = b.refine(ratio)
        assert fine.coarsen(ratio).contains(b) or width == 0


class TestBoxLoop:
    @pytest.mark.parametrize("policy", list(ExecPolicy))
    def test_backend_equivalence(self, policy):
        box = Box((0, 0), (4, 6))
        out = np.zeros((4, 6))

        def body(i, j):
            out[i, j] = 3 * i + j

        BoxLoop(policy=policy).run("fill", box, body)
        expect = np.add.outer(3 * np.arange(4), np.arange(6))
        np.testing.assert_array_equal(out, expect)

    def test_records_kernel(self):
        ctx = ExecutionContext()
        loop = BoxLoop(ctx=ctx)
        loop.run("k", Box((0,), (10,)), lambda i: None, flops_per_point=2,
                 bytes_per_point=8)
        assert ctx.trace.total_flops == 20


class TestStructGrid:
    def test_laplacian_of_linear_is_zero_inside(self):
        g = StructGrid(8, h=0.1)
        # u = x-index: Laplacian is zero except at the Dirichlet ring
        u = np.broadcast_to(
            np.arange(10, dtype=float)[:, None], (10, 10)
        ).copy()
        out = g.new_field()
        g.apply_laplacian(BoxLoop(), u, out)
        np.testing.assert_allclose(out[2:-2, 2:-2], 0.0, atol=1e-12)

    def test_residual_consistent_with_apply(self):
        g = StructGrid(6)
        rng = np.random.default_rng(0)
        u, b = g.new_field(), g.new_field()
        u[1:-1, 1:-1] = rng.random((6, 6))
        b[1:-1, 1:-1] = rng.random((6, 6))
        au, r = g.new_field(), g.new_field()
        loop = BoxLoop()
        g.apply_laplacian(loop, u, au)
        g.residual(loop, b, u, r)
        np.testing.assert_allclose(
            r[1:-1, 1:-1], (b - au)[1:-1, 1:-1], atol=1e-13
        )

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            StructGrid(0)
        with pytest.raises(ValueError):
            StructGrid(4, 0)

    def test_jacobi_reduces_residual(self):
        g = StructGrid(10)
        b = g.new_field()
        b[1:-1, 1:-1] = 1.0
        u = g.new_field()
        r = g.new_field()
        loop = BoxLoop()
        g.residual(loop, b, u, r)
        r0 = np.linalg.norm(r[1:-1, 1:-1])
        for _ in range(20):
            u = g.jacobi_sweep(loop, b, u)
        g.residual(loop, b, u, r)
        assert np.linalg.norm(r[1:-1, 1:-1]) < r0


class TestTransfers:
    def test_restrict_constant_is_constant(self):
        fine = np.zeros(17 * 17).reshape(17, 17)
        fine[1:-1, 1:-1] = 1.0
        coarse = _restrict_full_weighting(fine)
        # interior coarse points away from the boundary see all-ones
        np.testing.assert_allclose(coarse[2:-2, 2:-2], 1.0)

    def test_restrict_needs_odd_interior(self):
        with pytest.raises(ValueError):
            _restrict_full_weighting(np.zeros((10, 10)))

    def test_prolong_constant_is_constant_inside(self):
        coarse = np.zeros((9, 9))
        coarse[1:-1, 1:-1] = 2.0
        fine = _prolong_bilinear(coarse, (17, 17))
        np.testing.assert_allclose(fine[3:-3, 3:-3], 2.0)

    def test_transfer_adjointness(self):
        """<R u, v>_coarse == <u, P v>_fine / 4 (vertex-centered FW/BL
        pair in 2D)."""
        rng = np.random.default_rng(1)
        u = np.zeros((17, 17))
        u[1:-1, 1:-1] = rng.random((15, 15))
        v = np.zeros((9, 9))
        v[1:-1, 1:-1] = rng.random((7, 7))
        ru = _restrict_full_weighting(u)
        pv = _prolong_bilinear(v, (17, 17))
        lhs = float((ru * v).sum())
        rhs = float((u * pv).sum()) / 4.0
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestPfmg:
    @pytest.mark.parametrize("n", [15, 31, 63])
    def test_mesh_independent_convergence(self, n):
        g = StructGrid(n)
        b = g.new_field()
        b[1:-1, 1:-1] = 1.0
        _, hist = pfmg_solve(g, b, tol=1e-9)
        assert hist[-1] <= 1e-9 * hist[0]
        assert len(hist) - 1 <= 15  # cycles, not sweeps

    def test_matches_manufactured_solution(self):
        n = 31
        h = 1.0 / (n + 1)
        g = StructGrid(n, h=h)
        xs = np.arange(0, n + 2) * h
        xg, yg = np.meshgrid(xs, xs, indexing="ij")
        exact = np.sin(np.pi * xg) * np.sin(np.pi * yg)
        b = g.new_field()
        b[1:-1, 1:-1] = (
            2 * np.pi**2 * np.sin(np.pi * xg) * np.sin(np.pi * yg)
        )[1:-1, 1:-1]
        u, hist = pfmg_solve(g, b, tol=1e-10)
        err = np.abs(u - exact)[1:-1, 1:-1].max()
        assert err < 5 * h**2  # second-order discretization error

    def test_device_policy_traces_kernels(self):
        ctx = ExecutionContext()
        loop = BoxLoop(ctx=ctx, policy=ExecPolicy.CUDA)
        g = StructGrid(15)
        b = g.new_field()
        b[1:-1, 1:-1] = 1.0
        pfmg_solve(g, b, loop=loop, tol=1e-6)
        assert ctx.trace.total_launches > 10
        assert ctx.trace.total_flops > 0

    def test_zero_rhs_returns_zero(self):
        g = StructGrid(15)
        u, hist = pfmg_solve(g, g.new_field(), tol=1e-10)
        np.testing.assert_allclose(u, 0.0)
        assert len(hist) == 1
