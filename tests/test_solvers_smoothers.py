"""Tests for relaxation methods."""

import numpy as np
import pytest

from repro.solvers.csr import CsrMatrix
from repro.solvers.problems import poisson_2d, random_spd
from repro.solvers.smoothers import (
    gauss_seidel,
    jacobi,
    l1_jacobi,
    smoother_by_name,
    weighted_jacobi,
)

SMOOTHERS = [jacobi, weighted_jacobi, l1_jacobi, gauss_seidel]


@pytest.fixture
def system():
    a = poisson_2d(10)
    rng = np.random.default_rng(0)
    x_true = rng.random(a.shape[0])
    return a, a @ x_true, x_true


class TestSmootherContracts:
    @pytest.mark.parametrize("smoother", SMOOTHERS)
    def test_error_decreases(self, smoother, system):
        a, b, x_true = system
        x = np.zeros_like(b)
        e0 = np.linalg.norm(x - x_true)
        x = smoother(a, b, x, sweeps=10)
        assert np.linalg.norm(x - x_true) < e0

    @pytest.mark.parametrize("smoother", SMOOTHERS)
    def test_fixed_point_is_solution(self, smoother, system):
        a, b, x_true = system
        x = smoother(a, b, x_true.copy(), sweeps=3)
        np.testing.assert_allclose(x, x_true, atol=1e-12)

    @pytest.mark.parametrize("smoother", SMOOTHERS)
    def test_zero_sweeps_identity(self, smoother, system):
        a, b, _ = system
        x0 = np.full(b.shape, 0.5)
        x = smoother(a, b, x0.copy(), sweeps=0)
        np.testing.assert_array_equal(x, x0)

    @pytest.mark.parametrize("smoother", SMOOTHERS)
    def test_negative_sweeps_raises(self, smoother, system):
        a, b, _ = system
        with pytest.raises(ValueError):
            smoother(a, b, np.zeros_like(b), sweeps=-1)

    @pytest.mark.parametrize("smoother", SMOOTHERS)
    def test_accepts_csrmatrix_wrapper(self, smoother, system):
        a, b, _ = system
        x = smoother(CsrMatrix(a), b, np.zeros_like(b), sweeps=1)
        assert np.isfinite(x).all()


class TestJacobiFamily:
    def test_weighted_jacobi_damps_high_frequency(self, system):
        """Damped Jacobi must kill the highest-frequency mode fast —
        the property multigrid relies on."""
        a, _, _ = system
        n = 10
        xs = np.arange(1, n + 1)
        mode = np.outer(
            np.sin(np.pi * n / (n + 1) * xs), np.sin(np.pi * n / (n + 1) * xs)
        ).ravel()
        b = np.zeros(n * n)
        x = weighted_jacobi(a, b, mode.copy(), sweeps=5)
        assert np.linalg.norm(x) < 0.2 * np.linalg.norm(mode)

    def test_l1_jacobi_convergent_on_spd_without_weight(self):
        a = random_spd(100, density=0.08, seed=5)
        b = np.ones(100)
        x = np.zeros(100)
        r0 = np.linalg.norm(b)
        x = l1_jacobi(a, b, x, sweeps=100)
        assert np.linalg.norm(b - a @ x) < r0

    def test_zero_diagonal_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            jacobi(a, np.ones(2), np.zeros(2))


class TestGaussSeidel:
    def test_converges_faster_than_jacobi(self, system):
        a, b, x_true = system
        xj = jacobi(a, b, np.zeros_like(b), sweeps=10)
        xg = gauss_seidel(a, b, np.zeros_like(b), sweeps=10)
        assert np.linalg.norm(xg - x_true) < np.linalg.norm(xj - x_true)

    def test_backward_sweep(self, system):
        a, b, x_true = system
        x = gauss_seidel(a, b, np.zeros_like(b), sweeps=10, backward=True)
        assert np.linalg.norm(x - x_true) < np.linalg.norm(x_true)

    def test_single_sweep_matches_manual(self):
        a = np.array([[4.0, -1.0], [-1.0, 4.0]])
        b = np.array([3.0, 3.0])
        x = gauss_seidel(a, b, np.zeros(2), sweeps=1)
        # manual: x0 = 3/4; x1 = (3 + x0)/4
        np.testing.assert_allclose(x, [0.75, 0.9375])


class TestLookup:
    def test_by_name(self):
        assert smoother_by_name("l1-jacobi") is l1_jacobi
        assert smoother_by_name("gauss-seidel") is gauss_seidel

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown smoother"):
            smoother_by_name("sor")


class TestMulticolor:
    def _mc(self):
        from repro.solvers.smoothers import (
            gauss_seidel_multicolor,
            multicolor_ordering,
        )
        return gauss_seidel_multicolor, multicolor_ordering

    def test_coloring_is_proper(self, system):
        _, multicolor_ordering = self._mc()
        a, _, _ = system
        colors = multicolor_ordering(a)
        coo = a.tocoo()
        off_diag = coo.row != coo.col
        assert (colors[coo.row[off_diag]] != colors[coo.col[off_diag]]).all()

    def test_poisson_color_count_small(self):
        """Luby rounds give maximal independent sets, not the optimal
        red-black 2-coloring — but on the 5-point stencil the count
        must stay small (each color is a batched SpMV; few colors =
        few launches)."""
        _, multicolor_ordering = self._mc()
        colors = multicolor_ordering(poisson_2d(12))
        assert int(colors.max()) + 1 <= 5

    def test_exact_equivalence_with_permuted_lexicographic(self, system):
        """Processing colors in ascending order IS lexicographic GS on
        the color-sorted permutation of A — exactly, not just to fp
        tolerance of the final answer."""
        gauss_seidel_multicolor, multicolor_ordering = self._mc()
        a, b, _ = system
        x0 = np.full(b.shape, 0.25)
        colors = multicolor_ordering(a)
        perm = np.argsort(colors, kind="stable")
        ap = (a.tocsr()[perm][:, perm]).tocsr()
        ref = gauss_seidel(ap, b[perm], x0[perm].copy(), sweeps=3)
        fast = gauss_seidel_multicolor(a, b, x0, sweeps=3)
        np.testing.assert_allclose(ref, fast[perm], rtol=0, atol=1e-13)

    def test_backward_equivalence(self, system):
        gauss_seidel_multicolor, multicolor_ordering = self._mc()
        a, b, _ = system
        x0 = np.zeros_like(b)
        colors = multicolor_ordering(a)
        perm = np.argsort(colors, kind="stable")
        ap = (a.tocsr()[perm][:, perm]).tocsr()
        ref = gauss_seidel(ap, b[perm], x0[perm].copy(), sweeps=2,
                           backward=True)
        fast = gauss_seidel_multicolor(a, b, x0, sweeps=2, backward=True)
        np.testing.assert_allclose(ref, fast[perm], rtol=0, atol=1e-13)

    def test_smoother_contract(self, system):
        gauss_seidel_multicolor, _ = self._mc()
        a, b, x_true = system
        x = gauss_seidel_multicolor(a, b, np.zeros_like(b), sweeps=10)
        assert np.linalg.norm(x - x_true) < np.linalg.norm(x_true)
        x = gauss_seidel_multicolor(a, b, x_true.copy(), sweeps=3)
        np.testing.assert_allclose(x, x_true, atol=1e-12)
        x0 = np.full(b.shape, 0.5)
        np.testing.assert_array_equal(
            gauss_seidel_multicolor(a, b, x0.copy(), sweeps=0), x0
        )
        with pytest.raises(ValueError):
            gauss_seidel_multicolor(a, b, np.zeros_like(b), sweeps=-1)

    def test_plan_cached_on_wrapper(self, system):
        gauss_seidel_multicolor, _ = self._mc()
        a, b, _ = system
        wrapped = CsrMatrix(a)
        gauss_seidel_multicolor(wrapped, b, np.zeros_like(b))
        plan = wrapped._mc_plan
        gauss_seidel_multicolor(wrapped, b, np.zeros_like(b))
        assert wrapped._mc_plan is plan

    def test_coloring_deterministic(self, system):
        _, multicolor_ordering = self._mc()
        a, _, _ = system
        np.testing.assert_array_equal(
            multicolor_ordering(a, seed=3), multicolor_ordering(a, seed=3)
        )

    def test_random_spd_equivalence(self):
        gauss_seidel_multicolor, multicolor_ordering = self._mc()
        a = random_spd(80, density=0.1, seed=2).tocsr()
        b = np.random.default_rng(1).random(80)
        x0 = np.zeros(80)
        colors = multicolor_ordering(a)
        perm = np.argsort(colors, kind="stable")
        ap = (a[perm][:, perm]).tocsr()
        ref = gauss_seidel(ap, b[perm], x0[perm].copy(), sweeps=2)
        fast = gauss_seidel_multicolor(a, b, x0, sweeps=2)
        np.testing.assert_allclose(ref, fast[perm], rtol=0, atol=1e-12)

    def test_by_name(self):
        from repro.solvers.smoothers import gauss_seidel_multicolor
        assert smoother_by_name("gauss-seidel-mc") is gauss_seidel_multicolor
