"""Tests for the SAMRAI/CleverLeaf proxy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr.cleverleaf import FIELDS, CleverLeaf
from repro.amr.euler import (
    GHOST,
    EulerState2D,
    conserved_totals,
    exact_riemann,
    hll_step_2d,
    max_wave_speed,
    sod_initial_condition,
)
from repro.amr.hierarchy import (
    PatchLevel,
    cluster_tags,
    coarsen_field,
    exchange_ghosts,
    refine_field,
    tag_gradient,
)
from repro.amr.patch import Patch
from repro.core.forall import ExecutionContext
from repro.core.memory import MemorySpace, QuickPool, ResourceManager
from repro.solvers.structured import Box


class TestPatch:
    def test_storage_shape(self):
        p = Patch(Box((0, 0), (8, 4)), ghost=2)
        p.allocate("rho", fill=1.0)
        assert p.field("rho").shape == (12, 8)
        assert p.interior("rho").shape == (8, 4)

    def test_view_global_coordinates(self):
        p = Patch(Box((10, 20), (14, 24)), ghost=2)
        p.allocate("f")
        p.view("f", Box((10, 20), (14, 24)))[...] = 7.0
        assert p.interior("f").sum() == 7.0 * 16

    def test_view_into_ghosts(self):
        p = Patch(Box((0, 0), (4, 4)), ghost=2)
        p.allocate("f")
        ghost_region = Box((-2, 0), (0, 4))
        p.view("f", ghost_region)[...] = 3.0
        assert p.field("f")[:2, 2:6].sum() == 3.0 * 8

    def test_view_outside_raises(self):
        p = Patch(Box((0, 0), (4, 4)), ghost=1)
        p.allocate("f")
        with pytest.raises(ValueError):
            p.view("f", Box((-3, 0), (0, 4)))

    def test_missing_field(self):
        p = Patch(Box((0, 0), (2, 2)))
        with pytest.raises(KeyError):
            p.field("nope")

    def test_double_allocate(self):
        p = Patch(Box((0, 0), (2, 2)))
        p.allocate("f")
        with pytest.raises(KeyError):
            p.allocate("f")

    def test_pool_allocation_and_release(self):
        rm = ResourceManager()
        pool = QuickPool(rm, space=MemorySpace.DEVICE)
        p = Patch(Box((0, 0), (8, 8)), ghost=2, pool=pool)
        p.allocate("f", fill=2.0)
        p.release()
        q = Patch(Box((0, 0), (8, 8)), ghost=2, pool=pool)
        q.allocate("f")
        assert pool.hits >= 1  # storage recycled

    def test_validation(self):
        with pytest.raises(ValueError):
            Patch(Box((0,), (4,)))
        with pytest.raises(ValueError):
            Patch(Box((0, 0), (4, 4)), ghost=-1)


class TestPatchLevel:
    def test_tiling_covers_domain(self):
        level = PatchLevel(Box((0, 0), (70, 50)), patch_size=32)
        total = sum(p.box.size for p in level.patches)
        assert total == 3500

    def test_gather_scatter_roundtrip(self):
        level = PatchLevel(Box((0, 0), (20, 12)), patch_size=8)
        level.allocate("f")
        rng = np.random.default_rng(0)
        data = rng.random((20, 12))
        level.scatter_global("f", data)
        np.testing.assert_array_equal(level.gather_global("f"), data)

    def test_ghost_exchange_matches_neighbor_interiors(self):
        level = PatchLevel(Box((0, 0), (16, 16)), patch_size=8, ghost=2)
        level.allocate("f")
        data = np.arange(256, dtype=float).reshape(16, 16)
        level.scatter_global("f", data)
        exchange_ghosts(level, ["f"])
        # patch 0 covers [0:8, 0:8]; its x-high ghosts hold rows 8:10
        p0 = level.patches[0]
        np.testing.assert_array_equal(
            p0.field("f")[-2:, 2:-2], data[8:10, 0:8]
        )

    def test_scatter_shape_mismatch(self):
        level = PatchLevel(Box((0, 0), (8, 8)), patch_size=4)
        level.allocate("f")
        with pytest.raises(ValueError):
            level.scatter_global("f", np.zeros((4, 4)))


class TestTransfers:
    def test_coarsen_conserves(self):
        rng = np.random.default_rng(1)
        fine = rng.random((16, 12))
        coarse = coarsen_field(fine, 2)
        assert coarse.sum() * 4 == pytest.approx(fine.sum())

    def test_refine_coarsen_identity(self):
        rng = np.random.default_rng(2)
        coarse = rng.random((6, 4))
        np.testing.assert_allclose(
            coarsen_field(refine_field(coarse, 2), 2), coarse
        )

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            coarsen_field(np.zeros((5, 4)), 2)
        with pytest.raises(ValueError):
            coarsen_field(np.zeros((4, 4)), 0)

    @given(ratio=st.sampled_from([1, 2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_refine_conserves_total(self, ratio):
        coarse = np.random.default_rng(3).random((4, 4))
        fine = refine_field(coarse, ratio)
        assert fine.sum() == pytest.approx(coarse.sum() * ratio**2)


class TestTagging:
    def test_tags_at_discontinuity(self):
        field = np.zeros((16, 16))
        field[8:, :] = 1.0
        tags = tag_gradient(field, 0.5)
        assert tags[7:9, :].all()
        assert not tags[0:4, :].any()

    def test_smooth_field_untagged(self):
        x = np.linspace(0, 1, 32)
        field = np.add.outer(x, x)
        assert not tag_gradient(field, 0.5).any()

    def test_cluster_covers_all_tags(self):
        tags = np.zeros((32, 32), dtype=bool)
        tags[4:8, 4:8] = True
        tags[20:28, 22:30] = True
        boxes = cluster_tags(tags, max_boxes=8)
        covered = np.zeros_like(tags)
        for b in boxes:
            covered[b.slices()] = True
        assert (covered | ~tags).all()  # every tag covered

    def test_cluster_splits_distant_clumps(self):
        tags = np.zeros((64, 64), dtype=bool)
        tags[2:6, 2:6] = True
        tags[58:62, 58:62] = True
        boxes = cluster_tags(tags, max_boxes=8)
        assert len(boxes) >= 2
        total = sum(b.size for b in boxes)
        assert total < 64 * 64 / 4  # far tighter than one bounding box

    def test_no_tags_no_boxes(self):
        assert cluster_tags(np.zeros((8, 8), dtype=bool)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            tag_gradient(np.zeros((4, 4)), 0.0)
        with pytest.raises(ValueError):
            cluster_tags(np.zeros((4, 4), dtype=bool), efficiency=0.0)


class TestEulerSolver:
    def test_sod_matches_exact_riemann(self):
        nx = 200
        state = sod_initial_condition(nx, 4)
        h = 1.0 / nx
        t = 0.0
        while t < 0.2:
            t += hll_step_2d(state, h)
        rho_num = state.rho[state.interior][:, 2]
        x = (np.arange(nx) + 0.5) * h
        rho_ex, _, _ = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1,
                                     (x - 0.5) / t)
        assert np.abs(rho_num - rho_ex).mean() < 0.03

    def test_conservation_exact(self):
        state = sod_initial_condition(64, 8)
        h = 1.0 / 64
        m0, _, e0 = conserved_totals(state, h)
        for _ in range(30):
            hll_step_2d(state, h)
        m1, _, e1 = conserved_totals(state, h)
        assert m1 == pytest.approx(m0, rel=1e-13)
        assert e1 == pytest.approx(e0, rel=1e-13)

    def test_positivity(self):
        state = sod_initial_condition(100, 4)
        h = 1.0 / 100
        for _ in range(200):
            hll_step_2d(state, h)
        rho, _, _, p = state.primitives()
        it = state.interior
        assert rho[it].min() > 0
        assert p[it].min() > 0

    def test_uniform_state_is_stationary(self):
        state = EulerState2D.zeros(16, 16)
        it = state.interior
        state.rho[it] = 1.0
        state.e[it] = 2.5
        before = state.rho[it].copy()
        for _ in range(10):
            hll_step_2d(state, 0.1)
        np.testing.assert_allclose(state.rho[it], before, atol=1e-13)

    def test_y_axis_sod_matches_x_axis(self):
        sx = sod_initial_condition(64, 8, axis=0)
        sy = sod_initial_condition(8, 64, axis=1)
        h = 1.0 / 64
        for _ in range(30):
            dtx = hll_step_2d(sx, h)
            hll_step_2d(sy, h, dt=dtx)
        np.testing.assert_allclose(
            sx.rho[sx.interior][:, 2], sy.rho[sy.interior][2, :], atol=1e-12
        )

    def test_reflecting_walls_conserve_mass(self):
        state = sod_initial_condition(64, 8)
        h = 1.0 / 64
        m0, _, _ = conserved_totals(state, h)
        for _ in range(100):
            hll_step_2d(state, h, boundary="reflecting")
        m1, _, _ = conserved_totals(state, h)
        assert m1 == pytest.approx(m0, rel=1e-12)

    def test_validation(self):
        state = sod_initial_condition(16, 4)
        with pytest.raises(ValueError):
            hll_step_2d(state, 0.1, boundary="absorbing")
        with pytest.raises(ValueError):
            hll_step_2d(state, 0.1, cfl=0.0)
        with pytest.raises(ValueError):
            exact_riemann(-1.0, 0, 1, 1, 0, 1, np.array([0.0]))


class TestCleverLeaf:
    def test_multipatch_equals_single_grid(self):
        cl = CleverLeaf(64, 32, h=1.0 / 64, patch_size=16)
        cl.set_initial(sod_initial_condition(64, 32))
        ref = sod_initial_condition(64, 32)
        for _ in range(15):
            dt = cl.step()
            hll_step_2d(ref, 1.0 / 64, dt=dt)
        g = cl.global_state()
        np.testing.assert_array_equal(
            g.rho[g.interior], ref.rho[ref.interior]
        )

    def test_run_to_time(self):
        cl = CleverLeaf(32, 16, h=1.0 / 32, patch_size=16)
        cl.set_initial(sod_initial_condition(32, 16))
        cl.run(t_end=0.05)
        assert cl.t >= 0.05
        assert cl.steps_taken > 0

    def test_refined_boxes_follow_shock(self):
        cl = CleverLeaf(64, 16, h=1.0 / 64, patch_size=32)
        cl.set_initial(sod_initial_condition(64, 16))
        cl.run(t_end=0.1)
        boxes = cl.refined_boxes(threshold=0.05)
        assert boxes
        # refined region sits in the right half (shock moved right)
        assert all(b.lo[0] >= 32 for b in boxes)

    def test_kernel_trace_recorded(self):
        ctx = ExecutionContext()
        cl = CleverLeaf(32, 16, h=1.0 / 32, ctx=ctx)
        cl.set_initial(sod_initial_condition(32, 16))
        cl.step()
        names = {k.name for k in ctx.trace.kernels}
        assert "cleverleaf-hydro" in names
        assert "cleverleaf-exchange" in names

    def test_pooled_storage(self):
        rm = ResourceManager()
        pool = QuickPool(rm, space=MemorySpace.DEVICE)
        cl = CleverLeaf(32, 32, patch_size=16, pool=pool)
        assert rm.live_bytes(MemorySpace.DEVICE) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CleverLeaf(2, 2)
        with pytest.raises(ValueError):
            CleverLeaf(16, 16, h=0.0)
        cl = CleverLeaf(16, 16)
        cl.set_initial(sod_initial_condition(16, 16))
        with pytest.raises(ValueError):
            cl.run(t_end=0.0)
