"""Tests for partial-assembly operators, assembly, and LOR."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.forall import ExecutionContext
from repro.fem.lor import (
    lor_diffusion_matrix,
    lor_mass_matrix,
    p1_mass_1d,
    p1_stiffness_1d,
    restrict_matrix,
)
from repro.fem.mesh import TensorMesh2D
from repro.fem.operators import (
    DiffusionOperator,
    MassOperator,
    assemble_diffusion,
    assemble_mass,
)
from repro.solvers.krylov import pcg


@pytest.mark.parametrize("order", [1, 2, 4])
class TestPaMatchesAssembly:
    """The MFEM correctness contract: the matrix-free action equals the
    assembled operator to machine precision."""

    def test_diffusion(self, order):
        mesh = TensorMesh2D(3, 4, order=order, lx=1.5, ly=0.7)
        op = DiffusionOperator(mesh, 1.0)
        a = assemble_diffusion(mesh, 1.0)
        u = np.random.default_rng(0).random(mesh.n_dofs)
        np.testing.assert_allclose(op.mult(u), a @ u, atol=1e-11)

    def test_mass(self, order):
        mesh = TensorMesh2D(3, 3, order=order)
        op = MassOperator(mesh, 3.0)
        m = assemble_mass(mesh, 3.0)
        u = np.random.default_rng(1).random(mesh.n_dofs)
        np.testing.assert_allclose(op.mult(u), m @ u, atol=1e-12)

    def test_variable_coefficient(self, order):
        mesh = TensorMesh2D(3, 3, order=order)
        coeff = lambda x, y: 1.0 + x + 2 * y * y
        op = DiffusionOperator(mesh, coeff)
        a = assemble_diffusion(mesh, coeff)
        u = np.random.default_rng(2).random(mesh.n_dofs)
        np.testing.assert_allclose(op.mult(u), a @ u, atol=1e-11)


class TestOperatorProperties:
    def test_diffusion_kills_constants(self):
        """grad(const) = 0: K @ ones = 0 (before BC elimination)."""
        mesh = TensorMesh2D(4, 4, order=3)
        op = DiffusionOperator(mesh)
        np.testing.assert_allclose(
            op.mult(np.ones(mesh.n_dofs)), 0.0, atol=1e-10
        )

    def test_mass_integrates_domain(self):
        """ones^T M ones = area of the domain."""
        mesh = TensorMesh2D(3, 5, order=2, lx=2.0, ly=0.5)
        op = MassOperator(mesh)
        total = float(np.ones(mesh.n_dofs) @ op.mult(np.ones(mesh.n_dofs)))
        assert total == pytest.approx(1.0, rel=1e-12)  # 2.0 * 0.5

    def test_operators_symmetric(self):
        mesh = TensorMesh2D(2, 2, order=3)
        for op in (DiffusionOperator(mesh), MassOperator(mesh)):
            rng = np.random.default_rng(3)
            u, v = rng.random(mesh.n_dofs), rng.random(mesh.n_dofs)
            assert float(v @ op.mult(u)) == pytest.approx(
                float(u @ op.mult(v)), rel=1e-10
            )

    def test_diffusion_positive_semidefinite(self):
        mesh = TensorMesh2D(2, 2, order=2)
        rng = np.random.default_rng(4)
        for _ in range(5):
            u = rng.random(mesh.n_dofs)
            assert float(u @ DiffusionOperator(mesh).mult(u)) >= -1e-10

    def test_coefficient_array_form(self):
        mesh = TensorMesh2D(2, 2, order=2)
        nq = mesh.basis.n_quad
        coeff = np.full((mesh.n_elements, nq, nq), 2.0)
        op_arr = DiffusionOperator(mesh, coeff)
        op_scalar = DiffusionOperator(mesh, 2.0)
        u = np.random.default_rng(5).random(mesh.n_dofs)
        np.testing.assert_allclose(op_arr.mult(u), op_scalar.mult(u))

    def test_coefficient_array_wrong_shape(self):
        mesh = TensorMesh2D(2, 2, order=2)
        with pytest.raises(ValueError):
            DiffusionOperator(mesh, np.ones((1, 2, 3)))

    def test_kernel_recorded(self):
        ctx = ExecutionContext()
        mesh = TensorMesh2D(2, 2, order=2)
        DiffusionOperator(mesh, ctx=ctx).mult(np.zeros(mesh.n_dofs))
        assert len(ctx.trace.kernels) == 1
        assert ctx.trace.kernels[0].name == "pa-diffusion"
        assert ctx.trace.kernels[0].flops > 0

    def test_lumped_mass_positive(self):
        mesh = TensorMesh2D(3, 3, order=2)
        lumped = MassOperator(mesh).lumped()
        assert np.all(lumped > 0)
        assert lumped.sum() == pytest.approx(1.0, rel=1e-12)


class TestLinearSolveWithPa:
    def test_poisson_manufactured_solution(self):
        """-div(grad u) = 2 pi^2 sin(pi x) sin(pi y) on the unit square:
        solve matrix-free with PCG and compare to the exact solution."""
        mesh = TensorMesh2D(6, 6, order=3)
        interior = mesh.interior_dofs()
        kop = DiffusionOperator(mesh)
        mop = MassOperator(mesh)
        gx, gy = mesh.node_coords()
        f = 2 * np.pi**2 * np.sin(np.pi * gx) * np.sin(np.pi * gy)
        b = mop.mult(f.ravel())[interior]
        x, info = pcg(kop.as_linear_operator(interior), b, tol=1e-12,
                      max_iter=2000)
        assert info.converged
        exact = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()[interior]
        assert np.abs(x - exact).max() < 2e-4  # p=3 on 6x6: well resolved


class TestLor:
    def test_p1_stiffness_uniform(self):
        k = p1_stiffness_1d(np.array([0.0, 0.5, 1.0])).toarray()
        np.testing.assert_allclose(
            k, [[2, -2, 0], [-2, 4, -2], [0, -2, 2]]
        )

    def test_p1_mass_rowsum_is_length(self):
        coords = np.array([0.0, 0.3, 0.6, 1.0])
        m = p1_mass_1d(coords)
        assert m.sum() == pytest.approx(1.0)

    def test_bad_coords(self):
        with pytest.raises(ValueError):
            p1_stiffness_1d(np.array([0.0, 0.0, 1.0]))
        with pytest.raises(ValueError):
            p1_mass_1d(np.array([1.0]))

    def test_lor_equals_ho_for_p1(self):
        """At order 1 the LOR operator IS the high-order operator."""
        mesh = TensorMesh2D(4, 4, order=1)
        a_ho = assemble_diffusion(mesh).toarray()
        a_lor = lor_diffusion_matrix(mesh).toarray()
        np.testing.assert_allclose(a_ho, a_lor, atol=1e-12)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_spectral_equivalence(self, order):
        """Generalized eigenvalues of (A_ho, A_lor) stay in a narrow
        band for every order — the property that makes AMG on the LOR
        matrix a good high-order preconditioner."""
        mesh = TensorMesh2D(3, 3, order=order)
        ii = mesh.interior_dofs()
        a_ho = assemble_diffusion(mesh)[np.ix_(ii, ii)].toarray()
        a_lor = restrict_matrix(lor_diffusion_matrix(mesh), ii).toarray()
        ev = sla.eigvalsh(a_ho, a_lor)
        assert ev.min() > 0.2
        assert ev.max() < 5.0

    def test_lor_mass_total(self):
        mesh = TensorMesh2D(3, 3, order=3, lx=2.0)
        m = lor_mass_matrix(mesh)
        assert m.sum() == pytest.approx(2.0, rel=1e-12)

    def test_bad_coefficient(self):
        mesh = TensorMesh2D(2, 2, order=1)
        with pytest.raises(ValueError):
            lor_diffusion_matrix(mesh, coefficient=0.0)
        with pytest.raises(ValueError):
            lor_mass_matrix(mesh, coefficient=-1.0)
