"""Tests for the ParaDyn loop-IR, passes, and Fig 6 shape."""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.paradyn.counters import count_memory_ops, modeled_time, report
from repro.paradyn.ir import (
    Assign,
    Loop,
    Program,
    bin_op,
    const,
    expr_refs,
    ref,
    unary,
)
from repro.paradyn.kernels import paradyn_kernel
from repro.paradyn.passes import (
    dead_store_elimination,
    merge_loops,
    slnsp,
)


def tiny_program(n=8):
    return Program(
        n=n,
        array_kinds={"x": "input", "t": "temp", "y": "output"},
        loops=[
            Loop("square", (Assign("t", bin_op("*", ref("x"), ref("x"))),)),
            Loop("shift", (Assign("y", bin_op("+", ref("t"), const(1.0))),)),
        ],
    )


class TestIr:
    def test_run_computes(self):
        prog = tiny_program()
        out = prog.run({"x": np.arange(8.0)})
        np.testing.assert_allclose(out["y"], np.arange(8.0) ** 2 + 1)

    def test_expr_refs(self):
        e = bin_op("*", ref("a"), bin_op("+", ref("b"), unary("sqrt", ref("a"))))
        assert expr_refs(e) == ["a", "b", "a"]

    def test_unary_ops(self):
        prog = Program(
            n=4,
            array_kinds={"x": "input", "y": "output"},
            loops=[Loop("l", (Assign("y", unary("sqrt", ref("x"))),))],
        )
        out = prog.run({"x": np.array([1.0, 4.0, 9.0, 16.0])})
        np.testing.assert_allclose(out["y"], [1, 2, 3, 4])

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_op("%", ref("a"), ref("b"))
        with pytest.raises(ValueError):
            unary("tanh", ref("a"))
        with pytest.raises(ValueError):
            Loop("empty", ())
        with pytest.raises(ValueError):
            Program(n=0, array_kinds={}, loops=[])
        with pytest.raises(ValueError):
            Program(
                n=4, array_kinds={"x": "input"},
                loops=[Loop("l", (Assign("x", const(1.0)),))],
            )
        with pytest.raises(ValueError):
            Program(
                n=4, array_kinds={},
                loops=[Loop("l", (Assign("y", const(1.0)),))],
            )

    def test_missing_input(self):
        with pytest.raises(KeyError):
            tiny_program().run({})

    def test_wrong_input_shape(self):
        with pytest.raises(ValueError):
            tiny_program(8).run({"x": np.zeros(4)})


class TestPasses:
    @pytest.fixture
    def prog(self):
        return paradyn_kernel(n=64)

    @pytest.fixture
    def inputs(self, prog):
        rng = np.random.default_rng(0)
        return {
            name: rng.random(prog.n)
            for name, kind in prog.array_kinds.items()
            if kind == "input"
        }

    def _outputs_equal(self, a, b):
        assert a.keys() == b.keys()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_merge_preserves_results(self, prog, inputs):
        self._outputs_equal(prog.run(inputs), merge_loops(prog).run(inputs))

    def test_merge_group_size(self, prog):
        merged = merge_loops(prog, group_size=3)
        assert merged.n_loops == 4
        assert merged.n_statements == prog.n_statements

    def test_slnsp_preserves_results_and_structure(self, prog, inputs):
        s = slnsp(prog)
        self._outputs_equal(prog.run(inputs), s.run(inputs))
        assert s.n_loops == prog.n_loops  # no explicit fusion

    def test_dse_preserves_outputs(self, prog, inputs):
        d = dead_store_elimination(prog)
        self._outputs_equal(prog.run(inputs), d.run(inputs))

    def test_dse_removes_debug_stores(self, prog):
        d = dead_store_elimination(prog)
        assert d.n_statements == prog.n_statements - 3
        remaining_targets = {
            s.target for l in d.loops for s in l.body
        }
        assert not {"dbg1", "dbg2", "dbg3"} & remaining_targets

    def test_dse_keeps_temp_read_later(self):
        prog = tiny_program()
        d = dead_store_elimination(prog)
        assert d.n_statements == prog.n_statements  # t is read by y

    def test_dse_removes_overwritten_store(self):
        prog = Program(
            n=4,
            array_kinds={"x": "input", "t": "temp", "y": "output"},
            loops=[
                Loop("first", (Assign("t", ref("x")),)),
                Loop("second", (Assign("t", bin_op("*", ref("x"), ref("x"))),)),
                Loop("out", (Assign("y", ref("t")),)),
            ],
        )
        d = dead_store_elimination(prog)
        assert d.n_statements == 2

    def test_dse_never_removes_output_stores(self):
        prog = Program(
            n=4,
            array_kinds={"x": "input", "y": "output"},
            loops=[Loop("l", (Assign("y", ref("x")),))],
        )
        assert dead_store_elimination(prog).n_statements == 1

    def test_merge_validation(self, prog):
        with pytest.raises(ValueError):
            merge_loops(prog, group_size=-1)


class TestCounters:
    def test_baseline_counts(self):
        prog = tiny_program()
        ops = count_memory_ops(prog)
        # loop1: load x (x*x reuses the register), store t
        # loop2: load t (cold again), store y
        assert ops.loads == 2
        assert ops.stores == 2

    def test_slnsp_removes_cross_loop_reload(self):
        prog = tiny_program()
        ops = count_memory_ops(slnsp(prog))
        assert ops.loads == 1  # only x; t stays in registers
        assert ops.stores == 2

    def test_register_reuse_within_loop(self):
        prog = Program(
            n=4,
            array_kinds={"x": "input", "y": "output", "z": "output"},
            loops=[Loop("l", (
                Assign("y", bin_op("*", ref("x"), ref("x"))),
                Assign("z", bin_op("+", ref("x"), ref("y"))),
            ))],
        )
        ops = count_memory_ops(prog)
        assert ops.loads == 1  # x loaded once; y from registers
        assert ops.stores == 2

    def test_modeled_time_needs_gpu(self):
        with pytest.raises(ValueError):
            modeled_time(get_machine("cori-ii"), tiny_program())
        with pytest.raises(ValueError):
            modeled_time(get_machine("sierra"), tiny_program(),
                         bandwidth_efficiency=0.0)

    def test_report_fields(self):
        r = report(paradyn_kernel(16), "base")
        assert r["loops"] == 11
        assert r["loads_per_iter"] > 0


class TestFig6Shape:
    """The paper's measured result: 'SLNSP improves performance by
    almost 2X, which roughly matches the reduction in the number of
    load operations.  Dead store elimination improves performance by
    an additional 20%.'"""

    def setup_method(self):
        self.machine = get_machine("sierra")
        # production-like trip count: launch overhead stays secondary
        # (the modeled-time calls below never execute the program)
        self.base = paradyn_kernel(n=5_000_000)
        self.with_slnsp = slnsp(self.base)
        self.with_dse = dead_store_elimination(self.with_slnsp)

    def test_slnsp_near_2x(self):
        t0 = modeled_time(self.machine, self.base)
        t1 = modeled_time(self.machine, self.with_slnsp)
        assert 1.6 < t0 / t1 < 2.4

    def test_dse_additional_20_percent(self):
        t1 = modeled_time(self.machine, self.with_slnsp)
        t2 = modeled_time(self.machine, self.with_dse)
        assert 1.1 < t1 / t2 < 1.35

    def test_speedup_matches_memory_op_reduction(self):
        ops0 = count_memory_ops(self.base)
        ops1 = count_memory_ops(self.with_slnsp)
        t0 = modeled_time(self.machine, self.base)
        t1 = modeled_time(self.machine, self.with_slnsp)
        assert t0 / t1 == pytest.approx(ops0.total / ops1.total, rel=0.1)

    def test_all_variants_same_outputs(self):
        rng = np.random.default_rng(1)
        small = paradyn_kernel(n=32)
        inputs = {
            k: rng.random(32)
            for k, v in small.array_kinds.items() if v == "input"
        }
        ref_out = small.run(inputs)
        for variant in (
            slnsp(small),
            dead_store_elimination(slnsp(small)),
            merge_loops(small),
        ):
            out = variant.run(inputs)
            for k in ref_out:
                np.testing.assert_array_equal(out[k], ref_out[k])
