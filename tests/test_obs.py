"""Tests for the repro.obs observability layer.

Covers the tracer (nesting, sinks, the disabled no-op contract), the
counter/gauge registry, the validate-mode switch, report rendering,
and — the point of the whole layer — that an injected fast-path
divergence is provably caught at runtime in strict mode.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import trace as trace_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import counters_table, kernel_breakdown, spans_table
from repro.obs.trace import NULL_SPAN, RingBufferSink
from repro.obs.validate import VALIDATE_ENV


@pytest.fixture
def ring():
    """Enable the global tracer on a fresh ring buffer; detach after."""
    sink = RingBufferSink()
    obs.TRACER.enable(sink)
    yield sink
    obs.TRACER.remove_sink(sink)
    obs.TRACER.disable()


@pytest.fixture
def registry(monkeypatch):
    """A private registry patched in as the process-wide one."""
    reg = MetricsRegistry()
    monkeypatch.setattr("repro.obs.metrics.REGISTRY", reg)
    yield reg


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        assert not obs.TRACER.enabled
        assert obs.span("anything", big=list(range(3))) is NULL_SPAN
        with obs.span("nested") as s:
            assert s is NULL_SPAN
            s.set(more=1)  # no-op, no error

    def test_span_emits_record(self, ring):
        with obs.span("work", n=3):
            pass
        assert len(ring) == 1
        rec = next(iter(ring))
        assert rec["type"] == "span"
        assert rec["name"] == "work"
        assert rec["dur"] >= 0.0
        assert rec["attrs"] == {"n": 3}
        assert rec["parent_id"] is None

    def test_nesting_links_parent_ids(self, ring):
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        records = {r["name"]: r for r in ring}
        assert records["inner"]["parent_id"] == outer.span_id
        assert records["outer"]["parent_id"] is None

    def test_siblings_share_parent(self, ring):
        with obs.span("outer") as outer:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        by_name = {r["name"]: r for r in ring}
        assert by_name["a"]["parent_id"] == outer.span_id
        assert by_name["b"]["parent_id"] == outer.span_id

    def test_exception_recorded_and_propagated(self, ring):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        rec = next(iter(ring))
        assert rec["error"] == "RuntimeError"

    def test_set_attaches_attrs(self, ring):
        with obs.span("s") as sp:
            sp.set(key="v")
        assert next(iter(ring))["attrs"] == {"key": "v"}

    def test_thread_nesting_independent(self, ring):
        """A span opened in another thread must not parent onto ours."""
        seen = {}

        def worker():
            with obs.span("threaded") as sp:
                seen["id"] = sp.span_id

        with obs.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        rec = next(r for r in ring if r["name"] == "threaded")
        assert rec["parent_id"] is None

    def test_ring_buffer_caps_capacity(self, ring):
        small = RingBufferSink(capacity=4)
        obs.TRACER.enable(small)
        try:
            for i in range(10):
                with obs.span(f"s{i}"):
                    pass
            assert len(small) == 4
            assert [r["name"] for r in small] == ["s6", "s7", "s8", "s9"]
        finally:
            obs.TRACER.remove_sink(small)

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.FileSink(str(path))
        obs.TRACER.enable(sink)
        try:
            with obs.span("logged", i=1):
                pass
        finally:
            obs.TRACER.remove_sink(sink)
            obs.TRACER.disable()
            sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["name"] == "logged"

    def test_configure_from_env_mem(self, monkeypatch):
        monkeypatch.setenv(trace_mod.TRACE_ENV, "mem")
        obs.configure_from_env()
        try:
            assert obs.TRACER.enabled
            assert any(
                isinstance(s, RingBufferSink) for s in obs.TRACER.sinks
            )
        finally:
            for s in obs.TRACER.sinks:
                obs.TRACER.remove_sink(s)
            obs.TRACER.disable()

    def test_configure_from_env_unset_stays_disabled(self, monkeypatch):
        monkeypatch.delenv(trace_mod.TRACE_ENV, raising=False)
        obs.configure_from_env()
        assert not obs.TRACER.enabled


class TestMetrics:
    def test_counter_accumulates(self, registry):
        c = registry.counter("a.b")
        c.add()
        c.add(4)
        assert c.value == 5
        assert registry.counter("a.b") is c

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("a.b").add(-1)

    def test_gauge_last_write_wins(self, registry):
        g = registry.gauge("q.depth")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_snapshot_sorted_plain_dicts(self, registry):
        registry.counter("z.last").add(1)
        registry.counter("a.first").add(2)
        registry.gauge("m.mid").set(7)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["counters"]["a.first"] == 2
        assert snap["gauges"] == {"m.mid": 7}

    def test_reset_by_prefix(self, registry):
        registry.counter("md.x").add()
        registry.counter("sched.y").add()
        registry.reset("md.")
        snap = registry.snapshot()
        assert "md.x" not in snap["counters"]
        assert snap["counters"]["sched.y"] == 1


class TestValidateModes:
    @pytest.mark.parametrize("raw", ["", "0", "off", "False", "no", "none"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv(VALIDATE_ENV, raw)
        assert obs.validation_mode() == "off"
        assert not obs.validation_enabled()

    @pytest.mark.parametrize("raw", ["record", "warn", "RECORD"])
    def test_record_values(self, monkeypatch, raw):
        monkeypatch.setenv(VALIDATE_ENV, raw)
        assert obs.validation_mode() == "record"
        assert obs.validation_enabled()

    @pytest.mark.parametrize("raw", ["1", "strict", "yes-please"])
    def test_strict_values(self, monkeypatch, raw):
        monkeypatch.setenv(VALIDATE_ENV, raw)
        assert obs.validation_mode() == "strict"

    def test_check_ok_counts_only_checks(self, monkeypatch, registry):
        monkeypatch.setenv(VALIDATE_ENV, "1")
        assert obs.check("dom", True)
        snap = registry.snapshot()["counters"]
        assert snap["obs.validate.dom.checks"] == 1
        assert "obs.validate.dom.divergence" not in snap

    def test_check_strict_raises(self, monkeypatch, registry):
        monkeypatch.setenv(VALIDATE_ENV, "1")
        with pytest.raises(obs.DivergenceError, match="dom.*detail"):
            obs.check("dom", False, "detail")
        snap = registry.snapshot()["counters"]
        assert snap["obs.validate.dom.divergence"] == 1

    def test_check_record_warns_and_continues(self, monkeypatch, registry):
        monkeypatch.setenv(VALIDATE_ENV, "record")
        with pytest.warns(RuntimeWarning, match="diverged"):
            ok = obs.check("dom", False)
        assert ok is False
        assert registry.snapshot()["counters"][
            "obs.validate.dom.divergence"] == 1

    def test_check_equal(self, monkeypatch, registry):
        monkeypatch.setenv(VALIDATE_ENV, "1")
        assert obs.check_equal("eq", (1, 2), (1, 2))
        with pytest.raises(obs.DivergenceError):
            obs.check_equal("eq", (1, 2), (1, 3))

    def test_check_allclose_values_and_shapes(self, monkeypatch, registry):
        monkeypatch.setenv(VALIDATE_ENV, "1")
        assert obs.check_allclose("fp", [1.0, 2.0], [1.0, 2.0 + 1e-12])
        with pytest.raises(obs.DivergenceError, match="max"):
            obs.check_allclose("fp", [1.0], [2.0])
        with pytest.raises(obs.DivergenceError, match="shape"):
            obs.check_allclose("fp", [1.0, 2.0], [1.0])


class TestReport:
    def _trace_and_model(self):
        from repro.core.kernels import KernelSpec, KernelTrace
        from repro.core.machine import get_machine
        from repro.core.roofline import RooflineModel

        tr = KernelTrace()
        for _ in range(5):
            tr.record_kernel(KernelSpec(
                name="spmv", flops=1e9, bytes_read=4e8, bytes_written=2e8,
            ))
        tr.record_kernel(KernelSpec(
            name="axpy", flops=1e8, bytes_read=2e8, bytes_written=1e8,
        ))
        return tr, RooflineModel(get_machine("sierra"))

    def test_span_summary_aggregates(self):
        records = [
            {"type": "span", "name": "a", "dur": 0.5},
            {"type": "span", "name": "a", "dur": 1.5},
            {"type": "other", "name": "a", "dur": 9.0},
            {"type": "span", "name": "b", "dur": 0.25},
        ]
        summary = obs.span_summary(records)
        assert summary["a"] == (2, 2.0)
        assert summary["b"] == (1, 0.25)

    def test_kernel_breakdown_renders_measured_column(self):
        tr, model = self._trace_and_model()
        text = str(kernel_breakdown(
            tr, model, measured={"spmv": 0.01, "axpy": 0.002},
        ))
        assert "spmv" in text and "axpy" in text
        assert "per-kernel breakdown" in text
        assert "%" in text

    def test_full_report_sections(self, registry):
        tr, model = self._trace_and_model()
        registry.counter("solvers.amg.vcycles").add(3)
        records = [{"type": "span", "name": "spmv", "dur": 0.01}]
        text = obs.report(tr, model, measured=records, registry=registry)
        assert "per-kernel breakdown" in text
        assert "spans" in text
        assert "solvers.amg.vcycles" in text

    def test_counters_and_spans_tables_standalone(self, registry):
        registry.counter("x.y").add()
        registry.gauge("x.g").set(2)
        ct = str(counters_table(registry))
        assert "x.y" in ct and "gauge" in ct
        st = str(spans_table(
            [{"type": "span", "name": "s", "dur": 1.0}]
        ))
        assert "s" in st

    def test_report_without_trace_still_renders_counters(self, registry):
        registry.counter("only.counter").add()
        assert "only.counter" in obs.report(registry=registry)

    def test_span_records_as_trace_rejected_loudly(self):
        """Passing a sink's span records where the KernelTrace goes is
        an easy mistake; it must fail with a clear TypeError, not an
        AttributeError from inside the roofline model."""
        _, model = self._trace_and_model()
        records = [{"type": "span", "name": "spmv", "dur": 0.01}]
        with pytest.raises(TypeError, match="KernelTrace"):
            kernel_breakdown(records, model)


class TestDivergenceInjection:
    """The layer must *provably* catch a fast path gone wrong: break a
    fast implementation on purpose and demand a DivergenceError."""

    def test_neighbor_dropped_pair_caught(self, monkeypatch, registry):
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox

        monkeypatch.setenv(VALIDATE_ENV, "1")
        box = PeriodicBox((10.0,) * 3)  # safely above 2*(cutoff+skin)
        ps = ParticleSystem.random_gas(150, box, seed=1)

        real_fast = NeighborList._build_fast

        def lossy_fast(self, system, x):
            real_fast(self, system, x)
            self.pairs_i = self.pairs_i[:-1]  # silently drop one pair
            self.pairs_j = self.pairs_j[:-1]

        monkeypatch.setattr(NeighborList, "_build_fast", lossy_fast)
        nl = NeighborList(cutoff=2.5, skin=0.3, method="fast")
        with pytest.raises(obs.DivergenceError, match="md.neighbor"):
            nl.build(ps)

    def test_neighbor_record_mode_warns_and_counts(self, monkeypatch,
                                                   registry):
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox

        monkeypatch.setenv(VALIDATE_ENV, "record")
        box = PeriodicBox((10.0,) * 3)
        ps = ParticleSystem.random_gas(150, box, seed=1)
        real_fast = NeighborList._build_fast

        def lossy_fast(self, system, x):
            real_fast(self, system, x)
            self.pairs_i = self.pairs_i[:-1]
            self.pairs_j = self.pairs_j[:-1]

        monkeypatch.setattr(NeighborList, "_build_fast", lossy_fast)
        nl = NeighborList(cutoff=2.5, skin=0.3, method="fast")
        with pytest.warns(RuntimeWarning, match="md.neighbor"):
            nl.build(ps)  # record mode: fast result kept
        snap = registry.snapshot()["counters"]
        assert snap["obs.validate.md.neighbor.divergence"] == 1

    def test_scheduler_misordered_fast_queue_caught(self, monkeypatch,
                                                    registry):
        from repro.sched import ClusterSimulator, Sjf, batch_workload
        from repro.sched.simulator import KeyedFastQueue

        monkeypatch.setenv(VALIDATE_ENV, "1")
        # sabotage SJF's fast queue into longest-job-first: the replayed
        # reference engine still runs true SJF, so results must diverge
        monkeypatch.setattr(
            Sjf, "fast_queue",
            lambda self, n_gpus: KeyedFastQueue(
                lambda j: (-j.service, j.job_id)
            ),
        )
        jobs = batch_workload(n_jobs=60, seed=2)
        with pytest.raises(obs.DivergenceError, match="sched.engine"):
            ClusterSimulator(4).run(jobs, Sjf(), engine="fast")

    def test_forces_bad_scatter_caught(self, monkeypatch, registry):
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox
        from repro.md.potentials import LennardJones, PairProcessor

        box = PeriodicBox((8.0,) * 3)
        ps = ParticleSystem.random_gas(100, box, seed=3)
        nl = NeighborList(cutoff=2.5, skin=0.3)
        nl.build(ps)
        proc = PairProcessor(LennardJones(cutoff=2.5))

        monkeypatch.setenv(VALIDATE_ENV, "1")
        real_bincount = np.bincount

        def skewed_bincount(*args, **kwargs):
            return real_bincount(*args, **kwargs) * 1.001

        monkeypatch.setattr(np, "bincount", skewed_bincount)
        with pytest.raises(obs.DivergenceError, match="md.forces"):
            proc.compute(ps, nl.pairs_i, nl.pairs_j, method="fast")

    def test_jit_tampered_disk_entry_caught(self, monkeypatch, tmp_path,
                                            registry):
        import marshal
        import pickle

        from repro.core.jit import JitCache

        template = "\ndef kern(x):\n    return $A * x\n"
        cold = JitCache(persist_dir=str(tmp_path))
        k = cold.compile("kern", template, {"A": 2.0})
        path = cold._disk_path(k.key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        # valid entry (right format/magic/tag) but wrong bytecode
        evil = compile("def kern(x):\n    return 0.0", "<evil>", "exec")
        payload["code"] = marshal.dumps(evil)
        payload["source"] = "def kern(x):\n    return 0.0"
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

        monkeypatch.setenv(VALIDATE_ENV, "1")
        warm = JitCache(persist_dir=str(tmp_path))
        with pytest.raises(obs.DivergenceError, match="jit.disk"):
            warm.compile("kern", template, {"A": 2.0})

    def test_clean_paths_pass_strict(self, monkeypatch, registry):
        """Unbroken fast paths survive strict validation end to end."""
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox
        from repro.md.potentials import LennardJones, PairProcessor
        from repro.sched import ClusterSimulator, Sjf, batch_workload

        monkeypatch.setenv(VALIDATE_ENV, "1")
        box = PeriodicBox((8.0,) * 3)
        ps = ParticleSystem.random_gas(100, box, seed=5)
        nl = NeighborList(cutoff=2.5, skin=0.3)
        nl.build(ps)
        PairProcessor(LennardJones(cutoff=2.5)).compute(
            ps, nl.pairs_i, nl.pairs_j
        )
        ClusterSimulator(4).run(
            batch_workload(n_jobs=40, seed=1), Sjf(), engine="fast"
        )
        snap = registry.snapshot()["counters"]
        assert snap["obs.validate.md.neighbor.checks"] >= 1
        assert snap["obs.validate.sched.engine.checks"] >= 1
        assert not any(k.endswith(".divergence") for k in snap)


class TestInstrumentation:
    """Counters/spans actually land from the instrumented subsystems.

    Validation is forced off: these pin the *production* counter
    semantics (a validating run legitimately does — and counts — the
    reference twin's work too).
    """

    @pytest.fixture(autouse=True)
    def _no_validate(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ENV, "0")

    def test_scheduler_counters(self, registry):
        from repro.sched import ClusterSimulator, Fcfs, batch_workload

        jobs = batch_workload(n_jobs=25, seed=0)
        ClusterSimulator(4).run(jobs, Fcfs())
        snap = registry.snapshot()["counters"]
        assert snap["sched.runs"] == 1
        assert snap["sched.jobs_completed"] == 25
        assert snap["sched.events_processed"] > 0

    def test_amg_counters_and_spans(self, registry, ring):
        import scipy.sparse as sp

        from repro.solvers import BoomerAMG, poisson_2d

        amg = BoomerAMG(coarse_size=20)
        amg.setup(sp.csr_matrix(poisson_2d(12)))
        b = np.ones(144)
        amg.vcycle(b)
        snap = registry.snapshot()["counters"]
        assert snap["solvers.amg.setups"] == 1
        assert snap["solvers.amg.vcycles"] == 1
        assert snap["solvers.amg.smooth_sweeps"] >= 2
        names = [r["name"] for r in ring]
        assert "solvers.amg.setup" in names
        assert "solvers.amg.vcycle" in names

    def test_mummi_counters_and_span(self, registry, ring):
        from repro.workflow.mummi import MummiCampaign

        campaign = MummiCampaign(n_gpus=4, jobs_per_cycle=4, seed=0)
        campaign.run_cycle()
        snap = registry.snapshot()["counters"]
        assert snap["workflow.mummi.cycles"] == 1
        assert snap["workflow.mummi.simulations"] == 4
        assert "workflow.mummi.cycle" in [r["name"] for r in ring]

    def test_neighbor_build_span_and_gauge(self, registry, ring):
        from repro.md.neighbor import NeighborList
        from repro.md.particles import ParticleSystem, PeriodicBox

        ps = ParticleSystem.random_gas(
            60, PeriodicBox((8.0,) * 3), seed=0
        )
        NeighborList(cutoff=2.5, skin=0.3).build(ps)
        snap = registry.snapshot()
        assert snap["counters"]["md.neighbor.rebuilds"] == 1
        assert snap["gauges"]["md.neighbor.pairs"] > 0
        assert "md.neighbor.build" in [r["name"] for r in ring]
