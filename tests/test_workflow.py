"""Tests for the MuMMI-lite workflow and the workload inventory."""

import numpy as np
import pytest

from repro.workflow.mummi import MacroModel, MummiCampaign
from repro import workload
from repro.workload import PerfProfile, ProgrammingModel


class TestMacroModel:
    def test_diffusion_smooths(self):
        m = MacroModel(n=16, seed=0)
        rough0 = np.abs(np.diff(m.field, axis=0)).mean()
        for _ in range(50):
            m.step(forcing=0.0)
        rough1 = np.abs(np.diff(m.field, axis=0)).mean()
        assert rough1 < rough0

    def test_forcing_keeps_variance_alive(self):
        m = MacroModel(n=16, seed=0)
        for _ in range(200):
            m.step(forcing=0.05)
        assert m.field.std() > 0.01

    def test_patch_compositions(self):
        m = MacroModel(n=16, seed=1)
        patches = m.patch_compositions(patch=4)
        assert patches.shape == (4, 4)
        assert patches.mean() == pytest.approx(m.field.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            MacroModel(n=2)
        with pytest.raises(ValueError):
            MacroModel(diffusivity=0.5)
        with pytest.raises(ValueError):
            MacroModel(n=10).patch_compositions(patch=3)


class TestCampaign:
    def test_cycle_accounting(self):
        camp = MummiCampaign(n_gpus=8, jobs_per_cycle=12, seed=0)
        metrics = camp.run_cycle()
        assert metrics["simulations"] == 12
        assert metrics["utilization"] > 0
        assert camp.gpu_hours > 0
        assert len(camp.results) == 12

    def test_novelty_sampling_covers_space(self):
        """Novelty selection must spread simulations across composition
        space rather than resampling the same patch."""
        camp = MummiCampaign(n_gpus=8, jobs_per_cycle=8, seed=1)
        camp.run(6)
        assert camp.coverage(bins=8) >= 0.4
        assert np.std(camp.explored) > 0.02  # not resampling one patch

    def test_ddcmd_campaign_faster_than_gromacs(self):
        """The §4.6 claim in workflow terms: the 2.3X per-step advantage
        becomes campaign throughput."""
        thr = {}
        for code in ("ddcmd", "gromacs"):
            camp = MummiCampaign(n_gpus=8, md_code=code, seed=0)
            camp.run(2)
            thr[code] = camp.simulations_per_hour
        assert thr["ddcmd"] > 1.5 * thr["gromacs"]

    def test_validation(self):
        with pytest.raises(ValueError):
            MummiCampaign(md_code="lammps")
        with pytest.raises(ValueError):
            MummiCampaign(n_gpus=0)
        camp = MummiCampaign()
        with pytest.raises(ValueError):
            camp.run(0)

    def test_empty_campaign_throughput_zero(self):
        assert MummiCampaign().simulations_per_hour == 0.0
        assert MummiCampaign().coverage() == 0.0


class TestWorkloadInventory:
    """Table 1 as data: the diversity properties §2 claims."""

    def test_nine_completed_activities(self):
        assert len(workload.inventory()) == 9

    def test_profile_diversity(self):
        few = workload.by_profile(PerfProfile.FEW_HOT_KERNELS)
        flat = workload.by_profile(PerfProfile.FLAT)
        assert {a.name for a in few} >= {"Molecular Dynamics",
                                         "Optimization Framework"}
        assert {a.name for a in flat} == {"ParaDyn"}

    def test_language_diversity(self):
        langs = set()
        for a in workload.inventory():
            langs.update(a.base_languages)
        assert len(langs) >= 5

    def test_no_single_model_fits_all(self):
        """The paper's headline lesson: the final workload uses many
        programming models."""
        assert len(workload.models_in_use()) >= 5

    def test_final_approaches_subset_of_explored(self):
        for a in workload.inventory():
            assert a.final_approaches <= a.approaches

    def test_cuda_used_by_hot_kernel_codes(self):
        for a in workload.by_profile(PerfProfile.FEW_HOT_KERNELS):
            assert ProgrammingModel.CUDA in a.final_approaches

    def test_modules_resolvable(self):
        import importlib

        for a in workload.inventory():
            importlib.import_module(a.module)
