"""Property-based tests (hypothesis) across core data structures.

These complement the per-module suites with randomized invariants:
solver correctness on arbitrary SPD systems, physical conservation
laws under random configurations, scheduler accounting under random
workloads, and algebraic identities of the substrate layers.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.jit import render_template
from repro.core.kernels import KernelSpec
from repro.md.integrators import ShakeConstraints
from repro.md.particles import ParticleSystem, PeriodicBox
from repro.md.potentials import LennardJones, PairProcessor
from repro.sched.policies import Fcfs, Sjf, SjfWithQuota
from repro.sched.simulator import ClusterSimulator, Job
from repro.solvers.csr import CsrMatrix
from repro.solvers.krylov import gmres, pcg
from repro.solvers.problems import random_spd
from repro.util.rng import make_rng

SETTINGS = settings(max_examples=25, deadline=None)


class TestKrylovProperties:
    @given(n=st.integers(8, 60), seed=st.integers(0, 100))
    @SETTINGS
    def test_pcg_solves_any_spd(self, n, seed):
        a = random_spd(n, density=0.15, seed=seed)
        rng = make_rng(seed)
        x_true = rng.random(n)
        b = a @ x_true
        x, info = pcg(CsrMatrix(a), b, tol=1e-12, max_iter=20 * n)
        assert info.converged
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    @given(n=st.integers(8, 40), seed=st.integers(0, 100))
    @SETTINGS
    def test_gmres_matches_pcg_on_spd(self, n, seed):
        a = random_spd(n, density=0.2, seed=seed)
        b = make_rng(seed).random(n)
        x_cg, _ = pcg(CsrMatrix(a), b, tol=1e-12, max_iter=20 * n)
        x_gm, info = gmres(CsrMatrix(a), b, tol=1e-12, restart=n,
                           max_iter=20 * n)
        assert info.converged
        np.testing.assert_allclose(x_gm, x_cg, atol=1e-6)

    @given(n=st.integers(5, 30), seed=st.integers(0, 50))
    @SETTINGS
    def test_residual_orthogonality_of_solution(self, n, seed):
        """At convergence, b - Ax is orthogonal to the solution scale."""
        a = random_spd(n, density=0.3, seed=seed)
        b = make_rng(seed + 1).random(n)
        x, info = pcg(CsrMatrix(a), b, tol=1e-13, max_iter=30 * n)
        assert np.linalg.norm(a @ x - b) <= 1e-9 * max(np.linalg.norm(b), 1)


class TestMdProperties:
    @given(n=st.integers(4, 24), seed=st.integers(0, 100))
    @SETTINGS
    def test_pair_forces_sum_to_zero(self, n, seed):
        box = PeriodicBox((6.0,) * 3)
        ps = ParticleSystem.random_gas(n, box, seed=seed,
                                       min_separation=1.0)
        proc = PairProcessor(LennardJones())
        ii, jj = np.triu_indices(n, k=1)
        f, e, w = proc.compute(ps, ii, jj)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)

    @given(seed=st.integers(0, 100), length=st.floats(0.5, 2.0))
    @SETTINGS
    def test_shake_projection_idempotent(self, seed, length):
        box = PeriodicBox((10.0,) * 3)
        rng = make_rng(seed)
        x = 3.0 + rng.random((4, 3))
        ps = ParticleSystem(x, box)
        shake = ShakeConstraints(
            np.array([0, 2]), np.array([1, 3]),
            np.array([length, length]), tol=1e-12,
        )
        shake.apply(ps)
        assert shake.max_violation(ps) < 1e-5
        x_after = ps.x.copy()
        shake.apply(ps)  # projecting again must not move anything
        np.testing.assert_allclose(ps.x, x_after, atol=1e-7)

    @given(seed=st.integers(0, 60))
    @SETTINGS
    def test_wrap_idempotent(self, seed):
        box = PeriodicBox((3.0, 5.0, 7.0))
        x = (make_rng(seed).random((10, 3)) - 0.5) * 40.0
        w1 = box.wrap(x)
        np.testing.assert_allclose(box.wrap(w1), w1, atol=1e-12)
        assert (w1 >= 0).all() and (w1 < box.array + 1e-12).all()


class TestSchedulerProperties:
    policies = [Fcfs(), Sjf(), SjfWithQuota(4, 0.25)]

    @given(
        seed=st.integers(0, 200),
        n_jobs=st.integers(1, 60),
        policy_idx=st.integers(0, 2),
    )
    @SETTINGS
    def test_conservation_under_random_workloads(self, seed, n_jobs,
                                                 policy_idx):
        rng = make_rng(seed)
        jobs = [
            Job(k, arrival=float(rng.random() * 10),
                service=float(0.1 + rng.random() * 5),
                is_long=bool(rng.random() < 0.2))
            for k in range(n_jobs)
        ]
        result = ClusterSimulator(4).run(jobs, self.policies[policy_idx])
        assert result.completed == n_jobs
        total_service = sum(j.service for j in jobs)
        # capacity bound and work conservation
        assert result.makespan >= total_service / 4 - 1e-9
        assert result.utilization <= 1.0 + 1e-12
        assert result.mean_wait >= 0

    @given(seed=st.integers(0, 100))
    @SETTINGS
    def test_single_gpu_makespan_exact(self, seed):
        rng = make_rng(seed)
        jobs = [Job(k, 0.0, float(0.5 + rng.random())) for k in range(8)]
        result = ClusterSimulator(1).run(jobs, Sjf())
        assert result.makespan == pytest.approx(
            sum(j.service for j in jobs)
        )


class TestSubstrateProperties:
    @given(
        flops=st.floats(1.0, 1e12),
        br=st.floats(0.0, 1e12),
        bw=st.floats(0.0, 1e12),
        launches=st.integers(1, 100),
    )
    @SETTINGS
    def test_kernel_scaling_linear(self, flops, br, bw, launches):
        k = KernelSpec("k", flops=flops, bytes_read=br, bytes_written=bw,
                       launches=launches)
        doubled = k.scaled(2.0)
        assert doubled.flops == pytest.approx(2 * k.flops)
        assert doubled.bytes_total == pytest.approx(2 * k.bytes_total)
        assert doubled.launches == k.launches

    @given(
        a=st.floats(-1e6, 1e6, allow_nan=False),
        b=st.integers(-1000, 1000),
    )
    @SETTINGS
    def test_template_rendering_roundtrips_values(self, a, b):
        src = render_template("x = $A\ny = $B", {"A": a, "B": b})
        ns = {}
        exec(src, ns)
        assert ns["x"] == a or (np.isnan(a) and np.isnan(ns["x"]))
        assert ns["y"] == b

    @given(seed=st.integers(0, 100), n=st.integers(2, 50))
    @SETTINGS
    def test_csr_matvec_linear(self, seed, n):
        a = random_spd(n, density=0.3, seed=seed)
        m = CsrMatrix(a)
        rng = make_rng(seed)
        x, y = rng.random(n), rng.random(n)
        alpha = float(rng.random())
        np.testing.assert_allclose(
            m.matvec(alpha * x + y),
            alpha * m.matvec(x) + m.matvec(y),
            atol=1e-9,
        )


class TestEulerProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_random_smooth_states_stay_positive(self, seed):
        from repro.amr.euler import EulerState2D, hll_step_2d

        rng = make_rng(seed)
        state = EulerState2D.zeros(24, 24)
        it = state.interior
        # smooth random positive density / pressure, small velocities
        state.rho[it] = 0.5 + rng.random((24, 24))
        u = 0.2 * (rng.random((24, 24)) - 0.5)
        v = 0.2 * (rng.random((24, 24)) - 0.5)
        p = 0.5 + rng.random((24, 24))
        state.mx[it] = state.rho[it] * u
        state.my[it] = state.rho[it] * v
        state.e[it] = p / 0.4 + 0.5 * state.rho[it] * (u * u + v * v)
        for _ in range(10):
            hll_step_2d(state, 1.0 / 24)
        rho, _, _, pressure = state.primitives()
        assert rho[it].min() > 0
        assert pressure[it].min() > 0


class TestLdaProperties:
    @given(seed=st.integers(0, 30), k=st.integers(2, 6))
    @settings(max_examples=8, deadline=None)
    def test_estep_statistics_conserve_tokens(self, seed, k):
        from repro.lda.corpus import make_corpus
        from repro.lda.vem import LdaModel, e_step

        corpus = make_corpus(n_docs=12, vocab_per_language=40,
                             n_languages=1, n_topics=2, doc_length=25,
                             seed=seed)
        model = LdaModel.random_init(k, corpus.vocab_size, seed=seed)
        ss, gammas, _ = e_step(model, corpus.docs)
        assert ss.min() >= 0
        assert ss.sum() == pytest.approx(corpus.n_tokens, rel=1e-9)
        # gamma posterior masses exceed the prior
        assert (gammas > model.alpha - 1e-12).all()
