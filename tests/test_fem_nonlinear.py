"""Tests for the nonlinear-diffusion benchmark problem (Fig 8 stack)."""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.fem.mesh import TensorMesh2D
from repro.fem.nonlinear import NonlinearDiffusion


@pytest.fixture(scope="module")
def small_problem():
    mesh = TensorMesh2D(4, 4, order=2)
    return NonlinearDiffusion(mesh, k0=1.0, k1=1.0)


def initial_bump(mesh):
    gx, gy = mesh.node_coords()
    return (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()


class TestProblemSetup:
    def test_k0_positive_required(self):
        mesh = TensorMesh2D(2, 2, order=1)
        with pytest.raises(ValueError):
            NonlinearDiffusion(mesh, k0=0.0)

    def test_coefficient_from_state_bounds(self, small_problem):
        """k(u) = k0 + k1 u^2 must stay within [k0, k0 + k1 max(u)^2]."""
        prob = small_problem
        u = initial_bump(prob.mesh)
        k = prob._coefficient_from_state(u)
        assert k.min() >= prob.k0 - 1e-12
        assert k.max() <= prob.k0 + prob.k1 * 1.0 + 1e-9

    def test_rhs_zero_state_zero(self, small_problem):
        r = small_problem.rhs_spatial(0.0, np.zeros(small_problem.interior.size))
        np.testing.assert_allclose(r, 0.0, atol=1e-12)

    def test_rhs_is_dissipative(self, small_problem):
        """<u, F(u)> < 0 for nonzero u: diffusion removes energy."""
        prob = small_problem
        u = initial_bump(prob.mesh)[prob.interior]
        assert float(u @ prob.rhs_spatial(0.0, u)) < 0

    def test_source_term_enters_load(self):
        mesh = TensorMesh2D(3, 3, order=2)
        prob = NonlinearDiffusion(mesh, source=lambda x, y: 1.0 + 0 * x)
        # load = integral(phi_i): sums to the interior part of the area
        assert prob.load.sum() > 0


class TestNewtonSolver:
    def test_lin_solver_solves_newton_matrix(self, small_problem):
        prob = small_problem
        u = initial_bump(prob.mesh)[prob.interior]
        gamma = 1e-3
        solve = prob.make_lin_solver(gamma, 0.0, u)
        rng = np.random.default_rng(0)
        r = rng.random(u.size)
        x = solve(r)
        # verify (M + gamma K) x == r by applying the operator
        full = np.zeros(prob.mesh.n_dofs)
        full[prob.interior] = x
        coeff = prob._coefficient_from_state(prob._full(u))
        from repro.fem.operators import DiffusionOperator

        frozen = DiffusionOperator(prob.mesh, coeff)
        lhs = (
            prob.mass.mult(full)[prob.interior]
            + gamma * frozen.mult(full)[prob.interior]
        )
        np.testing.assert_allclose(lhs, r, atol=1e-6)

    def test_pcg_iteration_counts_recorded(self, small_problem):
        prob = small_problem
        before = prob.solve_calls
        solve = prob.make_lin_solver(1e-3, 0.0,
                                     np.zeros(prob.interior.size))
        solve(np.ones(prob.interior.size))
        assert prob.solve_calls == before + 1
        assert prob.pcg_iterations > 0


class TestIntegration:
    def test_decay_toward_zero(self):
        """With zero source, the bump must decay monotonically."""
        mesh = TensorMesh2D(4, 4, order=2)
        prob = NonlinearDiffusion(mesh, k0=1.0, k1=0.5)
        u0 = initial_bump(mesh)
        times, states, integ = prob.integrate(u0, t_end=0.02, n_outputs=2)
        n0 = np.linalg.norm(u0[prob.interior])
        n1 = np.linalg.norm(states[0])
        n2 = np.linalg.norm(states[1])
        assert n1 < n0
        assert n2 < n1
        assert integ.stats.n_steps > 0

    def test_linear_case_matches_heat_equation(self):
        """k1=0 reduces to the heat equation; the lowest mode decays at
        exp(-2 pi^2 k0 t)."""
        mesh = TensorMesh2D(6, 6, order=3)
        prob = NonlinearDiffusion(mesh, k0=1.0, k1=0.0)
        u0 = initial_bump(mesh)
        t_end = 0.01
        _, states, _ = prob.integrate(u0, t_end=t_end, rtol=1e-7, atol=1e-10)
        expected = np.exp(-2 * np.pi**2 * t_end)
        # compare at the center node
        center = np.abs(u0[prob.interior] - 1.0).argmin()
        assert states[-1][center] == pytest.approx(expected, rel=1e-3)

    def test_timers_cover_fig8_phases(self):
        mesh = TensorMesh2D(3, 3, order=2)
        prob = NonlinearDiffusion(mesh)
        prob.integrate(initial_bump(mesh), t_end=0.005)
        phases = prob.timers.as_dict()
        for phase in ("formulation", "preconditioner", "solve"):
            assert phases.get(phase, 0.0) > 0.0

    def test_ctx_records_device_kernels(self):
        ctx = ExecutionContext()
        # large enough that the LOR AMG hierarchy has >1 level, so the
        # V-cycle actually performs SpMVs
        mesh = TensorMesh2D(5, 5, order=2)
        prob = NonlinearDiffusion(mesh, ctx=ctx)
        prob.integrate(initial_bump(mesh), t_end=0.002)
        names = {k.name for k in ctx.trace.kernels}
        assert "pa-diffusion" in names
        assert "pa-mass" in names
        assert any(n.startswith("spmv") for n in names)

    def test_wrong_u0_length(self, small_problem):
        with pytest.raises(ValueError):
            small_problem.integrate(np.zeros(3), t_end=0.1)
