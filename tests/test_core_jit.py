"""Tests for the mini-NVRTC JIT layer."""

import numpy as np
import pytest

from repro.core.jit import JitCache, render_template, _literal


class TestLiteral:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.5, "2.5"),
            (3, "3"),
            (True, "True"),
            ("x", "'x'"),
            ((1, 2), "(1, 2,)"),
            ([1.0, 2.0], "[1.0, 2.0]"),
        ],
    )
    def test_literals(self, value, expected):
        assert _literal(value) == expected

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            _literal(object())

    def test_float_roundtrip_exact(self):
        v = 0.1 + 0.2
        assert eval(_literal(v)) == v


class TestRenderTemplate:
    def test_substitution(self):
        out = render_template("y = $A * x + $B", {"A": 2.0, "B": 1.0})
        assert out == "y = 2.0 * x + 1.0"

    def test_prefix_names_not_clobbered(self):
        out = render_template("$NP2 + $NP", {"NP": 1, "NP2": 2})
        assert out == "2 + 1"

    def test_missing_placeholder_raises(self):
        with pytest.raises(KeyError):
            render_template("y = x", {"A": 1})

    def test_unbound_placeholder_raises(self):
        with pytest.raises(KeyError):
            render_template("y = $A + $B", {"A": 1})


class TestJitCache:
    TEMPLATE = """
    def kern(x):
        return $COEF * x + $OFFSET
    """

    def test_compile_and_call(self):
        cache = JitCache()
        k = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert k(2.0) == 7.0

    def test_cache_hit_same_constants(self):
        cache = JitCache()
        a = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        b = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert a is b
        assert cache.compile_count == 1
        assert cache.hit_count == 1

    def test_different_constants_recompile(self):
        cache = JitCache()
        a = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        b = cache.compile("kern", self.TEMPLATE, {"COEF": 4.0, "OFFSET": 1.0})
        assert a is not b
        assert len(cache) == 2

    def test_missing_entry_point(self):
        cache = JitCache()
        with pytest.raises(NameError):
            cache.compile("nope", "x = $A", {"A": 1})

    def test_globals_visible(self):
        cache = JitCache(globals_ns={"np": np})
        k = cache.compile(
            "kern",
            """
            def kern(x):
                return np.sum(x) * $SCALE
            """,
            {"SCALE": 2.0},
        )
        assert k(np.ones(4)) == 8.0

    def test_extra_globals(self):
        cache = JitCache()
        k = cache.compile(
            "kern",
            """
            def kern():
                return helper() + $N
            """,
            {"N": 1},
            extra_globals={"helper": lambda: 10},
        )
        assert k() == 11

    def test_source_retained(self):
        cache = JitCache()
        k = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 0.5})
        assert "3.0" in k.source
        assert "0.5" in k.source

    def test_baked_constants_beat_dict_lookup(self):
        """The Cardioid/MFEM JIT lesson: baked literals are faster than
        indirected parameters.  We verify the mechanism is real in
        Python with a generous margin (no strict timing assert, just a
        sanity ordering over many calls)."""
        import timeit

        cache = JitCache()
        baked = cache.compile(
            "kern",
            """
            def kern(x):
                return $C0 + x * ($C1 + x * ($C2 + x * $C3))
            """,
            {"C0": 1.0, "C1": 0.5, "C2": 0.25, "C3": 0.125},
        )
        params = {"C0": 1.0, "C1": 0.5, "C2": 0.25, "C3": 0.125}

        def dynamic(x):
            return params["C0"] + x * (
                params["C1"] + x * (params["C2"] + x * params["C3"])
            )

        x = 1.7
        # Time the raw compiled function (JitKernel.__call__ adds a
        # Python-level indirection that native JIT would not have).
        t_baked = timeit.timeit(lambda: baked.fn(x), number=20000)
        t_dyn = timeit.timeit(lambda: dynamic(x), number=20000)
        # Allow noise: baked must not be significantly slower.
        assert t_baked < t_dyn * 1.5
        assert baked(x) == pytest.approx(dynamic(x))
