"""Tests for the mini-NVRTC JIT layer."""

import numpy as np
import pytest

from repro.core.jit import JIT_CACHE_ENV, JitCache, render_template, _literal


class TestLiteral:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.5, "2.5"),
            (3, "3"),
            (True, "True"),
            ("x", "'x'"),
            ((1, 2), "(1, 2,)"),
            ([1.0, 2.0], "[1.0, 2.0]"),
        ],
    )
    def test_literals(self, value, expected):
        assert _literal(value) == expected

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            _literal(object())

    def test_float_roundtrip_exact(self):
        v = 0.1 + 0.2
        assert eval(_literal(v)) == v


class TestRenderTemplate:
    def test_substitution(self):
        out = render_template("y = $A * x + $B", {"A": 2.0, "B": 1.0})
        assert out == "y = 2.0 * x + 1.0"

    def test_prefix_names_not_clobbered(self):
        out = render_template("$NP2 + $NP", {"NP": 1, "NP2": 2})
        assert out == "2 + 1"

    def test_missing_placeholder_raises(self):
        with pytest.raises(KeyError):
            render_template("y = x", {"A": 1})

    def test_unbound_placeholder_raises(self):
        with pytest.raises(KeyError):
            render_template("y = $A + $B", {"A": 1})


class TestJitCache:
    TEMPLATE = """
    def kern(x):
        return $COEF * x + $OFFSET
    """

    def test_compile_and_call(self):
        cache = JitCache()
        k = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert k(2.0) == 7.0

    def test_cache_hit_same_constants(self):
        cache = JitCache()
        a = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        b = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert a is b
        assert cache.compile_count == 1
        assert cache.hit_count == 1

    def test_different_constants_recompile(self):
        cache = JitCache()
        a = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        b = cache.compile("kern", self.TEMPLATE, {"COEF": 4.0, "OFFSET": 1.0})
        assert a is not b
        assert len(cache) == 2

    def test_missing_entry_point(self):
        cache = JitCache()
        with pytest.raises(NameError):
            cache.compile("nope", "x = $A", {"A": 1})

    def test_globals_visible(self):
        cache = JitCache(globals_ns={"np": np})
        k = cache.compile(
            "kern",
            """
            def kern(x):
                return np.sum(x) * $SCALE
            """,
            {"SCALE": 2.0},
        )
        assert k(np.ones(4)) == 8.0

    def test_extra_globals(self):
        cache = JitCache()
        k = cache.compile(
            "kern",
            """
            def kern():
                return helper() + $N
            """,
            {"N": 1},
            extra_globals={"helper": lambda: 10},
        )
        assert k() == 11

    def test_source_retained(self):
        cache = JitCache()
        k = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 0.5})
        assert "3.0" in k.source
        assert "0.5" in k.source

    def test_baked_constants_beat_dict_lookup(self):
        """The Cardioid/MFEM JIT lesson: baked literals are faster than
        indirected parameters.  We verify the mechanism is real in
        Python with a generous margin (no strict timing assert, just a
        sanity ordering over many calls)."""
        import timeit

        cache = JitCache()
        baked = cache.compile(
            "kern",
            """
            def kern(x):
                return $C0 + x * ($C1 + x * ($C2 + x * $C3))
            """,
            {"C0": 1.0, "C1": 0.5, "C2": 0.25, "C3": 0.125},
        )
        params = {"C0": 1.0, "C1": 0.5, "C2": 0.25, "C3": 0.125}

        def dynamic(x):
            return params["C0"] + x * (
                params["C1"] + x * (params["C2"] + x * params["C3"])
            )

        x = 1.7
        # Time the raw compiled function (JitKernel.__call__ adds a
        # Python-level indirection that native JIT would not have).
        t_baked = timeit.timeit(lambda: baked.fn(x), number=20000)
        t_dyn = timeit.timeit(lambda: dynamic(x), number=20000)
        # Allow noise: baked must not be significantly slower.
        assert t_baked < t_dyn * 1.5
        assert baked(x) == pytest.approx(dynamic(x))


class TestPersistentCache:
    TEMPLATE = """
    def kern(x):
        return $COEF * x + $OFFSET
    """

    def test_disk_round_trip_skips_compile(self, tmp_path):
        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        k = cold.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert cold.compile_count == 1
        assert cold.disk_stores == 1
        warm = JitCache(persist_dir=d)
        k2 = warm.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert warm.compile_count == 0  # no render, no compile
        assert warm.disk_hits == 1
        assert k2(2.0) == k(2.0) == 7.0
        assert k2.source == k.source

    def test_different_constants_do_not_collide(self, tmp_path):
        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        cold.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        cold.compile("kern", self.TEMPLATE, {"COEF": 4.0, "OFFSET": 1.0})
        warm = JitCache(persist_dir=d)
        a = warm.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        b = warm.compile("kern", self.TEMPLATE, {"COEF": 4.0, "OFFSET": 1.0})
        assert warm.disk_hits == 2
        assert a(1.0) == 4.0
        assert b(1.0) == 5.0

    def test_prefix_placeholders_distinct_on_disk(self, tmp_path):
        """$NP vs $NP2 must key differently through the disk path."""
        d = str(tmp_path)
        tpl = """
        def kern():
            return $NP2 * 10 + $NP
        """
        cold = JitCache(persist_dir=d)
        cold.compile("kern", tpl, {"NP": 1, "NP2": 2})
        warm = JitCache(persist_dir=d)
        k = warm.compile("kern", tpl, {"NP": 1, "NP2": 2})
        assert k() == 21
        swapped = warm.compile("kern", tpl, {"NP": 2, "NP2": 1})
        assert swapped() == 12  # a distinct entry, not the cached one
        assert warm.disk_hits == 1

    def test_corrupted_entry_falls_back_to_compile(self, tmp_path):
        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        cold.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        (entry,) = list(tmp_path.glob("jit-*.pkl"))
        entry.write_bytes(b"not a pickle")
        warm = JitCache(persist_dir=d)
        k = warm.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert k(2.0) == 7.0
        assert warm.disk_errors == 1
        assert warm.compile_count == 1
        # the recompile rewrote the entry, so the next cache heals
        healed = JitCache(persist_dir=d)
        healed.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert healed.disk_hits == 1

    def test_truncated_pickle_falls_back(self, tmp_path):
        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        cold.compile("kern", self.TEMPLATE, {"COEF": 1.0, "OFFSET": 0.0})
        (entry,) = list(tmp_path.glob("jit-*.pkl"))
        entry.write_bytes(entry.read_bytes()[:10])
        warm = JitCache(persist_dir=d)
        k = warm.compile("kern", self.TEMPLATE, {"COEF": 1.0, "OFFSET": 0.0})
        assert k(5.0) == 5.0
        assert warm.disk_errors == 1

    def test_env_var_configures_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(JIT_CACHE_ENV, str(tmp_path))
        cache = JitCache()
        cache.compile("kern", self.TEMPLATE, {"COEF": 2.0, "OFFSET": 0.0})
        assert list(tmp_path.glob("jit-*.pkl"))

    def test_no_persist_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JIT_CACHE_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        cache = JitCache()
        cache.compile("kern", self.TEMPLATE, {"COEF": 2.0, "OFFSET": 0.0})
        assert cache.disk_stores == 0
        assert not list(tmp_path.glob("jit-*.pkl"))

    def test_extra_globals_through_disk_path(self, tmp_path):
        d = str(tmp_path)
        tpl = """
        def kern():
            return helper() + $N
        """
        cold = JitCache(persist_dir=d)
        cold.compile("kern", tpl, {"N": 1}, extra_globals={"helper": lambda: 10})
        warm = JitCache(persist_dir=d)
        k = warm.compile("kern", tpl, {"N": 1},
                         extra_globals={"helper": lambda: 100})
        assert warm.disk_hits == 1
        assert k() == 101

    def test_unwritable_dir_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = JitCache(persist_dir=str(blocked / "sub"))
        k = cache.compile("kern", self.TEMPLATE, {"COEF": 3.0, "OFFSET": 1.0})
        assert k(1.0) == 4.0
        assert cache.disk_errors >= 1


class TestCacheTag:
    TEMPLATE = """
    def kern(x):
        return $COEF * x + $OFFSET
    """
    CONSTANTS = {"COEF": 3.0, "OFFSET": 1.0}

    def test_payload_carries_interpreter_tag(self, tmp_path):
        import pickle
        import sys

        cache = JitCache(persist_dir=str(tmp_path))
        k = cache.compile("kern", self.TEMPLATE, self.CONSTANTS)
        with open(cache._disk_path(k.key), "rb") as fh:
            payload = pickle.load(fh)
        assert payload["tag"] == sys.implementation.cache_tag

    def test_foreign_cache_tag_is_miss(self, tmp_path):
        """An entry whose magic number matches but whose cache_tag does
        not (a foreign interpreter build sharing the magic) must be
        treated as a miss and recompiled, never loaded."""
        import pickle

        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        k = cold.compile("kern", self.TEMPLATE, self.CONSTANTS)
        path = cold._disk_path(k.key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["tag"] = "cpython-999"  # forge a foreign producer
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

        warm = JitCache(persist_dir=d)
        k2 = warm.compile("kern", self.TEMPLATE, self.CONSTANTS)
        assert warm.disk_hits == 0
        assert warm.disk_errors == 1
        assert warm.compile_count == 1  # recompiled from source
        assert k2(2.0) == 7.0

        # the recompile overwrote the forged entry with the right tag
        fixed = JitCache(persist_dir=d)
        fixed.compile("kern", self.TEMPLATE, self.CONSTANTS)
        assert fixed.disk_hits == 1
        assert fixed.compile_count == 0

    def test_missing_tag_field_is_miss(self, tmp_path):
        """Pre-cache_tag (format v1 era) payloads lack the field
        entirely; they must also read as a miss."""
        import pickle

        d = str(tmp_path)
        cold = JitCache(persist_dir=d)
        k = cold.compile("kern", self.TEMPLATE, self.CONSTANTS)
        path = cold._disk_path(k.key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        del payload["tag"]
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        warm = JitCache(persist_dir=d)
        warm.compile("kern", self.TEMPLATE, self.CONSTANTS)
        assert warm.disk_hits == 0
        assert warm.compile_count == 1
