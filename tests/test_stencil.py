"""Tests for the SW4/sw4lite proxy."""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.machine import get_machine
from repro.core.roofline import RooflineModel
from repro.stencil.grid import GHOST, CartesianGrid3D
from repro.stencil.hayward import HaywardScenario, layered_speed_model
from repro.stencil.kernels import (
    apply_wave_rhs_fused,
    apply_wave_rhs_unfused,
    laplacian_4th,
)
from repro.stencil.sw4lite import RickerSource, Sw4Lite, Sw4Options


class TestGrid:
    def test_shapes(self):
        g = CartesianGrid3D(8, 6, 4, h=0.5)
        assert g.shape == (12, 10, 8)
        assert g.n_points == 192

    def test_validation(self):
        with pytest.raises(ValueError):
            CartesianGrid3D(0, 4, 4)
        with pytest.raises(ValueError):
            CartesianGrid3D(4, 4, 4, h=0.0)

    def test_interior_slicing(self):
        g = CartesianGrid3D(4, 4, 4)
        f = g.new_field()
        f[g.interior] = 1.0
        assert f.sum() == 64

    def test_periodic_ghosts(self):
        g = CartesianGrid3D(6, 6, 6)
        f = g.new_field()
        f[g.interior] = np.arange(216).reshape(6, 6, 6)
        g.fill_periodic_ghosts(f)
        # ghost below matches top interior
        np.testing.assert_array_equal(f[0, 2:-2, 2:-2], f[-4, 2:-2, 2:-2])
        np.testing.assert_array_equal(f[-1, 2:-2, 2:-2], f[3, 2:-2, 2:-2])

    def test_zero_ghosts(self):
        g = CartesianGrid3D(4, 4, 4)
        f = g.new_field(fill=1.0)
        g.zero_ghosts(f)
        assert f.sum() == 64

    def test_nearest_index_clamped(self):
        g = CartesianGrid3D(4, 4, 4, h=1.0)
        assert g.nearest_index(-5.0, 2.0, 100.0) == (0, 2, 3)


class TestStencilKernels:
    def test_laplacian_exact_for_quadratic(self):
        """The 4th-order stencil is exact on polynomials up to degree 5;
        Laplacian(x^2 + 2y^2 + 3z^2) = 12 everywhere."""
        g = CartesianGrid3D(6, 6, 6, h=0.3)
        f = g.new_field()
        idx = np.indices(g.shape).astype(float) - GHOST
        x, y, z = idx * g.h
        f[:] = x**2 + 2 * y**2 + 3 * z**2
        lap = laplacian_4th(g, f)
        np.testing.assert_allclose(lap, 12.0, atol=1e-10)

    def test_laplacian_4th_order_convergence(self):
        """Error on sin products must fall ~16x per mesh doubling."""
        def err(n):
            g = CartesianGrid3D(n, n, n, h=1.0 / n)
            f = g.new_field()
            idx = np.indices(g.shape).astype(float) - GHOST
            x, y, z = idx * g.h
            f[:] = np.sin(2 * np.pi * x) * np.sin(2 * np.pi * y)
            exact = -8 * np.pi**2 * f[g.interior]
            return np.abs(laplacian_4th(g, f) - exact).max()

        rate = np.log2(err(8) / err(16))
        assert rate > 3.5

    def test_shape_mismatch(self):
        g = CartesianGrid3D(4, 4, 4)
        with pytest.raises(ValueError):
            laplacian_4th(g, np.zeros((5, 5, 5)))

    def test_fused_equals_unfused_bitwise(self):
        g = CartesianGrid3D(7, 5, 6)
        rng = np.random.default_rng(0)
        u = rng.random(g.shape)
        c2 = 1.0 + rng.random((7, 5, 6))
        a = apply_wave_rhs_unfused(g, u, c2)
        b = apply_wave_rhs_fused(g, u, c2)
        np.testing.assert_array_equal(a, b)

    def test_fusion_reduces_launches_and_traffic(self):
        g = CartesianGrid3D(16, 16, 16)
        u = np.zeros(g.shape)
        c2 = np.ones((16, 16, 16))
        ctx_u, ctx_f = ExecutionContext(), ExecutionContext()
        apply_wave_rhs_unfused(g, u, c2, ctx_u)
        apply_wave_rhs_fused(g, u, c2, ctx_f)
        assert ctx_f.trace.total_launches < ctx_u.trace.total_launches
        assert ctx_f.trace.total_bytes < ctx_u.trace.total_bytes

    def test_fused_kernel_faster_on_gpu_model(self):
        """The modeled 2X from fusion + shared memory (§4.9)."""
        model = RooflineModel(get_machine("sierra"))
        g = CartesianGrid3D(64, 64, 64)
        u = np.zeros(g.shape)
        c2 = np.ones((64, 64, 64))
        ctx_u, ctx_f = ExecutionContext(), ExecutionContext()
        apply_wave_rhs_unfused(g, u, c2, ctx_u, tuned=False)
        apply_wave_rhs_fused(g, u, c2, ctx_f, tuned=True)
        t_naive = model.run_on_gpu(ctx_u.trace).total
        t_fused = model.run_on_gpu(ctx_f.trace).total
        assert 1.5 < t_naive / t_fused < 4.0

    def test_c2_shape_validated(self):
        g = CartesianGrid3D(4, 4, 4)
        with pytest.raises(ValueError):
            apply_wave_rhs_fused(g, np.zeros(g.shape), np.ones((3, 3, 3)))


class TestRickerSource:
    def test_peak_at_t0(self):
        s = RickerSource(0, 0, 0, freq=2.0, amplitude=3.0, t0=1.0)
        assert s.time_function(1.0) == pytest.approx(3.0)
        assert abs(s.time_function(10.0)) < 1e-10

    def test_default_t0(self):
        s = RickerSource(0, 0, 0, freq=4.0)
        assert s.time_function(0.25) == pytest.approx(1.0)

    def test_freq_validation(self):
        with pytest.raises(ValueError):
            RickerSource(0, 0, 0, freq=0.0)


class TestSw4Lite:
    def test_plane_wave_convergence(self):
        """Traveling plane wave in a periodic box: 2nd-order overall
        convergence (leapfrog time limits the rate)."""

        def err(n):
            g = CartesianGrid3D(n, 4, 4, h=1.0 / n)
            k = 2 * np.pi
            xs, _, _ = g.coords()
            plane = np.sin(k * xs)[:, None, None] * np.ones((1, 4, 4))
            v0 = -k * np.cos(k * xs)[:, None, None] * np.ones((1, 4, 4))
            s = Sw4Lite(g, 1.0,
                        options=Sw4Options(boundary="periodic", cfl=0.1))
            s.set_initial(plane, v0)
            s.run(int(round(0.25 / s.dt)))
            exact = np.sin(k * (xs[:, None, None] - s.t)) * np.ones((1, 4, 4))
            return np.abs(s.solution() - exact).max()

        rate = np.log2(err(16) / err(32))
        assert rate > 1.8

    def test_energy_conserved_periodic(self):
        g = CartesianGrid3D(12, 12, 12, h=1 / 12)
        s = Sw4Lite(g, 1.0, options=Sw4Options(boundary="periodic", cfl=0.3))
        rng = np.random.default_rng(1)
        u0 = rng.random((12, 12, 12))
        u0 -= u0.mean()
        s.set_initial(u0)
        e0 = s.energy()
        s.run(200)
        assert s.energy() == pytest.approx(e0, rel=1e-10)

    def test_source_injects_energy(self):
        g = CartesianGrid3D(16, 16, 16)
        src = RickerSource(8, 8, 8, freq=0.1)
        s = Sw4Lite(g, 1.0, sources=[src])
        s.run(60)
        assert np.abs(s.solution()).max() > 0

    def test_dirichlet_keeps_solution_bounded(self):
        g = CartesianGrid3D(12, 12, 12)
        s = Sw4Lite(g, 1.0, sources=[RickerSource(6, 6, 6, freq=0.1)])
        s.run(300)
        assert np.isfinite(s.solution()).all()
        assert np.abs(s.solution()).max() < 100

    @pytest.mark.parametrize("backend", ["cuda", "raja", "naive"])
    def test_backends_numerically_identical(self, backend):
        g = CartesianGrid3D(8, 8, 8)
        s = Sw4Lite(g, 1.0, sources=[RickerSource(4, 4, 4, freq=0.1)],
                    options=Sw4Options(backend=backend))
        s.run(20)
        if not hasattr(TestSw4Lite, "_ref"):
            TestSw4Lite._ref = s.solution()
        np.testing.assert_array_equal(s.solution(), TestSw4Lite._ref)

    def test_backend_gpu_times_ordered(self):
        """Modeled kernel times: cuda < raja < naive, with RAJA ~30%
        slower than hand CUDA (§4.9's measured gap).  Kernel time is
        compared (not launch overhead), on a production-like grid
        where launches do not dominate."""
        model = RooflineModel(get_machine("sierra"))
        times = {}
        for backend in ("cuda", "raja", "naive"):
            ctx = ExecutionContext()
            g = CartesianGrid3D(48, 48, 48)
            s = Sw4Lite(g, 1.0, options=Sw4Options(backend=backend), ctx=ctx)
            s.run(3)
            times[backend] = model.run_on_gpu(ctx.trace).kernel_time
        assert times["cuda"] < times["raja"] < times["naive"]
        # RAJA ~30% slower than CUDA, not 3x
        assert 1.1 < times["raja"] / times["cuda"] < 1.8

    def test_offload_all_removes_per_step_transfers(self):
        g = CartesianGrid3D(8, 8, 8)
        ctx_host = ExecutionContext()
        s = Sw4Lite(g, 1.0, options=Sw4Options(offload_all=False), ctx=ctx_host)
        s.run(10)
        assert len(ctx_host.trace.transfers) == 20  # 2 per step
        ctx_dev = ExecutionContext()
        s = Sw4Lite(g, 1.0, options=Sw4Options(offload_all=True), ctx=ctx_dev)
        s.run(10)
        assert len(ctx_dev.trace.transfers) == 0

    def test_validation(self):
        g = CartesianGrid3D(4, 4, 4)
        with pytest.raises(ValueError):
            Sw4Lite(g, -1.0)
        with pytest.raises(ValueError):
            Sw4Lite(g, np.ones((3, 3, 3)))
        with pytest.raises(ValueError):
            Sw4Options(backend="openacc")
        with pytest.raises(ValueError):
            Sw4Options(cfl=0.0)
        with pytest.raises(ValueError):
            Sw4Lite(g, 1.0).run(-1)

    def test_cfl_respected(self):
        g = CartesianGrid3D(8, 8, 8, h=2.0)
        s = Sw4Lite(g, 4.0, options=Sw4Options(cfl=0.4))
        assert s.dt == pytest.approx(0.4 * 2.0 / 4.0)


class TestHayward:
    def test_layered_model_increases_with_depth(self):
        g = CartesianGrid3D(8, 8, 8)
        c = layered_speed_model(g)
        assert np.all(np.diff(c, axis=2) >= 0)

    def test_basin_slows_surface(self):
        g = CartesianGrid3D(16, 16, 8)
        c_plain = layered_speed_model(g)
        c_basin = layered_speed_model(
            g, basin_center=(8.0, 8.0), basin_radius=4.0, basin_slowdown=0.5
        )
        assert c_basin.min() < c_plain.min()
        assert (c_basin <= c_plain + 1e-15).all()

    def test_model_validation(self):
        g = CartesianGrid3D(4, 4, 4)
        with pytest.raises(ValueError):
            layered_speed_model(g, surface_speed=0.0)
        with pytest.raises(ValueError):
            layered_speed_model(g, basin_slowdown=0.0)

    def test_scenario_produces_shaking(self):
        g = CartesianGrid3D(20, 20, 10)
        sc = HaywardScenario(g, n_subfaults=4)
        pgv = sc.run(120)
        assert pgv.shape == (20, 20)
        assert pgv.max() > 0
        stats = sc.shaking_stats()
        assert 0 < stats["area_strong"] <= 1.0

    def test_rupture_delays_increase_along_strike(self):
        g = CartesianGrid3D(16, 16, 8)
        sc = HaywardScenario(g, n_subfaults=5)
        t0s = [s.t0 for s in sc.sources]
        assert all(b > a for a, b in zip(t0s, t0s[1:]))

    def test_shake_map_before_run_raises(self):
        g = CartesianGrid3D(8, 8, 8)
        sc = HaywardScenario(g, n_subfaults=2)
        with pytest.raises(RuntimeError):
            _ = sc.shake_map

    def test_scenario_validation(self):
        g = CartesianGrid3D(8, 8, 8)
        with pytest.raises(ValueError):
            HaywardScenario(g, n_subfaults=0)
        with pytest.raises(ValueError):
            HaywardScenario(g, rupture_speed=0.0)


class TestSupergrid:
    """SW4's absorbing boundary treatment: damping layers absorb
    outgoing waves instead of reflecting them back into the domain."""

    def _late_energy(self, boundary, steps=400):
        g = CartesianGrid3D(32, 32, 16)
        s = Sw4Lite(
            g, 1.0, sources=[RickerSource(16, 16, 4, freq=0.12)],
            options=Sw4Options(boundary=boundary, supergrid_width=6,
                               supergrid_strength=0.08),
        )
        s.run(steps)
        return float(np.abs(s.solution()).max())

    def test_absorbs_outgoing_waves(self):
        reflecting = self._late_energy("dirichlet")
        absorbing = self._late_energy("supergrid")
        assert absorbing < 0.1 * reflecting

    def test_interior_untouched_before_waves_reach_layers(self):
        """Early in the run the sponge must not alter the solution."""
        def early(boundary, steps=30):
            g = CartesianGrid3D(48, 48, 24)
            s = Sw4Lite(
                g, 1.0, sources=[RickerSource(24, 24, 6, freq=0.12)],
                options=Sw4Options(boundary=boundary, supergrid_width=6),
            )
            s.run(steps)
            return s.solution()[12:-12, 12:-12, :12]

        np.testing.assert_allclose(
            early("supergrid"), early("dirichlet"), atol=1e-12
        )

    def test_sponge_profile_shape(self):
        g = CartesianGrid3D(24, 24, 12)
        s = Sw4Lite(g, 1.0, options=Sw4Options(boundary="supergrid",
                                               supergrid_width=4))
        sponge = s._sponge
        assert sponge.shape == (24, 24, 12)
        # free surface (z=0) interior is undamped
        assert sponge[12, 12, 0] == pytest.approx(1.0)
        # bottom and lateral walls are damped
        assert sponge[12, 12, -1] < 1.0
        assert sponge[0, 12, 5] < 1.0
        assert sponge[12, 12, 5] == pytest.approx(1.0)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            Sw4Options(boundary="supergrid", supergrid_width=0)
        with pytest.raises(ValueError):
            Sw4Options(boundary="supergrid", supergrid_strength=0.0)
        with pytest.raises(ValueError):
            Sw4Options(boundary="absorbing")
