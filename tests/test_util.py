"""Tests for repro.util: RNG determinism, tables, timers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import Stopwatch, Table, TimerRegistry, format_seconds, format_si
from repro.util.rng import make_rng, permutation_with_fixed_sum, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(16)
        b = make_rng(42).random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(16)
        b = make_rng(2).random(16)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.random(8) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic(self):
        a = [r.random(4) for r in spawn_rngs(9, 2)]
        b = [r.random(4) for r in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_ok(self):
        assert spawn_rngs(0, 0) == []


class TestPermutationWithFixedSum:
    @given(
        total=st.floats(min_value=1.0, max_value=1e6),
        n=st.integers(min_value=1, max_value=64),
    )
    def test_sums_to_total_and_positive(self, total, n):
        parts = permutation_with_fixed_sum(make_rng(0), total, n)
        assert parts.shape == (n,)
        assert np.all(parts > 0)
        assert np.isclose(parts.sum(), total, rtol=1e-10)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            permutation_with_fixed_sum(make_rng(0), 1.0, 0)
        with pytest.raises(ValueError):
            permutation_with_fixed_sum(make_rng(0), -1.0, 3)


class TestFormatters:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.31e-3, "2.31 ms"),
            (0.0, "0 s"),
            (1.5, "1.5 s"),
            (3600.0, "60 min"),
            (8000.0, "2.22 h"),
            (5e-7, "500 ns"),
        ],
    )
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    def test_format_seconds_negative(self):
        assert format_seconds(-1.5).startswith("-")

    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (67.258e9, "TEPS", "67.3 GTEPS"),
            (0, "B", "0 B"),
            (1.25e3, "B/s", "1.25 kB/s"),
        ],
    )
    def test_format_si(self, value, unit, expected):
        assert format_si(value, unit) == expected


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["machine", "GTEPs"], title="Table 2")
        t.add_row("sierra", 67.258)
        t.add_row("catalyst", 4.175)
        text = str(t)
        assert "Table 2" in text
        assert "sierra" in text
        assert "67.26" in text

    def test_wrong_arity(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_alignment_numeric_right(self):
        t = Table(["name", "n"])
        t.add_row("x", 1)
        t.add_row("longer", 100)
        lines = str(t).splitlines()
        # numeric column is right aligned: '1' ends the cell
        assert lines[-2].rstrip().endswith("1")


class TestStopwatch:
    def test_basic(self):
        sw = Stopwatch()
        sw.start()
        elapsed = sw.stop()
        assert elapsed >= 0

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        assert sw.elapsed >= 0.0
        sw.stop()


class TestTimerRegistry:
    def test_phase_accumulates(self):
        t = TimerRegistry()
        with t.phase("a"):
            pass
        with t.phase("a"):
            pass
        assert t.count("a") == 2
        assert t.total("a") >= 0

    def test_add_modeled_time(self):
        t = TimerRegistry()
        t.add("solve", 1.5)
        t.add("solve", 0.5)
        assert t.total("solve") == pytest.approx(2.0)

    def test_missing_phase_zero(self):
        t = TimerRegistry()
        assert t.total("nope") == 0.0
        assert t.count("nope") == 0

    def test_merge(self):
        a, b = TimerRegistry(), TimerRegistry()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)

    def test_as_dict(self):
        t = TimerRegistry()
        t.add("p", 1.0)
        assert t.as_dict() == {"p": 1.0}
