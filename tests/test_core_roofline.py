"""Tests for the roofline execution-time model."""

import pytest

from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
from repro.core.machine import get_machine
from repro.core.roofline import (
    RooflineModel,
    allreduce_time,
    alltoall_time,
)


@pytest.fixture
def sierra():
    return RooflineModel(get_machine("sierra"))


@pytest.fixture
def cori():
    return RooflineModel(get_machine("cori-ii"))


def stream_kernel(gb=1.0):
    return KernelSpec(
        "stream", flops=0.1e9 * gb, bytes_read=gb * 0.7e9,
        bytes_written=gb * 0.3e9,
    )


def compute_kernel(gflop=1.0):
    return KernelSpec(
        "dgemm-ish", flops=gflop * 1e9, bytes_read=1e6, bytes_written=1e6,
        compute_efficiency=0.9,
    )


class TestGpuKernelTime:
    def test_memory_bound_scales_with_bytes(self, sierra):
        t1 = sierra.gpu_kernel_time(stream_kernel(1.0))
        t2 = sierra.gpu_kernel_time(stream_kernel(2.0))
        assert t2 == pytest.approx(2 * t1)

    def test_more_gpus_faster(self, sierra):
        k = stream_kernel()
        assert sierra.gpu_kernel_time(k, gpus=4) == pytest.approx(
            sierra.gpu_kernel_time(k, gpus=1) / 4
        )

    def test_gpus_out_of_range(self, sierra):
        with pytest.raises(ValueError):
            sierra.gpu_kernel_time(stream_kernel(), gpus=0)
        with pytest.raises(ValueError):
            sierra.gpu_kernel_time(stream_kernel(), gpus=5)

    def test_no_gpu_machine_raises(self, cori):
        with pytest.raises(ValueError):
            cori.gpu_kernel_time(stream_kernel())

    def test_fp32_faster_for_compute_bound(self, sierra):
        k64 = compute_kernel()
        k32 = KernelSpec(
            "sp", flops=k64.flops, bytes_read=k64.bytes_read,
            bytes_written=k64.bytes_written, precision="fp32",
            compute_efficiency=0.9,
        )
        assert sierra.gpu_kernel_time(k32) < sierra.gpu_kernel_time(k64)

    def test_shared_memory_bonus(self, sierra):
        base = compute_kernel()
        tuned = KernelSpec(
            "sm", flops=base.flops, bytes_read=base.bytes_read,
            bytes_written=base.bytes_written, compute_efficiency=0.3,
            uses_shared_memory=True,
        )
        untuned = KernelSpec(
            "plain", flops=base.flops, bytes_read=base.bytes_read,
            bytes_written=base.bytes_written, compute_efficiency=0.3,
        )
        assert sierra.gpu_kernel_time(tuned) < sierra.gpu_kernel_time(untuned)

    def test_launch_overhead_proportional(self, sierra):
        k = KernelSpec("tiny", flops=1.0, bytes_read=8.0, bytes_written=8.0,
                       launches=100)
        assert sierra.gpu_launch_time(k) == pytest.approx(
            100 * get_machine("sierra").gpu.launch_overhead
        )


class TestCpuKernelTime:
    def test_cache_residency_speeds_up(self, sierra):
        k = stream_kernel(0.01)
        slow = sierra.cpu_kernel_time(k)
        fast = sierra.cpu_kernel_time(k, working_set_bytes=1e6)
        assert fast < slow

    def test_large_working_set_no_bonus(self, sierra):
        k = stream_kernel(1.0)
        assert sierra.cpu_kernel_time(k, working_set_bytes=10e9) == (
            pytest.approx(sierra.cpu_kernel_time(k))
        )

    def test_cores_out_of_range(self, sierra):
        with pytest.raises(ValueError):
            sierra.cpu_kernel_time(stream_kernel(), cores=0)
        with pytest.raises(ValueError):
            sierra.cpu_kernel_time(stream_kernel(), cores=1000)

    def test_fewer_cores_slower_for_compute(self, sierra):
        k = compute_kernel()
        assert sierra.cpu_kernel_time(k, cores=4) > sierra.cpu_kernel_time(
            k, cores=44
        )

    def test_bad_parallel_efficiency(self):
        with pytest.raises(ValueError):
            RooflineModel(get_machine("sierra"), cpu_parallel_efficiency=0.0)


class TestTransfers:
    def test_h2d_uses_link(self, sierra):
        t = TransferSpec("x", nbytes=75e9, direction="h2d")
        # 75 GB over a 75 GB/s link: about a second.
        assert sierra.transfer_time(t) == pytest.approx(1.0, rel=0.01)

    def test_net_uses_network(self, sierra):
        t = TransferSpec("x", nbytes=25e9, direction="net")
        assert sierra.transfer_time(t) == pytest.approx(1.0, rel=0.01)

    def test_no_link_raises(self, cori):
        with pytest.raises(ValueError):
            cori.transfer_time(TransferSpec("x", nbytes=1.0, direction="h2d"))


class TestTraceReports:
    def test_gpu_report_totals(self, sierra):
        tr = KernelTrace()
        tr.record_kernel(stream_kernel())
        tr.record_transfer(TransferSpec("up", nbytes=1e9, direction="h2d"))
        rep = sierra.run_on_gpu(tr, gpus=1)
        assert rep.total == pytest.approx(
            rep.kernel_time + rep.launch_time + rep.transfer_time
        )
        assert rep.transfer_time > 0
        assert "stream" in rep.per_kernel

    def test_cpu_report_ignores_h2d(self, sierra):
        tr = KernelTrace()
        tr.record_kernel(stream_kernel())
        tr.record_transfer(TransferSpec("up", nbytes=1e9, direction="h2d"))
        rep = sierra.run_on_cpu(tr)
        assert rep.transfer_time == 0.0

    def test_speedup_bandwidth_bound_plausible(self, sierra):
        # 4x V100 HBM vs 2x P9 DDR: an order of magnitude, not 100x.
        tr = KernelTrace()
        tr.record_kernel(stream_kernel(10.0))
        s = sierra.speedup_gpu_over_cpu(tr)
        assert 5 < s < 40

    def test_merge_reports(self, sierra):
        tr = KernelTrace()
        tr.record_kernel(stream_kernel())
        a = sierra.run_on_gpu(tr)
        b = sierra.run_on_gpu(tr)
        total = a.total
        a.merge(b)
        assert a.total == pytest.approx(2 * total)

    def test_merge_mismatched_raises(self, sierra, cori):
        tr = KernelTrace()
        tr.record_kernel(stream_kernel())
        a = sierra.run_on_gpu(tr)
        b = sierra.run_on_cpu(tr)
        with pytest.raises(ValueError):
            a.merge(b)


class TestCollectives:
    def test_allreduce_single_node_free(self):
        m = get_machine("sierra")
        assert allreduce_time(m, 1e6, 1) == 0.0

    def test_allreduce_grows_with_nodes(self):
        m = get_machine("sierra")
        assert allreduce_time(m, 1e6, 16) > allreduce_time(m, 1e6, 2)

    def test_ring_beats_tree_for_large_messages(self):
        m = get_machine("sierra")
        big = 1e9
        assert allreduce_time(m, big, 64, "ring") < allreduce_time(m, big, 64, "tree")

    def test_tree_beats_ring_for_small_messages(self):
        m = get_machine("sierra")
        small = 8.0
        assert allreduce_time(m, small, 64, "tree") < allreduce_time(
            m, small, 64, "ring"
        )

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            allreduce_time(get_machine("sierra"), 1e6, 4, "magic")

    def test_allreduce_bad_nodes(self):
        with pytest.raises(ValueError):
            allreduce_time(get_machine("sierra"), 1e6, 0)

    def test_alltoall_scales(self):
        m = get_machine("sierra")
        assert alltoall_time(m, 1e6, 32) > alltoall_time(m, 1e6, 4)
        assert alltoall_time(m, 1e6, 1) == 0.0


class TestMemoization:
    def _trace(self, reps=30):
        tr = KernelTrace()
        k = KernelSpec(name="k", flops=1e9, bytes_read=4e8, bytes_written=2e8)
        for _ in range(reps):
            tr.record_kernel(k)
        return tr

    def test_memo_price_equals_reference(self):
        m = get_machine("sierra")
        tr = self._trace()
        memo = RooflineModel(m).run_on_gpu(tr).total
        ref = RooflineModel(m, memo_size=0).run_on_gpu(tr).total
        assert memo == pytest.approx(ref, rel=1e-14)

    def test_hits_counted(self):
        model = RooflineModel(get_machine("sierra"))
        model.run_on_gpu(self._trace(reps=10))
        assert model.memo_misses == 1
        assert model.memo_hits == 9

    def test_disabled_memo_never_hits(self):
        model = RooflineModel(get_machine("sierra"), memo_size=0)
        model.run_on_gpu(self._trace(reps=10))
        assert model.memo_hits == 0
        assert model.memo_misses == 0

    def test_lru_eviction_bounded(self):
        model = RooflineModel(get_machine("sierra"), memo_size=4)
        tr = KernelTrace()
        for i in range(10):
            tr.record_kernel(KernelSpec(
                name=f"k{i}", flops=1e9 + i, bytes_read=4e8, bytes_written=2e8
            ))
        model.run_on_gpu(tr)
        assert len(model._memo) == 4

    def test_clear_memo(self):
        model = RooflineModel(get_machine("sierra"))
        model.run_on_gpu(self._trace())
        model.clear_memo()
        assert model.memo_hits == 0
        assert len(model._memo) == 0

    def test_negative_memo_size_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel(get_machine("sierra"), memo_size=-1)

    def test_gpu_launches_scale_memoized_price(self):
        model = RooflineModel(get_machine("sierra"))
        one = KernelSpec(name="k", flops=1e9, bytes_read=4e8,
                         bytes_written=2e8)
        many = KernelSpec(name="k", flops=1e9, bytes_read=4e8,
                          bytes_written=2e8, launches=50)
        assert model.gpu_kernel_time(many) == pytest.approx(
            50 * model.gpu_kernel_time(one), rel=1e-14
        )

    def test_cpu_memo_keyed_on_cores_and_working_set(self):
        model = RooflineModel(get_machine("sierra"))
        k = KernelSpec(name="k", flops=1e9, bytes_read=4e8, bytes_written=2e8)
        t_all = model.cpu_kernel_time(k)
        t_few = model.cpu_kernel_time(k, cores=4)
        t_cached = model.cpu_kernel_time(k, working_set_bytes=1e6)
        assert t_all != t_few
        assert t_cached < t_all
        assert model.memo_misses == 3


class TestMemoInvalidation:
    """The stale-memo bug: LRU entries are keyed on (side, pricing
    fingerprint, placement) only, so a model whose machine or
    efficiency is rebound must drop them — otherwise it keeps quoting
    the old machine's prices."""

    def _trace(self, reps=20):
        tr = KernelTrace()
        k = KernelSpec(name="k", flops=1e9, bytes_read=4e8, bytes_written=2e8)
        for _ in range(reps):
            tr.record_kernel(k)
        return tr

    def test_machine_swap_cannot_return_stale_prices(self):
        tr = self._trace()
        model = RooflineModel(get_machine("sierra"))
        t_sierra = model.run_on_gpu(tr).total
        model.machine = get_machine("ea-minsky")
        t_minsky = model.run_on_gpu(tr).total
        fresh = RooflineModel(get_machine("ea-minsky")).run_on_gpu(tr).total
        assert t_minsky == pytest.approx(fresh, rel=1e-14)
        assert t_minsky != t_sierra

    def test_machine_swap_clears_memo(self):
        model = RooflineModel(get_machine("sierra"))
        model.run_on_gpu(self._trace())
        assert len(model._memo) == 1
        model.machine = get_machine("ea-minsky")
        assert len(model._memo) == 0

    def test_efficiency_rebind_reprices_cpu(self):
        tr = self._trace()
        model = RooflineModel(get_machine("sierra"),
                              cpu_parallel_efficiency=0.8)
        t_before = model.run_on_cpu(tr).total
        model.cpu_parallel_efficiency = 0.4
        t_after = model.run_on_cpu(tr).total
        fresh = RooflineModel(
            get_machine("sierra"), cpu_parallel_efficiency=0.4
        ).run_on_cpu(tr).total
        assert t_after == pytest.approx(fresh, rel=1e-14)
        assert t_after != t_before

    def test_mutable_machine_rejected(self):
        class FakeMachine:
            name = "mutable"

        with pytest.raises(TypeError, match="frozen"):
            RooflineModel(FakeMachine())

    def test_bad_efficiency_on_rebind(self):
        model = RooflineModel(get_machine("sierra"))
        with pytest.raises(ValueError):
            model.cpu_parallel_efficiency = 0.0
        with pytest.raises(ValueError):
            model.cpu_parallel_efficiency = 1.5
