"""Tests for trace compaction and the TraceOptimizer fusion pass.

The load-bearing invariant: roofline pricing is linear in launches, so
a compacted trace (identical specs coalesced into launch counts) must
price identically to the raw trace — on every machine in the catalog,
on both sides, and for traces produced by fault-injected resilience
runs, whose restarts re-record whole kernel sequences.
"""

import numpy as np
import pytest

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
from repro.core.machine import MACHINES
from repro.core.roofline import RooflineModel
from repro.core.traceopt import (
    MAX_FUSE_CHAIN,
    TraceOptimizer,
    TraceOptStats,
    fusible,
)


def spec(name="k", flops=1e9, br=4e8, bw=2e8, launches=1, **kw):
    return KernelSpec(name=name, flops=flops, bytes_read=br,
                      bytes_written=bw, launches=launches, **kw)


def repetitive_trace(reps=50):
    """A trace shaped like an iterative solve: the same few kernels
    over and over, with a periodic transfer."""
    tr = KernelTrace()
    specs = [
        spec("spmv", flops=2e9, br=1.2e9, bw=4e8),
        spec("axpy", flops=5e8, br=8e8, bw=4e8),
        spec("dot", flops=5e8, br=8e8, bw=8.0),
    ]
    for i in range(reps):
        for s in specs:
            tr.record_kernel(s)
        if i % 10 == 0:
            tr.record_transfer(TransferSpec("halo", nbytes=1e6,
                                            direction="d2h"))
    return tr


GPU_MACHINES = sorted(n for n, m in MACHINES.items() if m.gpu is not None)
ALL_MACHINES = sorted(MACHINES)


class TestCompactedPricing:
    @pytest.mark.parametrize("name", GPU_MACHINES)
    def test_gpu_pricing_invariant_all_machines(self, name):
        tr = repetitive_trace()
        model = RooflineModel(MACHINES[name])
        raw = model.run_on_gpu(tr)
        compact = model.run_on_gpu(tr, compact=True)
        assert compact.total == pytest.approx(raw.total, rel=1e-12)
        assert compact.kernel_time == pytest.approx(raw.kernel_time,
                                                    rel=1e-12)
        assert compact.launch_time == pytest.approx(raw.launch_time,
                                                    rel=1e-12)
        assert compact.transfer_time == pytest.approx(raw.transfer_time,
                                                      rel=1e-12)

    @pytest.mark.parametrize("name", ALL_MACHINES)
    def test_cpu_pricing_invariant_all_machines(self, name):
        tr = repetitive_trace()
        model = RooflineModel(MACHINES[name])
        raw = model.run_on_cpu(tr)
        compact = model.run_on_cpu(tr, compact=True)
        assert compact.total == pytest.approx(raw.total, rel=1e-12)

    def test_memo_does_not_change_prices(self):
        tr = repetitive_trace()
        machine = MACHINES["sierra"]
        memo = RooflineModel(machine).run_on_gpu(tr)
        plain = RooflineModel(machine, memo_size=0).run_on_gpu(tr)
        assert memo.total == pytest.approx(plain.total, rel=1e-12)

    def test_memo_hit_rate_on_repetitive_trace(self):
        model = RooflineModel(MACHINES["sierra"])
        model.run_on_gpu(repetitive_trace(reps=100))
        # 3 unique specs -> 3 misses, everything else hits
        assert model.memo_misses == 3
        assert model.memo_hits == 297

    def test_fault_injected_resilience_trace_prices_identically(self):
        """Traces from checkpoint/restart runs (PR 1) compact safely:
        restarted sequences are exact re-records, the best case for
        coalescing — and must not change the modeled cost."""
        from repro.md.ddcmd import DdcMD, make_martini_membrane
        from repro.md.integrators import LangevinThermostat
        from repro.resilience import FaultInjector, ResilientDriver

        system, proc, bonds, angles = make_martini_membrane(
            n_lipids_per_leaflet=4, n_water=8, seed=3
        )
        ctx = ExecutionContext()
        md = DdcMD(
            system, proc, dt=0.002, bonds=bonds, angles=angles,
            thermostat=LangevinThermostat(temperature=1.0, friction=1.0,
                                          seed=7),
            ctx=ctx,
        )
        report = ResilientDriver(
            md, cadence=4,
            injector=FaultInjector(kill_per_step=0.1, seed=11),
        ).run(max_steps=24)
        assert report.kills > 0  # the fault path actually ran
        tr = ctx.trace
        assert len(tr.kernels) > 24  # restarts re-recorded work
        compacted = tr.compacted()
        assert len(compacted.kernels) < len(tr.kernels)
        assert compacted.total_launches == tr.total_launches
        for name in ("sierra", "ea-minsky"):
            model = RooflineModel(MACHINES[name])
            raw = model.run_on_gpu(tr)
            fast = model.run_on_gpu(tr, compact=True)
            assert fast.total == pytest.approx(raw.total, rel=1e-12)


class TestFusible:
    def test_same_class_fusible(self):
        assert fusible(spec("a"), spec("b"))

    def test_mismatched_launches_not_fusible(self):
        assert not fusible(spec("a", launches=1), spec("b", launches=2))

    def test_mismatched_precision_not_fusible(self):
        assert not fusible(spec("a"), spec("b", precision="fp32"))

    def test_mismatched_efficiency_not_fusible(self):
        assert not fusible(spec("a"), spec("b", compute_efficiency=0.9))

    def test_shared_memory_flag_blocks_fusion(self):
        assert not fusible(spec("a"), spec("b", uses_shared_memory=True))


class TestTraceOptimizer:
    def test_fusion_reduces_launches_and_bytes(self):
        tr = KernelTrace()
        # b reads what a wrote: fusion removes the round trip
        tr.record_kernel(spec("a", br=8e8, bw=4e8))
        tr.record_kernel(spec("b", br=4e8, bw=4e8))
        opt, stats = TraceOptimizer().optimize(tr)
        assert len(opt.kernels) == 1
        assert stats.fused_away == 1
        assert stats.launches_saved == 1
        assert stats.bytes_saved == pytest.approx(2 * 4e8)
        assert opt.kernels[0].flops == pytest.approx(2e9)

    def test_fusion_never_increases_modeled_time(self):
        tr = repetitive_trace()
        model = RooflineModel(MACHINES["sierra"])
        raw = model.run_on_gpu(tr).total
        opt, _ = TraceOptimizer().optimize(tr)
        fused = model.run_on_gpu(opt).total
        assert fused <= raw + 1e-15

    def test_unfusible_chain_left_alone(self):
        tr = KernelTrace()
        tr.record_kernel(spec("a", precision="fp64"))
        tr.record_kernel(spec("b", precision="fp32"))
        opt, stats = TraceOptimizer(compact=False).optimize(tr)
        assert [k.name for k in opt.kernels] == ["a", "b"]
        assert stats.fused_away == 0

    def test_chain_cap(self):
        tr = KernelTrace()
        for i in range(2 * MAX_FUSE_CHAIN):
            tr.record_kernel(spec(f"k{i}"))
        opt, _ = TraceOptimizer(compact=False).optimize(tr)
        assert len(opt.kernels) == 2
        # flops conserved by fusion regardless of grouping
        assert sum(k.flops for k in opt.kernels) == pytest.approx(
            tr.total_flops
        )

    def test_transfers_survive(self):
        tr = repetitive_trace()
        opt, _ = TraceOptimizer().optimize(tr)
        assert opt.total_transfer_bytes == tr.total_transfer_bytes

    def test_stats_accounting(self):
        tr = repetitive_trace(reps=10)
        opt, stats = TraceOptimizer().optimize(tr)
        assert stats.kernels_in == len(tr.kernels)
        assert stats.kernels_out == len(opt.kernels)
        assert stats.launches_in == tr.total_launches
        assert stats.launches_out == opt.total_launches
        assert isinstance(stats, TraceOptStats)

    def test_compact_only_preserves_totals(self):
        tr = repetitive_trace()
        opt, stats = TraceOptimizer(fuse=False).optimize(tr)
        assert stats.fused_away == 0
        assert opt.total_launches == tr.total_launches
        assert opt.total_flops == pytest.approx(tr.total_flops)
        assert len(opt.kernels) < len(tr.kernels)


class TestCrossClassFusion:
    def test_requires_machine(self):
        with pytest.raises(ValueError):
            TraceOptimizer(cross_class=True)

    def test_requires_gpu_machine(self):
        cpu_only = [n for n, m in MACHINES.items() if m.gpu is None]
        if not cpu_only:
            pytest.skip("no CPU-only machine in the catalog")
        with pytest.raises(ValueError):
            TraceOptimizer(cross_class=True, machine=cpu_only[0])

    def _launch_bound(self, name, ce):
        # tiny kernels: per-launch cost is dominated by launch
        # overhead, the profitable shape for cross-class fusion
        return spec(name, flops=1e5, br=1e5, bw=1e5,
                    compute_efficiency=ce, bandwidth_efficiency=ce)

    def test_fuses_launch_bound_kernels_across_classes(self):
        tr = KernelTrace()
        tr.record_kernel(self._launch_bound("scatter-a", 0.25))
        tr.record_kernel(self._launch_bound("scatter-b", 0.6))
        model = RooflineModel(MACHINES["sierra"])
        base = model.run_on_gpu(tr)
        opt, stats = TraceOptimizer(
            cross_class=True, machine="sierra", compact=False
        ).optimize(tr)
        assert stats.cross_fused == 1
        assert stats.fused_away == 1
        assert stats.modeled_saved_s > 0
        fused_rep = model.run_on_gpu(opt)
        saved = (base.kernel_time + base.launch_time) - (
            fused_rep.kernel_time + fused_rep.launch_time)
        assert saved == pytest.approx(stats.modeled_saved_s, rel=1e-9)

    def test_refuses_unprofitable_merge(self):
        # big compute-bound kernels of very different efficiency: the
        # fused min-efficiency kernel would be slower than the launch
        # overhead saved
        tr = KernelTrace()
        tr.record_kernel(spec("good", flops=5e12, br=1e9, bw=1e9,
                              compute_efficiency=0.9,
                              bandwidth_efficiency=0.9))
        tr.record_kernel(spec("bad", flops=5e12, br=1e9, bw=1e9,
                              compute_efficiency=0.05,
                              bandwidth_efficiency=0.05))
        opt, stats = TraceOptimizer(
            cross_class=True, machine="sierra", compact=False
        ).optimize(tr)
        assert stats.cross_fused == 0
        assert [k.name for k in opt.kernels] == ["good", "bad"]

    def test_mismatched_launch_counts_never_cross_fuse(self):
        tr = KernelTrace()
        tr.record_kernel(self._launch_bound("a", 0.25))
        b = spec("b", flops=1e5, br=1e5, bw=1e5, launches=2,
                 compute_efficiency=0.6, bandwidth_efficiency=0.6)
        tr.record_kernel(b)
        _, stats = TraceOptimizer(
            cross_class=True, machine="sierra", compact=False
        ).optimize(tr)
        assert stats.cross_fused == 0

    def test_same_class_fusion_still_works_under_cross(self):
        tr = KernelTrace()
        tr.record_kernel(spec("a"))
        tr.record_kernel(spec("b"))
        _, stats = TraceOptimizer(
            cross_class=True, machine="sierra", compact=False
        ).optimize(tr)
        # identical classes take the legality fast path, not pricing
        assert stats.fused_away == 1
        assert stats.cross_fused == 0

    def test_ddcmd_trace_cross_fusion_beats_same_class(self):
        """On a real decomposed ddcMD step trace the priced cross-class
        pass must fuse at least as much modeled time away as the
        class-restricted pass — the §4.8 merged-kernels story."""
        from repro.md.ddcmd import DdcMD, make_martini_membrane

        system, proc, bonds, angles = make_martini_membrane(
            n_lipids_per_leaflet=4, n_water=8, seed=3
        )
        ctx = ExecutionContext()
        md = DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles,
                   ctx=ctx)
        for _ in range(4):
            md.step()
        model = RooflineModel(MACHINES["sierra"])

        def gpu_time(trace):
            rep = model.run_on_gpu(trace, compact=True)
            return rep.kernel_time + rep.launch_time

        base = gpu_time(ctx.trace)
        same, _ = TraceOptimizer().optimize(ctx.trace)
        cross, stats = TraceOptimizer(
            cross_class=True, machine="sierra"
        ).optimize(ctx.trace)
        assert stats.cross_fused > 0
        assert stats.modeled_saved_s > 0
        assert gpu_time(cross) <= gpu_time(same) + 1e-15
        assert gpu_time(cross) < base
