"""Tests for the durable crash-restart core (``repro.durable``).

The load-bearing contract: a campaign journaling into a
:class:`DurableStore` can be SIGKILLed at any instant and a restarted
process resumes **bit-exactly** — same final state, same RNG draws,
same observability counters as an uninterrupted run.  Plus the WAL's
framing guarantees (CRC, torn-tail truncation, atomic rotation), the
idempotent snapshot+journal recovery protocol, the supervised worker
pool (liveness, replacement, poison quarantine, journal
resubmission), and the crash surfacing hardening in ``map_fanout``.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.durable import (
    DurableStore,
    ResumableCampaign,
    WriteAheadLog,
    run_chaos,
    state_mismatches,
)
from repro.durable.wal import MAGIC
from repro.obs import metrics as metrics_mod
from repro.par import (
    PoisonTaskError,
    Supervisor,
    WorkerCrashError,
    WorkerTaskError,
    map_fanout,
)
from repro.resilience.checkpoint import CheckpointStore, atomic_write_bytes


# -- top-level fns for supervised workers (pickling/forking) ---------------


def _sq(x):
    return x * x


def _die_on_five(x):
    if x == 5:
        os._exit(21)
    return x


def _die_late(x):
    if x == 12:
        time.sleep(0.5)
        os._exit(21)
    return x


def _poison_three(x):
    if x == 3:
        os._exit(17)
    return x


def _hang_on_one(x):
    if x == 1:
        time.sleep(60)
    return x


def _raise_on_two(x):
    if x == 2:
        raise ValueError("boom")
    return x


_FLAKY_DIR = None


def _flaky_seven(x):
    # crashes the worker the first time index 7 runs, succeeds after
    marker = os.path.join(_FLAKY_DIR, f"m{x}")
    if x == 7 and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return x + 1


def _slow_sq(x):
    time.sleep(0.02)
    return x * x


# -------------------------------------------------------------------------
# WriteAheadLog
# -------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "j.wal"
        payloads = [b"alpha", b"", b"x" * 10_000, pickle.dumps({"k": 1})]
        with WriteAheadLog(path) as wal:
            for p in payloads:
                wal.append(p)
            assert wal.records() == payloads
        with WriteAheadLog(path) as wal:
            assert wal.records_on_open == len(payloads)
            assert wal.truncated_bytes == 0
            assert wal.records() == payloads

    def test_empty_wal_recovers_to_nothing(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            assert wal.records() == []
        with WriteAheadLog(path) as wal:
            assert wal.records_on_open == 0
            assert wal.records() == []

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b"committed-1")
            wal.append(b"committed-2")
        intact = path.stat().st_size
        # simulate a crash mid-append: half a frame at the tail
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x10\x00garbage")
        torn = path.stat().st_size - intact
        with WriteAheadLog(path) as wal:
            assert wal.truncated_bytes == torn
            assert path.stat().st_size == intact
            assert wal.records() == [b"committed-1", b"committed-2"]

    def test_corrupt_crc_drops_tail(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b"good")
            wal.append(b"to-corrupt")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path) as wal:
            assert wal.records() == [b"good"]

    def test_headerless_file_is_reheadered(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"not-a-wal")
        with WriteAheadLog(path) as wal:
            assert wal.records() == []
            wal.append(b"fresh")
            assert wal.records() == [b"fresh"]
        assert path.read_bytes().startswith(MAGIC)

    def test_rotation_empties_atomically(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b"old-1")
            wal.append(b"old-2")
            wal.rotate()
            assert wal.records() == []
            wal.append(b"new-1")
            assert wal.records() == [b"new-1"]
        assert not list(tmp_path.glob("*.rotate"))

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "j.wal")
        wal.close()
        with pytest.raises(RuntimeError):
            wal.append(b"x")


# -------------------------------------------------------------------------
# DurableStore
# -------------------------------------------------------------------------


class TestDurableStore:
    def test_fresh_store_recovers_none(self, tmp_path):
        with DurableStore(tmp_path) as store:
            assert store.recover() is None

    def test_snapshot_then_journal_recovery(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.save_snapshot(3, {"v": 3})
            store.journal(4, {"v": 4})
            store.journal(5, {"v": 5})
        with DurableStore(tmp_path) as store:
            step, payload = store.recover()
            assert step == 5
            assert payload == {"v": 5}
            assert store.records_replayed == 2

    def test_duplicate_journal_entries_replay_idempotently(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.save_snapshot(0, {"v": 0})
            store.journal(1, {"v": 1})
            store.journal(1, {"v": 1})  # a resubmitted step journaled twice
            store.journal(2, {"v": 2})
        with DurableStore(tmp_path) as store:
            step, payload = store.recover()
            assert (step, payload) == (2, {"v": 2})
            assert store.records_skipped == 1

    def test_stale_records_after_snapshot_are_noops(self, tmp_path):
        # crash between snapshot write and journal rotation leaves old
        # records behind; emulate by journaling, then snapshotting into
        # a store whose rotation we bypass via a second handle
        with DurableStore(tmp_path) as store:
            store.journal(1, {"v": 1})
            store.journal(2, {"v": 2})
            store.save_snapshot(2, {"v": 2})
            # re-append pre-snapshot records, as if rotation never ran
            store.wal.append(pickle.dumps({"step": 1, "payload": {"v": 1}}))
        with DurableStore(tmp_path) as store:
            step, payload = store.recover()
            assert (step, payload) == (2, {"v": 2})
            assert store.records_skipped == 1

    def test_journal_without_snapshot(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.journal(1, {"v": 1})
        with DurableStore(tmp_path) as store:
            assert store.recover() == (1, {"v": 1})

    def test_torn_final_record_recovers_previous(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.journal(1, {"v": 1})
            store.journal(2, {"v": 2})
        # SIGKILL mid-append of step 3
        with open(tmp_path / "journal.wal", "ab") as fh:
            fh.write(b"\x00\x00\xff\xff torn")
        with DurableStore(tmp_path) as store:
            assert store.recover() == (2, {"v": 2})

    def test_stray_tmp_from_killed_snapshot_is_ignored(self, tmp_path):
        with DurableStore(tmp_path) as store:
            store.save_snapshot(1, {"v": 1})
        # a kill mid-atomic-write leaves snapshot.ckpt.tmp behind
        (tmp_path / "snapshot.ckpt.tmp").write_bytes(b"half-written junk")
        with DurableStore(tmp_path) as store:
            assert store.recover() == (1, {"v": 1})
        assert not (tmp_path / "snapshot.ckpt.tmp").exists()


class TestCheckpointStorePersistence:
    def test_save_to_load_from_round_trip(self, tmp_path):
        store = CheckpointStore()
        state = {"x": np.arange(5.0), "nested": {"k": [1, 2]}}
        store.save(7, state)
        store.save_to(tmp_path / "c.ckpt")
        fresh = CheckpointStore()
        step, loaded = fresh.load_from(tmp_path / "c.ckpt")
        assert step == 7
        assert not state_mismatches(loaded, state)

    def test_atomic_write_replaces_not_appends(self, tmp_path):
        p = tmp_path / "f"
        atomic_write_bytes(p, b"first version, long")
        atomic_write_bytes(p, b"second", sync=False)
        assert p.read_bytes() == b"second"
        assert not (tmp_path / "f.tmp").exists()

    def test_save_nbytes_hint_feeds_accounting(self):
        store = CheckpointStore()
        store.save(0, {"x": np.zeros(4)}, nbytes=999)
        assert store.bytes_written == 999


# -------------------------------------------------------------------------
# ResumableCampaign: kill/resume bit-exactness
# -------------------------------------------------------------------------


def _campaign(seed=0, backend="serial"):
    from repro.workflow.mummi import MummiCampaign

    return MummiCampaign(seed=seed, n_gpus=8, jobs_per_cycle=8,
                         backend=backend)


def _reset_tracked():
    for prefix in ("workflow.", "sched.", "guard."):
        metrics_mod.REGISTRY.reset(prefix)


class TestResumableCampaign:
    N = 8

    def _reference(self):
        _reset_tracked()
        ref = _campaign()
        while ref.progress < self.N:
            ref.step()
        counters = {
            k: v for k, v in metrics_mod.snapshot()["counters"].items()
            if k.startswith(("workflow.", "sched.", "guard."))
        }
        return ref.checkpoint_state(), counters

    def test_interrupted_resume_is_bit_exact(self, tmp_path):
        ref_state, ref_counters = self._reference()

        # first incarnation "dies" (we just stop driving it) mid-run
        _reset_tracked()
        with DurableStore(tmp_path) as store:
            ResumableCampaign(_campaign(), store, cadence=3).run(5)

        # second incarnation: fresh process state, recover, finish
        _reset_tracked()
        with DurableStore(tmp_path) as store:
            driver = ResumableCampaign(_campaign(), store, cadence=3)
            assert driver.recover() == 5
            driver.run(self.N)

        got_counters = {
            k: v for k, v in metrics_mod.snapshot()["counters"].items()
            if k.startswith(("workflow.", "sched.", "guard."))
        }
        with DurableStore(tmp_path) as store:
            step, payload = store.recover()
        assert step == self.N
        assert state_mismatches(payload["state"], ref_state) == []
        assert got_counters == ref_counters

    def test_resume_under_different_backend(self, tmp_path, monkeypatch):
        """Journal under serial, resume under REPRO_PAR=thread:2.

        The fan-out determinism contract (bit-identical results across
        backends) composes with durable resume — the backend is an
        execution detail, not campaign state, so the resumed process
        may come up with a different ``REPRO_PAR`` than the one that
        crashed.
        """
        ref_state, _ = self._reference()
        _reset_tracked()
        monkeypatch.setenv("REPRO_PAR", "serial")
        with DurableStore(tmp_path) as store:
            ResumableCampaign(
                _campaign(backend=None), store, cadence=3,
            ).run(4)
        _reset_tracked()
        monkeypatch.setenv("REPRO_PAR", "thread:2")
        with DurableStore(tmp_path) as store:
            driver = ResumableCampaign(
                _campaign(backend=None), store, cadence=3,
            )
            assert driver.recover() == 4
            driver.run(self.N)
        with DurableStore(tmp_path) as store:
            step, payload = store.recover()
        assert step == self.N
        assert state_mismatches(payload["state"], ref_state) == []

    def test_counters_rewind_on_recover(self, tmp_path):
        _reset_tracked()
        with DurableStore(tmp_path) as store:
            ResumableCampaign(_campaign(), store, cadence=3).run(4)
        committed = metrics_mod.counter("workflow.cycles").value
        # uncommitted post-crash garbage that recovery must erase
        metrics_mod.counter("workflow.cycles").add(100)
        metrics_mod.counter("workflow.bogus_after_crash").add(7)
        with DurableStore(tmp_path) as store:
            ResumableCampaign(_campaign(), store, cadence=3).recover()
        assert metrics_mod.counter("workflow.cycles").value == committed
        assert metrics_mod.counter("workflow.bogus_after_crash").value == 0

    def test_run_requires_termination(self, tmp_path):
        class Stepper:
            progress = 0

            def step(self):
                self.progress += 1

            def checkpoint_state(self):
                return {"p": self.progress}

            def restore_state(self, st):
                self.progress = st["p"]

        with DurableStore(tmp_path) as store:
            driver = ResumableCampaign(Stepper(), store)
            with pytest.raises(ValueError):
                driver.run()
            assert driver.run(3) == 3


# -------------------------------------------------------------------------
# SimulatorSession: the checkpointable twin of the batch engine
# -------------------------------------------------------------------------


class TestSimulatorSession:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("fault", [False, True])
    def test_session_equals_batch(self, engine, fault):
        from repro.resilience import FaultInjector, ImmediateRetry
        from repro.sched import ClusterSimulator, SjfWithQuota, batch_workload

        sim = ClusterSimulator(8)
        jobs = batch_workload(n_jobs=200, seed=3)

        def kw():
            return dict(
                fault_injector=(
                    FaultInjector(mtbf=80.0, seed=5) if fault else None
                ),
                retry_policy=ImmediateRetry() if fault else None,
                engine=engine,
            )

        ref = sim.run(jobs, SjfWithQuota(8), **kw())
        ses = sim.session(jobs, SjfWithQuota(8), **kw())
        assert ses.run_to_completion() == ref

    def test_checkpoint_resume_is_bit_exact(self):
        from repro.resilience import FaultInjector, ImmediateRetry
        from repro.sched import ClusterSimulator, Sjf, batch_workload

        sim = ClusterSimulator(8)
        jobs = batch_workload(n_jobs=300, seed=9)

        def build(seed):
            return sim.session(
                jobs, Sjf(), fault_injector=FaultInjector(mtbf=60.0, seed=seed),
                retry_policy=ImmediateRetry(),
            )

        ref = build(2).run_to_completion()
        s1 = build(2)
        for _ in range(137):
            s1.step()
        blob = pickle.dumps(s1.checkpoint_state())
        # a *differently seeded* fresh session: restore must overwrite
        # every bit of loop state, including the injector's RNG
        s2 = build(999)
        s2.restore_state(pickle.loads(blob))
        assert s2.run_to_completion() == ref

    def test_session_under_durable_store(self, tmp_path):
        from repro.sched import ClusterSimulator, Fcfs, batch_workload

        sim = ClusterSimulator(4)
        jobs = batch_workload(n_jobs=80, seed=1)
        ref = sim.run(jobs, Fcfs())
        metrics_mod.REGISTRY.reset("sched.")
        with DurableStore(tmp_path) as store:
            ses = sim.session(jobs, Fcfs())
            ResumableCampaign(ses, store, cadence=50,
                              journal_every=10).run()
            assert ses.done
            assert ses.result() == ref


# -------------------------------------------------------------------------
# chaos harness: SIGKILL anywhere, restart, bit-exact convergence
# -------------------------------------------------------------------------


class TestChaos:
    def test_sigkill_resume_bit_exact(self, tmp_path):
        report = run_chaos(n_cycles=6, kills=3, seed=0, kill_seed=7,
                           pace=0.02, cadence=2, store_root=tmp_path)
        assert report.kills == 3
        assert report.restarts >= 4
        assert report.recovered_step == 6
        assert report.bit_exact, str(report)

    def test_state_mismatches_reports_paths(self):
        a = {"x": np.arange(3), "y": {"z": 1}, "l": [1, 2]}
        b = {"x": np.arange(3), "y": {"z": 2}, "l": [1, 3]}
        paths = state_mismatches(a, b)
        assert "state.y.z" in paths
        assert "state.l[1]" in paths
        assert state_mismatches(a, a) == []
        # dtype differences are mismatches even when values compare equal
        assert state_mismatches(np.arange(3.0), np.arange(3)) == ["state"]


# -------------------------------------------------------------------------
# Supervisor: liveness, replacement, quarantine, resubmission
# -------------------------------------------------------------------------


class TestSupervisor:
    def test_plain_map_matches_serial(self):
        with Supervisor(_sq, workers=4) as sup:
            assert sup.map(range(20)) == [x * x for x in range(20)]
        assert sup.crashes == 0

    def test_crashed_worker_is_replaced_and_fanout_completes(
            self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        with Supervisor(_flaky_seven, workers=3,
                        backoff_base=0.01) as sup:
            out = sup.map(range(12))
        assert out == [x + 1 for x in range(12)]
        assert sup.crashes >= 1
        assert sup.replacements >= 1

    def test_poison_task_raises_after_k_crashes(self):
        with Supervisor(_poison_three, workers=2, max_task_crashes=2,
                        backoff_base=0.01) as sup:
            with pytest.raises(PoisonTaskError) as ei:
                sup.map(range(6))
        assert ei.value.task_index == 3
        assert ei.value.crashes == 2

    def test_quarantine_mode_completes_around_poison(self):
        with Supervisor(_poison_three, workers=2, max_task_crashes=2,
                        backoff_base=0.01, on_poison="quarantine") as sup:
            out = sup.map(range(6))
        assert [out[i] for i in (0, 1, 2, 4, 5)] == [0, 1, 2, 4, 5]
        assert isinstance(out[3], PoisonTaskError)
        assert sup.poisoned == [3]

    def test_hung_worker_is_killed_and_task_quarantined(self):
        with Supervisor(_hang_on_one, workers=2, heartbeat_timeout=0.3,
                        max_task_crashes=1, backoff_base=0.01) as sup:
            with pytest.raises(PoisonTaskError):
                sup.map(range(3))

    def test_task_exception_surfaces_as_worker_task_error(self):
        with Supervisor(_raise_on_two, workers=2) as sup:
            with pytest.raises(WorkerTaskError) as ei:
                sup.map(range(4))
        assert ei.value.task_index == 2
        assert ei.value.error_type == "ValueError"

    def test_journal_resubmits_only_unfinished(self, tmp_path):
        journal = tmp_path / "fanout.wal"
        # first run completes half the work, then the "process dies"
        with Supervisor(_slow_sq, workers=2, journal=journal) as sup:
            sup.map(range(8))
        # a rerun of the same fan-out replays everything from the
        # journal: zero new executions, identical results
        with Supervisor(_slow_sq, workers=2, journal=journal) as sup:
            out = sup.map(range(8))
            assert out == [x * x for x in range(8)]
            assert sup.journal_skips == 8

    def test_journal_partial_resume(self, tmp_path):
        # hand-build a journal holding 5 of 8 completions, as a killed
        # supervisor would leave behind
        journal = tmp_path / "fanout.wal"
        with WriteAheadLog(journal) as wal:
            for i in (0, 1, 2, 5, 7):
                wal.append(pickle.dumps({"index": i, "value": i * i}))
        with Supervisor(_sq, workers=2, journal=journal) as sup:
            out = sup.map(range(8))
        assert out == [x * x for x in range(8)]
        assert sup.journal_skips == 5

    def test_empty_items(self):
        with Supervisor(_sq, workers=2) as sup:
            assert sup.map([]) == []


# -------------------------------------------------------------------------
# map_fanout crash surfacing: pending indices
# -------------------------------------------------------------------------


class TestPendingIndices:
    def test_crash_reports_pending_indices(self):
        with pytest.raises(WorkerCrashError) as ei:
            map_fanout(_die_on_five, range(16), backend="process:2",
                       chunk_size=4)
        err = ei.value
        assert err.backend == "process"
        assert 5 in err.pending_indices
        assert all(0 <= i < 16 for i in err.pending_indices)

    def test_completed_chunks_are_not_pending(self):
        with pytest.raises(WorkerCrashError) as ei:
            map_fanout(_die_late, range(16), backend="process:2",
                       chunk_size=4)
        # chunk [0..3] finished long before the index-12 chunk died
        assert 12 in ei.value.pending_indices
        assert 0 not in ei.value.pending_indices
