"""Tests for the machine catalog and link/network models."""

import pytest

from repro.core.machine import (
    MACHINES,
    CORI_II,
    EA_MINSKY,
    LinkSpec,
    SIERRA,
    get_machine,
)


class TestCatalog:
    def test_paper_machines_present(self):
        for name in ["sierra", "ea-minsky", "cori-ii", "bgq", "surface",
                     "rzhasgpu", "kraken", "leviathan", "hyperion",
                     "bertha", "catalyst"]:
            assert name in MACHINES

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("not-a-machine")

    def test_sierra_node_shape(self):
        m = get_machine("sierra")
        assert m.cpu_sockets == 2
        assert m.gpus_per_node == 4
        assert m.gpu is not None and m.gpu.name == "V100"
        assert m.total_cores == 44

    def test_sierra_gpu_dominates_cpu(self):
        # The premise of the whole porting effort: ~95% of node flops
        # are on the GPUs.
        m = SIERRA
        assert m.gpu_peak_flops > 20 * m.cpu_peak_flops

    def test_ea_system_one_generation_earlier(self):
        assert EA_MINSKY.year < SIERRA.year
        assert EA_MINSKY.gpu.peak_flops < SIERRA.gpu.peak_flops
        assert EA_MINSKY.host_device_link.bandwidth < SIERRA.host_device_link.bandwidth

    def test_volta_has_unified_fast_l1_pascal_does_not(self):
        # The Opt texture-cache story (§4.7) rests on this difference.
        assert SIERRA.gpu.unified_fast_l1
        assert not EA_MINSKY.gpu.unified_fast_l1

    def test_cori_has_no_gpu(self):
        assert CORI_II.gpu is None
        assert CORI_II.gpu_peak_flops == 0.0
        assert CORI_II.gpu_mem_bw == 0.0

    def test_sierra_nvme(self):
        # Table 2 story: 1.6 TB NVMe per node.
        assert SIERRA.nvme_bytes == pytest.approx(1.6e12)

    def test_aggregate_properties(self):
        m = SIERRA
        assert m.cpu_peak_flops == pytest.approx(2 * m.cpu.peak_flops)
        assert m.gpu_mem_bw == pytest.approx(4 * m.gpu.mem_bw)


class TestLinkSpec:
    def test_transfer_time_monotone(self):
        link = LinkSpec("x", bandwidth=10e9, latency=1e-6)
        assert link.transfer_time(1e6) < link.transfer_time(1e7)

    def test_latency_floor(self):
        link = LinkSpec("x", bandwidth=10e9, latency=1e-6)
        assert link.transfer_time(0) == pytest.approx(1e-6)

    def test_negative_size_raises(self):
        link = LinkSpec("x", bandwidth=10e9, latency=1e-6)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_nvlink_beats_pcie(self):
        from repro.core.machine import NVLINK2, PCIE3

        nbytes = 100e6
        assert NVLINK2.transfer_time(nbytes) < PCIE3.transfer_time(nbytes)
