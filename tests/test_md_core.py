"""Tests for MD substrate: particles, boxes, neighbor lists, potentials."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md.neighbor import CellList, NeighborList
from repro.md.particles import ParticleSystem, PeriodicBox
from repro.md.potentials import Exp6, LennardJones, MartiniLJ, PairProcessor


class TestPeriodicBox:
    def test_volume(self):
        assert PeriodicBox((2.0, 3.0, 4.0)).volume == 24.0

    def test_wrap(self):
        box = PeriodicBox((2.0, 2.0, 2.0))
        x = np.array([[2.5, -0.5, 1.0]])
        np.testing.assert_allclose(box.wrap(x), [[0.5, 1.5, 1.0]])

    def test_minimum_image(self):
        box = PeriodicBox((10.0, 10.0, 10.0))
        dx = np.array([[9.0, -9.0, 4.0]])
        np.testing.assert_allclose(box.minimum_image(dx), [[-1.0, 1.0, 4.0]])

    @given(x=st.floats(-100, 100), l=st.floats(1.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_minimum_image_bound(self, x, l):
        box = PeriodicBox((l, l, l))
        mi = box.minimum_image(np.array([[x, 0.0, 0.0]]))
        assert abs(mi[0, 0]) <= l / 2 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicBox((0.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            PeriodicBox((1.0, 1.0, 1.0)).scaled(-1.0)


class TestParticleSystem:
    def test_random_gas_separation(self):
        box = PeriodicBox((8.0, 8.0, 8.0))
        ps = ParticleSystem.random_gas(27, box, seed=0, min_separation=1.0)
        ii, jj = np.triu_indices(27, k=1)
        dx = box.minimum_image(ps.x[ii] - ps.x[jj])
        assert np.sqrt((dx * dx).sum(axis=1)).min() > 0.8

    def test_drift_removed(self):
        ps = ParticleSystem.random_gas(50, PeriodicBox((5.0,) * 3), seed=1)
        np.testing.assert_allclose(ps.momentum(), 0.0, atol=1e-12)

    def test_temperature_matches_velocities(self):
        box = PeriodicBox((5.0,) * 3)
        rng = np.random.default_rng(0)
        v = rng.normal(0, 1.0, (5000, 3))
        ps = ParticleSystem(rng.random((5000, 3)) * 5, box, velocities=v)
        assert ps.temperature() == pytest.approx(1.0, rel=0.05)

    def test_validation(self):
        box = PeriodicBox((5.0,) * 3)
        with pytest.raises(ValueError):
            ParticleSystem(np.zeros((0, 3)), box)
        with pytest.raises(ValueError):
            ParticleSystem(np.zeros((2, 2)), box)
        with pytest.raises(ValueError):
            ParticleSystem(np.zeros((2, 3)), box, masses=np.array([1.0, 0.0]))

    def test_box_too_small_for_separation(self):
        with pytest.raises(ValueError):
            ParticleSystem.random_gas(
                1000, PeriodicBox((2.0,) * 3), min_separation=1.0
            )


class TestNeighborList:
    def test_matches_brute_force(self):
        box = PeriodicBox((6.0,) * 3)
        ps = ParticleSystem.random_gas(80, box, seed=2)
        nl = NeighborList(cutoff=1.5, skin=0.3)
        nl.build(ps)
        ref_i, ref_j = nl.brute_force_reference(ps)
        got = {tuple(sorted(p)) for p in zip(nl.pairs_i, nl.pairs_j)}
        ref = {tuple(sorted(p)) for p in zip(ref_i, ref_j)}
        assert got == ref

    def test_half_list_no_duplicates(self):
        box = PeriodicBox((5.0,) * 3)
        ps = ParticleSystem.random_gas(60, box, seed=3)
        nl = NeighborList(cutoff=1.2)
        nl.build(ps)
        pairs = list(zip(nl.pairs_i.tolist(), nl.pairs_j.tolist()))
        canon = [tuple(sorted(p)) for p in pairs]
        assert len(canon) == len(set(canon))
        assert all(i != j for i, j in pairs)

    def test_skin_reuse(self):
        box = PeriodicBox((6.0,) * 3)
        ps = ParticleSystem.random_gas(40, box, seed=4)
        nl = NeighborList(cutoff=1.5, skin=0.6)
        nl.update(ps)
        ps.x += 0.01  # move far less than skin/2
        nl.update(ps)
        assert nl.builds == 1
        assert nl.reuses == 1

    def test_rebuild_on_large_move(self):
        box = PeriodicBox((6.0,) * 3)
        ps = ParticleSystem.random_gas(40, box, seed=5)
        nl = NeighborList(cutoff=1.5, skin=0.2)
        nl.update(ps)
        ps.x[0] += 0.5
        nl.update(ps)
        assert nl.builds == 2

    def test_small_box_single_cell(self):
        """Cutoff comparable to the box: still correct (dense limit)."""
        box = PeriodicBox((2.0,) * 3)
        ps = ParticleSystem.random_gas(20, box, seed=6)
        nl = NeighborList(cutoff=0.9, skin=0.1)
        nl.build(ps)
        ref_i, ref_j = nl.brute_force_reference(ps)
        assert nl.n_pairs == ref_i.size

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborList(cutoff=0.0)
        with pytest.raises(ValueError):
            NeighborList(cutoff=1.0, skin=-0.1)
        with pytest.raises(ValueError):
            CellList(PeriodicBox((2.0,) * 3), 0.0)


def numeric_force(pot, r, eps=1e-7):
    e_p, _ = pot.energy_force(np.array([(r + eps) ** 2]))
    e_m, _ = pot.energy_force(np.array([(r - eps) ** 2]))
    return -(e_p[0] - e_m[0]) / (2 * eps)


class TestPotentials:
    @pytest.mark.parametrize("pot", [
        LennardJones(), Exp6(), MartiniLJ(),
    ])
    def test_force_is_energy_gradient(self, pot):
        for r in (0.9, 1.1, 1.5):
            if r >= pot.cutoff:
                continue
            _, f_over_r = pot.energy_force(np.array([r * r]))
            assert f_over_r[0] * r == pytest.approx(
                numeric_force(pot, r), rel=1e-5
            )

    def test_lj_minimum_at_sigma_2_16(self):
        lj = LennardJones(epsilon=1.0, sigma=1.0)
        r_min = 2 ** (1 / 6)
        _, f = lj.energy_force(np.array([r_min**2]))
        assert abs(f[0]) < 1e-10
        e, _ = lj.energy_force(np.array([r_min**2]))
        assert e[0] == pytest.approx(-1.0)

    def test_martini_vanishes_at_cutoff(self):
        m = MartiniLJ()
        rc2 = np.array([m.cutoff**2 * 0.999999])
        e, f = m.energy_force(rc2)
        assert abs(e[0]) < 1e-4
        assert abs(f[0]) < 1e-3

    def test_exp6_repulsive_wall(self):
        p = Exp6()
        e_close, _ = p.energy_force(np.array([0.36]))
        e_far, _ = p.energy_force(np.array([4.0]))
        assert e_close[0] > e_far[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=0.0)
        with pytest.raises(ValueError):
            Exp6(a=-1.0)
        with pytest.raises(ValueError):
            MartiniLJ(cutoff=0.3, sigma=0.47)


class TestPairProcessor:
    def make_dimer(self, r, box_l=10.0):
        box = PeriodicBox((box_l,) * 3)
        x = np.array([[1.0, 1.0, 1.0], [1.0 + r, 1.0, 1.0]])
        return ParticleSystem(x, box)

    def test_newton_third_law(self):
        ps = self.make_dimer(1.1)
        proc = PairProcessor(LennardJones())
        f, e, w = proc.compute(ps, np.array([0]), np.array([1]))
        np.testing.assert_allclose(f[0], -f[1])

    def test_energy_matches_potential(self):
        r = 1.3
        ps = self.make_dimer(r)
        lj = LennardJones()
        proc = PairProcessor(lj)
        _, e, _ = proc.compute(ps, np.array([0]), np.array([1]))
        e_ref, _ = lj.energy_force(np.array([r * r]))
        assert e == pytest.approx(float(e_ref[0]))

    def test_cutoff_respected(self):
        ps = self.make_dimer(3.0)
        proc = PairProcessor(LennardJones(cutoff=2.5))
        f, e, w = proc.compute(ps, np.array([0]), np.array([1]))
        assert e == 0.0
        np.testing.assert_array_equal(f, 0.0)

    def test_virial_sign_repulsive(self):
        """Compressed dimer: positive virial (outward pressure)."""
        ps = self.make_dimer(0.9)
        proc = PairProcessor(LennardJones())
        _, _, w = proc.compute(ps, np.array([0]), np.array([1]))
        assert w > 0

    def test_type_table_dispatch(self):
        box = PeriodicBox((10.0,) * 3)
        x = np.array([[1, 1, 1], [2.0, 1, 1], [1, 2.0, 1]], dtype=float)
        ps = ParticleSystem(x, box, types=np.array([0, 0, 1]))
        strong = LennardJones(epsilon=2.0)
        weak = LennardJones(epsilon=0.5)
        proc = PairProcessor({(0, 0): strong, (0, 1): weak, (1, 1): weak})
        pairs_i = np.array([0, 0, 1])
        pairs_j = np.array([1, 2, 2])
        _, e, _ = proc.compute(ps, pairs_i, pairs_j)
        # compare against manual evaluation
        e00, _ = strong.energy_force(np.array([1.0]))
        e01, _ = weak.energy_force(np.array([1.0]))
        e11, _ = weak.energy_force(np.array([2.0]))
        assert e == pytest.approx(float(e00[0] + e01[0] + e11[0]))

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            PairProcessor({})

    def test_minimum_image_forces(self):
        """Particles near opposite faces interact through the boundary."""
        box = PeriodicBox((5.0,) * 3)
        x = np.array([[0.1, 2.5, 2.5], [4.9, 2.5, 2.5]])
        ps = ParticleSystem(x, box)
        proc = PairProcessor(LennardJones(cutoff=2.0))
        f, e, _ = proc.compute(ps, np.array([0]), np.array([1]))
        assert e != 0.0


def _pair_set(pi, pj):
    return set(zip(np.minimum(pi, pj).tolist(), np.maximum(pi, pj).tolist()))


class TestFastNeighborBuild:
    """The vectorized build must enumerate exactly the reference pair
    set in every box regime — large boxes, small boxes where periodic
    wrap aliases neighbor cells, and single-cell boxes."""

    REGIMES = [
        (100, (8.0, 8.0, 8.0), 2.0),   # many cells
        (60, (4.5, 4.5, 4.5), 2.0),    # 2x2x2 cells: heavy wrap aliasing
        (40, (3.0, 3.0, 3.0), 2.0),    # single cell per axis
        (50, (9.0, 4.0, 6.0), 1.5),    # anisotropic box
        (3, (6.0, 6.0, 6.0), 2.0),     # nearly empty
        (70, (6.0, 6.0, 6.0), 0.4),    # tiny cutoff, sparse pairs
    ]

    @pytest.mark.parametrize("n,lengths,cutoff", REGIMES)
    def test_matches_reference(self, n, lengths, cutoff):
        ps = ParticleSystem.random_gas(n, PeriodicBox(lengths), seed=13)
        fast = NeighborList(cutoff=cutoff, skin=0.3, method="fast")
        ref = NeighborList(cutoff=cutoff, skin=0.3, method="reference")
        fast.build(ps)
        ref.build(ps)
        assert _pair_set(fast.pairs_i, fast.pairs_j) == _pair_set(
            ref.pairs_i, ref.pairs_j
        )

    @pytest.mark.parametrize("n,lengths,cutoff", REGIMES[:3])
    def test_matches_brute_force(self, n, lengths, cutoff):
        ps = ParticleSystem.random_gas(n, PeriodicBox(lengths), seed=14)
        nl = NeighborList(cutoff=cutoff, skin=0.3)
        nl.build(ps)
        bi, bj = nl.brute_force_reference(ps)
        assert _pair_set(nl.pairs_i, nl.pairs_j) == _pair_set(bi, bj)

    def test_no_self_or_duplicate_pairs(self):
        ps = ParticleSystem.random_gas(80, PeriodicBox((5.0,) * 3), seed=15)
        nl = NeighborList(cutoff=1.5, skin=0.3)
        nl.build(ps)
        assert (nl.pairs_i != nl.pairs_j).all()
        assert len(_pair_set(nl.pairs_i, nl.pairs_j)) == nl.n_pairs

    def test_method_validated(self):
        with pytest.raises(ValueError, match="unknown build method"):
            NeighborList(cutoff=1.0, method="gpu")

    def test_default_is_fast(self):
        assert NeighborList(cutoff=1.0).method == "fast"


class TestFastForceScatter:
    def test_bincount_matches_add_at(self):
        ps = ParticleSystem.random_gas(120, PeriodicBox((6.0,) * 3), seed=16)
        nl = NeighborList(cutoff=2.5, skin=0.3)
        nl.build(ps)
        proc = PairProcessor(LennardJones(cutoff=2.5))
        f_fast, e_fast, w_fast = proc.compute(ps, nl.pairs_i, nl.pairs_j)
        f_ref, e_ref, w_ref = proc.compute(
            ps, nl.pairs_i, nl.pairs_j, method="reference"
        )
        np.testing.assert_allclose(f_fast, f_ref, atol=1e-10)
        assert e_fast == pytest.approx(e_ref)
        assert w_fast == pytest.approx(w_ref)

    def test_mixed_type_table(self):
        ps = ParticleSystem.random_gas(60, PeriodicBox((5.0,) * 3), seed=17)
        ps.types[::2] = 1
        table = {
            (0, 0): LennardJones(cutoff=2.0),
            (0, 1): LennardJones(epsilon=0.5, cutoff=2.0),
            (1, 1): Exp6(cutoff=2.0),
        }
        nl = NeighborList(cutoff=2.0, skin=0.3)
        nl.build(ps)
        proc = PairProcessor(table)
        f_fast, e_fast, _ = proc.compute(ps, nl.pairs_i, nl.pairs_j)
        f_ref, e_ref, _ = proc.compute(
            ps, nl.pairs_i, nl.pairs_j, method="reference"
        )
        np.testing.assert_allclose(f_fast, f_ref, atol=1e-10)
        assert e_fast == pytest.approx(e_ref)

    def test_method_validated(self):
        ps = ParticleSystem.random_gas(10, PeriodicBox((5.0,) * 3), seed=0)
        proc = PairProcessor(LennardJones())
        with pytest.raises(ValueError, match="unknown accumulation"):
            proc.compute(ps, np.array([0]), np.array([1]), method="gpu")


class TestDegenerateBox:
    """Boxes with any length below 2*(cutoff+skin): the fast kd-tree
    build must detect the degenerate regime and fall back to the
    reference cell build (single-image periodic tree queries are not
    trustworthy there across SciPy versions)."""

    CUTOFF, SKIN = 2.5, 0.3  # reach 2.8 -> degenerate below L = 5.6

    @staticmethod
    def _pairs(pi, pj):
        return {tuple(sorted(p)) for p in zip(
            np.asarray(pi).tolist(), np.asarray(pj).tolist()
        )}

    @pytest.mark.parametrize(
        "side", [3.0, 4.5, 5.59, 5.61, 7.0, 11.2]
    )
    def test_sweep_around_threshold_matches_brute_force(self, side):
        ps = ParticleSystem.random_gas(
            40, PeriodicBox((side,) * 3), seed=7
        )
        nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN,
                          method="fast")
        nl.build(ps)
        ref_i, ref_j = nl.brute_force_reference(ps)
        assert self._pairs(nl.pairs_i, nl.pairs_j) == \
            self._pairs(ref_i, ref_j)

    @given(side=st.floats(min_value=3.2, max_value=8.0))
    @settings(max_examples=25, deadline=None)
    def test_property_any_box_matches_brute_force(self, side):
        ps = ParticleSystem.random_gas(
            25, PeriodicBox((side,) * 3), seed=9
        )
        nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN,
                          method="fast")
        nl.build(ps)
        ref_i, ref_j = nl.brute_force_reference(ps)
        assert self._pairs(nl.pairs_i, nl.pairs_j) == \
            self._pairs(ref_i, ref_j)

    def test_degenerate_box_detector(self):
        nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN)
        small = ParticleSystem.random_gas(
            10, PeriodicBox((5.5,) * 3), seed=0)
        ok = ParticleSystem.random_gas(
            10, PeriodicBox((5.7,) * 3), seed=0)
        aniso = ParticleSystem.random_gas(
            10, PeriodicBox((10.0, 10.0, 5.5)), seed=0)
        assert nl.degenerate_box(small)
        assert not nl.degenerate_box(ok)
        assert nl.degenerate_box(aniso)  # any short dimension counts

    def test_fallback_counter_increments(self):
        from repro.obs import metrics

        ps = ParticleSystem.random_gas(
            20, PeriodicBox((4.0,) * 3), seed=1)
        nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN,
                          method="fast")
        c = metrics.counter("md.neighbor.degenerate_fallbacks")
        before = c.value
        nl.build(ps)
        assert c.value == before + 1

    def test_old_scipy_single_image_tree_still_correct(self, monkeypatch):
        """Simulate an old SciPy whose periodic kd-tree rejects (or
        would silently botch) queries beyond half the box.  The
        degenerate-box fallback means the fast method never issues such
        a query, so builds succeed and stay correct anyway."""
        from repro.md import neighbor as neighbor_mod

        real_tree = neighbor_mod.cKDTree

        class OldScipyTree:
            def __init__(self, data, boxsize=None):
                self._half = float(np.min(boxsize)) / 2.0
                self._tree = real_tree(data, boxsize=boxsize)

            def query_pairs(self, r, output_type="set"):
                if r > self._half:
                    raise ValueError(
                        "r > box/2 unsupported (old-scipy behavior)"
                    )
                return self._tree.query_pairs(r, output_type=output_type)

        monkeypatch.setattr(neighbor_mod, "cKDTree", OldScipyTree)
        for side in (4.0, 5.0, 5.59):  # all degenerate for reach 2.8
            ps = ParticleSystem.random_gas(
                30, PeriodicBox((side,) * 3), seed=2)
            nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN,
                              method="fast")
            nl.build(ps)  # would raise without the fallback
            ref_i, ref_j = nl.brute_force_reference(ps)
            assert self._pairs(nl.pairs_i, nl.pairs_j) == \
                self._pairs(ref_i, ref_j)
        # non-degenerate boxes still use the (now strict) tree
        ps = ParticleSystem.random_gas(
            30, PeriodicBox((7.0,) * 3), seed=3)
        nl = NeighborList(cutoff=self.CUTOFF, skin=self.SKIN,
                          method="fast")
        nl.build(ps)
        assert nl.n_pairs > 0
