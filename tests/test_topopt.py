"""Tests for the topology-optimization proxy (§4.7)."""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.topopt.fe2d import (
    Cantilever2D,
    assemble_stiffness,
    element_stiffness,
    matrix_free_apply,
    solve_displacement,
)
from repro.topopt.simp import SimpOptimizer
from repro.topopt.texture import texture_ablation


class TestElementStiffness:
    def test_symmetric(self):
        ke = element_stiffness()
        np.testing.assert_allclose(ke, ke.T, atol=1e-14)

    def test_positive_semidefinite_with_rigid_modes(self):
        ke = element_stiffness()
        evals = np.linalg.eigvalsh(ke)
        assert evals[0] > -1e-12
        # exactly three rigid-body modes in 2D (two translations + rotation)
        assert (np.abs(evals) < 1e-10).sum() == 3

    def test_translation_is_null_vector(self):
        ke = element_stiffness()
        tx = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=float)
        np.testing.assert_allclose(ke @ tx, 0.0, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            element_stiffness(young=-1.0)
        with pytest.raises(ValueError):
            element_stiffness(poisson=0.6)


class TestDomain:
    def test_dof_counts(self):
        dom = Cantilever2D(4, 3)
        assert dom.n_nodes == 20
        assert dom.n_dofs == 40
        assert dom.n_elements == 12
        assert dom.edof.shape == (12, 8)

    def test_clamped_edge(self):
        dom = Cantilever2D(4, 3)
        assert dom.fixed.size == 2 * 4  # (nely+1) nodes * 2 dofs
        assert np.intersect1d(dom.fixed, dom.free).size == 0

    def test_load_at_tip(self):
        dom = Cantilever2D(4, 3, load="tip")
        assert (dom.force != 0).sum() == 1
        assert dom.force.min() == -1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Cantilever2D(0, 3)
        with pytest.raises(ValueError):
            Cantilever2D(3, 3, load="corner")


class TestMatrixFree:
    def test_matches_assembled(self):
        dom = Cantilever2D(6, 4)
        ke = element_stiffness()
        rng = np.random.default_rng(0)
        scale = 0.1 + rng.random(dom.n_elements)
        u = rng.random(dom.n_dofs)
        u[dom.fixed] = 0.0
        k = assemble_stiffness(dom, ke, scale)
        np.testing.assert_allclose(
            matrix_free_apply(dom, ke, scale, u), k @ u, atol=1e-12
        )

    def test_solve_satisfies_equations(self):
        dom = Cantilever2D(10, 6)
        ke = element_stiffness()
        scale = np.full(dom.n_elements, 0.5)
        u, iters = solve_displacement(dom, ke, scale, tol=1e-10)
        r = matrix_free_apply(dom, ke, scale, u)
        f = dom.force.copy()
        f[dom.fixed] = 0.0
        assert np.abs(r - f).max() < 1e-7
        assert iters > 0

    def test_tip_deflects_downward(self):
        dom = Cantilever2D(12, 4)
        ke = element_stiffness()
        u, _ = solve_displacement(dom, ke, np.ones(dom.n_elements))
        loaded = int(np.flatnonzero(dom.force)[0])
        assert u[loaded] < 0  # deflection follows the load

    def test_stiffer_material_deflects_less(self):
        dom = Cantilever2D(8, 4)
        ke = element_stiffness()
        u_soft, _ = solve_displacement(dom, ke,
                                       np.full(dom.n_elements, 0.25))
        u_stiff, _ = solve_displacement(dom, ke,
                                        np.ones(dom.n_elements))
        loaded = int(np.flatnonzero(dom.force)[0])
        assert abs(u_stiff[loaded]) < abs(u_soft[loaded])

    def test_validation(self):
        dom = Cantilever2D(3, 3)
        ke = element_stiffness()
        with pytest.raises(ValueError):
            matrix_free_apply(dom, ke, np.ones(dom.n_elements),
                              np.zeros(3))
        with pytest.raises(ValueError):
            matrix_free_apply(dom, ke, np.ones(2), np.zeros(dom.n_dofs))


class TestSimp:
    @pytest.fixture(scope="class")
    def result(self):
        dom = Cantilever2D(20, 10)
        opt = SimpOptimizer(dom, volume_fraction=0.4)
        return opt.optimize(n_iters=15)

    def test_compliance_decreases(self, result):
        h = result.compliance_history
        assert h[-1] < 0.5 * h[0]
        # broadly monotone (small OC oscillations allowed)
        assert h[-1] <= min(h[:3])

    def test_volume_constraint_held(self, result):
        assert result.volume_fraction == pytest.approx(0.4, abs=0.01)

    def test_densities_in_bounds(self, result):
        assert result.density.min() >= 0.0
        assert result.density.max() <= 1.0

    def test_structure_forms(self, result):
        """SIMP should polarize: a meaningful fraction of elements near
        solid and near void."""
        x = result.density
        assert (x > 0.8).mean() > 0.1
        assert (x < 0.1).mean() > 0.2

    def test_chords_form_under_bending(self, result):
        """A tip-loaded cantilever develops solid top and bottom chords
        (tension/compression flanges) denser than the web between."""
        x = result.density
        chords = 0.5 * (x[:, 0].mean() + x[:, -1].mean())
        web = x[:, 3:-3].mean()
        assert chords > web

    def test_validation(self):
        dom = Cantilever2D(4, 4)
        with pytest.raises(ValueError):
            SimpOptimizer(dom, volume_fraction=1.5)
        with pytest.raises(ValueError):
            SimpOptimizer(dom, penalty=0.5)
        with pytest.raises(ValueError):
            SimpOptimizer(dom, filter_radius=0.0)
        with pytest.raises(ValueError):
            SimpOptimizer(dom).optimize(n_iters=0)


class TestTextureAblation:
    def test_pascal_needs_texture(self):
        """On the EA system the texture path is a real win — the reason
        CUDA was necessary early (§4.7)."""
        r = texture_ablation(get_machine("ea-minsky"))
        assert r["needs_texture_path"]
        assert r["texture_benefit"] > 1.5

    def test_volta_does_not(self):
        """On Sierra, Volta's unified L1 removes the gap — 'RAJA would
        have been sufficient'."""
        r = texture_ablation(get_machine("sierra"))
        assert not r["needs_texture_path"]
        assert r["texture_benefit"] == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            texture_ablation(get_machine("cori-ii"))
        with pytest.raises(ValueError):
            texture_ablation(get_machine("sierra"), n_elements=0)
