"""Tests for the open-loop traffic layer: arrival processes, the
simulated user population, trace record/replay, and the driver's
bit-exact replay contract (shed reasons, guard counters, completion
order) with chaos and admission shedding active."""

import itertools
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.simulator import Job
from repro.traffic import (
    AdmissionSpec,
    ChaosSpec,
    DiurnalArrivals,
    MMPPArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    TrafficTrace,
    UserPopulation,
    drive_campaign,
    generate_jobs,
    process_from_description,
    record_experiment,
    replay_experiment,
    verify_replay,
)


class TestArrivalProcesses:
    def test_poisson_deterministic_and_sorted(self):
        p = PoissonArrivals(rate=2.0)
        a = p.sample(500, seed=3)
        b = p.sample(500, seed=3)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert not np.array_equal(a, p.sample(500, seed=4))

    def test_poisson_rate_calibrated(self):
        p = PoissonArrivals(rate=2.0)
        a = p.sample(4000, seed=0)
        assert 4000 / a[-1] == pytest.approx(2.0, rel=0.1)

    def test_mmpp_burstier_than_poisson(self):
        """Interarrival CV: Poisson is exactly 1; a 2-state MMPP with
        strong rate contrast must sit clearly above it."""
        mmpp = MMPPArrivals(quiet_rate=0.5, burst_rate=8.0,
                            mean_dwell=(20.0, 5.0))
        gaps = np.diff(mmpp.sample(6000, seed=1))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2
        poisson_gaps = np.diff(
            PoissonArrivals(rate=mmpp.mean_rate).sample(6000, seed=1)
        )
        assert poisson_gaps.std() / poisson_gaps.mean() == pytest.approx(
            1.0, abs=0.1
        )

    def test_mmpp_mean_rate(self):
        mmpp = MMPPArrivals(quiet_rate=1.0, burst_rate=6.0,
                            mean_dwell=(10.0, 2.0))
        assert mmpp.mean_rate == pytest.approx((10.0 + 12.0) / 12.0)
        a = mmpp.sample(8000, seed=2)
        assert 8000 / a[-1] == pytest.approx(mmpp.mean_rate, rel=0.15)

    def test_diurnal_peaks_mid_period(self):
        """Raised-cosine rate: trough at phase 0, peak at phase 1/2 —
        the mid-period half-window must collect most arrivals."""
        d = DiurnalArrivals(base_rate=0.5, peak_ratio=6.0, period=100.0)
        phases = np.mod(d.sample(4000, seed=5), 100.0)
        mid = np.sum((phases > 25.0) & (phases < 75.0))
        assert mid > 0.65 * 4000
        assert d.rate_at(50.0) == pytest.approx(3.0)
        assert d.rate_at(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(quiet_rate=2.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(quiet_rate=1.0, burst_rate=2.0,
                         mean_dwell=(0.0, 1.0))
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=1.0, peak_ratio=0.5)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0).sample(0)

    def test_describe_roundtrip(self):
        for proc in (
            PoissonArrivals(rate=1.5),
            MMPPArrivals(quiet_rate=0.4, burst_rate=3.0,
                         mean_dwell=(7.0, 3.0)),
            DiurnalArrivals(base_rate=0.8, peak_ratio=5.0, period=60.0),
        ):
            clone = process_from_description(proc.describe())
            assert np.array_equal(proc.sample(200, seed=9),
                                  clone.sample(200, seed=9))
        with pytest.raises(ValueError):
            process_from_description({"kind": "nope"})


class TestUserPopulation:
    def test_jobs_deterministic_across_reset(self):
        pop = UserPopulation(n_users=10_000, seed=3)
        arrivals = PoissonArrivals(rate=1.0).sample(200, seed=0)
        jobs_a = pop.jobs_for(arrivals)
        pop.reset()
        jobs_b = pop.jobs_for(arrivals)
        assert jobs_a == jobs_b

    def test_per_user_streams_are_pure_functions(self):
        """Two populations with the same seed agree on every user's
        profile regardless of touch order."""
        p1 = UserPopulation(n_users=1_000, seed=7)
        p2 = UserPopulation(n_users=1_000, seed=7)
        for uid in (999, 0, 421):
            a, b = p1.profile(uid), p2.profile(uid)
            assert (a.mean_scale, a.priority, a.slack, a.best_effort) \
                == (b.mean_scale, b.priority, b.slack, b.best_effort)

    def test_population_is_lazy(self):
        """A million-user population only materializes touched users."""
        pop = UserPopulation(n_users=1_000_000, seed=0)
        pop.jobs_for(PoissonArrivals(rate=1.0).sample(300, seed=1))
        assert 0 < pop.touched_users <= 300

    def test_mean_service_calibrated(self):
        pop = UserPopulation(n_users=500, seed=2, mean_service=10.0,
                             skew=1.0, best_effort_fraction=0.0)
        jobs = pop.jobs_for(
            PoissonArrivals(rate=1.0).sample(20_000, seed=3)
        )
        mean = float(np.mean([j.service for j in jobs]))
        assert mean == pytest.approx(10.0, rel=0.15)

    def test_deadline_and_priority_structure(self):
        pop = UserPopulation(n_users=2_000, seed=4,
                             best_effort_fraction=0.5, n_priorities=3)
        jobs = pop.jobs_for(PoissonArrivals(rate=1.0).sample(2000, seed=5))
        be = sum(1 for j in jobs if j.deadline is None) / len(jobs)
        assert 0.3 < be < 0.7
        assert {j.priority for j in jobs} <= {0, 1, 2}
        for j in jobs:
            if j.deadline is not None:
                assert j.deadline >= j.arrival + 2.0 * j.service

    def test_describe_roundtrip(self):
        pop = UserPopulation(n_users=5_000, seed=11, skew=3.0)
        clone = UserPopulation.from_description(pop.describe())
        arrivals = PoissonArrivals(rate=1.0).sample(150, seed=0)
        assert pop.jobs_for(arrivals) == clone.jobs_for(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPopulation(n_users=0)
        with pytest.raises(ValueError):
            UserPopulation(skew=0.5)
        with pytest.raises(ValueError):
            UserPopulation(deadline_slack=(3.0, 2.0))
        with pytest.raises(ValueError):
            UserPopulation(best_effort_fraction=1.5)
        with pytest.raises(ValueError):
            UserPopulation().profile(10**9)


class TestTrafficTrace:
    def _jobs(self, n=40):
        pop = UserPopulation(n_users=1_000, seed=0)
        return pop.jobs_for(PoissonArrivals(rate=1.0).sample(n, seed=0))

    def test_record_load_bit_exact(self, tmp_path):
        jobs = self._jobs()
        path = tmp_path / "t.trace"
        meta = {"note": "unit", "x": 1.25}
        recorded = TrafficTrace.record(path, jobs, meta=meta)
        loaded = TrafficTrace.load(path)
        assert loaded == recorded
        assert loaded.same_jobs(recorded)
        assert loaded.complete
        assert loaded.meta == meta
        # bit-exact floats, not approx: frozen-dataclass equality
        assert loaded.jobs == jobs

    def test_torn_tail_truncates(self, tmp_path):
        from repro.durable.wal import read_records

        jobs = self._jobs()
        path = tmp_path / "t.trace"
        TrafficTrace.record(path, jobs)
        raw = path.read_bytes()
        # tearing 7 bytes rips the sealed trailer: every job record
        # survives, but the trace is an unsealed prefix
        path.write_bytes(raw[:-7])
        with pytest.raises(ValueError, match="torn"):
            TrafficTrace.load(path)
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete
        assert partial.fingerprint is None
        assert partial.jobs == jobs
        # tear into the last job frame too: the committed prefix loses
        # exactly that job
        frames = [8 + len(p) for p in read_records(path)]
        path.write_bytes(raw[: 8 + sum(frames[:-1]) + 3])
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete
        assert len(partial) == len(jobs) - 1
        assert partial.jobs == jobs[:-1]

    def test_v1_format_compat(self, tmp_path):
        # traces recorded before the trailer format (v1: header with
        # n_jobs, job frames, no trailer) must keep loading, with the
        # old completeness rule
        import json as _json

        from repro.durable.wal import WriteAheadLog
        from repro.traffic.trace import _job_record

        jobs = self._jobs()
        path = tmp_path / "v1.trace"
        with WriteAheadLog(path, sync=False) as wal:
            header = {"format": "repro-traffic-trace", "version": 1,
                      "n_jobs": len(jobs), "meta": {"note": "legacy"}}
            wal.append(_json.dumps(header, sort_keys=True).encode())
            for job in jobs:
                wal.append(_json.dumps(_job_record(job),
                                       sort_keys=True).encode())
        loaded = TrafficTrace.load(path)
        assert loaded.complete
        assert loaded.version == 1
        assert loaded.fingerprint is None
        assert loaded.jobs == jobs
        # v1 torn semantics: fewer surviving jobs than the header
        # committed to
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])
        with pytest.raises(ValueError, match="torn"):
            TrafficTrace.load(path)
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete
        assert partial.jobs == jobs[:-1]

    def test_rejects_non_trace(self, tmp_path):
        from repro.durable.wal import WriteAheadLog

        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b'{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a traffic trace"):
            TrafficTrace.load(path)

    def test_overwrites_previous_trace(self, tmp_path):
        path = tmp_path / "t.trace"
        TrafficTrace.record(path, self._jobs(30))
        TrafficTrace.record(path, self._jobs(10))
        assert len(TrafficTrace.load(path)) == 10


def _driver(n_gpus=4, horizon=None):
    return OpenLoopDriver(
        n_gpus=n_gpus,
        policy="fcfs",
        admission=AdmissionSpec(
            max_queue=3 * n_gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=40.0,
        ),
        chaos=ChaosSpec(mtbf=250.0, seed=1),
        horizon=horizon,
    )


def _population():
    return UserPopulation(n_users=20_000, seed=0, mean_service=10.0,
                          best_effort_fraction=0.3)


class TestReplayDeterminism:
    """The ISSUE's acceptance criterion: a recorded trace — Poisson
    and MMPP, with FaultInjector chaos and admission shedding active —
    replays bit-exactly: same shed decisions and reasons, same
    guard.* counters, same job completion order."""

    @pytest.mark.parametrize("process", [
        PoissonArrivals(rate=0.55),
        MMPPArrivals(quiet_rate=0.25, burst_rate=1.6,
                     mean_dwell=(12.0, 4.0)),
    ], ids=["poisson", "mmpp"])
    def test_replay_bit_exact(self, tmp_path, process):
        path = tmp_path / f"{process.kind}.trace"
        trace, recorded = record_experiment(
            path, process, _population(), _driver(), n_jobs=220,
        )
        # the run must actually exercise the paths under test
        assert recorded.result.failures > 0, "chaos never fired"
        assert recorded.shed_log, "admission never shed"
        assert recorded.guard_counters, "no guard.* counters moved"

        first, loaded = replay_experiment(path)
        second, _ = replay_experiment(path)

        assert loaded.same_jobs(trace)
        for replayed in (first, second):
            fp, ref = replayed.fingerprint(), recorded.fingerprint()
            assert fp["shed_log"] == ref["shed_log"]
            assert fp["guard_counters"] == ref["guard_counters"]
            assert fp["completions"] == ref["completions"]
            assert fp == ref
        assert [j for _, j in first.result.completions] == \
            first.result.completion_order

    def test_verify_replay_helper(self, tmp_path):
        path = tmp_path / "v.trace"
        record_experiment(path, PoissonArrivals(rate=0.5),
                          _population(), _driver(), n_jobs=120)
        report = verify_replay(path)
        assert report.result.completed > 0

    def test_latency_percentiles_exposed(self, tmp_path):
        path = tmp_path / "l.trace"
        _, rep = record_experiment(path, PoissonArrivals(rate=0.6),
                                   _population(), _driver(), n_jobs=150)
        assert 0.0 <= rep.p50_wait <= rep.p99_wait
        assert rep.p50_turnaround <= rep.p99_turnaround
        assert 0.0 < rep.shed_rate < 1.0

    def test_driver_describe_roundtrip(self):
        d = _driver()
        clone = OpenLoopDriver.from_description(d.describe())
        assert clone.describe() == d.describe()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopDriver(n_gpus=2, policy="lifo")


class TestCampaignCoupling:
    def test_drive_campaign_deterministic(self):
        from repro.workflow.mummi import MummiCampaign

        def run():
            camp = MummiCampaign(n_gpus=4, jobs_per_cycle=6, seed=0,
                                 steps_per_sim=1000)
            out = drive_campaign(
                camp, MMPPArrivals(quiet_rate=0.1, burst_rate=2.0,
                                   mean_dwell=(30.0, 10.0)),
                n_cycles=4, window=25.0, arrival_seed=2,
            )
            return camp, out
        camp_a, a = run()
        camp_b, b = run()
        assert [m["offered_jobs"] for m in a] == \
            [m["offered_jobs"] for m in b]
        assert [m["simulations"] for m in a] == \
            [m["simulations"] for m in b]
        assert camp_a.jobs_per_cycle == 6  # nominal restored
        # bursty arrivals actually modulate the cycle sizes
        assert len({m["offered_jobs"] for m in a}) > 1

    def test_drive_campaign_validation(self):
        from repro.workflow.mummi import MummiCampaign

        camp = MummiCampaign(n_gpus=2, jobs_per_cycle=2, seed=0,
                             steps_per_sim=500)
        with pytest.raises(ValueError):
            drive_campaign(camp, PoissonArrivals(rate=1.0),
                           n_cycles=0, window=10.0)
        with pytest.raises(ValueError):
            drive_campaign(camp, PoissonArrivals(rate=1.0),
                           n_cycles=1, window=0.0)


class TestCli:
    def test_main_smoke(self, tmp_path, capsys):
        from repro.traffic.__main__ import main

        rc = main(["--out", str(tmp_path), "--jobs", "120",
                   "--processes", "poisson,mmpp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert (tmp_path / "poisson.trace").exists()
        assert (tmp_path / "mmpp.fingerprint.json").exists()


# -------------------------------------------------------------------------
# round 2: streamed generation ≡ materialized generation, bit for bit
# -------------------------------------------------------------------------


def _process_for(kind):
    return {
        "poisson": PoissonArrivals(rate=0.8),
        "mmpp": MMPPArrivals(quiet_rate=0.3, burst_rate=2.5,
                             mean_dwell=(15.0, 5.0)),
        "diurnal": DiurnalArrivals(base_rate=0.7, peak_ratio=3.0,
                                   period=120.0),
    }[kind]


class TestStreams:
    """`ArrivalProcess.stream()` + `UserPopulation.stream_jobs()` must
    be bit-exact with the materialized `sample()`/`jobs_for()` path —
    that equivalence is what makes a streamed capture replayable
    against a materialized trace at all."""

    @given(
        kind=st.sampled_from(["poisson", "mmpp", "diurnal"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_times_match_sample(self, kind, seed, n):
        proc = _process_for(kind)
        streamed = list(itertools.islice(proc.stream(seed), n))
        assert streamed == proc.sample(n, seed=seed).tolist()

    @given(
        kind=st.sampled_from(["poisson", "mmpp"]),
        seed=st.integers(min_value=0, max_value=999),
        n=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=25, deadline=None)
    def test_stream_jobs_match_jobs_for(self, kind, seed, n):
        proc = _process_for(kind)
        times = proc.sample(n, seed=seed)
        # fresh populations: job draws advance per-user RNG state, so
        # the two paths must each start from the seeded origin
        materialized = _population().jobs_for(times)
        streamed = list(itertools.islice(
            _population().stream_jobs(proc.stream(seed)), n
        ))
        assert streamed == materialized

    def test_streamed_run_matches_materialized_truncation(self):
        """A horizon-bounded streamed session must produce the same
        fingerprint as a materialized run over the horizon-truncated
        job list — chaos, admission, and the breaker all active."""
        horizon = 300.0
        proc = PoissonArrivals(rate=0.6)
        streamed = _driver(horizon=horizon).run_stream(
            _population().stream_jobs(proc.stream(7))
        )
        times = proc.sample(1000, seed=7)
        jobs = _population().jobs_for(times[times <= horizon])
        materialized = _driver(horizon=horizon).run(jobs)
        assert streamed.fingerprint() == materialized.fingerprint()
        assert streamed.result.completed > 0

    def test_run_stream_requires_horizon(self):
        with pytest.raises(ValueError):
            _driver().run_stream(iter([]))

    def test_streamed_session_not_checkpointable(self):
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import SimulatorSession

        pop = _population()
        ses = SimulatorSession(
            2, None, policy=Fcfs(), horizon=50.0,
            stream=pop.stream_jobs(PoissonArrivals(rate=1.0).stream(0)),
        )
        with pytest.raises(RuntimeError, match="not checkpointable"):
            ses.checkpoint_state()


class TestWindowCounts:
    """Satellite fix: campaign windowing uses half-open bins
    ``[k*w, (k+1)*w)`` — an arrival exactly on an interior boundary
    belongs to the *next* window, and one at/past the horizon is
    excluded instead of being lumped into the last cycle."""

    def test_half_open_bins(self):
        from repro.traffic.driver import _window_counts

        arrivals = np.array([0.0, 3.0, 9.999, 10.0, 15.0, 19.0, 20.0])
        counts = _window_counts(arrivals, n_cycles=2, window=10.0)
        # 20.0 == horizon is excluded; 10.0 lands in the second bin
        assert counts.tolist() == [3, 3]

    def test_past_horizon_excluded(self):
        from repro.traffic.driver import _window_counts

        arrivals = np.array([1.0, 25.0, 31.0])
        counts = _window_counts(arrivals, n_cycles=3, window=10.0)
        assert counts.tolist() == [1, 0, 1]

    def test_boundary_regression_vs_histogram(self):
        """np.histogram with range=(0, horizon) treats the last bin as
        closed on the right, so an arrival at exactly t == horizon was
        lumped into the final cycle — the exact bug the half-open
        rewrite fixes."""
        from repro.traffic.driver import _window_counts

        arrivals = np.array([5.0, 10.0, 20.0])
        old, _ = np.histogram(arrivals, bins=2, range=(0.0, 20.0))
        assert old.tolist() == [1, 2]  # 20.0 double-dips the last bin
        new = _window_counts(arrivals, n_cycles=2, window=10.0)
        assert new.tolist() == [1, 1]


# -------------------------------------------------------------------------
# round 2: live capture — incremental WAL frames, sealed trailer,
# SIGKILL mid-capture leaves a loadable committed prefix
# -------------------------------------------------------------------------


class TestCapture:
    def test_batch_capture_sealed_and_replayable(self, tmp_path):
        from repro.traffic import capture_experiment

        path = tmp_path / "batch.trace"
        trace, report = capture_experiment(
            path, PoissonArrivals(rate=0.55), _population(), _driver(),
            n_jobs=150,
        )
        assert trace.complete
        assert trace.fingerprint == report.fingerprint()
        assert trace.meta["mode"] == "batch"
        # decision frames captured alongside the jobs
        kinds = {d["d"] for d in trace.decisions}
        assert "complete" in kinds
        verify_replay(path)

    def test_stream_capture_sealed_and_replayable(self, tmp_path):
        from repro.traffic import capture_experiment

        path = tmp_path / "stream.trace"
        trace, report = capture_experiment(
            path, PoissonArrivals(rate=0.6), _population(),
            _driver(horizon=250.0),
        )
        assert trace.complete
        assert trace.meta["mode"] == "stream"
        assert trace.fingerprint == report.fingerprint()
        # the streamed capture replays bit-exactly as a materialized
        # trace — including regeneration from the header config
        verify_replay(path)

    def test_capture_load_is_non_destructive(self, tmp_path):
        """Loading a torn capture must never truncate it on disk —
        the committed prefix is crash evidence, not a scratch file."""
        from repro.traffic import capture_experiment

        path = tmp_path / "torn.trace"
        capture_experiment(path, PoissonArrivals(rate=0.55),
                           _population(), _driver(), n_jobs=60)
        raw = path.read_bytes()
        path.write_bytes(raw[:-11])  # tear the trailer frame
        before = path.read_bytes()
        with pytest.raises(ValueError, match="torn trace"):
            TrafficTrace.load(path)
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete and partial.fingerprint is None
        assert path.read_bytes() == before

    def test_sigkill_mid_capture_leaves_loadable_prefix(self, tmp_path):
        """Kill a live capture with SIGKILL; the committed prefix must
        load under strict=False and replay deterministically."""
        path = tmp_path / "killed.trace"
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.traffic", "capture",
             "--out", str(path), "--horizon", "200000", "--rate", "2.0",
             "--gpus", "2", "--flush-every", "1"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if path.exists() and path.stat().st_size > 20_000:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("capture subprocess produced no frames")
        finally:
            proc.kill()
            proc.wait()
        with pytest.raises(ValueError, match="torn trace"):
            TrafficTrace.load(path)
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete
        assert partial.fingerprint is None
        assert len(partial.jobs) > 0
        # the prefix replays deterministically under its own config
        from repro.traffic.driver import OpenLoopDriver

        driver_desc = partial.meta["driver"]
        a = OpenLoopDriver.from_description(driver_desc).run(partial.jobs)
        b = OpenLoopDriver.from_description(driver_desc).run(partial.jobs)
        assert a.fingerprint() == b.fingerprint()


# -------------------------------------------------------------------------
# round 2: A/B differential replay
# -------------------------------------------------------------------------


class TestAbReplay:
    def _record(self, tmp_path):
        path = tmp_path / "ab.trace"
        record_experiment(path, PoissonArrivals(rate=0.55),
                          _population(), _driver(), n_jobs=220)
        return path

    def test_same_config_identical_fingerprint(self, tmp_path):
        from repro.traffic import ABVariant, ab_replay

        path = self._record(tmp_path)
        report = ab_replay(path, [ABVariant("same", {})])
        assert report.fingerprint_matched is True
        assert report.self_consistent and not report.diverged
        same = report.variants[0]
        assert all(same["deltas"][k] == 0 for k in
                   ("completed", "shed", "dropped", "failures"))
        assert same["deltas"]["p99_wait"] == 0.0
        assert same["deltas"]["p50_turnaround"] == 0.0

    def test_fifo_vs_priority_diff_has_expected_sign(self, tmp_path):
        """SJF finishes short jobs early (p50 turnaround drops, fewer
        sheds) but starves the long tail: p99 wait must go *up*
        relative to the FIFO baseline."""
        from repro.traffic import ABVariant, ab_replay

        path = self._record(tmp_path)
        report = ab_replay(path, [
            ABVariant("sjf", {"policy": "sjf"}),
            ABVariant("half_gpus", {"n_gpus": 2}),
        ])
        assert not report.diverged
        sjf, half = report.variants
        assert sjf["deltas"]["p99_wait"] > 0
        assert sjf["deltas"]["p50_turnaround"] < 0
        assert sjf["deltas"]["shed_rate"] < 0
        # halving the machine sheds more and completes less
        assert half["deltas"]["shed_rate"] > 0
        assert half["deltas"]["completed"] < 0
        rendered = report.render()
        assert "baseline" in rendered and "sjf" in rendered

    def test_unknown_override_raises(self, tmp_path):
        from repro.traffic import ABVariant, ab_replay

        path = self._record(tmp_path)
        with pytest.raises(ValueError, match="unknown driver override"):
            ab_replay(path, [ABVariant("typo", {"polcy": "sjf"})])

    def test_report_round_trips_to_json(self, tmp_path):
        from repro.traffic import ABVariant, ab_replay

        path = self._record(tmp_path)
        report = ab_replay(path, [ABVariant("sjf", {"policy": "sjf"})])
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["fingerprint_matched"] is True
        assert blob["variants"][0]["name"] == "sjf"


class TestCaptureCli:
    def test_capture_then_ab_subcommands(self, tmp_path, capsys):
        from repro.traffic.__main__ import main

        path = tmp_path / "live.trace"
        rc = main(["capture", "--out", str(path), "--jobs", "120",
                   "--rate", "0.6"])
        assert rc == 0
        assert "sealed" in capsys.readouterr().out
        out_json = tmp_path / "ab.json"
        rc = main(["ab", str(path),
                   "--variant", "sjf:policy=sjf",
                   "--variant", "big:n_gpus=8",
                   "--json", str(out_json)])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "A/B replay" in captured
        blob = json.loads(out_json.read_text())
        assert blob["fingerprint_matched"] is True
        assert {v["name"] for v in blob["variants"]} == {"sjf", "big"}

    def test_ab_default_variants_and_streamed_capture(
            self, tmp_path, capsys):
        from repro.traffic.__main__ import main

        path = tmp_path / "stream.trace"
        rc = main(["capture", "--out", str(path), "--horizon", "250",
                   "--rate", "0.6"])
        assert rc == 0
        rc = main(["ab", str(path)])
        assert rc == 0
        assert "matches the sealed trailer" in capsys.readouterr().out

    def test_ab_exits_2_on_torn_trace_without_allow_torn(
            self, tmp_path, capsys):
        from repro.traffic.__main__ import main

        path = tmp_path / "torn.trace"
        rc = main(["capture", "--out", str(path), "--jobs", "60"])
        assert rc == 0
        capsys.readouterr()
        path.write_bytes(path.read_bytes()[:-11])
        assert main(["ab", str(path)]) == 2
        assert main(["ab", str(path), "--allow-torn"]) == 0
