"""Tests for the open-loop traffic layer: arrival processes, the
simulated user population, trace record/replay, and the driver's
bit-exact replay contract (shed reasons, guard counters, completion
order) with chaos and admission shedding active."""

import numpy as np
import pytest

from repro.sched.simulator import Job
from repro.traffic import (
    AdmissionSpec,
    ChaosSpec,
    DiurnalArrivals,
    MMPPArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    TrafficTrace,
    UserPopulation,
    drive_campaign,
    generate_jobs,
    process_from_description,
    record_experiment,
    replay_experiment,
    verify_replay,
)


class TestArrivalProcesses:
    def test_poisson_deterministic_and_sorted(self):
        p = PoissonArrivals(rate=2.0)
        a = p.sample(500, seed=3)
        b = p.sample(500, seed=3)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert not np.array_equal(a, p.sample(500, seed=4))

    def test_poisson_rate_calibrated(self):
        p = PoissonArrivals(rate=2.0)
        a = p.sample(4000, seed=0)
        assert 4000 / a[-1] == pytest.approx(2.0, rel=0.1)

    def test_mmpp_burstier_than_poisson(self):
        """Interarrival CV: Poisson is exactly 1; a 2-state MMPP with
        strong rate contrast must sit clearly above it."""
        mmpp = MMPPArrivals(quiet_rate=0.5, burst_rate=8.0,
                            mean_dwell=(20.0, 5.0))
        gaps = np.diff(mmpp.sample(6000, seed=1))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2
        poisson_gaps = np.diff(
            PoissonArrivals(rate=mmpp.mean_rate).sample(6000, seed=1)
        )
        assert poisson_gaps.std() / poisson_gaps.mean() == pytest.approx(
            1.0, abs=0.1
        )

    def test_mmpp_mean_rate(self):
        mmpp = MMPPArrivals(quiet_rate=1.0, burst_rate=6.0,
                            mean_dwell=(10.0, 2.0))
        assert mmpp.mean_rate == pytest.approx((10.0 + 12.0) / 12.0)
        a = mmpp.sample(8000, seed=2)
        assert 8000 / a[-1] == pytest.approx(mmpp.mean_rate, rel=0.15)

    def test_diurnal_peaks_mid_period(self):
        """Raised-cosine rate: trough at phase 0, peak at phase 1/2 —
        the mid-period half-window must collect most arrivals."""
        d = DiurnalArrivals(base_rate=0.5, peak_ratio=6.0, period=100.0)
        phases = np.mod(d.sample(4000, seed=5), 100.0)
        mid = np.sum((phases > 25.0) & (phases < 75.0))
        assert mid > 0.65 * 4000
        assert d.rate_at(50.0) == pytest.approx(3.0)
        assert d.rate_at(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(quiet_rate=2.0, burst_rate=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(quiet_rate=1.0, burst_rate=2.0,
                         mean_dwell=(0.0, 1.0))
        with pytest.raises(ValueError):
            DiurnalArrivals(base_rate=1.0, peak_ratio=0.5)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0).sample(0)

    def test_describe_roundtrip(self):
        for proc in (
            PoissonArrivals(rate=1.5),
            MMPPArrivals(quiet_rate=0.4, burst_rate=3.0,
                         mean_dwell=(7.0, 3.0)),
            DiurnalArrivals(base_rate=0.8, peak_ratio=5.0, period=60.0),
        ):
            clone = process_from_description(proc.describe())
            assert np.array_equal(proc.sample(200, seed=9),
                                  clone.sample(200, seed=9))
        with pytest.raises(ValueError):
            process_from_description({"kind": "nope"})


class TestUserPopulation:
    def test_jobs_deterministic_across_reset(self):
        pop = UserPopulation(n_users=10_000, seed=3)
        arrivals = PoissonArrivals(rate=1.0).sample(200, seed=0)
        jobs_a = pop.jobs_for(arrivals)
        pop.reset()
        jobs_b = pop.jobs_for(arrivals)
        assert jobs_a == jobs_b

    def test_per_user_streams_are_pure_functions(self):
        """Two populations with the same seed agree on every user's
        profile regardless of touch order."""
        p1 = UserPopulation(n_users=1_000, seed=7)
        p2 = UserPopulation(n_users=1_000, seed=7)
        for uid in (999, 0, 421):
            a, b = p1.profile(uid), p2.profile(uid)
            assert (a.mean_scale, a.priority, a.slack, a.best_effort) \
                == (b.mean_scale, b.priority, b.slack, b.best_effort)

    def test_population_is_lazy(self):
        """A million-user population only materializes touched users."""
        pop = UserPopulation(n_users=1_000_000, seed=0)
        pop.jobs_for(PoissonArrivals(rate=1.0).sample(300, seed=1))
        assert 0 < pop.touched_users <= 300

    def test_mean_service_calibrated(self):
        pop = UserPopulation(n_users=500, seed=2, mean_service=10.0,
                             skew=1.0, best_effort_fraction=0.0)
        jobs = pop.jobs_for(
            PoissonArrivals(rate=1.0).sample(20_000, seed=3)
        )
        mean = float(np.mean([j.service for j in jobs]))
        assert mean == pytest.approx(10.0, rel=0.15)

    def test_deadline_and_priority_structure(self):
        pop = UserPopulation(n_users=2_000, seed=4,
                             best_effort_fraction=0.5, n_priorities=3)
        jobs = pop.jobs_for(PoissonArrivals(rate=1.0).sample(2000, seed=5))
        be = sum(1 for j in jobs if j.deadline is None) / len(jobs)
        assert 0.3 < be < 0.7
        assert {j.priority for j in jobs} <= {0, 1, 2}
        for j in jobs:
            if j.deadline is not None:
                assert j.deadline >= j.arrival + 2.0 * j.service

    def test_describe_roundtrip(self):
        pop = UserPopulation(n_users=5_000, seed=11, skew=3.0)
        clone = UserPopulation.from_description(pop.describe())
        arrivals = PoissonArrivals(rate=1.0).sample(150, seed=0)
        assert pop.jobs_for(arrivals) == clone.jobs_for(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPopulation(n_users=0)
        with pytest.raises(ValueError):
            UserPopulation(skew=0.5)
        with pytest.raises(ValueError):
            UserPopulation(deadline_slack=(3.0, 2.0))
        with pytest.raises(ValueError):
            UserPopulation(best_effort_fraction=1.5)
        with pytest.raises(ValueError):
            UserPopulation().profile(10**9)


class TestTrafficTrace:
    def _jobs(self, n=40):
        pop = UserPopulation(n_users=1_000, seed=0)
        return pop.jobs_for(PoissonArrivals(rate=1.0).sample(n, seed=0))

    def test_record_load_bit_exact(self, tmp_path):
        jobs = self._jobs()
        path = tmp_path / "t.trace"
        meta = {"note": "unit", "x": 1.25}
        recorded = TrafficTrace.record(path, jobs, meta=meta)
        loaded = TrafficTrace.load(path)
        assert loaded == recorded
        assert loaded.same_jobs(recorded)
        assert loaded.complete
        assert loaded.meta == meta
        # bit-exact floats, not approx: frozen-dataclass equality
        assert loaded.jobs == jobs

    def test_torn_tail_truncates(self, tmp_path):
        jobs = self._jobs()
        path = tmp_path / "t.trace"
        TrafficTrace.record(path, jobs)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the last frame
        with pytest.raises(ValueError, match="torn"):
            TrafficTrace.load(path)
        partial = TrafficTrace.load(path, strict=False)
        assert not partial.complete
        assert len(partial) == len(jobs) - 1
        assert partial.jobs == jobs[:-1]

    def test_rejects_non_trace(self, tmp_path):
        from repro.durable.wal import WriteAheadLog

        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append(b'{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a traffic trace"):
            TrafficTrace.load(path)

    def test_overwrites_previous_trace(self, tmp_path):
        path = tmp_path / "t.trace"
        TrafficTrace.record(path, self._jobs(30))
        TrafficTrace.record(path, self._jobs(10))
        assert len(TrafficTrace.load(path)) == 10


def _driver(n_gpus=4):
    return OpenLoopDriver(
        n_gpus=n_gpus,
        policy="fcfs",
        admission=AdmissionSpec(
            max_queue=3 * n_gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=40.0,
        ),
        chaos=ChaosSpec(mtbf=250.0, seed=1),
    )


def _population():
    return UserPopulation(n_users=20_000, seed=0, mean_service=10.0,
                          best_effort_fraction=0.3)


class TestReplayDeterminism:
    """The ISSUE's acceptance criterion: a recorded trace — Poisson
    and MMPP, with FaultInjector chaos and admission shedding active —
    replays bit-exactly: same shed decisions and reasons, same
    guard.* counters, same job completion order."""

    @pytest.mark.parametrize("process", [
        PoissonArrivals(rate=0.55),
        MMPPArrivals(quiet_rate=0.25, burst_rate=1.6,
                     mean_dwell=(12.0, 4.0)),
    ], ids=["poisson", "mmpp"])
    def test_replay_bit_exact(self, tmp_path, process):
        path = tmp_path / f"{process.kind}.trace"
        trace, recorded = record_experiment(
            path, process, _population(), _driver(), n_jobs=220,
        )
        # the run must actually exercise the paths under test
        assert recorded.result.failures > 0, "chaos never fired"
        assert recorded.shed_log, "admission never shed"
        assert recorded.guard_counters, "no guard.* counters moved"

        first, loaded = replay_experiment(path)
        second, _ = replay_experiment(path)

        assert loaded.same_jobs(trace)
        for replayed in (first, second):
            fp, ref = replayed.fingerprint(), recorded.fingerprint()
            assert fp["shed_log"] == ref["shed_log"]
            assert fp["guard_counters"] == ref["guard_counters"]
            assert fp["completions"] == ref["completions"]
            assert fp == ref
        assert [j for _, j in first.result.completions] == \
            first.result.completion_order

    def test_verify_replay_helper(self, tmp_path):
        path = tmp_path / "v.trace"
        record_experiment(path, PoissonArrivals(rate=0.5),
                          _population(), _driver(), n_jobs=120)
        report = verify_replay(path)
        assert report.result.completed > 0

    def test_latency_percentiles_exposed(self, tmp_path):
        path = tmp_path / "l.trace"
        _, rep = record_experiment(path, PoissonArrivals(rate=0.6),
                                   _population(), _driver(), n_jobs=150)
        assert 0.0 <= rep.p50_wait <= rep.p99_wait
        assert rep.p50_turnaround <= rep.p99_turnaround
        assert 0.0 < rep.shed_rate < 1.0

    def test_driver_describe_roundtrip(self):
        d = _driver()
        clone = OpenLoopDriver.from_description(d.describe())
        assert clone.describe() == d.describe()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopDriver(n_gpus=2, policy="lifo")


class TestCampaignCoupling:
    def test_drive_campaign_deterministic(self):
        from repro.workflow.mummi import MummiCampaign

        def run():
            camp = MummiCampaign(n_gpus=4, jobs_per_cycle=6, seed=0,
                                 steps_per_sim=1000)
            out = drive_campaign(
                camp, MMPPArrivals(quiet_rate=0.1, burst_rate=2.0,
                                   mean_dwell=(30.0, 10.0)),
                n_cycles=4, window=25.0, arrival_seed=2,
            )
            return camp, out
        camp_a, a = run()
        camp_b, b = run()
        assert [m["offered_jobs"] for m in a] == \
            [m["offered_jobs"] for m in b]
        assert [m["simulations"] for m in a] == \
            [m["simulations"] for m in b]
        assert camp_a.jobs_per_cycle == 6  # nominal restored
        # bursty arrivals actually modulate the cycle sizes
        assert len({m["offered_jobs"] for m in a}) > 1

    def test_drive_campaign_validation(self):
        from repro.workflow.mummi import MummiCampaign

        camp = MummiCampaign(n_gpus=2, jobs_per_cycle=2, seed=0,
                             steps_per_sim=500)
        with pytest.raises(ValueError):
            drive_campaign(camp, PoissonArrivals(rate=1.0),
                           n_cycles=0, window=10.0)
        with pytest.raises(ValueError):
            drive_campaign(camp, PoissonArrivals(rate=1.0),
                           n_cycles=1, window=0.0)


class TestCli:
    def test_main_smoke(self, tmp_path, capsys):
        from repro.traffic.__main__ import main

        rc = main(["--out", str(tmp_path), "--jobs", "120",
                   "--processes", "poisson,mmpp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert (tmp_path / "poisson.trace").exists()
        assert (tmp_path / "mmpp.fingerprint.json").exists()
