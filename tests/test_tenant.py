"""Tests for the multi-tenant robustness layer (repro.tenant)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.guard.deadline import AdmissionController
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator, Job, SimulatorSession
from repro.sched.workloads import jobs_from_arrivals
from repro.tenant import (
    BrownoutLadder,
    FlightRecorder,
    TenancySpec,
    TenantSpec,
    jain_index,
    multitenant_pileup,
    record_incident,
    replay_incident,
    verify_incident,
    weighted_max_min,
)
from repro.tenant.registry import PRESSURE_REASONS
from repro.traffic.driver import OpenLoopDriver
from repro.traffic.population import UserPopulation
from repro.traffic.trace import TrafficTrace


# ---------------------------------------------------------------------------
# arbiter: weighted max-min fair shares
# ---------------------------------------------------------------------------

_demands = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=8,
)
_weights = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestArbiter:
    @given(demands=_demands, capacity=st.floats(0.0, 200.0))
    @settings(max_examples=150, deadline=None)
    def test_work_conservation_and_bounds(self, demands, capacity):
        names = [f"t{i}" for i in range(len(demands))]
        d = dict(zip(names, demands))
        w = {n: 1.0 for n in names}
        shares = weighted_max_min(d, w, capacity)
        for n in names:
            assert -1e-12 <= shares[n] <= d[n] + 1e-9
        assert math.isclose(
            sum(shares.values()), min(capacity, sum(demands)),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    @given(
        demands=_demands,
        weights=st.lists(_weights, min_size=8, max_size=8),
        capacity=st.floats(0.1, 200.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_weighted_max_min_dominance(self, demands, weights, capacity):
        """Every unsatisfied tenant sits at the common water level, and
        every satisfied tenant's demand is at or below it — the fixed
        point of the weighted max-min definition."""
        names = [f"t{i}" for i in range(len(demands))]
        d = dict(zip(names, demands))
        w = dict(zip(names, weights))
        shares = weighted_max_min(d, w, capacity)
        unsat = [n for n in names if shares[n] < d[n] - 1e-9]
        if not unsat:
            return
        levels = [shares[n] / w[n] for n in unsat]
        water = levels[0]
        for lvl in levels[1:]:
            assert math.isclose(lvl, water, rel_tol=1e-6, abs_tol=1e-9)
        for n in names:
            if n not in unsat:
                assert d[n] <= water * w[n] + 1e-6 * (1 + water * w[n])

    def test_uncontended_gives_demand(self):
        shares = weighted_max_min(
            {"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 1.0}, 10.0
        )
        assert shares == {"a": 1.0, "b": 2.0}

    def test_weights_split_contention(self):
        shares = weighted_max_min(
            {"a": 100.0, "b": 100.0}, {"a": 3.0, "b": 1.0}, 8.0
        )
        assert math.isclose(shares["a"], 6.0)
        assert math.isclose(shares["b"], 2.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            weighted_max_min({"a": -1.0}, {"a": 1.0}, 1.0)
        with pytest.raises(ValueError):
            weighted_max_min({"a": 1.0}, {"a": 0.0}, 1.0)
        with pytest.raises(ValueError):
            weighted_max_min({"a": 1.0}, {"a": 1.0}, -1.0)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_jain_bounds(self, values):
        j = jain_index(values)
        assert 1.0 / len(values) - 1e-12 <= j <= 1.0 + 1e-12

    def test_jain_extremes(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        assert math.isclose(jain_index([5.0, 5.0, 5.0]), 1.0)
        assert math.isclose(jain_index([1.0, 0.0, 0.0, 0.0]), 0.25)


# ---------------------------------------------------------------------------
# brownout ladder
# ---------------------------------------------------------------------------


class TestBrownoutLadder:
    def test_escalates_and_relaxes_one_rung_per_observation(self):
        ladder = BrownoutLadder(up_threshold=1.5, down_threshold=0.9)
        assert ladder.rung == "admit"
        assert ladder.observe(5.0) == "defer"       # one rung, not four
        assert ladder.observe(5.0) == "degrade"
        assert ladder.observe(5.0) == "shed"
        assert ladder.observe(5.0) == "shed"        # clamped at worst
        assert ladder.observe(0.5) == "degrade"
        assert ladder.observe(0.5) == "defer"
        assert ladder.observe(0.5) == "admit"
        assert ladder.observe(0.5) == "admit"       # clamped at best
        assert ladder.transitions == 6

    def test_hysteresis_band_holds(self):
        ladder = BrownoutLadder(up_threshold=1.5, down_threshold=0.9)
        ladder.observe(2.0)
        assert ladder.rung == "defer"
        # inside the band: no movement either way, however long
        for _ in range(10):
            assert ladder.observe(1.2) == "defer"
        assert ladder.transitions == 1

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            BrownoutLadder(up_threshold=1.0, down_threshold=1.0)

    def test_at_least(self):
        ladder = BrownoutLadder()
        ladder.observe(10.0)
        ladder.observe(10.0)
        assert ladder.at_least("defer")
        assert ladder.at_least("degrade")
        assert not ladder.at_least("shed")

    def test_checkpoint_roundtrip(self):
        ladder = BrownoutLadder(name="x")
        ladder.observe(9.0, now=1.0)
        ladder.observe(9.0, now=2.0)
        state = ladder.checkpoint_state()
        other = BrownoutLadder(name="x")
        other.restore_state(state)
        assert other.rung == ladder.rung
        assert other.transitions == ladder.transitions
        assert other.history == ladder.history


# ---------------------------------------------------------------------------
# registry: fair-share clipping + compliant-tenant protection
# ---------------------------------------------------------------------------


def _tenancy(n_compliant=2, window=10.0, **kw):
    specs = [
        TenantSpec(name=f"c{i}", protect_priority=1, max_queue=4)
        for i in range(n_compliant)
    ] + [TenantSpec(name="noisy", protect_priority=1, max_queue=4)]
    return TenancySpec(tenants=tuple(specs), window=window, **kw)


def _job(jid, tenant, now, service=1.0, priority=0, deadline=None):
    return Job(job_id=jid, arrival=now, service=service,
               priority=priority, deadline=deadline, tenant=tenant)


class TestTenantRegistry:
    def test_noisy_neighbor_clipped_before_compliant_sheds(self):
        registry = _tenancy().make()
        t, jid = 0.0, 0
        noisy_shed = compliant_pressure_shed = 0
        # capacity 4: each compliant tenant offers rate 1.0 (below its
        # fair share), the noisy tenant offers rate 16 (far above)
        for _ in range(300):
            t += 0.1
            for name in ("c0", "c1"):
                jid += 1
                registry.admit(_job(jid, name, t, service=0.1), now=t,
                               queue_len=2, n_running=4, n_gpus=4)
                reason = registry.last_decision["reason"]
                if reason in PRESSURE_REASONS:
                    compliant_pressure_shed += 1
            for _ in range(4):
                jid += 1
                ok = registry.admit(
                    _job(jid, "noisy", t, service=0.4), now=t,
                    queue_len=2, n_running=4, n_gpus=4,
                )
                if not ok:
                    noisy_shed += 1
        assert noisy_shed > 0
        assert compliant_pressure_shed == 0
        # the noisy tenant is held near its fair share of capacity
        assert registry.admitted_rate("noisy", t) \
            <= registry.fair_shares(4, t)["noisy"] + 0.5

    def test_pressure_suppressed_for_compliant_only(self):
        registry = _tenancy().make()
        t, jid = 0.0, 0
        # drive noisy far above share so it is a standing violator
        for _ in range(100):
            t += 0.05
            jid += 1
            registry.admit(_job(jid, "noisy", t), now=t, queue_len=0,
                           n_running=0, n_gpus=2)
        # compliant job under queue pressure (queue at max_queue=4,
        # priority below protected): would be queue_saturated alone,
        # but the congestion is the violator's to absorb
        jid += 1
        assert registry.admit(
            _job(jid, "c0", t, priority=0), now=t, queue_len=4,
            n_running=2, n_gpus=2,
        )
        # the violator itself still gets pressure-shed
        jid += 1
        admitted = registry.admit(
            _job(jid, "noisy", t, priority=0), now=t, queue_len=4,
            n_running=2, n_gpus=2,
        )
        assert not admitted

    def test_deadline_sheds_never_suppressed(self):
        registry = _tenancy().make()
        t, jid = 0.0, 0
        for _ in range(100):
            t += 0.05
            jid += 1
            registry.admit(_job(jid, "noisy", t), now=t, queue_len=0,
                           n_running=0, n_gpus=2)
        # compliant job whose deadline is already unmeetable: physics
        jid += 1
        admitted = registry.admit(
            _job(jid, "c0", t, service=5.0, deadline=t + 1.0), now=t,
            queue_len=0, n_running=0, n_gpus=2,
        )
        assert not admitted
        assert registry.last_decision["reason"] == "deadline_unmeetable"

    def test_anonymous_jobs_bypass_tenancy(self):
        registry = _tenancy().make()
        job = Job(job_id=1, arrival=0.0, service=1.0)
        assert registry.admit(job, now=0.0, queue_len=10**6,
                              n_running=0, n_gpus=1)

    def test_unknown_tenant_rejected(self):
        registry = _tenancy().make()
        with pytest.raises(ValueError):
            registry.admit(_job(1, "mystery", 0.0), now=0.0,
                           queue_len=0, n_running=0, n_gpus=1)

    def test_arbiter_disabled_degenerates_to_plain_controllers(self):
        registry = _tenancy(arbiter_enabled=False).make()
        t, jid = 0.0, 0
        for _ in range(50):
            t += 0.05
            jid += 1
            registry.admit(_job(jid, "noisy", t), now=t, queue_len=0,
                           n_running=0, n_gpus=2)
        # no arbiter: a compliant tenant eats queue_saturated like
        # anyone else, violator or not
        jid += 1
        admitted = registry.admit(
            _job(jid, "c0", t, priority=0), now=t, queue_len=4,
            n_running=2, n_gpus=2,
        )
        assert not admitted
        assert registry.last_decision["reason"] == "queue_saturated"

    def test_checkpoint_roundtrip(self):
        spec = _tenancy()
        registry = spec.make()
        t, jid = 0.0, 0
        for _ in range(60):
            t += 0.1
            jid += 1
            registry.admit(_job(jid, "noisy", t), now=t, queue_len=3,
                           n_running=2, n_gpus=2)
        state = registry.checkpoint_state()
        twin = spec.make()
        twin.restore_state(state)
        # the twin must make the same next decision
        probe = _job(10_000, "noisy", t + 0.1)
        a = registry.admit(probe, now=t + 0.1, queue_len=3,
                           n_running=2, n_gpus=2)
        b = twin.admit(probe, now=t + 0.1, queue_len=3,
                       n_running=2, n_gpus=2)
        assert a == b
        assert registry.last_decision == twin.last_decision
        assert list(registry.shed_log) == list(twin.shed_log)

    def test_spec_description_roundtrip(self):
        spec = _tenancy(brownout={"up_threshold": 2.0,
                                  "down_threshold": 0.5})
        assert TenancySpec.from_description(spec.describe()) == spec


class FairArbiterMachine(RuleBasedStateMachine):
    """State-machine check of the registry's isolation invariants.

    Arbitrary interleavings of per-tenant arrivals (varying service,
    priority, queue pressure) must never produce (a) a pressure shed
    for a compliant tenant while a violator is above fair share,
    (b) fair shares exceeding capacity (work conservation at the
    arbiter), or (c) a share above its tenant's measured demand.
    """

    N_GPUS = 4

    @initialize()
    def setup(self):
        self.registry = _tenancy(n_compliant=2, window=5.0).make()
        self.now = 0.0
        self.jid = 0

    @rule(
        tenant=st.sampled_from(["c0", "c1", "noisy"]),
        service=st.floats(0.1, 5.0),
        priority=st.integers(0, 2),
        queue_len=st.integers(0, 8),
        dt=st.floats(0.0, 1.0),
    )
    def submit(self, tenant, service, priority, queue_len, dt):
        self.now += dt
        self.jid += 1
        job = _job(self.jid, tenant, self.now, service=service,
                   priority=priority)
        self.registry.admit(job, now=self.now, queue_len=queue_len,
                            n_running=2, n_gpus=self.N_GPUS)
        decision = self.registry.last_decision
        violators = decision["violators"]
        if (
            decision["reason"] in PRESSURE_REASONS
            and violators
            and decision["tenant"] not in violators
        ):
            raise AssertionError(
                f"compliant tenant {decision['tenant']!r} pressure-shed "
                f"({decision['reason']}) while {violators} sat above "
                "fair share"
            )

    @invariant()
    def shares_conserve_work_and_respect_demand(self):
        if not hasattr(self, "registry"):
            return
        shares = self.registry.fair_shares(self.N_GPUS, self.now)
        assert sum(shares.values()) <= self.N_GPUS + 1e-9
        for name, share in shares.items():
            demand = self.registry.offered_rate(name, self.now)
            assert share <= demand + 1e-9


def test_fair_arbiter_state_machine():
    run_state_machine_as_test(
        FairArbiterMachine,
        settings=settings(max_examples=30, stateful_step_count=40,
                          deadline=None),
    )


# ---------------------------------------------------------------------------
# per-tenant accounting: engines agree, checkpoints survive
# ---------------------------------------------------------------------------


def _tenant_jobs(n=120, seed=3):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.4, n))
    services = rng.lognormal(0.0, 0.6, n)
    tenants = [("alpha", "beta", "gamma")[i % 3] for i in range(n)]
    deadlines = [
        None if i % 4 == 0 else float(arrivals[i] + 6.0 * services[i])
        for i in range(n)
    ]
    return jobs_from_arrivals(arrivals, services, tenants=tenants,
                              deadlines=deadlines)


def _accounting_tenancy():
    return TenancySpec(
        tenants=tuple(
            TenantSpec(name=n, protect_priority=1, max_queue=6)
            for n in ("alpha", "beta", "gamma")
        ),
        window=20.0,
    )


class TestPerTenantAccounting:
    def test_batch_and_stepwise_engines_bit_identical(self):
        jobs = _tenant_jobs()
        spec = _accounting_tenancy()
        batch = ClusterSimulator(3).run(jobs, Fcfs(),
                                        admission=spec.make())
        session = SimulatorSession(3, jobs, Fcfs(),
                                   admission=spec.make())
        stepwise = session.run_to_completion()
        assert batch == stepwise  # dataclass ==: every field, exactly

    def test_tenant_fields_populated_and_consistent(self):
        jobs = _tenant_jobs()
        result = ClusterSimulator(3).run(
            jobs, Fcfs(), admission=_accounting_tenancy().make()
        )
        assert result.tenants == ["alpha", "beta", "gamma"]
        assert sum(result.tenant_completed.values()) == result.completed
        assert sum(result.tenant_shed.values()) == result.shed
        for name in result.tenants:
            if result.tenant_turnarounds.get(name):
                p99 = result.tenant_turnaround_percentile(name, 99.0)
                assert p99 >= result.tenant_turnaround_percentile(
                    name, 50.0
                )
            rate = result.tenant_shed_rate(name)
            assert 0.0 <= rate <= 1.0

    def test_untagged_jobs_cost_no_tenant_accounting(self):
        jobs = [Job(job_id=k, arrival=float(k) * 0.1, service=1.0)
                for k in range(20)]
        result = ClusterSimulator(2).run(jobs, Fcfs())
        assert result.tenant_completed == {}
        assert result.tenant_waits == {}
        assert result.tenant_shed_rate("nobody") == 0.0

    def test_session_checkpoint_restores_tenant_accounting(self):
        jobs = _tenant_jobs(n=80)
        spec = _accounting_tenancy()
        session = SimulatorSession(3, jobs, Fcfs(),
                                   admission=spec.make())
        for _ in range(60):
            session.step()
        state = session.checkpoint_state()
        finished = session.run_to_completion()
        twin = SimulatorSession(3, jobs, Fcfs(), admission=spec.make())
        twin.restore_state(state)
        assert twin.run_to_completion() == finished


# ---------------------------------------------------------------------------
# flight recorder + incident traces
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for k in range(10):
            rec.note("shed", float(k), tenant="a", job_id=k)
        assert len(rec.events) == 4
        assert rec.dropped == 6
        assert [e["job_id"] for e in rec.events] == [6, 7, 8, 9]

    def test_checkpoint_roundtrip(self):
        rec = FlightRecorder(capacity=4)
        rec.note("ladder", 1.0, tenant="a", to_rung="defer")
        state = rec.checkpoint_state()
        twin = FlightRecorder(capacity=4)
        twin.restore_state(state)
        assert list(twin.events) == list(rec.events)
        assert twin.dropped == rec.dropped


def _pileup_driver(bundle, chaos_mtbf=None, n_gpus=4):
    from repro.traffic.driver import ChaosSpec

    return OpenLoopDriver(
        n_gpus=n_gpus, policy="fcfs", tenancy=bundle.tenancy,
        chaos=(
            None if chaos_mtbf is None
            else ChaosSpec(mtbf=chaos_mtbf, seed=7)
        ),
    )


class TestIncidentTraces:
    def test_record_then_verify_bit_exact(self, tmp_path):
        bundle = multitenant_pileup(n_gpus=4, n_jobs_per_tenant=60)
        driver = _pileup_driver(bundle)
        path = tmp_path / "incident-a.trace"
        trace, report = record_incident(path, bundle.jobs, driver,
                                        reason="drill")
        assert trace is not None
        assert trace.meta["incident"]["reason"] == "drill"
        replay = verify_incident(path)
        assert replay.fingerprint() == report.fingerprint()

    def test_fingerprint_carries_tenant_surface(self, tmp_path):
        bundle = multitenant_pileup(n_gpus=4, n_jobs_per_tenant=60)
        report = _pileup_driver(bundle).run(bundle.jobs)
        fp = report.fingerprint()
        assert "tenant_completed" in fp
        assert "tenant_summary" in fp
        assert set(fp["tenant_summary"]) == set(bundle.rates)

    def test_single_tenant_fingerprint_unchanged(self):
        # no tenancy -> no tenant keys: pre-tenant recorded
        # fingerprints keep verifying byte-for-byte
        jobs = [Job(job_id=k, arrival=float(k) * 0.5, service=1.0)
                for k in range(10)]
        report = OpenLoopDriver(n_gpus=2).run(jobs)
        fp = report.fingerprint()
        assert "tenant_summary" not in fp
        assert "trips" not in fp

    def test_healthy_run_dumps_nothing(self, tmp_path):
        bundle = multitenant_pileup(
            n_gpus=16, n_compliant=2, noisy_factor=1.2,
            n_jobs_per_tenant=30,
        )
        path = tmp_path / "incident-b.trace"
        trace, _ = record_incident(
            path, bundle.jobs, _pileup_driver(bundle, n_gpus=16)
        )
        assert trace is None
        assert not path.exists()

    def test_torn_tail_strict_raises_lenient_returns_prefix(
        self, tmp_path
    ):
        bundle = multitenant_pileup(n_gpus=4, n_jobs_per_tenant=60)
        path = tmp_path / "incident-c.trace"
        record_incident(path, bundle.jobs, _pileup_driver(bundle),
                        reason="drill")
        whole = path.read_bytes()
        # cut the sealed trailer plus part of the last job frame, so
        # the committed prefix is strictly shorter than the job stream
        from repro.durable.wal import read_records

        frames = [8 + len(p) for p in read_records(path)]
        path.write_bytes(whole[: 8 + sum(frames[:-2]) + 3])
        with pytest.raises(ValueError, match="torn"):
            TrafficTrace.load(path, strict=True)
        torn = TrafficTrace.load(path, strict=False)
        assert not torn.complete
        assert torn.fingerprint is None
        assert 0 < len(torn.jobs) < len(bundle.jobs)
        assert torn.jobs == list(bundle.jobs)[: len(torn.jobs)]
        # lenient replay of the surviving prefix still works
        report, _ = replay_incident(path, strict=False)
        assert report.result.completed > 0

    def test_replay_detects_doctored_fingerprint(self, tmp_path):
        bundle = multitenant_pileup(n_gpus=4, n_jobs_per_tenant=60)
        path = tmp_path / "incident-d.trace"
        trace, report = record_incident(
            path, bundle.jobs, _pileup_driver(bundle), reason="drill"
        )
        doctored = dict(trace.meta)
        doctored["fingerprint"] = dict(report.fingerprint(),
                                       completed=-1)
        TrafficTrace.record(path, list(bundle.jobs), meta=doctored)
        with pytest.raises(AssertionError, match="recorded fingerprint"):
            verify_incident(path)


# ---------------------------------------------------------------------------
# pile-up scenario: isolation quality end to end
# ---------------------------------------------------------------------------


class TestPileupScenario:
    def test_bundle_shape(self):
        bundle = multitenant_pileup(n_jobs_per_tenant=40)
        assert len(bundle.jobs) == 4 * 40
        assert set(bundle.jobs_by_tenant) == set(bundle.rates)
        ids = [j.job_id for j in bundle.jobs]
        assert len(set(ids)) == len(ids)
        for name, stream in bundle.jobs_by_tenant.items():
            assert all(j.tenant == name for j in stream)
        assert bundle.rates[bundle.noisy] > max(
            v for k, v in bundle.rates.items() if k != bundle.noisy
        )

    def test_arbiter_contains_noisy_neighbor(self):
        bundle = multitenant_pileup(n_gpus=4, n_jobs_per_tenant=150,
                                    seed=1)
        result = _pileup_driver(bundle).run(bundle.jobs).result
        compliant = [n for n in bundle.rates if n != bundle.noisy]
        # the noisy tenant absorbs the overload it created
        noisy_rate = result.tenant_shed_rate(bundle.noisy)
        for name in compliant:
            assert result.tenant_shed_rate(name) < noisy_rate
        # fairness over delivered service per (equal) weight
        fairness = jain_index(
            result.tenant_completed_service.get(n, 0.0)
            for n in sorted(bundle.rates)
        )
        assert fairness >= 0.9


# ---------------------------------------------------------------------------
# satellites: shed-log bound, supervisor jitter, population tagging
# ---------------------------------------------------------------------------


class TestShedLogBound:
    def _saturate(self, cap, n):
        ctrl = AdmissionController(max_queue=1, protect_priority=5,
                                   shed_log_cap=cap)
        for k in range(n):
            ctrl.admit(Job(job_id=k, arrival=0.0, service=1.0),
                       now=0.0, queue_len=10, n_running=0, n_gpus=1)
        return ctrl

    def test_log_rotates_and_counts_drops(self):
        ctrl = self._saturate(cap=8, n=30)
        assert len(ctrl.shed_log) == 8
        assert ctrl.shed_log_dropped == 22
        assert ctrl.shed_count == 30
        assert [j for j, _ in ctrl.shed_log] == list(range(22, 30))

    def test_checkpoint_preserves_rotation_state(self):
        ctrl = self._saturate(cap=8, n=30)
        state = ctrl.checkpoint_state()
        twin = AdmissionController(max_queue=1, protect_priority=5,
                                   shed_log_cap=8)
        twin.restore_state(state)
        assert list(twin.shed_log) == list(ctrl.shed_log)
        assert twin.shed_log_dropped == 22

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(shed_log_cap=0)


class TestSupervisorJitter:
    def test_jitter_without_rng_rejected(self):
        from repro.par.supervisor import Supervisor

        with pytest.raises(ValueError, match="injected rng"):
            Supervisor(fn=abs, backoff_jitter=0.5)

    def test_jitter_range_validated(self):
        from repro.par.supervisor import Supervisor

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Supervisor(fn=abs, backoff_jitter=1.0, rng=rng)

    def test_injected_stream_reproduces_delays(self):
        from repro.par.supervisor import Supervisor

        def delays(seed):
            sup = Supervisor(fn=abs, backoff_base=0.1, backoff_max=5.0,
                             backoff_jitter=0.5,
                             rng=np.random.default_rng(seed))
            out = []
            for crashes in (1, 2, 3, 4):
                sup._consec_crashes = crashes
                out.append(sup._backoff_delay())
            return out

        assert delays(42) == delays(42)
        assert delays(42) != delays(43)
        sup = Supervisor(fn=abs, backoff_base=0.1, backoff_max=5.0,
                         backoff_jitter=0.5,
                         rng=np.random.default_rng(0))
        sup._consec_crashes = 2
        for _ in range(50):
            assert 0.5 * 0.2 <= sup._backoff_delay() <= 1.5 * 0.2

    def test_no_jitter_is_deterministic_without_rng(self):
        from repro.par.supervisor import Supervisor

        sup = Supervisor(fn=abs, backoff_base=0.1, backoff_max=1.0)
        sup._consec_crashes = 6
        assert sup._backoff_delay() == 1.0  # capped, no randomness


class TestTenantTagging:
    def test_population_stamps_tenant(self):
        pop = UserPopulation(n_users=100, seed=0, tenant="blue")
        jobs = pop.jobs_for([0.5, 1.0, 1.5])
        assert all(j.tenant == "blue" for j in jobs)
        rebuilt = UserPopulation.from_description(pop.describe())
        assert rebuilt.tenant == "blue"

    def test_pre_tenant_population_description_loads(self):
        pop = UserPopulation(n_users=100, seed=0)
        desc = pop.describe()
        del desc["tenant"]  # a header recorded before the tenant layer
        assert UserPopulation.from_description(desc).tenant is None

    def test_trace_roundtrips_tenant_field(self, tmp_path):
        jobs = [
            Job(job_id=0, arrival=0.0, service=1.0, tenant="a"),
            Job(job_id=1, arrival=0.5, service=2.0),  # anonymous
        ]
        path = tmp_path / "t.trace"
        TrafficTrace.record(path, jobs)
        loaded = TrafficTrace.load(path)
        assert loaded.jobs == jobs

    def test_jobs_from_arrivals_tenant_args_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            jobs_from_arrivals([0.0], [1.0], tenant="a", tenants=["b"])


# ---------------------------------------------------------------------------
# mummi brownout coupling
# ---------------------------------------------------------------------------


class TestMummiBrownout:
    def test_degrade_rung_forces_surrogate_cycle(self):
        from repro.workflow.mummi import MummiCampaign

        ladder = BrownoutLadder()
        campaign = MummiCampaign(n_gpus=4, jobs_per_cycle=4,
                                 steps_per_sim=100, seed=0,
                                 tenant="mummi", ladder=ladder)
        campaign.run_cycle()
        assert campaign.rungs_served[-1] == "micro-md"
        ladder.observe(10.0)
        ladder.observe(10.0)  # now at degrade
        campaign.run_cycle()
        assert campaign.rungs_served[-1] == "surrogate"
        state = campaign.checkpoint_state()
        assert state["ladder"]["rung_index"] == 2

    def test_tenant_tag_reaches_micro_jobs(self):
        from repro.workflow.mummi import MummiCampaign

        registry = TenancySpec(
            tenants=(TenantSpec(name="mummi"),), window=10.0,
        ).make()
        campaign = MummiCampaign(n_gpus=4, jobs_per_cycle=4,
                                 steps_per_sim=100, seed=0,
                                 tenant="mummi", admission=registry)
        campaign.run_cycle()
        # the registry saw (and charged) the campaign's offered load
        assert registry.offered_rate("mummi", 0.0) > 0.0
