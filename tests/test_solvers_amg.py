"""Tests for coarsening, interpolation, and the BoomerAMG proxy."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.forall import ExecutionContext
from repro.solvers.boomeramg import BoomerAMG
from repro.solvers.coarsen import (
    C_POINT,
    F_POINT,
    coarse_fine_counts,
    pmis_coarsen,
    rs_coarsen,
    strength_graph,
)
from repro.solvers.csr import CsrMatrix
from repro.solvers.interp import direct_interpolation, interpolation_quality
from repro.solvers.krylov import pcg
from repro.solvers.problems import anisotropic_2d, poisson_2d, poisson_3d


class TestStrengthGraph:
    def test_poisson_all_neighbors_strong(self):
        a = poisson_2d(5)
        s = strength_graph(a, theta=0.25)
        # 5-point Laplacian: every off-diagonal is equally strong
        offdiag_nnz = a.nnz - a.shape[0]
        assert s.nnz == offdiag_nnz

    def test_anisotropy_drops_weak_direction(self):
        a = anisotropic_2d(8, epsilon=0.01)
        s = strength_graph(a, theta=0.25)
        # weak (epsilon) couplings must be filtered out
        assert s.nnz < (a.nnz - a.shape[0])

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            strength_graph(poisson_2d(3), theta=0.0)
        with pytest.raises(ValueError):
            strength_graph(poisson_2d(3), theta=1.5)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            strength_graph(np.ones((2, 3)))

    def test_positive_offdiagonals_not_strong(self):
        a = np.array([[2.0, 1.0], [1.0, 2.0]])  # positive coupling
        s = strength_graph(a)
        assert s.nnz == 0


class TestCoarsening:
    @pytest.mark.parametrize("coarsen", [rs_coarsen, pmis_coarsen])
    def test_labels_are_binary(self, coarsen):
        s = strength_graph(poisson_2d(10))
        labels = coarsen(s)
        assert set(np.unique(labels)) <= {C_POINT, F_POINT}

    @pytest.mark.parametrize("coarsen", [rs_coarsen, pmis_coarsen])
    def test_reasonable_coarsening_ratio(self, coarsen):
        s = strength_graph(poisson_2d(16))
        n_c, n_f = coarse_fine_counts(coarsen(s))
        frac = n_c / (n_c + n_f)
        assert 0.15 < frac < 0.75  # 2D Poisson coarsens to ~1/4..1/2

    def test_rs_every_f_has_strong_c_neighbor(self):
        a = poisson_2d(12)
        s = strength_graph(a)
        labels = rs_coarsen(s)
        s_csr = sp.csr_matrix(s)
        for i in np.flatnonzero(labels == F_POINT):
            nbrs = s_csr.indices[s_csr.indptr[i]:s_csr.indptr[i + 1]]
            assert any(labels[j] == C_POINT for j in nbrs), f"F point {i} isolated"

    def test_pmis_c_points_independent(self):
        """No two C points may be strong neighbors (MIS property)."""
        a = poisson_2d(12)
        s = strength_graph(a)
        labels = pmis_coarsen(s)
        sym = sp.csr_matrix(((s + s.T) > 0).astype(float))
        c_set = labels == C_POINT
        coo = sym.tocoo()
        both_c = c_set[coo.row] & c_set[coo.col]
        assert not both_c.any()

    @pytest.mark.parametrize("coarsen", [rs_coarsen, pmis_coarsen])
    def test_deterministic_given_seed(self, coarsen):
        s = strength_graph(poisson_2d(9))
        np.testing.assert_array_equal(coarsen(s, seed=4), coarsen(s, seed=4))

    def test_isolated_points_become_f(self):
        a = sp.identity(5, format="csr")
        s = strength_graph(a)
        for coarsen in (rs_coarsen, pmis_coarsen):
            labels = coarsen(s)
            assert (labels == F_POINT).all()


class TestInterpolation:
    def test_shapes(self):
        a = poisson_2d(8)
        s = strength_graph(a)
        labels = rs_coarsen(s)
        p = direct_interpolation(a, s, labels)
        n_c, _ = coarse_fine_counts(labels)
        assert p.shape == (64, n_c)

    def test_c_points_inject(self):
        a = poisson_2d(8)
        s = strength_graph(a)
        labels = rs_coarsen(s)
        p = direct_interpolation(a, s, labels)
        c_rows = np.flatnonzero(labels == C_POINT)
        sub = p[c_rows]
        assert (sub.getnnz(axis=1) == 1).all()
        assert np.allclose(sub.data, 1.0)

    def test_preserves_constants(self):
        """Direct interpolation on an M-matrix with zero row sums in the
        interior preserves the constant vector where rows are fully
        interior."""
        a = poisson_2d(10)
        s = strength_graph(a)
        labels = rs_coarsen(s)
        p = direct_interpolation(a, s, labels)
        err, zero_frac = interpolation_quality(p)
        # boundary rows have nonzero row sums in a, so allow slack, but
        # interpolation must be well-scaled and nearly-complete
        assert zero_frac < 0.05
        assert err < 1.5

    def test_label_length_mismatch(self):
        a = poisson_2d(4)
        s = strength_graph(a)
        with pytest.raises(ValueError):
            direct_interpolation(a, s, np.zeros(3, dtype=int))

    def test_no_coarse_points_raises(self):
        a = sp.identity(4, format="csr")
        s = strength_graph(a)
        labels = np.full(4, F_POINT)
        with pytest.raises(ValueError):
            direct_interpolation(a, s, labels)


class TestBoomerAMG:
    @pytest.mark.parametrize("coarsening", ["rs", "pmis"])
    def test_solver_converges_2d(self, coarsening):
        a = poisson_2d(24)
        amg = BoomerAMG(coarsening=coarsening)
        amg.setup(a)
        b = np.ones(a.shape[0])
        x, info = amg.solve(b, tol=1e-8, max_iter=100)
        assert info.converged
        assert np.linalg.norm(a @ x - b) < 1e-6 * np.linalg.norm(b)

    def test_solver_converges_3d(self):
        a = poisson_3d(8)
        amg = BoomerAMG()
        amg.setup(a)
        b = np.ones(a.shape[0])
        x, info = amg.solve(b, tol=1e-8)
        assert info.converged

    def test_hierarchy_properties(self):
        a = poisson_2d(32)
        amg = BoomerAMG()
        h = amg.setup(a)
        assert h.num_levels >= 3
        assert 1.0 < h.operator_complexity < 4.0
        assert 1.0 < h.grid_complexity < 3.0
        # levels strictly shrink
        sizes = [lvl.a.n_rows for lvl in h.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_preconditions_pcg(self):
        a = poisson_2d(24)
        amg = BoomerAMG()
        amg.setup(a)
        b = np.ones(a.shape[0])
        _, plain = pcg(CsrMatrix(a), b, tol=1e-8, max_iter=1000)
        _, prec = pcg(CsrMatrix(a), b, preconditioner=amg.as_preconditioner(),
                      tol=1e-8, max_iter=1000)
        assert prec.converged
        assert prec.iterations < plain.iterations / 2

    def test_solve_before_setup_raises(self):
        amg = BoomerAMG()
        with pytest.raises(RuntimeError):
            amg.solve(np.ones(4))
        with pytest.raises(RuntimeError):
            amg.vcycle(np.ones(4))
        with pytest.raises(RuntimeError):
            amg.as_preconditioner()

    def test_solve_phase_records_spmv_kernels(self):
        """The ported solve phase is matvec-only: the trace must contain
        SpMV kernels and nothing from setup."""
        ctx = ExecutionContext()
        a = poisson_2d(16)
        amg = BoomerAMG(ctx=ctx)
        amg.setup(a)
        setup_kernels = len(ctx.trace.kernels)
        amg.vcycle(np.ones(a.shape[0]))
        solve_kernels = len(ctx.trace.kernels) - setup_kernels
        assert solve_kernels > 0
        assert all(
            k.name.startswith(("spmv", "spmvT"))
            for k in ctx.trace.kernels[setup_kernels:]
        )

    def test_anisotropic_converges(self):
        a = anisotropic_2d(16, epsilon=0.01)
        amg = BoomerAMG(theta=0.25)
        amg.setup(a)
        b = np.ones(a.shape[0])
        x, info = amg.solve(b, tol=1e-8, max_iter=100)
        assert info.converged

    def test_bad_options(self):
        with pytest.raises(ValueError):
            BoomerAMG(coarsening="hmm")
        with pytest.raises(ValueError):
            BoomerAMG(smoother="sor")
        with pytest.raises(ValueError):
            BoomerAMG(max_levels=0)

    def test_tiny_matrix_direct_solve(self):
        a = poisson_2d(3)  # 9 unknowns < coarse_size
        amg = BoomerAMG()
        amg.setup(a)
        assert amg.hierarchy.num_levels == 1
        b = np.ones(9)
        x, info = amg.solve(b)
        assert info.converged
        np.testing.assert_allclose(a @ x, b, atol=1e-8)


class TestSetupPhaseAccounting:
    """§5 future work: what porting the AMG setup phase to GPUs costs."""

    def test_setup_trace_populated(self):
        amg = BoomerAMG(coarsening="pmis")
        amg.setup(poisson_2d(24))
        names = {k.name for k in amg.setup_trace.kernels}
        assert {"setup-strength", "setup-pmis", "setup-interp",
                "setup-galerkin"} <= names
        assert amg.setup_gpu_portable

    def test_rs_setup_not_gpu_portable(self):
        amg = BoomerAMG(coarsening="rs")
        amg.setup(poisson_2d(24))
        names = {k.name for k in amg.setup_trace.kernels}
        assert "setup-pmis" not in names
        assert not amg.setup_gpu_portable

    def test_galerkin_dominates_setup_flops(self):
        """The spgemm triple product is the setup phase's heavy kernel —
        the reason the port is research, not a weekend."""
        amg = BoomerAMG(coarsening="pmis")
        amg.setup(poisson_2d(32))
        by_name = {}
        for k in amg.setup_trace.kernels:
            by_name[k.name] = by_name.get(k.name, 0.0) + k.flops * k.launches
        assert by_name["setup-galerkin"] > sum(
            v for n, v in by_name.items() if n != "setup-galerkin"
        ) / 2

    def test_setup_vs_solve_gpu_amenability(self):
        """Setup kernels run at a much lower fraction of peak than the
        SpMV-only solve phase (why the solve was ported first)."""
        from repro.core.machine import get_machine
        from repro.core.roofline import RooflineModel
        from repro.core.forall import ExecutionContext

        ctx = ExecutionContext()
        amg = BoomerAMG(coarsening="pmis", ctx=ctx)
        amg.setup(poisson_2d(32))
        amg.vcycle(np.ones(1024))
        model = RooflineModel(get_machine("sierra"))
        setup_eff = min(k.bandwidth_efficiency
                        for k in amg.setup_trace.kernels)
        solve_eff = min(k.bandwidth_efficiency for k in ctx.trace.kernels)
        assert setup_eff < solve_eff
        # both are still finite GPU work: the port is possible
        assert model.run_on_gpu(amg.setup_trace).total > 0
