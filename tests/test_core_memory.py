"""Tests for the mini-Umpire memory layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import KernelTrace
from repro.core.memory import (
    AllocationError,
    ManagedArray,
    MemorySpace,
    QuickPool,
    ResourceManager,
    UM_PAGE_BYTES,
)


class TestResourceManager:
    def test_allocate_tracks_live_bytes(self):
        rm = ResourceManager()
        arr = rm.allocate((100,), space=MemorySpace.DEVICE)
        assert rm.live_bytes(MemorySpace.DEVICE) == arr.nbytes

    def test_deallocate_releases(self):
        rm = ResourceManager()
        arr = rm.allocate((100,), space=MemorySpace.DEVICE)
        arr.free()
        assert rm.live_bytes(MemorySpace.DEVICE) == 0

    def test_high_water_mark(self):
        rm = ResourceManager()
        a = rm.allocate((1000,), space=MemorySpace.HOST)
        a.free()
        rm.allocate((10,), space=MemorySpace.HOST)
        assert rm.high_water(MemorySpace.HOST) == 8000

    def test_fill(self):
        rm = ResourceManager()
        arr = rm.allocate((4,), fill=3.0)
        np.testing.assert_array_equal(arr.data, 3.0)

    def test_device_capacity_enforced(self):
        rm = ResourceManager(device_capacity_bytes=1000)
        rm.allocate((100,), space=MemorySpace.DEVICE)  # 800 B
        with pytest.raises(AllocationError):
            rm.allocate((100,), space=MemorySpace.DEVICE)

    def test_capacity_counts_unified_too(self):
        rm = ResourceManager(device_capacity_bytes=1000)
        rm.allocate((100,), space=MemorySpace.UNIFIED)
        with pytest.raises(AllocationError):
            rm.allocate((100,), space=MemorySpace.DEVICE)

    def test_host_not_capacity_limited(self):
        rm = ResourceManager(device_capacity_bytes=10)
        rm.allocate((1000,), space=MemorySpace.HOST)  # fine

    def test_adopt(self):
        rm = ResourceManager()
        data = np.zeros(10)
        arr = rm.adopt(data, MemorySpace.DEVICE, name="wrapped")
        assert arr.data is data
        assert rm.live_bytes(MemorySpace.DEVICE) == 80


class TestCopiesAndMoves:
    def test_copy_records_h2d_transfer(self):
        rm = ResourceManager()
        h = rm.allocate((128,), space=MemorySpace.HOST, fill=1.0)
        d = rm.allocate((128,), space=MemorySpace.DEVICE)
        rm.copy(h, d, name="upload")
        np.testing.assert_array_equal(d.data, 1.0)
        assert len(rm.trace.transfers) == 1
        assert rm.trace.transfers[0].direction == "h2d"

    def test_copy_within_space_records_nothing(self):
        rm = ResourceManager()
        a = rm.allocate((8,), space=MemorySpace.HOST, fill=2.0)
        b = rm.allocate((8,), space=MemorySpace.HOST)
        rm.copy(a, b)
        assert len(rm.trace.transfers) == 0

    def test_copy_shape_mismatch(self):
        rm = ResourceManager()
        a = rm.allocate((8,))
        b = rm.allocate((9,))
        with pytest.raises(ValueError):
            rm.copy(a, b)

    def test_move_rehomes_and_records(self):
        rm = ResourceManager()
        arr = rm.allocate((64,), space=MemorySpace.HOST)
        rm.move(arr, MemorySpace.DEVICE)
        assert arr.space is MemorySpace.DEVICE
        assert rm.live_bytes(MemorySpace.HOST) == 0
        assert rm.live_bytes(MemorySpace.DEVICE) == arr.nbytes
        assert rm.trace.transfers[-1].direction == "h2d"

    def test_move_noop_same_space(self):
        rm = ResourceManager()
        arr = rm.allocate((64,), space=MemorySpace.DEVICE)
        rm.move(arr, MemorySpace.DEVICE)
        assert len(rm.trace.transfers) == 0

    def test_d2h_direction(self):
        rm = ResourceManager()
        arr = rm.allocate((64,), space=MemorySpace.DEVICE)
        rm.move(arr, MemorySpace.HOST)
        assert rm.trace.transfers[-1].direction == "d2h"


class TestUnifiedMemory:
    def test_touch_records_page_granularity(self):
        rm = ResourceManager()
        arr = rm.allocate((UM_PAGE_BYTES // 8 * 3,), space=MemorySpace.UNIFIED)
        rm.touch_unified(arr)
        t = rm.trace.transfers[-1]
        assert t.count == 3
        assert t.nbytes == UM_PAGE_BYTES

    def test_small_um_touch_one_page(self):
        rm = ResourceManager()
        arr = rm.allocate((4,), space=MemorySpace.UNIFIED)
        rm.touch_unified(arr)
        assert rm.trace.transfers[-1].count == 1

    def test_touch_non_um_raises(self):
        rm = ResourceManager()
        arr = rm.allocate((4,), space=MemorySpace.HOST)
        with pytest.raises(ValueError):
            rm.touch_unified(arr)


class TestQuickPool:
    def test_reuse_hits_free_list(self):
        rm = ResourceManager()
        pool = QuickPool(rm, space=MemorySpace.DEVICE)
        a = pool.allocate((100,))
        pool.release(a)
        b = pool.allocate((100,))
        assert pool.hits == 1
        assert pool.misses == 1

    def test_pool_amortizes_manager_allocs(self):
        rm = ResourceManager()
        pool = QuickPool(rm, space=MemorySpace.DEVICE)
        for _ in range(10):
            arr = pool.allocate((64,))
            pool.release(arr)
        assert rm.stats[MemorySpace.DEVICE].alloc_count == 1

    def test_release_foreign_array_raises(self):
        rm = ResourceManager()
        pool = QuickPool(rm)
        arr = rm.allocate((4,), space=MemorySpace.DEVICE)
        with pytest.raises(ValueError):
            pool.release(arr)

    def test_allocation_usable(self):
        rm = ResourceManager()
        pool = QuickPool(rm, space=MemorySpace.DEVICE)
        arr = pool.allocate((5, 5), dtype=np.float32)
        arr.data[:] = 7.0
        assert arr.data.shape == (5, 5)
        assert arr.data.dtype == np.float32
        np.testing.assert_array_equal(arr.data, 7.0)

    def test_growth_factor_validation(self):
        rm = ResourceManager()
        with pytest.raises(ValueError):
            QuickPool(rm, growth_factor=0.5)

    @given(n=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_bucket_power_of_two_and_covers(self, n):
        b = QuickPool._bucket(n)
        assert b >= n
        assert b & (b - 1) == 0
