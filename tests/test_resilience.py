"""Tests for the resilience layer: fault model, injector, retry
policies, scheduler-level recovery, and checkpoint/restart with ABFT
across the PCG/AMG solvers, ddcMD, and the MuMMI campaign."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import FaultSpec, YEAR_SECONDS, get_machine
from repro.md.ddcmd import DdcMD, make_martini_membrane
from repro.md.integrators import LangevinThermostat
from repro.resilience import (
    CappedRetry,
    CheckpointStore,
    ExponentialBackoff,
    FaultInjector,
    ImmediateRetry,
    ResilientDriver,
    fault_spec_for,
    state_nbytes,
)
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator
from repro.sched.workloads import batch_workload
from repro.solvers.boomeramg import BoomerAMG
from repro.solvers.csr import CsrMatrix
from repro.solvers.krylov import PcgSolver, pcg
from repro.solvers.problems import poisson_2d, random_spd
from repro.util.rng import make_rng
from repro.workflow.mummi import MummiCampaign

SETTINGS = settings(max_examples=10, deadline=None)


def make_md(seed=3, thermostat_seed=7):
    system, proc, bonds, angles = make_martini_membrane(
        n_lipids_per_leaflet=9, n_water=32, seed=seed
    )
    thermo = LangevinThermostat(
        temperature=1.0, friction=1.0, seed=thermostat_seed
    )
    return DdcMD(system, proc, dt=0.002, bonds=bonds, angles=angles,
                 thermostat=thermo)


class TestFaultModel:
    def test_system_mtbf_scales_with_components(self):
        spec = FaultSpec(node_mtbf=10 * YEAR_SECONDS,
                         gpu_mtbf=5 * YEAR_SECONDS)
        one = spec.system_mtbf(1, gpus_per_node=4)
        many = spec.system_mtbf(100, gpus_per_node=4)
        assert many == pytest.approx(one / 100)
        # GPUs dominate the rate: 4 GPUs at 5y beat 1 node at 10y
        assert spec.system_mtbf(1, 4) < spec.node_mtbf / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(node_mtbf=0.0)
        with pytest.raises(ValueError):
            FaultSpec(node_mtbf=1.0, sdc_per_gpu_hour=-1)
        spec = FaultSpec(node_mtbf=1.0)
        with pytest.raises(ValueError):
            spec.system_mtbf(0)

    def test_catalog_machines_have_specs(self):
        for name in ("sierra", "ea-minsky", "surface", "rzhasgpu", "bgq"):
            assert get_machine(name).faults is not None
        # Sierra at full scale fails every few hours, not every few years
        sierra = get_machine("sierra")
        mtbf = sierra.faults.system_mtbf(sierra.max_nodes,
                                         sierra.gpus_per_node)
        assert 3600 < mtbf < 48 * 3600

    def test_heuristic_fallback(self):
        kraken = get_machine("kraken")  # no calibrated spec
        assert kraken.faults is None
        spec = fault_spec_for(kraken)
        assert spec.node_mtbf > 0
        assert spec.gpu_mtbf == float("inf")  # CPU-only node
        # calibrated machines pass through unchanged
        assert fault_spec_for(get_machine("sierra")) is get_machine(
            "sierra").faults


class TestFaultInjector:
    def test_deterministic_schedule(self):
        a = FaultInjector(mtbf=10.0, seed=4)
        b = FaultInjector(mtbf=10.0, seed=4)
        ta = [a.next_fault_after(0.0) for _ in range(10)]
        tb = [b.next_fault_after(0.0) for _ in range(10)]
        assert ta == tb

    def test_checkpoint_replays_stream(self):
        inj = FaultInjector(mtbf=10.0, kill_per_step=0.5, seed=0)
        state = inj.checkpoint_state()
        first = [inj.draw_kill() for _ in range(20)]
        inj.restore_state(state)
        assert [inj.draw_kill() for _ in range(20)] == first

    def test_for_machine_time_scale(self):
        sierra = get_machine("sierra")
        inj = FaultInjector.for_machine(sierra, nodes=sierra.max_nodes,
                                        time_scale=1e-4, seed=0)
        mtbf = sierra.faults.system_mtbf(sierra.max_nodes,
                                         sierra.gpus_per_node)
        assert inj.mtbf == pytest.approx(mtbf * 1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(mtbf=0.0)
        with pytest.raises(ValueError):
            FaultInjector(kill_per_step=1.5)
        with pytest.raises(ValueError):
            FaultInjector().pick_victim(0)


class TestRetryPolicies:
    def test_immediate(self):
        p = ImmediateRetry()
        assert p.requeue_delay(1) == 0.0
        assert p.requeue_delay(1000) == 0.0

    def test_capped(self):
        p = CappedRetry(max_retries=2, delay=5.0)
        assert p.requeue_delay(1) == 5.0
        assert p.requeue_delay(2) == 5.0
        assert p.requeue_delay(3) is None

    def test_backoff(self):
        p = ExponentialBackoff(base=1.0, factor=2.0, max_delay=6.0,
                               max_retries=4)
        assert [p.requeue_delay(k) for k in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 6.0]
        assert p.requeue_delay(5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CappedRetry(max_retries=-1)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ImmediateRetry().requeue_delay(0)


class TestSchedulerRecovery:
    def test_faults_kill_and_retry(self):
        jobs = batch_workload(n_jobs=100, seed=0)
        inj = FaultInjector(mtbf=100.0, seed=1)
        r = ClusterSimulator(8).run(jobs, Fcfs(), fault_injector=inj,
                                    retry_policy=ImmediateRetry())
        assert r.failures > 0
        assert r.retries == r.failures  # immediate retry never drops
        assert r.dropped == 0
        assert r.completed == 100
        assert r.wasted_time > 0
        assert r.goodput < r.utilization  # wasted work occupies GPUs

    def test_faultfree_run_unchanged(self):
        """Without an injector the accounting matches the old model."""
        jobs = batch_workload(n_jobs=100, seed=0)
        r = ClusterSimulator(8).run(jobs, Fcfs())
        assert r.failures == 0 and r.retries == 0 and r.wasted_time == 0
        assert r.goodput == pytest.approx(r.utilization)
        assert r.started == 100 and r.in_flight == 0

    def test_zero_retry_cap_drops_jobs(self):
        jobs = batch_workload(n_jobs=100, seed=0)
        inj = FaultInjector(mtbf=50.0, seed=1)
        r = ClusterSimulator(8).run(jobs, Fcfs(), fault_injector=inj,
                                    retry_policy=CappedRetry(max_retries=0))
        assert r.failures > 0
        assert r.dropped == r.failures
        assert r.completed + r.dropped == 100

    def test_backoff_delays_requeue(self):
        """With a long backoff the killed job re-arrives later, so the
        makespan stretches past the immediate-retry one."""
        jobs = batch_workload(n_jobs=50, seed=2)
        fast = ClusterSimulator(4).run(
            jobs, Fcfs(), fault_injector=FaultInjector(mtbf=80.0, seed=3),
            retry_policy=ImmediateRetry())
        slow = ClusterSimulator(4).run(
            jobs, Fcfs(), fault_injector=FaultInjector(mtbf=80.0, seed=3),
            retry_policy=ExponentialBackoff(base=200.0, factor=2.0))
        assert fast.failures > 0
        assert slow.makespan > fast.makespan

    def test_goodput_degrades_as_mtbf_shrinks(self):
        jobs = batch_workload(n_jobs=400, seed=0)
        goodputs = []
        for mtbf in (1e9, 200.0, 50.0):
            inj = FaultInjector(mtbf=mtbf, seed=0)
            r = ClusterSimulator(8).run(jobs, Fcfs(), fault_injector=inj,
                                        retry_policy=ImmediateRetry())
            goodputs.append(r.goodput)
        assert goodputs[0] > goodputs[1] > goodputs[2]

    def test_fault_schedule_deterministic(self):
        jobs = batch_workload(n_jobs=100, seed=0)
        runs = [
            ClusterSimulator(8).run(
                jobs, Fcfs(), fault_injector=FaultInjector(mtbf=60.0, seed=7),
                retry_policy=ImmediateRetry())
            for _ in range(2)
        ]
        assert runs[0].failures == runs[1].failures
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].queue_series == runs[1].queue_series


class TestPcgRecovery:
    def _problem(self, n=60, seed=0):
        a = CsrMatrix(random_spd(n, density=0.12, seed=seed))
        b = make_rng(seed + 1).random(n)
        return a, b

    def test_stepwise_matches_pcg(self):
        a, b = self._problem()
        x_ref, info_ref = pcg(a, b, tol=1e-10, max_iter=400)
        s = PcgSolver(a, b, tol=1e-10, max_iter=400)
        x, info = s.solve()
        assert np.array_equal(x, x_ref)
        assert info.iterations == info_ref.iterations
        assert info.residual_norms == info_ref.residual_norms

    def test_driver_kill_recovery_bit_exact(self):
        a, b = self._problem()
        x_ref, _ = pcg(a, b, tol=1e-10, max_iter=400)
        s = PcgSolver(a, b, tol=1e-10, max_iter=400)
        rep = ResilientDriver(
            s, cadence=3,
            injector=FaultInjector(kill_per_step=0.15, seed=5),
        ).run()
        assert rep.kills > 0
        assert rep.wasted_steps > 0
        assert np.array_equal(s.x, x_ref)

    def test_abft_detects_all_corruptions_above_tol(self):
        """Acceptance: 100% detection for corruptions above the
        residual tolerance."""
        a, b = self._problem()
        rng = make_rng(42)
        detected = 0
        trials = 20
        for _ in range(trials):
            s = PcgSolver(a, b, tol=1e-10, max_iter=400)
            for _ in range(int(rng.integers(1, 10))):
                s.step()
            assert s.abft_error() < 1e-8  # healthy state passes
            s.corrupt(rng, magnitude=float(rng.uniform(0.1, 100.0)))
            if s.abft_error() > 1e-6:
                detected += 1
        assert detected == trials

    def test_driver_rolls_back_sdc(self):
        a, b = self._problem()
        x_ref, _ = pcg(a, b, tol=1e-10, max_iter=400)
        s = PcgSolver(a, b, tol=1e-10, max_iter=400)
        rep = ResilientDriver(
            s, cadence=2,
            injector=FaultInjector(sdc_per_step=0.1, sdc_magnitude=50.0,
                                   seed=9),
            abft_tol=1e-6,
        ).run()
        assert rep.sdc_injected > 0
        assert rep.sdc_detected == rep.sdc_injected
        assert rep.rollbacks >= rep.sdc_detected
        assert np.array_equal(s.x, x_ref)


class TestAmgRecovery:
    def _setup(self):
        a = poisson_2d(12)
        amg = BoomerAMG(coarse_size=20)
        amg.setup(a)
        b = make_rng(0).random(a.shape[0])
        return amg, b

    def test_session_matches_solve(self):
        amg, b = self._setup()
        x_ref, info_ref = amg.solve(b, tol=1e-8, max_iter=60)
        x, info = amg.solve_session(b, tol=1e-8, max_iter=60).solve()
        assert np.array_equal(x, x_ref)
        assert info.iterations == info_ref.iterations

    def test_kill_recovery_bit_exact(self):
        amg, b = self._setup()
        x_ref, _ = amg.solve(b, tol=1e-8, max_iter=60)
        session = amg.solve_session(b, tol=1e-8, max_iter=60)
        rep = ResilientDriver(
            session, cadence=4,
            injector=FaultInjector(kill_per_step=0.2, seed=3),
        ).run()
        assert rep.kills > 0
        assert np.array_equal(session.x, x_ref)

    def test_abft_detects_corruption(self):
        amg, b = self._setup()
        session = amg.solve_session(b, tol=1e-8, max_iter=60)
        session.step()
        assert session.abft_error() < 1e-10
        session.corrupt(make_rng(0), magnitude=10.0)
        assert session.abft_error() > 1e-6


class TestDdcmdRecovery:
    def test_kill_recovery_bit_exact(self):
        ref = make_md()
        ref.run(30)
        sim = make_md()
        rep = ResilientDriver(
            sim, cadence=5,
            injector=FaultInjector(kill_per_step=0.08, seed=11),
        ).run(max_steps=30)
        assert rep.kills > 0
        assert sim.steps_taken == 30
        assert np.array_equal(ref.system.x, sim.system.x)
        assert np.array_equal(ref.system.v, sim.system.v)

    def test_abft_energy_check_detects_corruption(self):
        sim = make_md()
        sim.run(5)
        assert sim.abft_error() == pytest.approx(0.0)
        sim.corrupt(make_rng(1), magnitude=100.0)
        assert sim.abft_error() > 0.5

    def test_driver_rolls_back_md_sdc(self):
        ref = make_md()
        ref.run(20)
        sim = make_md()
        rep = ResilientDriver(
            sim, cadence=4,
            injector=FaultInjector(sdc_per_step=0.2, sdc_magnitude=100.0,
                                   seed=1),
            abft_tol=0.5,
        ).run(max_steps=20)
        assert rep.sdc_injected > 0
        assert rep.sdc_detected == rep.sdc_injected
        assert np.array_equal(ref.system.x, sim.system.x)


class TestCampaignRecovery:
    def test_crash_restart_bit_exact(self):
        ref = MummiCampaign(n_gpus=8, jobs_per_cycle=8, seed=0)
        ref.run(5)
        camp = MummiCampaign(n_gpus=8, jobs_per_cycle=8, seed=0)
        camp.run(2)
        ck = camp.checkpoint_state()
        camp.run(2)  # work a crash will destroy
        camp.restore_state(ck)
        camp.run(3)
        assert camp.explored == ref.explored
        assert np.array_equal(camp.macro.field, ref.macro.field)
        assert camp.gpu_hours == ref.gpu_hours
        assert camp.wall_time == ref.wall_time
        assert [
            (r.composition, r.observable) for r in camp.results
        ] == [(r.composition, r.observable) for r in ref.results]

    def test_driver_runs_campaign(self):
        camp = MummiCampaign(n_gpus=8, jobs_per_cycle=8, seed=1)
        rep = ResilientDriver(
            camp, cadence=2,
            injector=FaultInjector(kill_per_step=0.3, seed=5),
        ).run(max_steps=4)
        assert camp.cycles_done == 4
        assert rep.kills > 0

    def test_scheduler_faults_reach_campaign_accounting(self):
        camp = MummiCampaign(
            n_gpus=8, jobs_per_cycle=16, seed=0,
            fault_injector=FaultInjector(mtbf=20.0, seed=3),
            retry_policy=ImmediateRetry(),
        )
        camp.run(3)
        assert camp.failures > 0
        assert camp.job_retries == camp.failures
        assert camp.wasted_gpu_hours > 0

    def test_abft_field_check(self):
        camp = MummiCampaign(n_gpus=8, jobs_per_cycle=8, seed=0)
        camp.run_cycle()
        assert camp.abft_error() < 0.1
        camp.corrupt(make_rng(0), magnitude=1e6)
        assert camp.abft_error() > 1.0


class TestCheckpointStore:
    def test_snapshot_isolation(self):
        store = CheckpointStore()
        state = {"x": np.arange(4.0)}
        store.save(0, state)
        state["x"][0] = 99.0  # live mutation must not reach the store
        _, loaded = store.load()
        assert loaded["x"][0] == 0.0
        loaded["x"][1] = 77.0  # nor must mutation of a loaded copy
        _, again = store.load()
        assert again["x"][1] == 1.0

    def test_accounting(self):
        store = CheckpointStore()
        assert not store.has_checkpoint
        with pytest.raises(RuntimeError):
            store.load()
        store.save(0, {"x": np.zeros(10)})
        assert store.has_checkpoint
        assert store.nbytes == 80
        assert state_nbytes({"a": np.zeros(3), "b": [np.zeros(2)],
                             "c": 1.0}) == 40
        sierra = get_machine("sierra")
        assert store.modeled_write_time(sierra) == pytest.approx(
            80 / sierra.nvme_bw)

    def test_driver_requires_termination(self):
        sim = make_md()
        with pytest.raises(ValueError):
            ResilientDriver(sim).run()  # no done, no max_steps
        with pytest.raises(ValueError):
            ResilientDriver(sim, cadence=0)


class TestRecoveryProperties:
    """Hypothesis: run-to-checkpoint -> restore -> finish equals an
    uninterrupted run, exactly, for any seed."""

    @given(seed=st.integers(0, 1000), k=st.integers(1, 8))
    @SETTINGS
    def test_pcg_checkpoint_restore_exact(self, seed, k):
        a = CsrMatrix(random_spd(30, density=0.15, seed=seed))
        b = make_rng(seed + 1).random(30)
        ref = PcgSolver(a, b, tol=1e-10, max_iter=200)
        x_ref, _ = ref.solve()
        s = PcgSolver(a, b, tol=1e-10, max_iter=200)
        for _ in range(k):
            s.step()
        ck = s.checkpoint_state()
        for _ in range(3):  # work the crash destroys
            s.step()
        s.restore_state(ck)
        while not s.done:
            s.step()
        assert np.array_equal(s.x, x_ref)
        assert s.info().residual_norms == ref.info().residual_norms

    @given(seed=st.integers(0, 200), k=st.integers(1, 10))
    @SETTINGS
    def test_ddcmd_checkpoint_restore_exact(self, seed, k):
        n_steps = 14
        ref = make_md(seed=seed % 5, thermostat_seed=seed)
        ref.run(n_steps)
        sim = make_md(seed=seed % 5, thermostat_seed=seed)
        sim.run(k)
        ck = sim.checkpoint_state()
        sim.run(2)  # work the crash destroys
        sim.restore_state(ck)
        sim.run(n_steps - k)
        assert np.array_equal(ref.system.x, sim.system.x)
        assert np.array_equal(ref.system.v, sim.system.v)
        assert ref.total_energy() == sim.total_energy()

