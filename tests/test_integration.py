"""Cross-module integration tests: the library-interoperability story.

The paper's Tools-and-Libraries lesson is that the *integration* of
components (shared memory spaces, shared traces, data handed between
libraries without copies) is where performance and correctness are won.
These tests exercise multi-package pipelines end to end.
"""

import numpy as np
import pytest

from repro.cardioid.dsl import ReactionKernelGenerator
from repro.cardioid.ionmodels import RATE_FUNCTIONS, V_RANGE
from repro.cardioid.simulation import MonodomainSimulation
from repro.core.forall import ExecPolicy, ExecutionContext
from repro.core.machine import MACHINES, get_machine
from repro.core.memory import MemorySpace
from repro.core.roofline import RooflineModel
from repro.fem.mesh import TensorMesh2D
from repro.fem.nonlinear import NonlinearDiffusion
from repro.ode.nvector import DeviceVector
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator, Job
from repro.solvers.boomeramg import BoomerAMG
from repro.solvers.problems import poisson_2d
from repro.stencil.grid import CartesianGrid3D
from repro.stencil.sw4lite import Sw4Lite, Sw4Options
from repro.workflow.mummi import MummiCampaign


class TestTraceToModelPipeline:
    """Any proxy's trace must be priceable on any GPU machine in the
    catalog — the contract between applications and the substrate."""

    def traced_apps(self):
        apps = []
        ctx = ExecutionContext()
        s = Sw4Lite(CartesianGrid3D(8, 8, 8), 1.0,
                    options=Sw4Options(), ctx=ctx)
        s.run(2)
        apps.append(("sw4lite", ctx.trace))
        ctx2 = ExecutionContext()
        sim = MonodomainSimulation((6, 4, 4), ctx=ctx2)
        sim.run(2)
        apps.append(("cardioid", ctx2.trace))
        ctx3 = ExecutionContext()
        amg = BoomerAMG(ctx=ctx3)
        amg.setup(poisson_2d(16))
        amg.vcycle(np.ones(256))
        apps.append(("hypre", ctx3.trace))
        return apps

    def test_every_gpu_machine_prices_every_trace(self):
        gpu_machines = [m for m in MACHINES.values() if m.gpu is not None]
        assert len(gpu_machines) >= 4
        for name, trace in self.traced_apps():
            for machine in gpu_machines:
                t = RooflineModel(machine).run_on_gpu(trace).total
                assert t > 0, (name, machine.name)

    def test_newer_gpus_strictly_faster(self):
        """V100 > P100 > K40 for every traced app."""
        order = ["sierra", "ea-minsky", "surface"]
        for name, trace in self.traced_apps():
            times = [
                RooflineModel(get_machine(m)).run_on_gpu(trace).kernel_time
                for m in order
            ]
            assert times[0] < times[1] < times[2], name


class TestDslIntoSimulation:
    def test_monodomain_with_dsl_rates_matches_reference(self):
        """Cardioid's full pipeline: DSL-generated kernels inside the
        tissue simulation give the same wave as the math library."""
        gen = ReactionKernelGenerator(RATE_FUNCTIONS, V_RANGE,
                                      tolerance=1e-7)
        baked = gen.generate_baked()
        sims = []
        for rates in (None, lambda v: baked(v)):
            sim = MonodomainSimulation((8, 4, 4), dt=0.02, rates=rates,
                                       seed=3)
            stim = sim.stimulate_region(
                (slice(0, 2), slice(None), slice(None)), 30.0
            )
            sim.run(200, i_stim=stim, stim_steps=100)
            sims.append(sim.membrane.v.copy())
        assert np.abs(sims[0] - sims[1]).max() < 0.5  # mV


class TestDeviceVectorsThroughSolvers:
    def test_bdf_on_device_vectors_stays_resident(self):
        """SUNDIALS integration discipline across packages: a full BDF
        integration whose state lives in DeviceVectors triggers no
        transfers after the initial upload."""
        from repro.core.memory import ResourceManager
        from repro.ode.bdf import BdfIntegrator, BdfOptions

        rm = ResourceManager()
        state = DeviceVector.from_host(np.ones(8), rm)
        uploads = len(rm.trace.transfers)
        lam = np.linspace(1.0, 50.0, 8)

        def rhs(t, u):
            return -lam * u

        def make_ls(gamma, t, u):
            return lambda r: r / (1.0 + gamma * lam)

        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-6, atol=1e-9))
        # integrate on the device-resident array in place
        _, us = integ.integrate(0.0, state.array, 1.0)
        np.testing.assert_allclose(us[-1], np.exp(-lam), atol=1e-4)
        assert len(rm.trace.transfers) == uploads  # no extra movement


class TestWorkflowOverScheduler:
    def test_campaign_jobs_fit_cluster_invariants(self):
        """MuMMI drives the real scheduler: capacity and accounting
        invariants hold across the package boundary."""
        camp = MummiCampaign(n_gpus=4, jobs_per_cycle=10, seed=2)
        metrics = camp.run_cycle()
        # 10 jobs on 4 GPUs: makespan at least ceil(10/4) job lengths
        per_job = camp.steps_per_sim * camp.step_time
        assert metrics["makespan"] >= 3 * 0.9 * per_job
        assert metrics["utilization"] <= 1.0

    def test_md_model_feeds_scheduler_consistently(self):
        """Faster MD -> shorter jobs -> shorter campaign makespan."""
        makespans = {}
        for code in ("ddcmd", "gromacs"):
            camp = MummiCampaign(n_gpus=4, jobs_per_cycle=8,
                                 md_code=code, seed=0)
            makespans[code] = camp.run_cycle()["makespan"]
        assert makespans["ddcmd"] < makespans["gromacs"]


class TestFemSolverOdeStack:
    def test_trace_covers_all_three_libraries(self):
        """One nonlinear-diffusion run must exercise MFEM (pa-*), hypre
        (spmv*), and SUNDIALS (the integrator around them) in a single
        shared trace — the §4.10.4 integration."""
        ctx = ExecutionContext()
        mesh = TensorMesh2D(5, 5, order=2)
        prob = NonlinearDiffusion(mesh, ctx=ctx)
        gx, gy = mesh.node_coords()
        u0 = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()
        _, _, integ = prob.integrate(u0, t_end=2e-3)
        names = {k.name for k in ctx.trace.kernels}
        assert any(n.startswith("pa-") for n in names)        # MFEM
        assert any(n.startswith("spmv") for n in names)       # hypre
        assert integ.stats.n_steps > 0                        # SUNDIALS
        assert integ.stats.n_lin_setups > 0

    def test_solution_quality_unaffected_by_tracing(self):
        """Tracing is observational: identical numerics with/without."""
        results = []
        for ctx in (None, ExecutionContext()):
            mesh = TensorMesh2D(4, 4, order=2)
            prob = NonlinearDiffusion(mesh, ctx=ctx)
            gx, gy = mesh.node_coords()
            u0 = (np.sin(np.pi * gx) * np.sin(np.pi * gy)).ravel()
            _, states, _ = prob.integrate(u0, t_end=2e-3)
            results.append(states[-1])
        np.testing.assert_array_equal(results[0], results[1])


class TestWorkloadDiversityEndToEnd:
    def test_one_smoke_run_per_activity(self):
        """Every Table 1 activity's proxy executes a real computation."""
        # Cardioid
        sim = MonodomainSimulation((4, 4, 4))
        sim.run(2)
        # Cretin
        from repro.kinetics import Zone, Minikin, make_model

        pops = Minikin(make_model("small")).solve_zone(Zone(0.3, 1.0))
        assert pops.sum() == pytest.approx(1.0)
        # ParaDyn
        from repro.paradyn import paradyn_kernel, slnsp

        prog = slnsp(paradyn_kernel(16))
        rng = np.random.default_rng(0)
        prog.run({k: rng.random(16)
                  for k, v in prog.array_kinds.items() if v == "input"})
        # MD
        from repro.md import DdcMD, LennardJones, PairProcessor, ParticleSystem, PeriodicBox

        ps = ParticleSystem.random_gas(27, PeriodicBox((5.0,) * 3),
                                       seed=0, min_separation=1.0)
        DdcMD(ps, PairProcessor(LennardJones()), dt=0.002).run(2)
        # SW4
        s = Sw4Lite(CartesianGrid3D(6, 6, 6), 1.0)
        s.run(2)
        # VBL
        from repro.vbl import BeamGrid, SplitStepPropagator, gaussian_beam

        prop = SplitStepPropagator(BeamGrid(32, 1e-3))
        prop.propagate(gaussian_beam(BeamGrid(32, 1e-3), 2e-4), 0.1, 2)
        # Tools & Libraries
        amg = BoomerAMG()
        amg.setup(poisson_2d(12))
        amg.solve(np.ones(144), max_iter=50)
        # Data Science
        from repro.dtrain.nn import MLP

        MLP(4, 2, seed=0).gradient(np.zeros((2, 4)), np.array([0, 1]))
        # Opt
        result = ClusterSimulator(2).run(
            [Job(0, 0.0, 1.0), Job(1, 0.0, 2.0)], Fcfs()
        )
        assert result.completed == 2
