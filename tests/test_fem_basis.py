"""Tests for 1D bases and quadrature."""

import numpy as np
import pytest

from repro.fem.basis import (
    Basis1D,
    gauss_legendre,
    gauss_lobatto,
    lagrange_deriv,
    lagrange_eval,
)


class TestQuadrature:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_gauss_legendre_exactness(self, n):
        """n-point GL integrates x^k exactly for k <= 2n-1."""
        x, w = gauss_legendre(n)
        for k in range(2 * n):
            exact = (1 - (-1) ** (k + 1)) / (k + 1)
            assert w @ x**k == pytest.approx(exact, abs=1e-12)

    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_gauss_lobatto_exactness(self, n):
        """n-point GLL integrates x^k exactly for k <= 2n-3."""
        x, w = gauss_lobatto(n)
        for k in range(2 * n - 2):
            exact = (1 - (-1) ** (k + 1)) / (k + 1)
            assert w @ x**k == pytest.approx(exact, abs=1e-12)

    def test_gll_includes_endpoints(self):
        x, _ = gauss_lobatto(6)
        assert x[0] == pytest.approx(-1.0)
        assert x[-1] == pytest.approx(1.0)
        assert np.all(np.diff(x) > 0)

    def test_weights_positive_sum_two(self):
        for n in (2, 4, 7):
            _, w = gauss_lobatto(n)
            assert np.all(w > 0)
            assert w.sum() == pytest.approx(2.0)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)
        with pytest.raises(ValueError):
            gauss_lobatto(1)


class TestLagrange:
    def test_cardinal_property(self):
        nodes, _ = gauss_lobatto(5)
        l = lagrange_eval(nodes, nodes)
        np.testing.assert_allclose(l, np.eye(5), atol=1e-12)

    def test_partition_of_unity(self):
        nodes, _ = gauss_lobatto(6)
        x = np.linspace(-1, 1, 17)
        l = lagrange_eval(nodes, x)
        np.testing.assert_allclose(l.sum(axis=1), 1.0, atol=1e-12)

    def test_derivative_sums_to_zero(self):
        nodes, _ = gauss_lobatto(5)
        x = np.linspace(-1, 1, 9)
        d = lagrange_deriv(nodes, x)
        np.testing.assert_allclose(d.sum(axis=1), 0.0, atol=1e-10)

    def test_derivative_exact_for_polynomial(self):
        """Interpolating x^3 on 5 nodes: derivative matrix must give
        exactly 3x^2 at sample points."""
        nodes, _ = gauss_lobatto(5)
        coeffs = nodes**3
        x = np.linspace(-1, 1, 11)
        d = lagrange_deriv(nodes, x)
        np.testing.assert_allclose(d @ coeffs, 3 * x**2, atol=1e-10)


class TestBasis1D:
    def test_shapes(self):
        b = Basis1D.make(4)
        assert b.n_nodes == 5
        assert b.n_quad == 6
        assert b.b.shape == (6, 5)
        assert b.g.shape == (6, 5)

    def test_mass_matrix_exact(self):
        """B^T W B must equal the exact 1D mass matrix of the basis."""
        b = Basis1D.make(3)
        m = b.b.T @ np.diag(b.quad_wts) @ b.b
        # exact integral via high-order quadrature
        xq, wq = gauss_legendre(12)
        lq = lagrange_eval(b.nodes, xq)
        m_exact = lq.T @ np.diag(wq) @ lq
        np.testing.assert_allclose(m, m_exact, atol=1e-12)

    def test_custom_quad_points(self):
        b = Basis1D.make(2, quad_points=7)
        assert b.n_quad == 7

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Basis1D.make(0)
