"""Tests for the SUNDIALS proxy: NVector backends and integrators."""

import numpy as np
import pytest

from repro.core.memory import MemorySpace, ResourceManager
from repro.ode.bdf import BdfIntegrator, BdfOptions
from repro.ode.erk import erk_integrate
from repro.ode.nvector import DeviceVector, HostVector


class TestHostVector:
    def test_linear_sum(self):
        x = HostVector(np.array([1.0, 2.0]))
        y = HostVector(np.array([10.0, 20.0]))
        z = HostVector.zeros(2)
        z.linear_sum(2.0, x, 0.5, y)
        np.testing.assert_allclose(z.array, [7.0, 14.0])

    def test_elementwise_ops(self):
        x = HostVector(np.array([2.0, 4.0]))
        y = HostVector(np.array([1.0, 2.0]))
        z = HostVector.zeros(2)
        z.prod(x, y)
        np.testing.assert_allclose(z.array, [2.0, 8.0])
        z.div(x, y)
        np.testing.assert_allclose(z.array, [2.0, 2.0])
        z.inv(x)
        np.testing.assert_allclose(z.array, [0.5, 0.25])
        z.abs_of(HostVector(np.array([-3.0, 3.0])))
        np.testing.assert_allclose(z.array, [3.0, 3.0])
        z.add_const(x, 1.0)
        np.testing.assert_allclose(z.array, [3.0, 5.0])

    def test_reductions(self):
        x = HostVector(np.array([3.0, -4.0]))
        assert x.dot(x) == pytest.approx(25.0)
        assert x.max_norm() == pytest.approx(4.0)
        assert x.l1_norm() == pytest.approx(7.0)
        assert x.min_value() == pytest.approx(-4.0)
        w = HostVector(np.array([1.0, 1.0]))
        assert x.wrms_norm(w) == pytest.approx(np.sqrt(12.5))

    def test_clone_is_zero(self):
        x = HostVector(np.array([1.0, 2.0]))
        c = x.clone()
        np.testing.assert_allclose(c.array, 0.0)
        assert c.size == 2


class TestDeviceVector:
    def test_from_host_records_h2d(self):
        rm = ResourceManager()
        v = DeviceVector.from_host(np.arange(4.0), rm)
        assert any(t.direction == "h2d" for t in rm.trace.transfers)
        np.testing.assert_allclose(v.array, [0, 1, 2, 3])

    def test_ops_do_not_transfer(self):
        """The integration loop must be transfer-free (§4.10.2)."""
        rm = ResourceManager()
        x = DeviceVector.from_host(np.ones(8), rm)
        y = DeviceVector.from_host(np.ones(8), rm)
        n0 = len(rm.trace.transfers)
        z = x.clone()
        z.linear_sum(1.0, x, 2.0, y)
        z.prod(x, y)
        _ = z.dot(x)
        _ = z.wrms_norm(y)
        assert len(rm.trace.transfers) == n0

    def test_to_host_records_d2h(self):
        rm = ResourceManager()
        v = DeviceVector.from_host(np.arange(3.0), rm)
        out = v.to_host()
        np.testing.assert_allclose(out, [0, 1, 2])
        assert any(t.direction == "d2h" for t in rm.trace.transfers)

    def test_requires_device_space(self):
        rm = ResourceManager()
        host_arr = rm.allocate((4,), space=MemorySpace.HOST)
        with pytest.raises(ValueError):
            DeviceVector(host_arr, rm)

    def test_zeros(self):
        rm = ResourceManager()
        v = DeviceVector.zeros(5, rm)
        np.testing.assert_allclose(v.array, 0.0)
        assert rm.live_bytes(MemorySpace.DEVICE) == 40


def _decay_problem(lam=50.0):
    """u' = -lam u, exact exp(-lam t)."""

    def rhs(t, u):
        return -lam * u

    def make_ls(gamma, t, u):
        return lambda r: r / (1.0 + gamma * lam)

    return rhs, make_ls


class TestBdfIntegrator:
    def test_linear_decay_accuracy(self):
        rhs, make_ls = _decay_problem(lam=5.0)
        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-8, atol=1e-12))
        ts, us = integ.integrate(0.0, np.array([1.0]), 1.0)
        assert us[-1, 0] == pytest.approx(np.exp(-5.0), rel=1e-5)

    def test_stiff_oscillator_tracks_forcing(self):
        """Prothero-Robinson: u' = -L(u - cos t) - sin t, u -> cos t."""
        lam = 1e4

        def rhs(t, u):
            return -lam * (u - np.cos(t)) - np.sin(t)

        def make_ls(gamma, t, u):
            return lambda r: r / (1.0 + gamma * lam)

        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-6, atol=1e-9))
        ts, us = integ.integrate(0.0, np.array([1.0]), 1.5,
                                 t_eval=np.array([0.5, 1.0, 1.5]))
        np.testing.assert_allclose(us.ravel(), np.cos(ts), atol=1e-4)

    def test_stiffness_efficiency(self):
        """The implicit method must not need O(lam) steps."""
        rhs, make_ls = _decay_problem(lam=1e6)
        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-4, atol=1e-8))
        integ.integrate(0.0, np.array([1.0]), 1.0)
        assert integ.stats.n_steps < 2000

    def test_mass_matrix_form(self):
        """2 u' = -2 u with M=2I must equal u' = -u."""

        def rhs(t, u):
            return -2.0 * u

        def make_ls(gamma, t, u):
            return lambda r: r / (2.0 + gamma * 2.0)

        integ = BdfIntegrator(rhs, make_ls, mass_mult=lambda v: 2.0 * v,
                              options=BdfOptions(rtol=1e-8, atol=1e-12))
        _, us = integ.integrate(0.0, np.array([1.0]), 1.0)
        assert us[-1, 0] == pytest.approx(np.exp(-1.0), rel=1e-5)

    def test_vector_system(self):
        """Two independent decays integrated together."""
        lam = np.array([1.0, 100.0])

        def rhs(t, u):
            return -lam * u

        def make_ls(gamma, t, u):
            return lambda r: r / (1.0 + gamma * lam)

        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-7, atol=1e-10))
        _, us = integ.integrate(0.0, np.ones(2), 0.5)
        np.testing.assert_allclose(us[-1], np.exp(-lam * 0.5), rtol=1e-4,
                                   atol=1e-8)

    def test_output_times_hit_exactly(self):
        rhs, make_ls = _decay_problem(lam=1.0)
        integ = BdfIntegrator(rhs, make_ls)
        t_eval = np.array([0.25, 0.5, 0.75, 1.0])
        ts, us = integ.integrate(0.0, np.array([1.0]), 1.0, t_eval=t_eval)
        np.testing.assert_allclose(ts, t_eval)
        assert us.shape == (4, 1)

    def test_stats_populated(self):
        rhs, make_ls = _decay_problem()
        integ = BdfIntegrator(rhs, make_ls)
        integ.integrate(0.0, np.array([1.0]), 0.1)
        assert integ.stats.n_steps > 0
        assert integ.stats.n_rhs >= integ.stats.n_steps
        assert integ.stats.n_lin_setups >= 1

    def test_invalid_args(self):
        rhs, make_ls = _decay_problem()
        integ = BdfIntegrator(rhs, make_ls)
        with pytest.raises(ValueError):
            integ.integrate(1.0, np.array([1.0]), 0.5)
        with pytest.raises(ValueError):
            integ.integrate(0.0, np.array([1.0]), 1.0,
                            t_eval=np.array([2.0]))
        with pytest.raises(ValueError):
            integ.integrate(0.0, np.array([1.0]), 1.0,
                            t_eval=np.array([0.5, 0.25]))
        with pytest.raises(ValueError):
            BdfOptions(rtol=-1.0)
        with pytest.raises(ValueError):
            BdfOptions(max_order=5)

    def test_max_steps_enforced(self):
        rhs, make_ls = _decay_problem(lam=1.0)
        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(max_steps=3, h0=1e-6))
        with pytest.raises(RuntimeError, match="max_steps"):
            integ.integrate(0.0, np.array([1.0]), 1.0)


class TestErk:
    def test_exponential(self):
        ts, us = erk_integrate(lambda t, u: -u, 0.0, np.array([1.0]), 2.0,
                               rtol=1e-9, atol=1e-12)
        assert us[-1, 0] == pytest.approx(np.exp(-2.0), rel=1e-7)

    def test_nonautonomous(self):
        ts, us = erk_integrate(lambda t, u: np.array([2 * t]), 0.0,
                               np.array([0.0]), 1.0, rtol=1e-10, atol=1e-12)
        assert us[-1, 0] == pytest.approx(1.0, rel=1e-8)

    def test_matches_bdf_on_smooth_problem(self):
        rhs = lambda t, u: -0.5 * u

        def make_ls(gamma, t, u):
            return lambda r: r / (1.0 + 0.5 * gamma)

        _, erk_u = erk_integrate(rhs, 0.0, np.ones(1), 1.0, rtol=1e-9,
                                 atol=1e-12)
        integ = BdfIntegrator(rhs, make_ls,
                              options=BdfOptions(rtol=1e-8, atol=1e-11))
        _, bdf_u = integ.integrate(0.0, np.ones(1), 1.0)
        assert erk_u[-1, 0] == pytest.approx(bdf_u[-1, 0], rel=1e-5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            erk_integrate(lambda t, u: u, 0.0, np.ones(1), -1.0)
        with pytest.raises(ValueError):
            erk_integrate(lambda t, u: u, 0.0, np.ones(1), 1.0, rtol=0.0)
