"""Tests for the Data Broker (§4.4's follow-on optimization)."""

import numpy as np
import pytest

from repro.core.machine import get_machine
from repro.spark.databroker import (
    DataBroker,
    NamespaceError,
    broker_exchange_time,
    shuffle_vs_broker,
)
from repro.spark.engine import SparkEngine
from repro.spark.jvm import DEFAULT_STACK, OPTIMIZED_STACK


class TestDataBroker:
    def test_put_get_roundtrip(self):
        db = DataBroker()
        db.create_namespace("lda")
        payload = np.arange(10.0)
        db.put("lda", "ss:0", payload)
        np.testing.assert_array_equal(db.get("lda", "ss:0"), payload)
        assert db.puts == 1 and db.gets == 1

    def test_namespaces_isolated(self):
        db = DataBroker()
        db.create_namespace("a")
        db.create_namespace("b")
        db.put("a", "k", 1.0)
        with pytest.raises(NamespaceError):
            db.get("b", "k")

    def test_duplicate_namespace_rejected(self):
        db = DataBroker()
        db.create_namespace("x")
        with pytest.raises(ValueError):
            db.create_namespace("x")

    def test_unknown_namespace(self):
        db = DataBroker()
        with pytest.raises(NamespaceError):
            db.put("nope", "k", 1)
        with pytest.raises(NamespaceError):
            db.keys("nope")
        with pytest.raises(NamespaceError):
            db.delete_namespace("nope")

    def test_capacity_enforced(self):
        db = DataBroker(capacity_bytes=100)
        db.create_namespace("x")
        with pytest.raises(MemoryError):
            db.put("x", "big", np.zeros(1000))

    def test_overwrite_frees_old_bytes(self):
        db = DataBroker(capacity_bytes=1000)
        db.create_namespace("x")
        db.put("x", "k", np.zeros(100))  # 800 B
        db.put("x", "k", np.zeros(100))  # replace, not accumulate
        assert db.live_bytes == pytest.approx(800)

    def test_delete_namespace_frees(self):
        db = DataBroker()
        db.create_namespace("x")
        db.put("x", "k", np.zeros(50))
        db.delete_namespace("x")
        assert db.live_bytes == 0

    def test_keys_sorted(self):
        db = DataBroker()
        db.create_namespace("x")
        for k in ("b", "a", "c"):
            db.put("x", k, 1)
        assert db.keys("x") == ["a", "b", "c"]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            DataBroker(capacity_bytes=0)


class TestExchangeModel:
    def test_broker_beats_hash_shuffle(self):
        """The paper's 'additional possible optimization': the broker
        exchange undercuts the default shuffle path."""
        engine = SparkEngine(32, stack=DEFAULT_STACK)
        r = shuffle_vs_broker(engine, total_bytes=64e6)
        assert r["data_broker"] < r["hash_shuffle"]

    def test_broker_competitive_with_adaptive(self):
        engine = SparkEngine(32, stack=OPTIMIZED_STACK)
        r = shuffle_vs_broker(engine, total_bytes=64e6)
        assert r["data_broker"] < 2 * r["adaptive_shuffle"]

    def test_time_scales_with_bytes(self):
        m = get_machine("sierra")
        t1 = broker_exchange_time(m, DEFAULT_STACK, 1e6, 8)
        t2 = broker_exchange_time(m, DEFAULT_STACK, 1e8, 8)
        assert t2 > t1

    def test_validation(self):
        with pytest.raises(ValueError):
            broker_exchange_time(get_machine("sierra"), DEFAULT_STACK,
                                 1e6, 0)
