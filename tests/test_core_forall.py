"""Tests for the mini-RAJA forall layer: backend equivalence, residency
checks, kernel-trace accounting."""

import numpy as np
import pytest

from repro.core.forall import (
    ExecPolicy,
    ExecutionContext,
    Forall,
    POLICY_EFFICIENCY,
    ResidencyError,
)
from repro.core.machine import get_machine
from repro.core.memory import MemorySpace
from repro.core.roofline import RooflineModel


ALL_POLICIES = list(ExecPolicy)


def saxpy_closure(a, x, y, out):
    def body(i):
        out[i] = a * x[i] + y[i]

    return body


class TestBackendEquivalence:
    """The RAJA contract: the same body gives the same answer on every
    backend."""

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_forall_saxpy(self, policy):
        n = 37
        rng = np.random.default_rng(0)
        x, y = rng.random(n), rng.random(n)
        out = np.zeros(n)
        ctx = ExecutionContext()
        Forall(ctx, policy).run(
            "saxpy", n, saxpy_closure(2.0, x, y, out),
            flops_per_elem=2, bytes_per_elem=24,
        )
        np.testing.assert_allclose(out, 2.0 * x + y)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_kernel_2d(self, policy):
        shape = (5, 7)
        out = np.zeros(shape)

        def body(i, j):
            out[i, j] = i * 10 + j

        ctx = ExecutionContext()
        Forall(ctx, policy).kernel("init2d", shape, body)
        expect = np.add.outer(np.arange(5) * 10, np.arange(7))
        np.testing.assert_array_equal(out, expect)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_kernel_3d(self, policy):
        shape = (3, 4, 2)
        out = np.zeros(shape)

        def body(i, j, k):
            out[i, j, k] = i + j + k

        ctx = ExecutionContext()
        Forall(ctx, policy).kernel("init3d", shape, body)
        i, j, k = np.meshgrid(*map(np.arange, shape), indexing="ij")
        np.testing.assert_array_equal(out, i + j + k)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_reduce_sum(self, policy):
        ctx = ExecutionContext()
        vals = np.arange(100, dtype=np.float64)
        total = Forall(ctx, policy).reduce_sum("sum", vals)
        assert total == pytest.approx(4950.0)

    def test_zero_trip_count(self):
        ctx = ExecutionContext()
        Forall(ctx, ExecPolicy.SIMD).run("empty", 0, lambda i: None)
        assert len(ctx.trace.kernels) == 1  # still recorded (a launch)

    def test_negative_trip_count(self):
        ctx = ExecutionContext()
        with pytest.raises(ValueError):
            Forall(ctx, ExecPolicy.SIMD).run("bad", -1, lambda i: None)

    def test_negative_extent(self):
        ctx = ExecutionContext()
        with pytest.raises(ValueError):
            Forall(ctx, ExecPolicy.SIMD).kernel("bad", (2, -1), lambda i, j: None)


class TestResidency:
    def test_device_launch_rejects_host_array(self):
        ctx = ExecutionContext()
        host = ctx.resources.allocate((10,), space=MemorySpace.HOST, name="h")
        fa = Forall(ctx, ExecPolicy.CUDA)
        with pytest.raises(ResidencyError, match="host-resident"):
            fa.run("k", 10, lambda i: None, arrays=[host])

    def test_device_launch_accepts_device_array(self):
        ctx = ExecutionContext()
        dev = ctx.resources.allocate((10,), space=MemorySpace.DEVICE)
        Forall(ctx, ExecPolicy.CUDA).run("k", 10, lambda i: None, arrays=[dev])

    def test_um_array_migrates_on_device_launch(self):
        ctx = ExecutionContext()
        um = ctx.resources.allocate((8192,), space=MemorySpace.UNIFIED)
        Forall(ctx, ExecPolicy.CUDA).run("k", 10, lambda i: None, arrays=[um])
        assert any(
            t.name.startswith("um-migrate") for t in ctx.trace.transfers
        )

    def test_host_launch_accepts_host_array(self):
        ctx = ExecutionContext()
        host = ctx.resources.allocate((10,), space=MemorySpace.HOST)
        Forall(ctx, ExecPolicy.OPENMP).run("k", 10, lambda i: None, arrays=[host])


class TestTraceAccounting:
    def test_flops_recorded(self):
        ctx = ExecutionContext()
        Forall(ctx, ExecPolicy.SIMD).run(
            "work", 1000, lambda i: None, flops_per_elem=5, bytes_per_elem=16
        )
        assert ctx.trace.total_flops == pytest.approx(5000)
        assert ctx.trace.total_bytes == pytest.approx(16000)

    def test_raja_penalty_on_cuda_policy(self):
        """Untuned (RAJA-style) launches are ~30% less efficient than
        tuned native ones — the measured sw4lite gap (§4.9)."""
        machine = get_machine("sierra")
        model = RooflineModel(machine)

        def timed(tuned):
            ctx = ExecutionContext(machine=machine)
            Forall(ctx, ExecPolicy.CUDA).run(
                "k", 1_000_000, lambda i: None,
                flops_per_elem=10, bytes_per_elem=80, tuned=tuned,
            )
            return model.run_on_gpu(ctx.trace).kernel_time

        ratio = timed(tuned=False) / timed(tuned=True)
        assert ratio == pytest.approx(1 / POLICY_EFFICIENCY[ExecPolicy.CUDA], rel=0.02)

    def test_trace_shared_with_memory_copies(self):
        ctx = ExecutionContext()
        h = ctx.resources.allocate((16,), space=MemorySpace.HOST, fill=0.0)
        d = ctx.resources.allocate((16,), space=MemorySpace.DEVICE)
        ctx.resources.copy(h, d)
        Forall(ctx, ExecPolicy.CUDA).run("k", 16, lambda i: None, arrays=[d])
        assert len(ctx.trace.transfers) == 1
        assert len(ctx.trace.kernels) == 1

    def test_seq_and_simd_equal_trace(self):
        def trace_for(policy):
            ctx = ExecutionContext()
            Forall(ctx, policy).run(
                "k", 100, lambda i: None, flops_per_elem=3, bytes_per_elem=8
            )
            return ctx.trace

        a, b = trace_for(ExecPolicy.SEQ), trace_for(ExecPolicy.SIMD)
        assert a.total_flops == b.total_flops
        assert a.total_bytes == b.total_bytes
