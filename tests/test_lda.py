"""Tests for the LDA corpus, variational EM, and SparkPlug driver."""

import numpy as np
import pytest

from repro.lda.corpus import make_corpus
from repro.lda.sparkplug import SparkPlugLDA, compare_stacks
from repro.lda.vem import (
    LdaModel,
    e_step,
    fit,
    m_step,
    perplexity,
    topic_recovery_score,
)
from repro.spark.engine import SparkEngine


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(n_docs=100, vocab_per_language=120, n_languages=2,
                       n_topics=3, doc_length=50, seed=0)


class TestCorpus:
    def test_shapes(self, corpus):
        assert corpus.vocab_size == 240
        assert corpus.n_docs == 100
        assert corpus.n_tokens == 100 * 50

    def test_language_blocks_disjoint(self, corpus):
        """Each document uses exactly one language's vocabulary block."""
        for ids, _ in corpus.docs:
            langs = set((ids // 120).tolist())
            assert len(langs) == 1

    def test_true_topics_language_local(self, corpus):
        t = corpus.true_topics
        for row in range(3):
            assert t[row, 120:].sum() == 0.0  # language-0 topics
        for row in range(3, 6):
            assert t[row, :120].sum() == 0.0

    def test_zipf_heavy_head(self, corpus):
        counts = corpus.dense_matrix().sum(axis=0)
        lang0 = counts[:120]
        top10 = np.sort(lang0)[::-1][:10].sum()
        assert top10 > 0.25 * lang0.sum()

    def test_deterministic(self):
        a = make_corpus(n_docs=5, seed=3)
        b = make_corpus(n_docs=5, seed=3)
        for (ia, ca), (ib, cb) in zip(a.docs, b.docs):
            np.testing.assert_array_equal(ia, ib)
            np.testing.assert_array_equal(ca, cb)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_corpus(n_docs=0)
        with pytest.raises(ValueError):
            make_corpus(zipf_exponent=0.0)


class TestVem:
    def test_bound_monotone(self, corpus):
        _, history = fit(corpus, n_topics=6, n_iters=10, seed=1)
        diffs = np.diff(history)
        assert np.all(diffs > -1e-6 * np.abs(history[0]))

    def test_recovers_planted_topics(self, corpus):
        model, _ = fit(corpus, n_topics=6, n_iters=15, seed=1)
        assert topic_recovery_score(model, corpus.true_topics) > 0.8

    def test_perplexity_improves_with_training(self, corpus):
        m0 = LdaModel.random_init(6, corpus.vocab_size, seed=2)
        trained, _ = fit(corpus, n_topics=6, n_iters=10, seed=2)
        assert perplexity(trained, corpus.docs) < perplexity(m0, corpus.docs)

    def test_ss_totals_match_token_counts(self, corpus):
        model = LdaModel.random_init(6, corpus.vocab_size, seed=0)
        ss, gammas, _ = e_step(model, corpus.docs)
        assert ss.sum() == pytest.approx(corpus.n_tokens, rel=1e-10)
        assert gammas.shape == (corpus.n_docs, 6)
        assert np.all(gammas > 0)

    def test_m_step_normalizes(self, corpus):
        model = LdaModel.random_init(4, corpus.vocab_size, seed=0)
        ss = np.random.default_rng(0).random(model.beta.shape)
        new = m_step(model, ss)
        np.testing.assert_allclose(new.beta.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LdaModel(beta=np.ones((2, 3)))  # rows don't sum to 1
        with pytest.raises(ValueError):
            LdaModel.random_init(2, 10, alpha=-1.0)
        model = LdaModel.random_init(2, 10)
        with pytest.raises(ValueError):
            m_step(model, np.zeros((3, 10)))


class TestSparkPlug:
    def test_distributed_matches_reference(self, corpus):
        eng = SparkEngine(4)
        lda = SparkPlugLDA(corpus, 6, eng, seed=1)
        lda.iterate(3)
        ref = LdaModel.random_init(6, corpus.vocab_size, seed=1)
        for _ in range(3):
            ss, _, _ = e_step(ref, corpus.docs)
            ref = m_step(ref, ss)
        np.testing.assert_allclose(lda.model.beta, ref.beta, atol=1e-12)

    def test_partition_count_invariance(self, corpus):
        models = []
        for p in (2, 7):
            eng = SparkEngine(p)
            lda = SparkPlugLDA(corpus, 4, eng, seed=5)
            lda.iterate(2)
            models.append(lda.model.beta)
        np.testing.assert_allclose(models[0], models[1], atol=1e-12)

    def test_phases_populated(self, corpus):
        eng = SparkEngine(8)
        lda = SparkPlugLDA(corpus, 4, eng)
        lda.iterate(1)
        breakdown = lda.phase_breakdown()
        for phase in ("compute", "shuffle", "aggregate"):
            assert breakdown[phase] > 0

    def test_bound_history_grows(self, corpus):
        eng = SparkEngine(4)
        lda = SparkPlugLDA(corpus, 4, eng, seed=2)
        lda.iterate(5)
        assert len(lda.bound_history) == 5
        assert lda.bound_history[-1] > lda.bound_history[0]

    def test_fig2_shape(self, corpus):
        """Fig 2: optimized stack more than 2X faster overall, with
        shuffle shrinking the most."""
        res = compare_stacks(corpus, 4, n_workers=32, n_iters=2)
        speedup = res["default"]["total"] / res["optimized"]["total"]
        assert speedup > 2.0
        shuffle_gain = res["default"]["shuffle"] / res["optimized"]["shuffle"]
        compute_gain = res["default"]["compute"] / res["optimized"]["compute"]
        assert shuffle_gain > compute_gain

    def test_validation(self, corpus):
        eng = SparkEngine(2)
        with pytest.raises(ValueError):
            SparkPlugLDA(corpus, 0, eng)
        with pytest.raises(ValueError):
            SparkPlugLDA(corpus, 2, eng, shuffle_algorithm="sort")
        with pytest.raises(ValueError):
            SparkPlugLDA(corpus, 2, eng, aggregate_algorithm="ring")
        lda = SparkPlugLDA(corpus, 2, eng)
        with pytest.raises(ValueError):
            lda.iterate(-1)
