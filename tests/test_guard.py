"""Unit tests for the guard layer: sentinels, fallback chains,
deadline/shedding primitives, and the hardened retry policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.guard import (
    AdmissionController,
    BreakdownError,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    DivergedError,
    FallbackChain,
    FallbackExhaustedError,
    GuardError,
    HealthMonitor,
    NonFiniteError,
    NumericalHealthError,
    OverflowHealthError,
    ResidualTrendProbe,
    StagnationError,
    WrmsTrendProbe,
    guard_enabled,
    guard_mode,
    guard_override,
    guard_strict,
)
from repro.guard.sentinels import default_monitor
from repro.obs import metrics as obs_metrics


def counter_value(name):
    return obs_metrics.counter(name).value


class TestGuardConfig:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert guard_mode() == "off"
        assert not guard_enabled()
        assert not guard_strict()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "none"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_GUARD", value)
        assert guard_mode() == "off"

    @pytest.mark.parametrize("value", ["on", "record", "warn", "ON"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_GUARD", value)
        assert guard_mode() == "on"
        assert guard_enabled()
        assert not guard_strict()

    @pytest.mark.parametrize("value", ["strict", "1", "anything"])
    def test_strict_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_GUARD", value)
        assert guard_mode() == "strict"
        assert guard_enabled()
        assert guard_strict()

    def test_override_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        with guard_override("strict"):
            assert guard_strict()
        assert guard_mode() == "off"

    def test_default_monitor_gated(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert default_monitor("x") is None
        with guard_override("on"):
            assert isinstance(default_monitor("x"), HealthMonitor)


class TestHealthMonitor:
    def test_clean_pass(self):
        mon = HealthMonitor(where="t")
        mon.check_array(np.ones(5), "state")
        mon.check_value(3.0)
        assert mon.checks == 2

    def test_nan_raises_with_context(self):
        mon = HealthMonitor(where="t.nan")
        arr = np.ones(5)
        arr[2] = np.nan
        before = counter_value("guard.sentinel.trips")
        with pytest.raises(NonFiniteError) as exc:
            mon.check_array(arr, "iterate", context={"iteration": 7})
        assert exc.value.where == "t.nan"
        assert exc.value.context["iteration"] == 7
        assert exc.value.context["n_bad"] == 1
        assert counter_value("guard.sentinel.trips") == before + 1
        assert counter_value("guard.sentinel.trips_at.t.nan") >= 1

    def test_overflow_raises(self):
        mon = HealthMonitor(where="t", magnitude_bound=1e3)
        with pytest.raises(OverflowHealthError):
            mon.check_array(np.array([1.0, 5e3]))
        with pytest.raises(OverflowHealthError):
            mon.check_value(-2e3)

    def test_error_hierarchy(self):
        assert issubclass(NonFiniteError, NumericalHealthError)
        assert issubclass(StagnationError, NumericalHealthError)
        assert issubclass(NumericalHealthError, GuardError)
        assert issubclass(GuardError, RuntimeError)

    def test_empty_array_ok(self):
        HealthMonitor().check_array(np.empty(0))

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor(magnitude_bound=0.0)


class TestResidualTrendProbe:
    def test_converging_series_ok(self):
        probe = ResidualTrendProbe(window=5)
        r = 1.0
        for i in range(50):
            probe.observe(r, iteration=i)
            r *= 0.5

    def test_divergence_trips(self):
        probe = ResidualTrendProbe(diverge_ratio=10.0)
        probe.observe(1.0)
        probe.observe(0.1)
        with pytest.raises(DivergedError) as exc:
            probe.observe(5.0)
        assert exc.value.context["best"] == pytest.approx(0.1)

    def test_stagnation_trips(self):
        probe = ResidualTrendProbe(window=4, stall_ratio=0.9)
        with pytest.raises(StagnationError):
            for i in range(20):
                probe.observe(1.0, iteration=i)

    def test_nonfinite_trips(self):
        probe = ResidualTrendProbe()
        with pytest.raises(NonFiniteError):
            probe.observe(float("nan"))


class TestWrmsTrendProbe:
    def test_accept_resets_rejects(self):
        probe = WrmsTrendProbe(max_consecutive_rejects=3)
        for _ in range(10):
            probe.observe(2.0, 0.1, 0.0, accepted=False)
            probe.observe(2.0, 0.1, 0.0, accepted=False)
            probe.observe(0.5, 0.1, 0.0, accepted=True)

    def test_consecutive_rejects_trip(self):
        probe = WrmsTrendProbe(max_consecutive_rejects=3)
        probe.observe(2.0, 0.1, 0.0, accepted=False)
        probe.observe(2.0, 0.05, 0.0, accepted=False)
        with pytest.raises(StagnationError) as exc:
            probe.observe(2.0, 0.025, 0.0, accepted=False)
        assert exc.value.context["rejects"] == 3

    def test_first_huge_error_tolerated(self):
        # startup transient: one massive estimate just cuts h
        probe = WrmsTrendProbe(diverge_err=1e3)
        probe.observe(1e9, 0.1, 0.0, accepted=False)
        with pytest.raises(DivergedError):
            probe.observe(1e9, 0.05, 0.0, accepted=False)

    def test_nonfinite_trips(self):
        probe = WrmsTrendProbe()
        with pytest.raises(NonFiniteError):
            probe.observe(float("inf"), 0.1, 0.0, accepted=True)


class TestFallbackChain:
    def test_healthy_serves_first_rung(self):
        chain = FallbackChain("t").add("a", lambda: 1).add("b", lambda: 2)
        out = chain.run()
        assert out.value == 1
        assert out.rung == 0
        assert out.rung_name == "a"
        assert not out.degraded
        assert chain.served == ["a"]

    def test_escalation_records_trips(self):
        def bad():
            raise NonFiniteError("boom", where="t")

        chain = FallbackChain("t2").add("a", bad).add("b", lambda: 2)
        out = chain.run()
        assert out.value == 2
        assert out.degraded
        assert len(out.trips) == 1
        assert counter_value("guard.fallback.t2.trips.a") == 1
        assert counter_value("guard.fallback.t2.served.b") == 1
        assert counter_value("guard.fallback.t2.degraded") == 1

    def test_deadline_error_escalates(self):
        def slow():
            raise DeadlineExceededError("late", where="t")

        chain = FallbackChain("t3").add("a", slow).add("b", lambda: "ok")
        assert chain.run().value == "ok"

    def test_exhaustion_raises_typed(self):
        def bad():
            raise StagnationError("stuck", where="t")

        chain = FallbackChain("t4").add("a", bad).add("b", bad)
        with pytest.raises(FallbackExhaustedError) as exc:
            chain.run()
        assert len(exc.value.errors) == 2

    def test_non_health_errors_propagate(self):
        def typo():
            raise KeyError("not a health error")

        chain = FallbackChain("t5").add("a", typo).add("b", lambda: 1)
        with pytest.raises(KeyError):
            chain.run()

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain("empty").run()

    def test_args_passed_through(self):
        chain = FallbackChain("t6").add("a", lambda x, k=0: x + k)
        assert chain.run(2, k=3).value == 5


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0, now=5.0)
        assert d.at == 15.0
        assert d.remaining(8.0) == 7.0
        assert not d.expired(14.9)
        assert d.expired(15.0)

    def test_require_raises_and_counts(self):
        d = Deadline(1.0)
        d.require(0.5)
        before = counter_value("guard.deadline.exceeded")
        with pytest.raises(DeadlineExceededError):
            d.require(2.0, where="t")
        assert counter_value("guard.deadline.exceeded") == before + 1

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        br = CircuitBreaker(failure_threshold=2, recovery_time=5.0,
                            name="t_br")
        assert br.allow(0.0)
        br.record_failure(0.0)
        assert br.allow(0.1)      # one failure: still closed
        br.record_failure(0.2)
        assert br.state == "open"
        assert not br.allow(0.3)
        assert br.trips == 1

    def test_half_open_probe_and_close(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(0.0)
        assert not br.allow(0.5)
        assert br.allow(1.5)            # half-open probe admitted
        assert br.state == "half-open"
        assert not br.allow(1.6)        # only one probe at a time
        br.record_success(1.7)
        assert br.state == "closed"
        assert br.allow(1.8)

    def test_half_open_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        br.record_failure(1.6)
        assert br.state == "open"
        assert not br.allow(2.0)
        assert br.trips == 2

    def test_success_resets_consecutive(self):
        br = CircuitBreaker(failure_threshold=3)
        br.record_failure(0.0)
        br.record_failure(0.1)
        br.record_success(0.2)
        br.record_failure(0.3)
        br.record_failure(0.4)
        assert br.state == "closed"

    def test_checkpoint_roundtrip(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(3.0)
        snap = br.checkpoint_state()
        br.record_success(10.0)
        br.restore_state(snap)
        assert br.state == "open"
        assert br.opened_at == 3.0

    def test_strict_require_raises(self):
        from repro.guard.errors import CircuitOpenError

        br = CircuitBreaker(failure_threshold=1, recovery_time=100.0)
        br.record_failure(0.0)
        with guard_override("strict"):
            with pytest.raises(CircuitOpenError):
                br.require(1.0)
        with guard_override("off"):
            br.require(1.0)  # non-strict: silent degradation


class _FakeJob:
    def __init__(self, service, priority=0, deadline=None):
        self.service = service
        self.priority = priority
        self.deadline = deadline


class TestAdmissionController:
    def test_admits_by_default(self):
        adm = AdmissionController()
        assert adm.admit(_FakeJob(1.0), now=0.0, queue_len=0,
                         n_running=0, n_gpus=4)
        assert adm.admitted == 1
        assert adm.shed_count == 0

    def test_sheds_unmeetable_deadline(self):
        adm = AdmissionController()
        before = counter_value("guard.shed.deadline_unmeetable")
        job = _FakeJob(10.0, deadline=5.0)
        assert not adm.admit(job, now=0.0, queue_len=0, n_running=0,
                             n_gpus=4)
        assert adm.shed_count == 1
        assert counter_value("guard.shed.deadline_unmeetable") == before + 1

    def test_sheds_on_backlog_estimate(self):
        adm = AdmissionController()
        # 8 queued jobs on 2 GPUs => ~4 service slots of wait
        job = _FakeJob(10.0, deadline=20.0)
        assert not adm.admit(job, now=0.0, queue_len=8, n_running=2,
                             n_gpus=2)
        adm2 = AdmissionController(backlog_estimate=False)
        assert adm2.admit(job, now=0.0, queue_len=8, n_running=2,
                          n_gpus=2)

    def test_queue_saturation_protects_priority(self):
        adm = AdmissionController(max_queue=2, protect_priority=5)
        low = _FakeJob(1.0, priority=1)
        high = _FakeJob(1.0, priority=9)
        assert not adm.admit(low, now=0.0, queue_len=2, n_running=0,
                             n_gpus=1)
        assert adm.admit(high, now=0.0, queue_len=2, n_running=0,
                         n_gpus=1)

    def test_breaker_open_sheds_low_priority(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1e9)
        adm = AdmissionController(protect_priority=5, breaker=br)
        adm.record_failure(0.0)
        assert not adm.admit(_FakeJob(1.0, priority=0), now=1.0,
                             queue_len=0, n_running=0, n_gpus=1)
        assert adm.admit(_FakeJob(1.0, priority=9), now=1.0,
                         queue_len=0, n_running=0, n_gpus=1)

    def test_checkpoint_roundtrip(self):
        br = CircuitBreaker(failure_threshold=1)
        adm = AdmissionController(breaker=br)
        adm.admit(_FakeJob(1.0), now=0.0, queue_len=0, n_running=0,
                  n_gpus=1)
        adm.record_failure(1.0)
        snap = adm.checkpoint_state()
        adm.admit(_FakeJob(1.0), now=2.0, queue_len=0, n_running=0,
                  n_gpus=1)
        adm.record_success(3.0)
        adm.restore_state(snap)
        assert adm.admitted == 1
        assert br.state == "open"


class TestRetryHardening:
    def test_attempt_type_rejected(self):
        from repro.resilience.retry import (
            CappedRetry, ExponentialBackoff, ImmediateRetry,
        )

        for policy in (ImmediateRetry(), CappedRetry(),
                       ExponentialBackoff()):
            with pytest.raises(TypeError):
                policy.requeue_delay(True)
            with pytest.raises(TypeError):
                policy.requeue_delay(1.0)
            with pytest.raises(TypeError):
                policy.requeue_delay("1")
            with pytest.raises(ValueError):
                policy.requeue_delay(0)
            with pytest.raises(ValueError):
                policy.requeue_delay(-3)

    def test_backoff_never_overflows(self):
        import sys

        from repro.resilience.retry import ExponentialBackoff

        eb = ExponentialBackoff(base=1.0, factor=2.0,
                                max_retries=10_000)
        # 2.0 ** 1099 overflows a float; the policy must saturate
        d = eb.requeue_delay(1100)
        assert d == sys.float_info.max
        eb2 = ExponentialBackoff(base=1.0, factor=2.0, max_delay=60.0,
                                 max_retries=10_000)
        assert eb2.requeue_delay(1100) == 60.0
        assert eb2.requeue_delay(5000) == 60.0

    def test_backoff_regular_values_unchanged(self):
        from repro.resilience.retry import ExponentialBackoff

        eb = ExponentialBackoff(base=0.5, factor=2.0, max_delay=100.0)
        assert eb.requeue_delay(1) == 0.5
        assert eb.requeue_delay(3) == 2.0
        assert eb.requeue_delay(16) == 100.0
        assert eb.requeue_delay(17) is None

    def test_jitter_requires_injected_rng(self):
        from repro.resilience.retry import ExponentialBackoff

        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.5, rng=np.random.default_rng(0))

    def test_jitter_deterministic_and_bounded(self):
        from repro.resilience.retry import ExponentialBackoff

        def delays(seed):
            eb = ExponentialBackoff(base=1.0, factor=2.0, jitter=0.25,
                                    rng=np.random.default_rng(seed))
            return [eb.requeue_delay(a) for a in range(1, 9)]

        assert delays(7) == delays(7)
        for a, d in enumerate(delays(7), start=1):
            nominal = 2.0 ** (a - 1)
            assert 0.75 * nominal <= d <= 1.25 * nominal


class TestKrylovSentinels:
    def _spd(self, n=32):
        from repro.solvers.csr import CsrMatrix

        a = np.zeros((n, n))
        for i in range(n):
            a[i, i] = 2.0
            if i:
                a[i, i - 1] = a[i - 1, i] = -1.0
        return CsrMatrix(a)

    def test_pcg_nan_b_raises_strict(self):
        from repro.solvers.krylov import pcg

        a = self._spd()
        b = np.ones(a.n_rows)
        b[3] = np.nan
        with guard_override("strict"):
            with pytest.raises(NonFiniteError) as exc:
                pcg(a, b)
        assert exc.value.where == "solvers.pcg"

    def test_pcg_nan_b_legacy_off(self):
        from repro.solvers.krylov import pcg

        a = self._spd()
        b = np.ones(a.n_rows)
        b[3] = np.nan
        with guard_override("off"):
            x, info = pcg(a, b, max_iter=5)  # no raise: legacy path
        assert not info.converged

    def test_pcg_breakdown_has_iteration_context(self):
        from repro.solvers.csr import CsrMatrix
        from repro.solvers.krylov import pcg

        a = CsrMatrix(np.diag([1.0, -1.0]))  # indefinite: not SPD
        b = np.array([1.0, 1.0])
        with guard_override("strict"):
            with pytest.raises(BreakdownError) as exc:
                pcg(a, b)
        assert "iteration" in exc.value.context
        with guard_override("off"):
            x, info = pcg(a, b)  # legacy: stops quietly
        assert not info.converged

    def test_gmres_inf_b_raises_strict(self):
        from repro.solvers.krylov import gmres

        a = self._spd()
        b = np.full(a.n_rows, np.inf)
        with guard_override("strict"):
            with pytest.raises(NonFiniteError) as exc:
                gmres(a, b)
        assert exc.value.where == "solvers.gmres"
        with guard_override("off"):
            gmres(a, b, max_iter=3)  # legacy: no raise

    def test_probe_attaches_to_pcg(self):
        from repro.solvers.krylov import pcg

        a = self._spd()
        b = np.ones(a.n_rows)
        probe = ResidualTrendProbe(where="test.pcg", window=5,
                                   stall_ratio=0.5)
        # the 1D laplacian converges slower than 0.5**5 per 5 its
        with guard_override("strict"):
            with pytest.raises(StagnationError):
                pcg(a, b, tol=1e-14, max_iter=500, probe=probe)


class TestDdcmdSentinel:
    def _sim(self, dt=0.002, seed=1):
        from repro.md.ddcmd import DdcMD
        from repro.md.particles import ParticleSystem, PeriodicBox
        from repro.md.potentials import LennardJones, PairProcessor

        box = PeriodicBox((6.0,) * 3)
        ps = ParticleSystem.random_gas(64, box, temperature=0.5,
                                       seed=seed, min_separation=1.0)
        return DdcMD(ps, PairProcessor(LennardJones()), dt=dt)

    def test_unstable_dt_trips(self):
        sim = self._sim(dt=5.0)  # wildly unstable
        with guard_override("strict"):
            with pytest.raises(NumericalHealthError):
                for _ in range(50):
                    sim.step()

    def test_stable_run_clean(self):
        sim = self._sim()
        with guard_override("strict"):
            sim.run(20)

    def test_neighbor_invalidate_forces_rebuild(self):
        sim = self._sim()
        sim.run(5)
        builds = sim.nlist.builds
        sim.nlist.invalidate()
        sim.step()
        assert sim.nlist.builds == builds + 1

    def test_guarded_md_step_recovers_transient(self):
        from repro.guard import guarded_md_step

        sim = self._sim()
        sim.step()
        orig_step = sim.step
        state = {"failed": False}

        def flaky_step():
            if not state["failed"]:
                state["failed"] = True
                raise NonFiniteError("injected transient", where="test")
            orig_step()

        sim.step = flaky_step
        before = counter_value("guard.md.rejected_steps")
        out = guarded_md_step(sim)
        assert out.rung_name == "reject-rebuild"
        assert out.degraded
        assert counter_value("guard.md.rejected_steps") == before + 1

    def test_guarded_md_step_healthy_serves_plain(self):
        from repro.guard import guarded_md_step

        sim = self._sim()
        out = guarded_md_step(sim)
        assert out.rung_name == "step"
        assert not out.degraded


class TestIonModelSentinel:
    def test_nonphysical_voltage_trips(self):
        from repro.cardioid.ionmodels import HodgkinHuxleyModel

        model = HodgkinHuxleyModel(8)
        model.v = np.full(8, 1000.0)  # way outside +-500 mV
        with guard_override("strict"):
            with pytest.raises(NumericalHealthError):
                model.step_reaction(1.0)

    def test_normal_beat_clean(self):
        from repro.cardioid.ionmodels import HodgkinHuxleyModel

        model = HodgkinHuxleyModel(8)
        stim = np.full(8, 10.0)
        with guard_override("strict"):
            for _ in range(200):
                model.step_reaction(0.01, i_stim=stim)
        assert np.all(np.abs(model.v) < 500.0)

    def test_off_mode_no_raise(self):
        from repro.cardioid.ionmodels import HodgkinHuxleyModel

        model = HodgkinHuxleyModel(4)
        model.v = np.full(4, 1000.0)
        with guard_override("off"):
            model.step_reaction(1.0)  # legacy: garbage propagates


class TestSchedulerShedding:
    def _jobs(self, n=8, service=10.0, **kw):
        from repro.sched.simulator import Job

        return [Job(job_id=i, arrival=0.0, service=service, **kw)
                for i in range(n)]

    def test_no_admission_is_legacy(self):
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator

        res = ClusterSimulator(2).run(self._jobs(), Fcfs())
        assert res.shed == 0
        assert res.completed == 8

    def test_deadline_sheds_lowest_value_work(self):
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator, Job

        # 2 GPUs, 10s jobs, 15s deadline: only the first wave fits;
        # the backlog estimate sheds what cannot make it
        jobs = [Job(job_id=i, arrival=0.0, service=10.0, deadline=15.0)
                for i in range(8)]
        adm = AdmissionController()
        res = ClusterSimulator(2).run(jobs, Fcfs(), admission=adm)
        assert res.shed > 0
        assert res.completed + res.shed == 8
        assert res.makespan <= 15.0
        assert adm.shed_count == res.shed

    def test_requeue_past_deadline_is_shed(self):
        from repro.resilience.faults import FaultInjector
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator, Job

        jobs = [Job(job_id=i, arrival=0.0, service=30.0, deadline=40.0)
                for i in range(4)]
        fi = FaultInjector(mtbf=15.0, seed=5)
        adm = AdmissionController()
        res = ClusterSimulator(4).run(jobs, Fcfs(), fault_injector=fi,
                                      admission=adm)
        # every job is resolved one way or another
        assert res.completed + res.dropped + res.shed == 4

    def test_breaker_feeds_from_fault_kills(self):
        from repro.resilience.faults import FaultInjector
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator

        br = CircuitBreaker(failure_threshold=2, recovery_time=1e9,
                            name="sched_t")
        adm = AdmissionController(protect_priority=5, breaker=br)
        fi = FaultInjector(mtbf=4.0, seed=2)
        jobs = self._jobs(n=12, service=8.0, priority=0)
        res = ClusterSimulator(2).run(jobs, Fcfs(), fault_injector=fi,
                                      admission=adm)
        assert res.failures > 0
        if br.trips:  # storm tripped the breaker: later jobs shed
            assert res.shed > 0

    def test_shed_determinism(self):
        from repro.resilience.faults import FaultInjector
        from repro.sched.policies import Fcfs
        from repro.sched.simulator import ClusterSimulator

        def go():
            fi = FaultInjector(mtbf=10.0, seed=11)
            adm = AdmissionController(max_queue=3, protect_priority=1)
            jobs = [j for j in self._jobs(n=16, service=5.0,
                                          deadline=60.0)]
            return ClusterSimulator(2).run(jobs, Fcfs(),
                                           fault_injector=fi,
                                           admission=adm)

        assert go() == go()

    def test_validated_twin_run_with_admission(self, monkeypatch):
        from repro.resilience.faults import FaultInjector
        from repro.sched.policies import Sjf
        from repro.sched.simulator import ClusterSimulator

        monkeypatch.setenv("REPRO_OBS_VALIDATE", "raise")
        fi = FaultInjector(mtbf=20.0, seed=3)
        adm = AdmissionController()
        jobs = self._jobs(n=10, service=6.0, deadline=50.0)
        res = ClusterSimulator(2).run(jobs, Sjf(), fault_injector=fi,
                                      admission=adm, engine="fast")
        assert res.completed + res.dropped + res.shed == 10


class TestMummiGuards:
    def test_cycle_over_budget_counter(self):
        from repro.workflow.mummi import MummiCampaign

        before = counter_value("workflow.mummi.cycle_over_budget")
        camp = MummiCampaign(n_gpus=4, jobs_per_cycle=8,
                             cycle_budget=1e-6)
        camp.run(3)
        assert camp.cycles_over_budget == 3
        assert counter_value("workflow.mummi.cycle_over_budget") == (
            before + 3
        )

    def test_within_budget_not_counted(self):
        from repro.workflow.mummi import MummiCampaign

        camp = MummiCampaign(n_gpus=4, jobs_per_cycle=4,
                             cycle_budget=1e12)
        camp.run(2)
        assert camp.cycles_over_budget == 0
        assert camp.rungs_served == ["micro-md", "micro-md"]

    def test_breaker_degrades_to_surrogate(self):
        from repro.workflow.mummi import MummiCampaign

        br = CircuitBreaker(failure_threshold=1, recovery_time=2.0,
                            name="mummi_t")
        camp = MummiCampaign(n_gpus=4, jobs_per_cycle=4,
                             cycle_budget=1e-6, breaker=br)
        camp.run(4)
        assert "surrogate" in camp.rungs_served
        assert camp.rungs_served[0] == "micro-md"  # breaker was closed
        # surrogate cycles still produce results for every candidate
        assert len(camp.results) == 4 * 4

    def test_checkpoint_roundtrips_guard_state(self):
        from repro.workflow.mummi import MummiCampaign

        br = CircuitBreaker(failure_threshold=1, recovery_time=2.0)
        camp = MummiCampaign(n_gpus=4, jobs_per_cycle=4,
                             cycle_budget=1e-6, breaker=br)
        camp.run(2)
        snap = camp.checkpoint_state()
        rungs = list(camp.rungs_served)
        camp.run(2)
        camp.restore_state(snap)
        assert camp.rungs_served == rungs
        assert camp.cycles_over_budget == snap["cycles_over_budget"]
        # replay from the checkpoint reproduces the same rung choices
        camp.run(2)
        camp2_state = camp.checkpoint_state()
        camp.restore_state(snap)
        camp.run(2)
        assert camp.checkpoint_state()["rungs_served"] == (
            camp2_state["rungs_served"]
        )


class TestBreakerQueryVsAcquire:
    """The peek / try_acquire_probe split (stranded-probe regression).

    The old single ``allow()`` served both report-back callers (MuMMI
    cycles, ``require``) and pure shed queries (``AdmissionController``).
    An open breaker past ``recovery_time`` handed its one half-open
    probe to whoever asked first — including a shed check that never
    reports back, which stranded the breaker half-open with the probe
    burned and every later caller degraded forever.
    """

    def test_admit_query_does_not_consume_probe(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        adm = AdmissionController(protect_priority=5, breaker=br)
        adm.record_failure(0.0)
        assert br.state == "open"
        # a low-priority admit query well past recovery_time: with the
        # old mutating allow(), this flipped the breaker half-open and
        # burned the probe on a caller that reports nothing
        assert not adm.admit(_FakeJob(1.0, priority=0), now=5.0,
                             queue_len=0, n_running=0, n_gpus=1)
        assert br.state == "open"
        # the probe is still there for the caller that reports back
        assert br.try_acquire_probe(5.0)
        assert br.state == "half-open"
        br.record_success(5.1)
        assert br.state == "closed"

    def test_peek_is_pure(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(0.0)
        snap = br.checkpoint_state()
        for now in (0.0, 0.5, 2.0, 1e9):
            br.peek(now)
        assert br.checkpoint_state() == snap

    def test_peek_true_only_when_closed(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        assert br.peek(0.0)
        br.record_failure(0.0)
        assert not br.peek(0.5)   # open, pre-recovery
        # open past recovery: the probe slot is reserved for
        # report-back callers, so a query still answers False
        assert not br.peek(2.0)
        assert br.try_acquire_probe(2.0)
        assert not br.peek(2.1)   # half-open: probe in flight
        br.record_success(2.2)
        assert br.peek(2.3)

    def test_allow_alias_keeps_acquire_semantics(self):
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(0.0)
        assert br.allow(2.0)
        assert br.state == "half-open"


class TestBreakerStateMachine:
    """Property tests: breaker vs an independent reference model."""

    OPS = st.lists(
        st.one_of(
            st.just("peek"),
            st.just("acquire"),
            st.just("success"),
            st.just("failure"),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False),  # advance clock
        ),
        min_size=1, max_size=60,
    )

    @given(ops=OPS, threshold=st.integers(1, 4),
           recovery=st.floats(0.5, 5.0))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_model(self, ops, threshold, recovery):
        br = CircuitBreaker(failure_threshold=threshold,
                            recovery_time=recovery, name="prop")
        # reference model, written independently of the implementation
        state, consec, opened_at, trips = "closed", 0, 0.0, 0
        now = 0.0
        for op in ops:
            if isinstance(op, float):
                now += op
                continue
            if op == "peek":
                got = br.peek(now)
                assert got == (state == "closed")
            elif op == "acquire":
                got = br.try_acquire_probe(now)
                if state == "closed":
                    want = True
                elif state == "open" and now - opened_at >= recovery:
                    want, state = True, "half-open"
                else:
                    want = False
                assert got == want
            elif op == "success":
                br.record_success(now)
                state, consec = "closed", 0
            elif op == "failure":
                br.record_failure(now)
                consec += 1
                if state == "half-open" or (
                    state == "closed" and consec >= threshold
                ):
                    state, opened_at = "open", now
                    trips += 1
            assert br.state == state
            assert br.consecutive_failures == consec
            assert br.trips == trips
            if state != "closed":
                assert br.opened_at == opened_at

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_probe_accounting_single_probe(self, ops):
        """From half-open, no sequence of peeks/acquires admits a
        second probe until the first resolves."""
        br = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
        br.record_failure(0.0)
        assert br.try_acquire_probe(5.0)   # claim the probe
        now = 5.0
        for op in ops:
            if isinstance(op, float):
                now += op
            elif op == "peek":
                assert not br.peek(now)
            elif op == "acquire":
                assert not br.try_acquire_probe(now)
            else:
                break  # success/failure resolves the probe
        else:
            assert br.state == "half-open"
