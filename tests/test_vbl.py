"""Tests for the VBL proxy: split-step optics, transpose, transfers."""

import numpy as np
import pytest

from repro.core.forall import ExecPolicy, ExecutionContext
from repro.core.machine import get_machine
from repro.core.memory import UM_PAGE_BYTES
from repro.core.roofline import RooflineModel
from repro.vbl.defects import (
    apply_phase_defects,
    fig9_experiment,
    ripple_contrast,
)
from repro.vbl.splitstep import BeamGrid, SplitStepPropagator, gaussian_beam
from repro.vbl.transfer import TransferPath, crossover_size, transfer_time
from repro.vbl.transpose import transpose_cuda_style, transpose_raja_style


@pytest.fixture
def grid():
    return BeamGrid(n=128, length=8e-3)


class TestBeamGrid:
    def test_properties(self, grid):
        assert grid.dx == pytest.approx(8e-3 / 128)
        assert grid.k0 == pytest.approx(2 * np.pi / grid.wavelength)

    def test_validation(self):
        with pytest.raises(ValueError):
            BeamGrid(n=2, length=1.0)
        with pytest.raises(ValueError):
            BeamGrid(n=64, length=-1.0)
        with pytest.raises(ValueError):
            gaussian_beam(BeamGrid(64, 1e-3), waist=0.0)


class TestSplitStep:
    def test_gaussian_spreading_matches_analytic(self, grid):
        """The canonical validation: w(z) = w0 sqrt(1 + (z/zR)^2)."""
        prop = SplitStepPropagator(grid)
        w0 = 0.5e-3
        beam = gaussian_beam(grid, w0)
        for frac in (0.5, 1.0, 1.5):
            z = frac * prop.rayleigh_range(w0)
            out = prop.propagate(beam, z, n_steps=8)
            assert prop.beam_radius(out) == pytest.approx(
                prop.analytic_waist(w0, z), rel=1e-6
            )

    def test_diffraction_conserves_energy(self, grid):
        prop = SplitStepPropagator(grid)
        beam = gaussian_beam(grid, 0.6e-3)
        out = prop.propagate(beam, 5.0, n_steps=10)
        assert prop.energy(out) == pytest.approx(prop.energy(beam),
                                                 rel=1e-12)

    def test_zero_distance_identity(self, grid):
        prop = SplitStepPropagator(grid)
        beam = gaussian_beam(grid, 0.5e-3)
        out = prop.diffraction_step(beam, 0.0)
        np.testing.assert_allclose(out, beam, atol=1e-12)

    def test_amplifier_multiplies_fluence(self, grid):
        prop = SplitStepPropagator(grid)
        beam = gaussian_beam(grid, 0.5e-3)
        gain = np.full((128, 128), 4.0)
        out = prop.amplifier_step(beam, gain)
        assert prop.energy(out) == pytest.approx(4 * prop.energy(beam),
                                                 rel=1e-12)

    def test_amplifier_uses_kernel_api(self, grid):
        ctx = ExecutionContext()
        prop = SplitStepPropagator(grid, ctx=ctx)
        beam = gaussian_beam(grid, 0.5e-3)
        prop.amplifier_step(beam, np.ones((128, 128)))
        assert any(k.name == "vbl-amplifier" for k in ctx.trace.kernels)

    def test_fft_kernels_recorded(self, grid):
        ctx = ExecutionContext()
        prop = SplitStepPropagator(grid, ctx=ctx)
        prop.diffraction_step(gaussian_beam(grid, 0.5e-3), 1.0)
        ffts = [k for k in ctx.trace.kernels if k.name == "vbl-fft"]
        assert len(ffts) == 1 and ffts[0].launches == 2

    def test_validation(self, grid):
        prop = SplitStepPropagator(grid)
        beam = gaussian_beam(grid, 0.5e-3)
        with pytest.raises(ValueError):
            prop.diffraction_step(np.zeros((4, 4)), 1.0)
        with pytest.raises(ValueError):
            prop.amplifier_step(beam, -np.ones((128, 128)))
        with pytest.raises(ValueError):
            prop.propagate(beam, 1.0, n_steps=0)
        with pytest.raises(ValueError):
            prop.beam_radius(np.zeros((128, 128), dtype=complex))


class TestTranspose:
    def test_both_styles_exact(self):
        rng = np.random.default_rng(0)
        a = rng.random((96, 160))
        np.testing.assert_array_equal(transpose_raja_style(a), a.T)
        np.testing.assert_array_equal(transpose_cuda_style(a), a.T)

    def test_complex_supported(self):
        a = np.arange(64, dtype=complex).reshape(8, 8) * (1 + 2j)
        np.testing.assert_array_equal(transpose_cuda_style(a), a.T)

    def test_cuda_significantly_faster_modeled(self):
        """§4.11: 'the native CUDA transpose significantly outperformed
        the RAJA one.'"""
        model = RooflineModel(get_machine("sierra"))
        a = np.zeros((1024, 1024))
        ctx_r, ctx_c = ExecutionContext(), ExecutionContext()
        transpose_raja_style(a, ctx_r)
        transpose_cuda_style(a, ctx_c)
        t_raja = model.run_on_gpu(ctx_r.trace).kernel_time
        t_cuda = model.run_on_gpu(ctx_c.trace).kernel_time
        assert t_raja / t_cuda > 2.0


class TestDefects:
    def test_phase_defect_preserves_fluence_instantly(self, grid):
        beam = gaussian_beam(grid, 1e-3)
        out = apply_phase_defects(beam, grid, [(0.0, 0.0)], 150e-6)
        np.testing.assert_allclose(np.abs(out), np.abs(beam), atol=1e-12)

    def test_fig9_ripples_appear_after_propagation(self):
        res = fig9_experiment(n=128, n_steps=8)
        # phase-only defects: initial fluence identical
        assert res["contrast_defect_initial"] == pytest.approx(
            res["contrast_clean_initial"], rel=1e-9
        )
        # after 10 m the defective beam shows extra modulation
        assert res["contrast_defect_final"] > 1.1 * res["contrast_clean_final"]
        # and nothing was lost
        assert res["energy_final"] == pytest.approx(res["energy_initial"],
                                                    rel=1e-10)

    def test_validation(self, grid):
        beam = gaussian_beam(grid, 1e-3)
        with pytest.raises(ValueError):
            apply_phase_defects(beam, grid, [(0, 0)], radius=0.0)
        with pytest.raises(ValueError):
            ripple_contrast(np.zeros((16, 16)))


class TestTransferModel:
    def test_h2d_crossover_few_kilobytes(self):
        """'cudaMemcpy ... will overtake GPUDirect for transfers of a
        few kilobytes or more' (H2D)."""
        c = crossover_size("h2d")
        assert 1e3 < c < 10e3

    def test_d2h_crossover_few_hundred_bytes(self):
        c = crossover_size("d2h")
        assert 100 < c < 1e3

    def test_crossover_is_real(self):
        for direction in ("h2d", "d2h"):
            c = crossover_size(direction)
            below = 0.2 * c
            above = 5.0 * c
            assert transfer_time(TransferPath.GPUDIRECT, below, direction) < (
                transfer_time(TransferPath.MEMCPY, below, direction)
            )
            assert transfer_time(TransferPath.MEMCPY, above, direction) < (
                transfer_time(TransferPath.GPUDIRECT, above, direction)
            )

    def test_um_block_granularity(self):
        """UM cost is flat within one 64 KiB block and steps at block
        boundaries."""
        t_small = transfer_time(TransferPath.UNIFIED, 100.0)
        t_one_block = transfer_time(TransferPath.UNIFIED, UM_PAGE_BYTES)
        t_two_blocks = transfer_time(TransferPath.UNIFIED,
                                     UM_PAGE_BYTES + 1)
        assert t_small == pytest.approx(t_one_block)
        assert t_two_blocks == pytest.approx(2 * t_one_block)

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_time(TransferPath.MEMCPY, -1.0)
        with pytest.raises(ValueError):
            transfer_time(TransferPath.MEMCPY, 1.0, direction="sideways")
