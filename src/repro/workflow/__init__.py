"""MuMMI-lite: the multiscale macro/micro coupling workflow (§4.6, Fig 4).

MuMMI couples a macro continuum model with thousands of micro
(ddcMD) simulations: the macro model proposes interesting lipid-
composition patches, a scheduler farms micro MD jobs onto GPUs, and
in-situ analysis feeds results back to the macro scale.  The iCoE's
ddcMD speedups translate directly into campaign throughput because
"MuMMI uses CPUs for the macro model and in situ analysis" — the GPU
MD code does not compete for them.

- :mod:`repro.workflow.mummi` — the campaign driver: a real
  diffusing macro field, gradient-based patch selection, micro jobs
  scheduled on :class:`~repro.sched.simulator.ClusterSimulator`, and
  feedback that marks sampled patches as explored.
"""

from repro.workflow.mummi import MacroModel, MummiCampaign

__all__ = ["MacroModel", "MummiCampaign"]
