"""The MuMMI campaign driver.

The macro model is a coarse lipid-composition field evolving by
diffusion with stochastic forcing (a stand-in for the continuum RAS-
membrane model); "interesting" patches are those with compositions
least like anything already simulated — the novelty-sampling strategy
of the real MuMMI.  Each selected patch becomes a micro MD job whose
GPU service time comes from the §4.6 step-time model, scheduled on the
event-driven cluster simulator; completed jobs feed an in-situ
analysis summary back into the macro state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.md.gromacs_baseline import modeled_step_times
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator, Job
from repro.util.rng import make_rng


class MacroModel:
    """Coarse 2D composition field with diffusion + forcing."""

    def __init__(self, n: int = 32, diffusivity: float = 0.2, seed: int = 0):
        if n < 4:
            raise ValueError("macro grid too small")
        if not (0 < diffusivity <= 0.25):
            raise ValueError("diffusivity in (0, 0.25] for stability")
        self.n = n
        self.d = diffusivity
        self.rng = make_rng(seed)
        self.field = self.rng.random((n, n))

    def step(self, forcing: float = 0.02) -> None:
        f = self.field
        lap = (
            np.roll(f, 1, 0) + np.roll(f, -1, 0)
            + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4 * f
        )
        self.field = f + self.d * lap + forcing * self.rng.normal(
            0, 1, f.shape
        )

    def patch_compositions(self, patch: int = 4) -> np.ndarray:
        """Mean composition per patch, shape (n/patch, n/patch)."""
        if self.n % patch:
            raise ValueError("patch size must divide the grid")
        m = self.n // patch
        return self.field.reshape(m, patch, m, patch).mean(axis=(1, 3))


@dataclass
class MicroResult:
    """In-situ analysis summary of one micro simulation."""

    composition: float
    observable: float


class MummiCampaign:
    """Run macro/micro coupling cycles and account GPU throughput."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        n_gpus: int = 16,
        md_code: str = "ddcmd",
        steps_per_sim: int = 25_000,
        jobs_per_cycle: int = 24,
        seed: int = 0,
        fault_injector=None,
        retry_policy=None,
    ):
        if md_code not in ("ddcmd", "gromacs"):
            raise ValueError("md_code must be 'ddcmd' or 'gromacs'")
        if n_gpus < 1 or steps_per_sim < 1 or jobs_per_cycle < 1:
            raise ValueError("bad campaign parameters")
        self.machine = machine if machine is not None else get_machine("sierra")
        self.n_gpus = n_gpus
        self.md_code = md_code
        self.steps_per_sim = steps_per_sim
        self.jobs_per_cycle = jobs_per_cycle
        self.macro = MacroModel(seed=seed)
        self.rng = make_rng(seed + 1)
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.explored: List[float] = []
        self.results: List[MicroResult] = []
        self.gpu_hours = 0.0
        self.wall_time = 0.0
        self.cycles_done = 0
        self.failures = 0
        self.job_retries = 0
        self.wasted_gpu_hours = 0.0
        # per-simulation GPU time from the §4.6 model.  Each micro sim
        # owns one GPU; the node's sockets are shared between the
        # concurrent sims on that node, and the macro model + in-situ
        # analysis take ~35% of what remains (§4.6: "MuMMI uses CPUs
        # for the macro model and in situ analysis").
        sockets_per_sim = self.machine.cpu_sockets / self.machine.gpus_per_node
        times = modeled_step_times(
            self.machine, gpus=1, cpu_sockets_for_md=sockets_per_sim,
            cpu_available_fraction=0.65,
        )
        self.step_time = times[md_code]

    # ------------------------------------------------------------------

    def select_candidates(self) -> np.ndarray:
        """Novelty sampling: patches least like anything explored."""
        comps = self.macro.patch_compositions().ravel()
        if not self.explored:
            novelty = np.abs(comps - comps.mean())
        else:
            explored = np.asarray(self.explored)
            novelty = np.min(
                np.abs(comps[:, None] - explored[None, :]), axis=1
            )
        order = np.argsort(novelty)[::-1]
        return order[: self.jobs_per_cycle]

    def run_cycle(self) -> Dict[str, float]:
        """One coupling cycle; returns cycle metrics."""
        with _trace.span("workflow.mummi.cycle", cycle=self.cycles_done,
                         jobs=self.jobs_per_cycle):
            metrics = self._run_cycle()
        _metrics.counter("workflow.mummi.cycles").add()
        _metrics.counter("workflow.mummi.simulations").add(
            int(metrics["simulations"])
        )
        if metrics["failures"]:
            _metrics.counter("workflow.mummi.failures").add(
                int(metrics["failures"])
            )
        return metrics

    def _run_cycle(self) -> Dict[str, float]:
        self.macro.step()
        candidates = self.select_candidates()
        comps = self.macro.patch_compositions().ravel()
        service = self.steps_per_sim * self.step_time
        jobs = [
            Job(job_id=int(k), arrival=0.0,
                service=service * float(self.rng.uniform(0.9, 1.1)))
            for k in range(candidates.size)
        ]
        result = ClusterSimulator(self.n_gpus).run(
            jobs, Fcfs(),
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
        )
        # in-situ analysis: summarize each micro sim and feed back
        for patch_idx in candidates:
            comp = float(comps[patch_idx])
            self.explored.append(comp)
            self.results.append(MicroResult(
                composition=comp,
                observable=comp + 0.05 * float(self.rng.normal()),
            ))
        self.gpu_hours += sum(j.service for j in jobs) / 3600.0
        self.wall_time += result.makespan
        self.cycles_done += 1
        self.failures += result.failures
        self.job_retries += result.retries
        self.wasted_gpu_hours += result.wasted_time / 3600.0
        return {
            "simulations": float(len(jobs)),
            "makespan": result.makespan,
            "utilization": result.utilization,
            "goodput": result.goodput,
            "failures": float(result.failures),
        }

    def run(self, n_cycles: int) -> None:
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        for _ in range(n_cycles):
            self.run_cycle()

    @property
    def simulations_per_hour(self) -> float:
        if self.wall_time == 0:
            return 0.0
        return len(self.results) / (self.wall_time / 3600.0)

    def coverage(self, bins: int = 10) -> float:
        """Fraction of composition space explored (novelty sampling
        should drive this up faster than random sampling would)."""
        if not self.explored:
            return 0.0
        hist, _ = np.histogram(self.explored, bins=bins, range=(0.0, 1.0))
        return float((hist > 0).mean())

    # ------------------------------------------------------------------
    # resilience protocol (checkpoint/restart + ABFT)
    # ------------------------------------------------------------------

    @property
    def progress(self) -> int:
        return self.cycles_done

    def step(self) -> Dict[str, float]:
        """One campaign cycle (the unit the resilient driver advances)."""
        return self.run_cycle()

    def checkpoint_state(self) -> Dict[str, Any]:
        """Snapshot the full campaign: macro field, both RNG streams,
        the explored/novelty history, accounting, and the fault
        injector's stream (so a restart replays the same downstream
        fault schedule)."""
        return {
            "field": self.macro.field.copy(),
            "macro_rng": copy.deepcopy(self.macro.rng.bit_generator.state),
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "explored": list(self.explored),
            "results": [
                (r.composition, r.observable) for r in self.results
            ],
            "gpu_hours": self.gpu_hours,
            "wall_time": self.wall_time,
            "cycles_done": self.cycles_done,
            "failures": self.failures,
            "job_retries": self.job_retries,
            "wasted_gpu_hours": self.wasted_gpu_hours,
            "injector": (
                None if self.fault_injector is None
                else self.fault_injector.checkpoint_state()
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.macro.field = state["field"].copy()
        self.macro.rng.bit_generator.state = copy.deepcopy(
            state["macro_rng"]
        )
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
        self.explored = list(state["explored"])
        self.results = [
            MicroResult(composition=c, observable=o)
            for c, o in state["results"]
        ]
        self.gpu_hours = state["gpu_hours"]
        self.wall_time = state["wall_time"]
        self.cycles_done = state["cycles_done"]
        self.failures = state["failures"]
        self.job_retries = state["job_retries"]
        self.wasted_gpu_hours = state["wasted_gpu_hours"]
        if self.fault_injector is not None and state["injector"] is not None:
            self.fault_injector.restore_state(state["injector"])

    #: composition values live in O(1) territory; anything near this
    #: bound can only come from corrupted state
    ABFT_FIELD_BOUND = 1e3

    def abft_error(self) -> float:
        """Macro-field range check: compositions are O(1) physical
        quantities, so a non-finite or huge entry means the field was
        corrupted in flight."""
        f = self.macro.field
        if not np.isfinite(f).all():
            return float("inf")
        return float(np.abs(f).max()) / self.ABFT_FIELD_BOUND

    def corrupt(self, rng, magnitude: float = 1e6) -> None:
        """Inject a silent corruption into the macro field."""
        k = int(rng.integers(self.macro.field.size))
        self.macro.field.reshape(-1)[k] += magnitude
