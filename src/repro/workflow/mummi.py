"""The MuMMI campaign driver.

The macro model is a coarse lipid-composition field evolving by
diffusion with stochastic forcing (a stand-in for the continuum RAS-
membrane model); "interesting" patches are those with compositions
least like anything already simulated — the novelty-sampling strategy
of the real MuMMI.  Each selected patch becomes a micro MD job whose
GPU service time comes from the §4.6 step-time model, scheduled on the
event-driven cluster simulator; completed jobs feed an in-situ
analysis summary back into the macro state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.md.gromacs_baseline import modeled_step_times
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator, Job
from repro.util.rng import make_rng


class MacroModel:
    """Coarse 2D composition field with diffusion + forcing."""

    def __init__(self, n: int = 32, diffusivity: float = 0.2, seed: int = 0):
        if n < 4:
            raise ValueError("macro grid too small")
        if not (0 < diffusivity <= 0.25):
            raise ValueError("diffusivity in (0, 0.25] for stability")
        self.n = n
        self.d = diffusivity
        self.rng = make_rng(seed)
        self.field = self.rng.random((n, n))

    def step(self, forcing: float = 0.02) -> None:
        f = self.field
        lap = (
            np.roll(f, 1, 0) + np.roll(f, -1, 0)
            + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4 * f
        )
        self.field = f + self.d * lap + forcing * self.rng.normal(
            0, 1, f.shape
        )

    def patch_compositions(self, patch: int = 4) -> np.ndarray:
        """Mean composition per patch, shape (n/patch, n/patch)."""
        if self.n % patch:
            raise ValueError("patch size must divide the grid")
        m = self.n // patch
        return self.field.reshape(m, patch, m, patch).mean(axis=(1, 3))


@dataclass
class MicroResult:
    """In-situ analysis summary of one micro simulation."""

    composition: float
    observable: float


class MummiCampaign:
    """Run macro/micro coupling cycles and account GPU throughput."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        n_gpus: int = 16,
        md_code: str = "ddcmd",
        steps_per_sim: int = 25_000,
        jobs_per_cycle: int = 24,
        seed: int = 0,
    ):
        if md_code not in ("ddcmd", "gromacs"):
            raise ValueError("md_code must be 'ddcmd' or 'gromacs'")
        if n_gpus < 1 or steps_per_sim < 1 or jobs_per_cycle < 1:
            raise ValueError("bad campaign parameters")
        self.machine = machine if machine is not None else get_machine("sierra")
        self.n_gpus = n_gpus
        self.md_code = md_code
        self.steps_per_sim = steps_per_sim
        self.jobs_per_cycle = jobs_per_cycle
        self.macro = MacroModel(seed=seed)
        self.rng = make_rng(seed + 1)
        self.explored: List[float] = []
        self.results: List[MicroResult] = []
        self.gpu_hours = 0.0
        self.wall_time = 0.0
        # per-simulation GPU time from the §4.6 model.  Each micro sim
        # owns one GPU; the node's sockets are shared between the
        # concurrent sims on that node, and the macro model + in-situ
        # analysis take ~35% of what remains (§4.6: "MuMMI uses CPUs
        # for the macro model and in situ analysis").
        sockets_per_sim = self.machine.cpu_sockets / self.machine.gpus_per_node
        times = modeled_step_times(
            self.machine, gpus=1, cpu_sockets_for_md=sockets_per_sim,
            cpu_available_fraction=0.65,
        )
        self.step_time = times[md_code]

    # ------------------------------------------------------------------

    def select_candidates(self) -> np.ndarray:
        """Novelty sampling: patches least like anything explored."""
        comps = self.macro.patch_compositions().ravel()
        if not self.explored:
            novelty = np.abs(comps - comps.mean())
        else:
            explored = np.asarray(self.explored)
            novelty = np.min(
                np.abs(comps[:, None] - explored[None, :]), axis=1
            )
        order = np.argsort(novelty)[::-1]
        return order[: self.jobs_per_cycle]

    def run_cycle(self) -> Dict[str, float]:
        """One coupling cycle; returns cycle metrics."""
        self.macro.step()
        candidates = self.select_candidates()
        comps = self.macro.patch_compositions().ravel()
        service = self.steps_per_sim * self.step_time
        jobs = [
            Job(job_id=int(k), arrival=0.0,
                service=service * float(self.rng.uniform(0.9, 1.1)))
            for k in range(candidates.size)
        ]
        result = ClusterSimulator(self.n_gpus).run(jobs, Fcfs())
        # in-situ analysis: summarize each micro sim and feed back
        for patch_idx in candidates:
            comp = float(comps[patch_idx])
            self.explored.append(comp)
            self.results.append(MicroResult(
                composition=comp,
                observable=comp + 0.05 * float(self.rng.normal()),
            ))
        self.gpu_hours += sum(j.service for j in jobs) / 3600.0
        self.wall_time += result.makespan
        return {
            "simulations": float(len(jobs)),
            "makespan": result.makespan,
            "utilization": result.utilization,
        }

    def run(self, n_cycles: int) -> None:
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        for _ in range(n_cycles):
            self.run_cycle()

    @property
    def simulations_per_hour(self) -> float:
        if self.wall_time == 0:
            return 0.0
        return len(self.results) / (self.wall_time / 3600.0)

    def coverage(self, bins: int = 10) -> float:
        """Fraction of composition space explored (novelty sampling
        should drive this up faster than random sampling would)."""
        if not self.explored:
            return 0.0
        hist, _ = np.histogram(self.explored, bins=bins, range=(0.0, 1.0))
        return float((hist > 0).mean())
