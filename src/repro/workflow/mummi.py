"""The MuMMI campaign driver.

The macro model is a coarse lipid-composition field evolving by
diffusion with stochastic forcing (a stand-in for the continuum RAS-
membrane model); "interesting" patches are those with compositions
least like anything already simulated — the novelty-sampling strategy
of the real MuMMI.  Each selected patch becomes a micro MD job whose
GPU service time comes from the §4.6 step-time model, scheduled on the
event-driven cluster simulator; completed jobs feed an in-situ
analysis summary back into the macro state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.md.gromacs_baseline import modeled_step_times
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.par import Backend, ShmStage, get_backend, map_fanout
from repro.sched.policies import Fcfs
from repro.sched.simulator import ClusterSimulator, Job
from repro.util.rng import make_rng


def _micro_analysis(args):
    """In-situ analysis of one micro simulation (the fan-out unit).

    Pure function of the patch composition, the candidate's own
    spawned RNG stream, and the fidelity rung's noise scale — so the
    result is identical no matter which backend/worker evaluates it.
    """
    sc, idx, seq, noise_scale = args
    comp = float(sc.asarray()[idx])
    rng = np.random.default_rng(seq)
    return MicroResult(
        composition=comp,
        observable=comp + noise_scale * float(rng.normal()),
    )


class MacroModel:
    """Coarse 2D composition field with diffusion + forcing."""

    def __init__(self, n: int = 32, diffusivity: float = 0.2, seed=0):
        if n < 4:
            raise ValueError("macro grid too small")
        if not (0 < diffusivity <= 0.25):
            raise ValueError("diffusivity in (0, 0.25] for stability")
        self.n = n
        self.d = diffusivity
        self.rng = make_rng(seed)
        self.field = self.rng.random((n, n))

    def step(self, forcing: float = 0.02) -> None:
        f = self.field
        lap = (
            np.roll(f, 1, 0) + np.roll(f, -1, 0)
            + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4 * f
        )
        self.field = f + self.d * lap + forcing * self.rng.normal(
            0, 1, f.shape
        )

    def patch_compositions(self, patch: int = 4) -> np.ndarray:
        """Mean composition per patch, shape (n/patch, n/patch)."""
        if self.n % patch:
            raise ValueError("patch size must divide the grid")
        m = self.n // patch
        return self.field.reshape(m, patch, m, patch).mean(axis=(1, 3))


@dataclass
class MicroResult:
    """In-situ analysis summary of one micro simulation."""

    composition: float
    observable: float


class MummiCampaign:
    """Run macro/micro coupling cycles and account GPU throughput."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        n_gpus: int = 16,
        md_code: str = "ddcmd",
        steps_per_sim: int = 25_000,
        jobs_per_cycle: int = 24,
        seed: int = 0,
        fault_injector=None,
        retry_policy=None,
        cycle_budget: Optional[float] = None,
        breaker=None,
        admission=None,
        backend=None,
        tenant: Optional[str] = None,
        ladder=None,
    ):
        if md_code not in ("ddcmd", "gromacs"):
            raise ValueError("md_code must be 'ddcmd' or 'gromacs'")
        if n_gpus < 1 or steps_per_sim < 1 or jobs_per_cycle < 1:
            raise ValueError("bad campaign parameters")
        if cycle_budget is not None and cycle_budget <= 0:
            raise ValueError("cycle_budget must be positive")
        self.machine = machine if machine is not None else get_machine("sierra")
        self.n_gpus = n_gpus
        self.md_code = md_code
        self.steps_per_sim = steps_per_sim
        self.jobs_per_cycle = jobs_per_cycle
        # independent campaign streams via SeedSequence.spawn — the
        # old ``make_rng(seed + 1)`` offset risks colliding with the
        # macro model's own ``seed`` stream.  The macro model keeps the
        # root stream (``default_rng(seed)`` seeds through the same
        # SeedSequence); the auxiliary streams are spawned children,
        # which are independent of the root by spawn_key.
        jitter_seq, eval_root = np.random.SeedSequence(seed).spawn(2)
        self.macro = MacroModel(seed=seed)
        #: parent-side stream for job service-time jitter (sequential
        #: draws; cheap, so they stay in the parent for determinism)
        self.rng = make_rng(jitter_seq)
        #: root of the per-candidate evaluation streams; each cycle
        #: spawns one child per candidate, so micro results are a
        #: function of (cycle, candidate), not of evaluation order
        self._eval_root = eval_root
        #: per-call execution backend spec (None -> REPRO_PAR env)
        self.backend = backend
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        #: per-cycle wall-clock budget (simulated seconds); overruns are
        #: surfaced via the ``workflow.mummi.cycle_over_budget`` counter
        #: and, with an admission controller attached, become per-job
        #: deadlines the controller sheds against
        self.cycle_budget = cycle_budget
        #: :class:`repro.guard.deadline.CircuitBreaker` fed by cycle
        #: failures; while open, cycles degrade to the lower-fidelity
        #: macro surrogate instead of launching micro MD jobs
        self.breaker = breaker
        #: :class:`repro.guard.deadline.AdmissionController` consulted
        #: by the cluster simulator at enqueue time
        self.admission = admission
        #: owning tenant name, stamped on every micro MD job so a
        #: shared-machine admission layer (the
        #: :class:`~repro.tenant.TenantRegistry`) can charge this
        #: campaign's load to its own contract
        self.tenant = tenant
        #: :class:`repro.tenant.BrownoutLadder` — at the ``degrade``
        #: rung or worse the cycle is served from the macro surrogate
        #: even while the breaker is closed (brownout beats fidelity)
        self.ladder = ladder
        #: fidelity rung that served each cycle: "micro-md"/"surrogate"
        self.rungs_served: List[str] = []
        self.jobs_shed = 0
        self.cycles_over_budget = 0
        self.explored: List[float] = []
        self.results: List[MicroResult] = []
        self.gpu_hours = 0.0
        self.wall_time = 0.0
        self.cycles_done = 0
        self.failures = 0
        self.job_retries = 0
        self.wasted_gpu_hours = 0.0
        # per-simulation GPU time from the §4.6 model.  Each micro sim
        # owns one GPU; the node's sockets are shared between the
        # concurrent sims on that node, and the macro model + in-situ
        # analysis take ~35% of what remains (§4.6: "MuMMI uses CPUs
        # for the macro model and in situ analysis").
        sockets_per_sim = self.machine.cpu_sockets / self.machine.gpus_per_node
        times = modeled_step_times(
            self.machine, gpus=1, cpu_sockets_for_md=sockets_per_sim,
            cpu_available_fraction=0.65,
        )
        self.step_time = times[md_code]

    # ------------------------------------------------------------------

    def select_candidates(self) -> np.ndarray:
        """Novelty sampling: patches least like anything explored."""
        comps = self.macro.patch_compositions().ravel()
        if not self.explored:
            novelty = np.abs(comps - comps.mean())
        else:
            explored = np.asarray(self.explored)
            novelty = np.min(
                np.abs(comps[:, None] - explored[None, :]), axis=1
            )
        order = np.argsort(novelty)[::-1]
        return order[: self.jobs_per_cycle]

    def run_cycle(self) -> Dict[str, float]:
        """One coupling cycle; returns cycle metrics."""
        with _trace.span("workflow.mummi.cycle", cycle=self.cycles_done,
                         jobs=self.jobs_per_cycle):
            metrics = self._run_cycle()
        _metrics.counter("workflow.mummi.cycles").add()
        _metrics.counter("workflow.mummi.simulations").add(
            int(metrics["simulations"])
        )
        if metrics["failures"]:
            _metrics.counter("workflow.mummi.failures").add(
                int(metrics["failures"])
            )
        return metrics

    def _run_cycle(self) -> Dict[str, float]:
        self.macro.step()
        candidates = self.select_candidates()
        comps = self.macro.patch_compositions().ravel()
        # graceful degradation: with the breaker open (fault storm /
        # repeated budget overruns), serve this cycle from the cheap
        # macro surrogate instead of launching micro MD.  The breaker
        # runs on the cycle-count clock.  This caller reports back
        # (record_success/record_failure at cycle end), so it is the
        # one legitimately entitled to the half-open probe.
        if self.breaker is not None and not self.breaker.try_acquire_probe(
            float(self.cycles_done)
        ):
            return self._run_surrogate_cycle(candidates, comps)
        # brownout: the tenant layer can demand degraded service even
        # with a healthy breaker (the machine is overloaded, not
        # faulting) — serve the surrogate rung, burn no GPU-hours
        if self.ladder is not None and self.ladder.at_least("degrade"):
            return self._run_surrogate_cycle(candidates, comps)
        service = self.steps_per_sim * self.step_time
        # job_id order is novelty rank: rank 0 is the most novel patch
        # and gets the highest priority, so under load shedding the
        # least interesting candidates are sacrificed first
        jobs = [
            Job(job_id=int(k), arrival=0.0,
                service=service * float(self.rng.uniform(0.9, 1.1)),
                priority=int(candidates.size - k),
                deadline=self.cycle_budget,
                tenant=self.tenant)
            for k in range(candidates.size)
        ]
        result = ClusterSimulator(self.n_gpus).run(
            jobs, Fcfs(),
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
            admission=self.admission,
        )
        # in-situ analysis: summarize each micro sim and feed back
        self._analyze_candidates(candidates, comps, noise_scale=0.05)
        self.gpu_hours += sum(j.service for j in jobs) / 3600.0
        self.wall_time += result.makespan
        self.cycles_done += 1
        self.failures += result.failures
        self.job_retries += result.retries
        self.jobs_shed += result.shed
        self.wasted_gpu_hours += result.wasted_time / 3600.0
        self.rungs_served.append("micro-md")
        over_budget = (
            self.cycle_budget is not None
            and result.makespan > self.cycle_budget
        )
        if over_budget:
            self.cycles_over_budget += 1
            _metrics.counter("workflow.mummi.cycle_over_budget").add()
        if self.breaker is not None:
            now = float(self.cycles_done)
            if result.failures or over_budget:
                self.breaker.record_failure(now)
            else:
                self.breaker.record_success(now)
            _metrics.counter("guard.fallback.mummi.served.micro_md").add()
        return {
            "simulations": float(len(jobs)),
            "makespan": result.makespan,
            "utilization": result.utilization,
            "goodput": result.goodput,
            "failures": float(result.failures),
            "shed": float(result.shed),
            "over_budget": float(over_budget),
            "degraded": 0.0,
        }

    def _run_surrogate_cycle(
        self, candidates: np.ndarray, comps: np.ndarray
    ) -> Dict[str, float]:
        """Lower-fidelity rung: serve the cycle from the macro model.

        No micro MD jobs are launched and no GPU-hours are burned; each
        candidate's observable is a macro-derived estimate with wider
        surrogate noise.  The campaign keeps making (degraded) progress
        through a fault storm instead of hammering a failing cluster.
        """
        self._analyze_candidates(candidates, comps, noise_scale=0.2)
        self.cycles_done += 1
        self.rungs_served.append("surrogate")
        _metrics.counter("guard.fallback.mummi.served.surrogate").add()
        _metrics.counter("guard.fallback.mummi.degraded").add()
        return {
            "simulations": float(candidates.size),
            "makespan": 0.0,
            "utilization": 0.0,
            "goodput": 0.0,
            "failures": 0.0,
            "shed": 0.0,
            "over_budget": 0.0,
            "degraded": 1.0,
        }

    def _analyze_candidates(
        self, candidates: np.ndarray, comps: np.ndarray, noise_scale: float
    ) -> None:
        """Fan the per-candidate micro analysis out over the backend.

        Each candidate gets its own spawned child of the campaign's
        evaluation stream, so the fan-out is bit-exact across
        backends; the spawn counter is part of the checkpoint state.
        """
        seqs = self._eval_root.spawn(int(candidates.size))
        be = get_backend(self.backend)
        # the macro composition snapshot crosses to the workers once
        # as a shared segment; each candidate reads its own element
        with ShmStage(be.kind) as stage:
            sc = stage.share(np.ascontiguousarray(comps, dtype=np.float64))
            results = map_fanout(
                _micro_analysis,
                [(sc, int(i), seq, noise_scale)
                 for i, seq in zip(candidates, seqs)],
                backend=be,
            )
        for result in results:
            self.explored.append(result.composition)
            self.results.append(result)

    def run(self, n_cycles: int) -> None:
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        for _ in range(n_cycles):
            self.run_cycle()

    @property
    def simulations_per_hour(self) -> float:
        if self.wall_time == 0:
            return 0.0
        return len(self.results) / (self.wall_time / 3600.0)

    def coverage(self, bins: int = 10) -> float:
        """Fraction of composition space explored (novelty sampling
        should drive this up faster than random sampling would)."""
        if not self.explored:
            return 0.0
        hist, _ = np.histogram(self.explored, bins=bins, range=(0.0, 1.0))
        return float((hist > 0).mean())

    # ------------------------------------------------------------------
    # resilience protocol (checkpoint/restart + ABFT)
    # ------------------------------------------------------------------

    @property
    def progress(self) -> int:
        return self.cycles_done

    def step(self) -> Dict[str, float]:
        """One campaign cycle (the unit the resilient driver advances)."""
        return self.run_cycle()

    def checkpoint_state(self) -> Dict[str, Any]:
        """Snapshot the full campaign: macro field, both RNG streams,
        the explored/novelty history, accounting, and the fault
        injector's stream (so a restart replays the same downstream
        fault schedule)."""
        return {
            "field": self.macro.field.copy(),
            "macro_rng": copy.deepcopy(self.macro.rng.bit_generator.state),
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            # the eval stream restores by replaying its spawn count
            "eval_stream": {
                "entropy": self._eval_root.entropy,
                "spawn_key": tuple(self._eval_root.spawn_key),
                "n_children_spawned": self._eval_root.n_children_spawned,
            },
            "explored": list(self.explored),
            "results": [
                (r.composition, r.observable) for r in self.results
            ],
            "gpu_hours": self.gpu_hours,
            "wall_time": self.wall_time,
            "cycles_done": self.cycles_done,
            "failures": self.failures,
            "job_retries": self.job_retries,
            "jobs_shed": self.jobs_shed,
            "cycles_over_budget": self.cycles_over_budget,
            "rungs_served": list(self.rungs_served),
            "wasted_gpu_hours": self.wasted_gpu_hours,
            "injector": (
                None if self.fault_injector is None
                else self.fault_injector.checkpoint_state()
            ),
            "breaker": (
                None if self.breaker is None
                else self.breaker.checkpoint_state()
            ),
            "admission": (
                None if self.admission is None
                else self.admission.checkpoint_state()
            ),
            "ladder": (
                None if self.ladder is None
                else self.ladder.checkpoint_state()
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.macro.field = state["field"].copy()
        self.macro.rng.bit_generator.state = copy.deepcopy(
            state["macro_rng"]
        )
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
        ev = state.get("eval_stream")
        if ev is not None:
            self._eval_root = np.random.SeedSequence(
                entropy=ev["entropy"],
                spawn_key=tuple(ev["spawn_key"]),
                n_children_spawned=ev["n_children_spawned"],
            )
        self.explored = list(state["explored"])
        self.results = [
            MicroResult(composition=c, observable=o)
            for c, o in state["results"]
        ]
        self.gpu_hours = state["gpu_hours"]
        self.wall_time = state["wall_time"]
        self.cycles_done = state["cycles_done"]
        self.failures = state["failures"]
        self.job_retries = state["job_retries"]
        self.jobs_shed = state.get("jobs_shed", 0)
        self.cycles_over_budget = state.get("cycles_over_budget", 0)
        self.rungs_served = list(state.get("rungs_served", []))
        self.wasted_gpu_hours = state["wasted_gpu_hours"]
        if self.fault_injector is not None and state["injector"] is not None:
            self.fault_injector.restore_state(state["injector"])
        if self.breaker is not None and state.get("breaker") is not None:
            self.breaker.restore_state(state["breaker"])
        if self.admission is not None and state.get("admission") is not None:
            self.admission.restore_state(state["admission"])
        if self.ladder is not None and state.get("ladder") is not None:
            self.ladder.restore_state(state["ladder"])

    #: composition values live in O(1) territory; anything near this
    #: bound can only come from corrupted state
    ABFT_FIELD_BOUND = 1e3

    def abft_error(self) -> float:
        """Macro-field range check: compositions are O(1) physical
        quantities, so a non-finite or huge entry means the field was
        corrupted in flight."""
        f = self.macro.field
        if not np.isfinite(f).all():
            return float("inf")
        return float(np.abs(f).max()) / self.ABFT_FIELD_BOUND

    def corrupt(self, rng, magnitude: float = 1e6) -> None:
        """Inject a silent corruption into the macro field."""
        k = int(rng.integers(self.macro.field.size))
        self.macro.field.reshape(-1)[k] += magnitude
