"""1D bases and quadrature for tensor-product finite elements.

High-order nodal bases use Gauss-Lobatto-Legendre (GLL) points — the
standard choice for spectral elements (well-conditioned Lagrange
interpolation, endpoint nodes give C0 continuity across elements).
Quadrature uses Gauss-Legendre with enough points to integrate
stiffness terms exactly for affine elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np


def gauss_legendre(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """n-point Gauss-Legendre rule on [-1, 1]; exact to degree 2n-1."""
    if n < 1:
        raise ValueError("need at least one quadrature point")
    x, w = np.polynomial.legendre.leggauss(n)
    return x, w


@lru_cache(maxsize=64)
def _gauss_lobatto_cached(n: int) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    # points: ±1 and roots of P'_{n-1}
    if n == 2:
        return (-1.0, 1.0), (1.0, 1.0)
    cn = np.zeros(n)
    cn[-1] = 1.0
    dp = np.polynomial.legendre.Legendre(cn).deriv()
    interior = np.sort(dp.roots())
    pts = np.concatenate([[-1.0], interior, [1.0]])
    # weights: 2 / (n(n-1) P_{n-1}(x)^2)
    pn = np.polynomial.legendre.Legendre(cn)
    wts = 2.0 / (n * (n - 1) * pn(pts) ** 2)
    return tuple(pts.tolist()), tuple(wts.tolist())


def gauss_lobatto(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """n-point Gauss-Lobatto-Legendre rule on [-1, 1] (n >= 2).

    Includes the endpoints; exact to degree 2n-3.
    """
    if n < 2:
        raise ValueError("Gauss-Lobatto needs n >= 2")
    pts, wts = _gauss_lobatto_cached(n)
    return np.array(pts), np.array(wts)


def lagrange_eval(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix L with L[q, i] = l_i(x_q) for Lagrange basis on *nodes*."""
    nodes = np.asarray(nodes, dtype=np.float64)
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    n = nodes.size
    out = np.ones((x.size, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                out[:, i] *= (x - nodes[j]) / (nodes[i] - nodes[j])
    return out


def lagrange_deriv(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix D with D[q, i] = l_i'(x_q)."""
    nodes = np.asarray(nodes, dtype=np.float64)
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    n = nodes.size
    out = np.zeros((x.size, n))
    for i in range(n):
        for k in range(n):
            if k == i:
                continue
            term = np.full(x.size, 1.0 / (nodes[i] - nodes[k]))
            for j in range(n):
                if j != i and j != k:
                    term *= (x - nodes[j]) / (nodes[i] - nodes[j])
            out[:, i] += term
    return out


@dataclass(frozen=True)
class Basis1D:
    """Order-p 1D Lagrange basis on GLL nodes with GL quadrature.

    Attributes
    ----------
    order:
        Polynomial order p (p+1 nodes).
    nodes:
        GLL nodes on [-1, 1], shape (p+1,).
    quad_pts, quad_wts:
        Gauss-Legendre rule (p+2 points: exact for mass and stiffness
        of affine elements).
    b:
        Interpolation matrix, shape (nq, p+1): basis values at
        quadrature points.
    g:
        Derivative matrix, shape (nq, p+1): basis derivatives at
        quadrature points (reference coordinates).
    """

    order: int
    nodes: np.ndarray
    quad_pts: np.ndarray
    quad_wts: np.ndarray
    b: np.ndarray
    g: np.ndarray

    @staticmethod
    def make(order: int, quad_points: int = 0) -> "Basis1D":
        if order < 1:
            raise ValueError("order must be >= 1")
        nodes, _ = gauss_lobatto(order + 1)
        nq = quad_points if quad_points > 0 else order + 2
        qx, qw = gauss_legendre(nq)
        return Basis1D(
            order=order,
            nodes=nodes,
            quad_pts=qx,
            quad_wts=qw,
            b=lagrange_eval(nodes, qx),
            g=lagrange_deriv(nodes, qx),
        )

    @property
    def n_nodes(self) -> int:
        return self.order + 1

    @property
    def n_quad(self) -> int:
        return self.quad_pts.size
