"""Low-order-refined (LOR) preconditioning.

Fig 8 / Table 4 solve the high-order system with "hypre's BoomerAMG
preconditioner on a low-order refined version of the finite element
operator".  The LOR operator is the bilinear (p=1) discretization on
the submesh whose vertices are the GLL nodes of the high-order mesh;
it is spectrally equivalent to the high-order operator, and — unlike
the high-order operator — assembles into an AMG-friendly sparse
M-matrix.

On a tensor mesh the bilinear operators separate exactly:

    K_2D = Kx (x) My + Mx (x) Ky        (stiffness)
    M_2D = Mx (x) My                    (mass)

with 1D P1 stiffness/mass matrices on the (non-uniform) GLL node
spacings — so the assembly here is exact, not an approximation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.mesh import TensorMesh2D


def p1_stiffness_1d(coords: np.ndarray) -> sp.csr_matrix:
    """1D P1 stiffness on node *coords* (tridiagonal, h_i = spacing)."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 1 or coords.size < 2:
        raise ValueError("need at least two 1D nodes")
    h = np.diff(coords)
    if np.any(h <= 0):
        raise ValueError("coords must be strictly increasing")
    inv = 1.0 / h
    n = coords.size
    main = np.zeros(n)
    main[:-1] += inv
    main[1:] += inv
    return sp.diags([-inv, main, -inv], [-1, 0, 1], format="csr")


def p1_mass_1d(coords: np.ndarray) -> sp.csr_matrix:
    """1D P1 consistent mass on node *coords*."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 1 or coords.size < 2:
        raise ValueError("need at least two 1D nodes")
    h = np.diff(coords)
    if np.any(h <= 0):
        raise ValueError("coords must be strictly increasing")
    n = coords.size
    main = np.zeros(n)
    main[:-1] += h / 3.0
    main[1:] += h / 3.0
    off = h / 6.0
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def lor_diffusion_matrix(mesh: TensorMesh2D, coefficient: float = 1.0
                         ) -> sp.csr_matrix:
    """Assembled LOR stiffness matrix on the full tensor node grid.

    Only constant coefficients separate exactly; the nonlinear solver
    refreshes the preconditioner with the coefficient's mean, which is
    the usual frozen-coefficient practice.
    """
    if coefficient <= 0:
        raise ValueError("diffusion coefficient must be positive")
    x = mesh.node_coords_1d("x")
    y = mesh.node_coords_1d("y")
    kx, mx = p1_stiffness_1d(x), p1_mass_1d(x)
    ky, my = p1_stiffness_1d(y), p1_mass_1d(y)
    a = sp.kron(kx, my) + sp.kron(mx, ky)
    a = (coefficient * a).tocsr()
    a.eliminate_zeros()
    return a


def lor_mass_matrix(mesh: TensorMesh2D, coefficient: float = 1.0
                    ) -> sp.csr_matrix:
    """Assembled LOR mass matrix on the full tensor node grid."""
    if coefficient <= 0:
        raise ValueError("mass coefficient must be positive")
    x = mesh.node_coords_1d("x")
    y = mesh.node_coords_1d("y")
    m = sp.kron(p1_mass_1d(x), p1_mass_1d(y))
    return (coefficient * m).tocsr()


def restrict_matrix(a: sp.csr_matrix, keep: np.ndarray) -> sp.csr_matrix:
    """Restrict a matrix to the index set *keep* (Dirichlet elimination)."""
    return a[np.ix_(keep, keep)].tocsr()
