"""Tensor-product 2D quad meshes for high-order continuous elements.

A uniform ``nel x nel`` mesh of square elements on ``[0, Lx] x [0, Ly]``
with order-p continuous Lagrange elements has a *global tensor grid* of
``(nel*p + 1)^2`` nodes; the element-to-global DOF map is then pure
index arithmetic.  That regularity is what makes the sum-factorized
operators in :mod:`repro.fem.operators` vectorizable over all elements
at once — the same regularity MFEM's partial-assembly kernels exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.fem.basis import Basis1D


@dataclass
class TensorMesh2D:
    """Uniform quad mesh with order-p tensor-product nodes.

    Parameters
    ----------
    nel_x, nel_y:
        Elements per direction.
    order:
        Polynomial order p >= 1.
    lx, ly:
        Domain lengths.
    """

    nel_x: int
    nel_y: int
    order: int
    lx: float = 1.0
    ly: float = 1.0
    basis: Basis1D = field(init=False)

    def __post_init__(self) -> None:
        if self.nel_x < 1 or self.nel_y < 1:
            raise ValueError("need at least one element per direction")
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.lx <= 0 or self.ly <= 0:
            raise ValueError("domain lengths must be positive")
        self.basis = Basis1D.make(self.order)

    # -- sizes ---------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        return self.nel_x * self.nel_y

    @property
    def nodes_x(self) -> int:
        return self.nel_x * self.order + 1

    @property
    def nodes_y(self) -> int:
        return self.nel_y * self.order + 1

    @property
    def n_dofs(self) -> int:
        return self.nodes_x * self.nodes_y

    @property
    def hx(self) -> float:
        return self.lx / self.nel_x

    @property
    def hy(self) -> float:
        return self.ly / self.nel_y

    # -- node coordinates ------------------------------------------------------

    def node_coords_1d(self, axis: str = "x") -> np.ndarray:
        """Global 1D node coordinates along *axis* (GLL within elements)."""
        if axis == "x":
            nel, h = self.nel_x, self.hx
        elif axis == "y":
            nel, h = self.nel_y, self.hy
        else:
            raise ValueError("axis must be 'x' or 'y'")
        ref = (self.basis.nodes + 1.0) / 2.0  # [0, 1]
        coords = [0.0]
        for e in range(nel):
            left = e * h
            coords.extend((left + ref[1:] * h).tolist())
        return np.array(coords)

    def node_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """(X, Y) meshgrids of all global nodes, shape (nodes_x, nodes_y)."""
        x = self.node_coords_1d("x")
        y = self.node_coords_1d("y")
        return np.meshgrid(x, y, indexing="ij")

    # -- DOF maps ---------------------------------------------------------------

    def element_dofs(self) -> np.ndarray:
        """Global DOF indices per element, shape (n_elements, p+1, p+1).

        Element (ex, ey), local node (i, j) -> global node
        (ex*p + i, ey*p + j); global flat index = gx * nodes_y + gy.
        """
        p = self.order
        ex = np.arange(self.nel_x)
        ey = np.arange(self.nel_y)
        i = np.arange(p + 1)
        gx = ex[:, None] * p + i[None, :]          # (nel_x, p+1)
        gy = ey[:, None] * p + i[None, :]          # (nel_y, p+1)
        # broadcast to (nel_x, nel_y, p+1, p+1)
        flat = (
            gx[:, None, :, None] * self.nodes_y + gy[None, :, None, :]
        )
        return flat.reshape(self.n_elements, p + 1, p + 1)

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask over global DOFs: True on the domain boundary."""
        mask = np.zeros((self.nodes_x, self.nodes_y), dtype=bool)
        mask[0, :] = mask[-1, :] = True
        mask[:, 0] = mask[:, -1] = True
        return mask.ravel()

    def interior_dofs(self) -> np.ndarray:
        return np.flatnonzero(~self.boundary_mask())

    # -- gather / scatter ----------------------------------------------------------

    def gather(self, u: np.ndarray) -> np.ndarray:
        """Global vector -> element-local tensors (E-vector in MFEM
        terms), shape (n_elements, p+1, p+1)."""
        if u.shape[0] != self.n_dofs:
            raise ValueError("global vector has wrong length")
        return u[self.element_dofs()]

    def scatter_add(self, ue: np.ndarray, out: Optional[np.ndarray] = None
                    ) -> np.ndarray:
        """Element-local tensors -> global vector by summation."""
        if out is None:
            out = np.zeros(self.n_dofs)
        np.add.at(out, self.element_dofs().ravel(), ue.ravel())
        return out
