"""MFEM proxy: high-order finite elements with sum factorization.

Reproduces the MFEM activity (§4.10.3): the library "rewrote the core
algorithms to use sum factorization and to employ partially or
completely matrix-free operator representations".

- :mod:`repro.fem.basis` — 1D Lagrange bases on Gauss-Lobatto nodes,
  Gauss-Legendre quadrature, interpolation/derivative matrices.
- :mod:`repro.fem.mesh` — tensor-product 2D quad meshes of arbitrary
  polynomial order with global DOF maps and boundary handling.
- :mod:`repro.fem.operators` — matrix-free partial-assembly diffusion
  and mass operators (sum-factorized element kernels, vectorized over
  all elements) plus full sparse assembly for verification, with
  roofline kernel accounting.
- :mod:`repro.fem.lor` — low-order-refined preconditioning: the
  assembled bilinear operator on the refined GLL submesh, spectrally
  equivalent to the high-order operator and AMG-friendly (this is the
  preconditioner Fig 8 / Table 4 use).
- :mod:`repro.fem.nonlinear` — the paper's nonlinear time-dependent
  diffusion benchmark problem, packaged for the SUNDIALS proxy.
"""

from repro.fem.basis import Basis1D, gauss_legendre, gauss_lobatto
from repro.fem.mesh import TensorMesh2D
from repro.fem.operators import (
    DiffusionOperator,
    MassOperator,
    assemble_diffusion,
    assemble_mass,
)
from repro.fem.lor import lor_diffusion_matrix, lor_mass_matrix
from repro.fem.nonlinear import NonlinearDiffusion

__all__ = [
    "Basis1D",
    "gauss_legendre",
    "gauss_lobatto",
    "TensorMesh2D",
    "DiffusionOperator",
    "MassOperator",
    "assemble_diffusion",
    "assemble_mass",
    "lor_diffusion_matrix",
    "lor_mass_matrix",
    "NonlinearDiffusion",
]
