"""Matrix-free partial-assembly operators with sum factorization.

The MFEM rewrite the paper describes (§4.10.3) replaces assembled
sparse matrices with operators that keep only quadrature-point data and
apply the action via 1D tensor contractions (sum factorization):
O(p^3) work per 2D element instead of the O(p^4) of an assembled
element matrix, and far less memory traffic.

Both representations are provided:

- :class:`DiffusionOperator` / :class:`MassOperator` — partial
  assembly: ``setup()`` precomputes quadrature data, ``mult()``
  applies the action through gather -> contract -> scatter, recording
  a roofline kernel when an execution context is bound.
- :func:`assemble_diffusion` / :func:`assemble_mass` — full sparse
  assembly, used as the verification reference and by the low-order
  path.

Geometry is restricted to the uniform-rectangle meshes of
:class:`~repro.fem.mesh.TensorMesh2D`, for which the Jacobian is
diagonal and the quadrature data separates per direction.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec
from repro.fem.mesh import TensorMesh2D

CoefficientLike = Union[float, Callable[[np.ndarray, np.ndarray], np.ndarray], np.ndarray]


def _quad_coords(mesh: TensorMesh2D) -> "tuple[np.ndarray, np.ndarray]":
    """Physical (x, y) at each (element, q1, q2), shapes (nel, nq, nq)."""
    b = mesh.basis
    ref = (b.quad_pts + 1.0) / 2.0
    ex = np.arange(mesh.nel_x) * mesh.hx
    ey = np.arange(mesh.nel_y) * mesh.hy
    qx = ex[:, None] + ref[None, :] * mesh.hx          # (nel_x, nq)
    qy = ey[:, None] + ref[None, :] * mesh.hy          # (nel_y, nq)
    # element flat index e = ex * nel_y + ey
    x = np.repeat(qx, mesh.nel_y, axis=0)              # (nel, nq)
    y = np.tile(qy, (mesh.nel_x, 1))                   # (nel, nq)
    xq = x[:, :, None] * np.ones((1, 1, b.n_quad))
    yq = y[:, None, :] * np.ones((1, b.n_quad, 1))
    return xq, yq


def _coefficient_at_quad(mesh: TensorMesh2D, coeff: CoefficientLike
                         ) -> np.ndarray:
    nq = mesh.basis.n_quad
    shape = (mesh.n_elements, nq, nq)
    if callable(coeff):
        xq, yq = _quad_coords(mesh)
        values = np.asarray(coeff(xq, yq), dtype=np.float64)
        values = np.broadcast_to(values, shape).copy()
    elif np.isscalar(coeff):
        values = np.full(shape, float(coeff))
    else:
        values = np.asarray(coeff, dtype=np.float64)
        if values.shape != shape:
            raise ValueError(
                f"coefficient array must have shape {shape}, got {values.shape}"
            )
    return values


class _PaOperator:
    """Shared machinery: gather/scatter, flop accounting, BC masking."""

    kernel_name = "pa-apply"

    def __init__(self, mesh: TensorMesh2D, ctx: Optional[ExecutionContext] = None):
        self.mesh = mesh
        self.ctx = ctx
        self._dofs = mesh.element_dofs()

    def _record(self, flops: float, nbytes: float) -> None:
        if self.ctx is not None:
            self.ctx.trace.record_kernel(
                KernelSpec(
                    name=self.kernel_name,
                    flops=flops,
                    bytes_read=nbytes * 0.7,
                    bytes_written=nbytes * 0.3,
                    compute_efficiency=0.6,
                    bandwidth_efficiency=0.7,
                )
            )

    def as_linear_operator(self, interior: Optional[np.ndarray] = None):
        """Callable suitable for the Krylov layer.

        When *interior* (an index array) is given, the callable maps
        interior-restricted vectors (zero Dirichlet BCs).
        """
        if interior is None:
            return self.mult

        def apply(v: np.ndarray) -> np.ndarray:
            full = np.zeros(self.mesh.n_dofs)
            full[interior] = v
            return self.mult(full)[interior]

        return apply

    def mult(self, u: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError


class DiffusionOperator(_PaOperator):
    """Matrix-free stiffness operator: y = K u with K from
    ``integral(k grad u . grad v)``.

    ``coefficient`` may be a scalar, a callable ``k(x, y)``, or an
    array of per-quadrature-point values (shape (nel, nq, nq)) — the
    last form is how the nonlinear problem re-fits ``k(u)`` each Newton
    step without touching the operator structure.
    """

    kernel_name = "pa-diffusion"

    def __init__(
        self,
        mesh: TensorMesh2D,
        coefficient: CoefficientLike = 1.0,
        ctx: Optional[ExecutionContext] = None,
    ):
        super().__init__(mesh, ctx)
        self.setup(coefficient)

    def setup(self, coefficient: CoefficientLike) -> None:
        """(Re)build quadrature data — the PA "setup" phase."""
        mesh = self.mesh
        b = mesh.basis
        k = _coefficient_at_quad(mesh, coefficient)
        w2d = np.outer(b.quad_wts, b.quad_wts)
        # D1 multiplies u_xi, D2 multiplies u_eta (reference gradients).
        self.d1 = k * w2d * (mesh.hy / mesh.hx)
        self.d2 = k * w2d * (mesh.hx / mesh.hy)

    def mult(self, u: np.ndarray) -> np.ndarray:
        mesh, b = self.mesh, self.mesh.basis
        ue = mesh.gather(u)                                   # (nel, p1, p1)
        bm, gm = b.b, b.g                                     # (nq, p1)
        # reference gradients at quadrature points (sum factorized)
        t = np.einsum("qi,eij->eqj", gm, ue)
        u_xi = np.einsum("rj,eqj->eqr", bm, t)
        t = np.einsum("qi,eij->eqj", bm, ue)
        u_eta = np.einsum("rj,eqj->eqr", gm, t)
        v1 = self.d1 * u_xi
        v2 = self.d2 * u_eta
        # integrate back
        t = np.einsum("qi,eqr->eir", gm, v1)
        ye = np.einsum("rj,eir->eij", bm, t)
        t = np.einsum("qi,eqr->eir", bm, v2)
        ye += np.einsum("rj,eir->eij", gm, t)
        p1, nq, nel = b.n_nodes, b.n_quad, mesh.n_elements
        flops = nel * (8.0 * nq * p1 * (p1 + nq) + 4.0 * nq * nq)
        nbytes = 8.0 * (2 * u.size + 4 * nel * nq * nq)
        self._record(flops, nbytes)
        return mesh.scatter_add(ye)


class MassOperator(_PaOperator):
    """Matrix-free mass operator: y = M u with M from
    ``integral(c u v)``."""

    kernel_name = "pa-mass"

    def __init__(
        self,
        mesh: TensorMesh2D,
        coefficient: CoefficientLike = 1.0,
        ctx: Optional[ExecutionContext] = None,
    ):
        super().__init__(mesh, ctx)
        self.setup(coefficient)

    def setup(self, coefficient: CoefficientLike) -> None:
        mesh = self.mesh
        b = mesh.basis
        c = _coefficient_at_quad(mesh, coefficient)
        w2d = np.outer(b.quad_wts, b.quad_wts)
        self.d0 = c * w2d * (mesh.hx * mesh.hy / 4.0)

    def mult(self, u: np.ndarray) -> np.ndarray:
        mesh, b = self.mesh, self.mesh.basis
        ue = mesh.gather(u)
        bm = b.b
        t = np.einsum("qi,eij->eqj", bm, ue)
        uq = np.einsum("rj,eqj->eqr", bm, t)
        vq = self.d0 * uq
        t = np.einsum("qi,eqr->eir", bm, vq)
        ye = np.einsum("rj,eir->eij", bm, t)
        p1, nq, nel = b.n_nodes, b.n_quad, mesh.n_elements
        flops = nel * (4.0 * nq * p1 * (p1 + nq) + nq * nq)
        nbytes = 8.0 * (2 * u.size + 2 * nel * nq * nq)
        self._record(flops, nbytes)
        return mesh.scatter_add(ye)

    def lumped(self) -> np.ndarray:
        """Row-sum (lumped) mass diagonal — a cheap M^{-1} proxy."""
        return self.mult(np.ones(self.mesh.n_dofs))


def _element_matrices_diffusion(mesh: TensorMesh2D, d1: np.ndarray,
                                d2: np.ndarray) -> np.ndarray:
    """Dense element stiffness matrices, shape (nel, ndof_e, ndof_e)."""
    b = mesh.basis
    bm, gm = b.b, b.g
    # basis gradient tensors: Gx[q1,q2,i,j] = g[q1,i] b[q2,j]
    gx = np.einsum("qi,rj->qrij", gm, bm)
    gy = np.einsum("qi,rj->qrij", bm, gm)
    ae = np.einsum("eqr,qrij,qrkl->eijkl", d1, gx, gx, optimize=True)
    ae += np.einsum("eqr,qrij,qrkl->eijkl", d2, gy, gy, optimize=True)
    ndof = b.n_nodes ** 2
    return ae.reshape(mesh.n_elements, ndof, ndof)


def _element_matrices_mass(mesh: TensorMesh2D, d0: np.ndarray) -> np.ndarray:
    b = mesh.basis
    bb = np.einsum("qi,rj->qrij", b.b, b.b)
    me = np.einsum("eqr,qrij,qrkl->eijkl", d0, bb, bb, optimize=True)
    ndof = b.n_nodes ** 2
    return me.reshape(mesh.n_elements, ndof, ndof)


def _assemble(mesh: TensorMesh2D, elem_mats: np.ndarray) -> sp.csr_matrix:
    dofs = mesh.element_dofs().reshape(mesh.n_elements, -1)
    nel, ndof = dofs.shape
    rows = np.repeat(dofs, ndof, axis=1).ravel()
    cols = np.tile(dofs, (1, ndof)).ravel()
    a = sp.coo_matrix(
        (elem_mats.ravel(), (rows, cols)), shape=(mesh.n_dofs, mesh.n_dofs)
    ).tocsr()
    a.sum_duplicates()
    a.eliminate_zeros()
    return a


def assemble_diffusion(mesh: TensorMesh2D, coefficient: CoefficientLike = 1.0
                       ) -> sp.csr_matrix:
    """Assembled sparse stiffness matrix (verification reference)."""
    op = DiffusionOperator(mesh, coefficient)
    return _assemble(mesh, _element_matrices_diffusion(mesh, op.d1, op.d2))


def assemble_mass(mesh: TensorMesh2D, coefficient: CoefficientLike = 1.0
                  ) -> sp.csr_matrix:
    """Assembled sparse mass matrix (verification reference)."""
    op = MassOperator(mesh, coefficient)
    return _assemble(mesh, _element_matrices_mass(mesh, op.d0))
