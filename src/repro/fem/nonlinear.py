"""The paper's nonlinear time-dependent diffusion benchmark (Fig 8, Table 4).

Problem: on the unit square with homogeneous Dirichlet conditions,

    du/dt = div( k(u) grad u ) + f,     k(u) = k0 + k1 * u^2

discretized with high-order continuous finite elements
(:mod:`repro.fem`), integrated with the CVODE-style BDF integrator
(:mod:`repro.ode.bdf`), and solved per Newton iteration with PCG
preconditioned by BoomerAMG on the low-order-refined operator
(:mod:`repro.fem.lor` + :mod:`repro.solvers.boomeramg`) — the exact
library stack of §4.10.4.

The class exposes the three pieces the integrator needs (`rhs_spatial`,
`mass_mult`, `make_lin_solver`) plus phase timers matching Fig 8's
breakdown: ``formulation`` (operator setup / coefficient refresh),
``preconditioner`` (AMG setup on the LOR matrix), ``solve`` (PCG
iterations).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.fem.lor import lor_diffusion_matrix, lor_mass_matrix, restrict_matrix
from repro.fem.mesh import TensorMesh2D
from repro.fem.operators import DiffusionOperator, MassOperator
from repro.ode.bdf import BdfIntegrator, BdfOptions
from repro.solvers.boomeramg import BoomerAMG
from repro.solvers.krylov import pcg
from repro.util.timing import TimerRegistry


class NonlinearDiffusion:
    """Nonlinear diffusion on a tensor mesh, ready for BDF integration.

    Parameters
    ----------
    mesh:
        High-order tensor mesh.
    k0, k1:
        Conductivity model ``k(u) = k0 + k1 u^2`` (k0 > 0).
    source:
        Optional load function ``f(x, y)``; default zero.
    ctx:
        Optional execution context; operator applies and SpMVs are
        recorded there for roofline pricing.
    """

    def __init__(
        self,
        mesh: TensorMesh2D,
        k0: float = 1.0,
        k1: float = 1.0,
        source: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        ctx: Optional[ExecutionContext] = None,
        linear_tol: float = 1e-8,
    ):
        if k0 <= 0:
            raise ValueError("k0 must be positive")
        self.mesh = mesh
        self.k0, self.k1 = float(k0), float(k1)
        self.ctx = ctx
        self.linear_tol = linear_tol
        self.timers = TimerRegistry()
        self.interior = mesh.interior_dofs()
        self.mass = MassOperator(mesh, 1.0, ctx=ctx)
        self.diffusion = DiffusionOperator(mesh, k0, ctx=ctx)
        # load vector
        if source is not None:
            xq, yq = _quad_coords_cached(mesh)
            fvals = np.asarray(source(xq, yq), dtype=np.float64)
            load_op = MassOperator(mesh, 1.0, ctx=None)
            # b_i = integral(f * phi_i): evaluate by mass-like quadrature
            load_op.d0 = load_op.d0 * fvals
            self.load = load_op.mult(np.ones(mesh.n_dofs))[self.interior]
        else:
            self.load = np.zeros(self.interior.size)
        # LOR matrices (constant-coefficient; refreshed with mean k)
        self.lor_mass = restrict_matrix(lor_mass_matrix(mesh), self.interior)
        self._lumped = self.mass.lumped()[self.interior]
        self.pcg_iterations = 0
        self.solve_calls = 0

    # ------------------------------------------------------------------

    def _coefficient_from_state(self, u_full: np.ndarray) -> np.ndarray:
        """k(u) sampled at quadrature points via the PA interpolation."""
        b = self.mesh.basis
        ue = self.mesh.gather(u_full)
        t = np.einsum("qi,eij->eqj", b.b, ue)
        uq = np.einsum("rj,eqj->eqr", b.b, t)
        return self.k0 + self.k1 * uq * uq

    def _full(self, u_int: np.ndarray) -> np.ndarray:
        full = np.zeros(self.mesh.n_dofs)
        full[self.interior] = u_int
        return full

    # -- integrator interface ------------------------------------------------

    def rhs_spatial(self, t: float, u_int: np.ndarray) -> np.ndarray:
        """F(t, u) = -K(u) u + b on interior DOFs (mass NOT inverted)."""
        with self.timers.phase("formulation"):
            full = self._full(u_int)
            self.diffusion.setup(self._coefficient_from_state(full))
            r = -self.diffusion.mult(full)[self.interior] + self.load
        return r

    def mass_mult(self, v_int: np.ndarray) -> np.ndarray:
        with self.timers.phase("formulation"):
            return self.mass.mult(self._full(v_int))[self.interior]

    def make_lin_solver(self, gamma: float, t: float, u_int: np.ndarray
                        ) -> Callable[[np.ndarray], np.ndarray]:
        """Build a solver for (M + gamma K(u)) x = r.

        The Newton matrix action is matrix-free (PA operators with the
        frozen coefficient); the preconditioner is one BoomerAMG
        V-cycle on the assembled LOR matrix with the coefficient's
        mean — standard frozen-coefficient practice.
        """
        full = self._full(u_int)
        with self.timers.phase("formulation"):
            coeff = self._coefficient_from_state(full)
            frozen = DiffusionOperator(self.mesh, coeff, ctx=self.ctx)
        with self.timers.phase("preconditioner"):
            k_mean = float(coeff.mean())
            lor = (
                self.lor_mass
                + gamma * restrict_matrix(
                    lor_diffusion_matrix(self.mesh, k_mean), self.interior
                )
            ).tocsr()
            amg = BoomerAMG(coarsening="pmis", ctx=self.ctx)
            amg.setup(lor)
            prec = amg.as_preconditioner()

        interior = self.interior

        def newton_matrix(v: np.ndarray) -> np.ndarray:
            fullv = self._full(v)
            return (
                self.mass.mult(fullv)[interior]
                + gamma * frozen.mult(fullv)[interior]
            )

        def solve(r: np.ndarray) -> np.ndarray:
            with self.timers.phase("solve"):
                x, info = pcg(
                    newton_matrix, r, preconditioner=prec,
                    tol=self.linear_tol, max_iter=400,
                )
            self.pcg_iterations += info.iterations
            self.solve_calls += 1
            return x

        return solve

    # -- convenience ----------------------------------------------------------

    def integrate(
        self,
        u0_full: np.ndarray,
        t_end: float,
        rtol: float = 1e-5,
        atol: float = 1e-8,
        n_outputs: int = 1,
    ) -> Tuple[np.ndarray, np.ndarray, BdfIntegrator]:
        """Run the BDF integrator; returns (times, interior states, integ)."""
        if u0_full.shape[0] != self.mesh.n_dofs:
            raise ValueError("u0 must be a full DOF vector")
        integ = BdfIntegrator(
            rhs=self.rhs_spatial,
            make_lin_solver=self.make_lin_solver,
            mass_mult=self.mass_mult,
            options=BdfOptions(rtol=rtol, atol=atol),
            timers=self.timers,
        )
        t_eval = np.linspace(0.0, t_end, n_outputs + 1)[1:]
        times, states = integ.integrate(0.0, u0_full[self.interior], t_end,
                                        t_eval=t_eval)
        return times, states, integ


def _quad_coords_cached(mesh: TensorMesh2D):
    from repro.fem.operators import _quad_coords

    return _quad_coords(mesh)
