"""LBANN model-parallel scaling model (Fig 3).

The Fig 3 experiment trains a semantic-segmentation network whose
per-sample state exceeds one V100's 16 GB, so each sample spans 2-16
GPUs ("the model requires a large memory capacity ... thus we had to
use at least two GPUs per sample").  The figure shows near-perfect
scaling from 2 to 4 GPUs per sample and 2.8X / 3.4X speedups at 8 / 16,
with good weak scaling of the data-parallel dimension to 2048 GPUs.

Model structure:

- **intra-sample (model parallel)**: per-sample compute divides across
  ``g`` GPUs with a spatial-partition efficiency calibrated against
  the LBANN paper's reported scaling (ref [7]; the table is the
  documented substitution for their measured halo-exchange costs).
- **inter-replica (data parallel)**: replicas of ``g`` GPUs each;
  gradient allreduce across replicas priced by the machine network
  model (ring algorithm for the large gradient payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.core.roofline import allreduce_time

#: spatial-partition efficiency per GPUs-per-sample, calibrated to the
#: measured speedups in ref [7] (S(4)~1.9, S(8)~2.8, S(16)~3.4)
PARTITION_EFFICIENCY: Dict[int, float] = {2: 1.0, 4: 0.96, 8: 0.70, 16: 0.425}


@dataclass
class LbannScalingModel:
    """Throughput model for model+data-parallel CNN training.

    Parameters
    ----------
    machine:
        GPU machine (defaults to sierra).
    sample_flops:
        Forward+backward flops per sample (fp32).
    model_bytes:
        Per-sample activation+weight memory demand.
    gradient_bytes:
        Allreduce payload per step.
    """

    machine: Machine = field(default_factory=lambda: get_machine("sierra"))
    sample_flops: float = 8.0e12
    model_bytes: float = 24 * 2**30   # exceeds one 16 GB V100
    gradient_bytes: float = 0.5e9
    compute_efficiency: float = 0.45  # fp32 tensor-ish utilization

    def __post_init__(self) -> None:
        if self.machine.gpu is None:
            raise ValueError("LBANN model needs a GPU machine")
        if self.sample_flops <= 0 or self.model_bytes <= 0:
            raise ValueError("bad model parameters")

    # ------------------------------------------------------------------

    def min_gpus_per_sample(self) -> int:
        """Smallest power-of-two GPU count whose aggregate memory holds
        the model."""
        g = 1
        while g * self.machine.gpu.mem_bytes < self.model_bytes:
            g *= 2
        return g

    def validate_gpus_per_sample(self, g: int) -> None:
        if g not in PARTITION_EFFICIENCY:
            raise ValueError(
                f"gpus_per_sample must be one of "
                f"{sorted(PARTITION_EFFICIENCY)}"
            )
        if g < self.min_gpus_per_sample():
            raise ValueError(
                f"model does not fit: needs >= {self.min_gpus_per_sample()} "
                f"GPUs per sample"
            )

    def sample_time(self, gpus_per_sample: int) -> float:
        """Seconds per sample for one model-parallel replica."""
        self.validate_gpus_per_sample(gpus_per_sample)
        gpu = self.machine.gpu
        eff = self.compute_efficiency * PARTITION_EFFICIENCY[gpus_per_sample]
        return self.sample_flops / (
            gpu.peak_flops_sp * gpus_per_sample * eff
        )

    def step_time(self, total_gpus: int, gpus_per_sample: int,
                  samples_per_replica: int = 1) -> float:
        """Seconds per optimizer step (compute + gradient allreduce)."""
        self.validate_gpus_per_sample(gpus_per_sample)
        if total_gpus < gpus_per_sample or total_gpus % gpus_per_sample:
            raise ValueError("total_gpus must be a multiple of gpus_per_sample")
        if samples_per_replica < 1:
            raise ValueError("samples_per_replica must be >= 1")
        replicas = total_gpus // gpus_per_sample
        compute = samples_per_replica * self.sample_time(gpus_per_sample)
        gpn = self.machine.gpus_per_node
        nodes = max(1, total_gpus // gpn)
        comm = allreduce_time(
            self.machine, self.gradient_bytes, nodes, algorithm="ring"
        ) if replicas > 1 else 0.0
        return compute + comm

    def throughput(self, total_gpus: int, gpus_per_sample: int,
                   samples_per_replica: int = 1) -> float:
        """Samples/second at this configuration."""
        replicas = total_gpus // gpus_per_sample
        t = self.step_time(total_gpus, gpus_per_sample, samples_per_replica)
        return replicas * samples_per_replica / t

    # ------------------------------------------------------------------

    def strong_scaling_speedup(self, gpus_per_sample: int) -> float:
        """Per-sample speedup over the 2-GPU baseline (Fig 3's dotted
        lines)."""
        return self.sample_time(2) / self.sample_time(gpus_per_sample)

    def weak_scaling_curve(self, gpus_per_sample: int,
                           total_gpu_counts: Sequence[int]
                           ) -> List[Tuple[int, float]]:
        """(total GPUs, throughput) along a weak-scaling line (Fig 3's
        solid lines)."""
        out = []
        for total in total_gpu_counts:
            if total % gpus_per_sample:
                continue
            out.append((total, self.throughput(total, gpus_per_sample)))
        return out

    def weak_scaling_efficiency(self, gpus_per_sample: int,
                                total_gpus: int) -> float:
        """Throughput vs perfectly-scaled single-replica throughput."""
        base = self.throughput(gpus_per_sample, gpus_per_sample)
        replicas = total_gpus // gpus_per_sample
        actual = self.throughput(total_gpus, gpus_per_sample)
        return actual / (base * replicas)
