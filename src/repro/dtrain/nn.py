"""Minimal dense neural-network substrate.

Real forward/backward math (no autograd framework): dense layers with
ReLU, softmax cross-entropy loss, flattened parameter get/set so the
distributed-training simulators can average/exchange whole models as
vectors.  Gradients are verified against finite differences in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import make_rng


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class Dense:
    """Affine layer with optional ReLU."""

    def __init__(self, n_in: int, n_out: int, relu: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if n_in < 1 or n_out < 1:
            raise ValueError("layer sizes must be >= 1")
        rng = make_rng(rng)
        scale = np.sqrt(2.0 / n_in)
        self.w = rng.normal(0.0, scale, (n_in, n_out))
        self.b = np.zeros(n_out)
        self.relu = relu
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        pre = x @ self.w + self.b
        self._pre = pre
        return np.maximum(pre, 0.0) if self.relu else pre

    def backward(self, grad_out: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (grad_x, grad_w, grad_b)."""
        if self._x is None or self._pre is None:
            raise RuntimeError("backward before forward")
        if self.relu:
            grad_out = grad_out * (self._pre > 0)
        grad_w = self._x.T @ grad_out
        grad_b = grad_out.sum(axis=0)
        grad_x = grad_out @ self.w.T
        return grad_x, grad_w, grad_b

    @property
    def n_params(self) -> int:
        return self.w.size + self.b.size


class MLP:
    """Multi-layer perceptron with softmax cross-entropy head.

    ``hidden=()`` gives multinomial logistic regression.
    """

    def __init__(self, n_in: int, n_classes: int,
                 hidden: Sequence[int] = (), seed=0):
        # seed: anything repro.util.rng.make_rng accepts (int,
        # SeedSequence, Generator)
        if n_classes < 2:
            raise ValueError("need at least two classes")
        rng = make_rng(seed)
        sizes = [n_in, *hidden, n_classes]
        self.layers: List[Dense] = []
        for k in range(len(sizes) - 1):
            self.layers.append(
                Dense(sizes[k], sizes[k + 1],
                      relu=(k < len(sizes) - 2), rng=rng)
            )
        self.n_classes = n_classes

    # -- parameter vector interface --------------------------------------

    def get_params(self) -> np.ndarray:
        return np.concatenate(
            [np.concatenate([l.w.ravel(), l.b]) for l in self.layers]
        )

    def set_params(self, flat: np.ndarray) -> None:
        expected = sum(l.n_params for l in self.layers)
        if flat.shape != (expected,):
            raise ValueError(f"expected {expected} parameters")
        k = 0
        for l in self.layers:
            nw = l.w.size
            l.w = flat[k:k + nw].reshape(l.w.shape).copy()
            k += nw
            nb = l.b.size
            l.b = flat[k:k + nb].copy()
            k += nb

    @property
    def n_params(self) -> int:
        return sum(l.n_params for l in self.layers)

    # -- forward / loss / grad ----------------------------------------------

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        h = x
        for l in self.layers:
            h = l.forward(h)
        return softmax(h)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        p = self.predict_proba(x)
        return float(
            -np.log(np.maximum(p[np.arange(len(y)), y], 1e-300)).mean()
        )

    def gradient(self, x: np.ndarray, y: np.ndarray
                 ) -> Tuple[float, np.ndarray]:
        """(loss, flattened gradient) on the batch."""
        n = x.shape[0]
        p = self.predict_proba(x)
        loss = float(
            -np.log(np.maximum(p[np.arange(n), y], 1e-300)).mean()
        )
        grad = p.copy()
        grad[np.arange(n), y] -= 1.0
        grad /= n
        grads: List[np.ndarray] = []
        g = grad
        for l in reversed(self.layers):
            g, gw, gb = l.backward(g)
            grads.append(np.concatenate([gw.ravel(), gb]))
        return loss, np.concatenate(grads[::-1])
