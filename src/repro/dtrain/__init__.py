"""Data Science / Deep Learning proxies (§4.5).

- :mod:`repro.dtrain.nn` — a small, real neural-network substrate
  (dense layers, ReLU, softmax cross-entropy, minibatch SGD) used by
  everything below.
- :mod:`repro.dtrain.distributed` — distributed-training algorithms:
  synchronous SGD, Asynchronous SGD with a parameter server and
  explicit gradient staleness, and the paper's K-step Averaging
  (KAVG [34]): bulk-synchronous local-SGD with model averaging every
  K steps.  Tests reproduce the paper's findings (ASGD degrades with
  staleness unless the learning rate shrinks; KAVG tolerates K > 1).
- :mod:`repro.dtrain.streams` — the Table 3 study: three synthetic
  feature streams (spatial / temporal / SPyNet-like) over UCF101- and
  HMDB51-sized class sets, per-stream classifiers, and the four
  combination approaches (simple average, weighted average, logistic
  regression, shallow NN).
- :mod:`repro.dtrain.lbann` — the Fig 3 model: LBANN-style
  model-parallel training where each sample spans 2-16 GPUs (the
  model exceeds one V100's memory), with strong/weak scaling to 2048
  GPUs.
"""

from repro.dtrain.nn import MLP, Dense, softmax
from repro.dtrain.distributed import (
    AsgdServer,
    kavg_train,
    sgd_train,
)
from repro.dtrain.streams import (
    StreamDataset,
    combine_and_score,
    make_stream_dataset,
)
from repro.dtrain.lbann import LbannScalingModel

__all__ = [
    "MLP",
    "Dense",
    "softmax",
    "sgd_train",
    "AsgdServer",
    "kavg_train",
    "StreamDataset",
    "make_stream_dataset",
    "combine_and_score",
    "LbannScalingModel",
]
