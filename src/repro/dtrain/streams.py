"""Three-stream video-classification ensemble study (Table 3).

The paper evaluates spatial, temporal (TV-L1-style), and SPyNet-based
streams on UCF101 and HMDB51, then four combination approaches.  We
cannot train video CNNs here; the substitution (DESIGN.md) is a
synthetic feature-stream generator with *controlled* per-stream
signal-to-noise ratios and a shared noise component (streams of the
same clip are correlated — the reason real ensembles do not approach
100%).  The combiner study itself — simple average, accuracy-weighted
average, logistic-regression stacking, shallow-NN stacking — is the
real Table 3 computation, run on real trained classifiers.

Dataset presets mirror the paper's two benchmarks: ``"ucf101-like"``
(101 classes, streams of comparable quality, accuracies in the 80s)
and ``"hmdb51-like"`` (51 classes, harder, *heterogeneous* stream
quality — the regime where trained combiners beat plain averaging, as
in Table 3's HMDB column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.dtrain.nn import MLP, softmax
from repro.dtrain.distributed import sgd_train
from repro.par import Backend, Task, get_backend, run_ensemble
from repro.util.rng import make_rng, spawn_seqs

STREAM_NAMES = ("spatial", "temporal", "spynet")


@dataclass
class StreamDataset:
    """Per-stream features for train and validation splits."""

    train_x: Dict[str, np.ndarray]
    train_y: np.ndarray
    val_x: Dict[str, np.ndarray]
    val_y: np.ndarray
    n_classes: int

    @property
    def streams(self) -> Tuple[str, ...]:
        return tuple(self.train_x)


_PRESETS = {
    # snr per stream (higher = easier); shared-noise couples streams of
    # the same clip.  Calibrated so the laptop-scale datasets reproduce
    # Table 3's structure: SPyNet the best single stream, temporal the
    # weakest on the hard set, ensembles clearly above singles, and the
    # hard set markedly below the easy one.
    "ucf101-like": dict(
        n_classes=24,
        snr={"spatial": 0.60, "temporal": 0.58, "spynet": 0.66},
        shared_noise=0.85,
    ),
    "hmdb51-like": dict(
        n_classes=17,
        snr={"spatial": 0.42, "temporal": 0.24, "spynet": 0.36},
        shared_noise=0.55,
    ),
}


def make_stream_dataset(
    preset: str = "ucf101-like",
    n_train_per_class: int = 30,
    n_val_per_class: int = 15,
    dim: int = 24,
    seed: int = 0,
) -> StreamDataset:
    """Generate correlated three-stream features for a preset."""
    if preset not in _PRESETS:
        raise ValueError(f"preset must be one of {sorted(_PRESETS)}")
    if n_train_per_class < 1 or n_val_per_class < 1 or dim < 2:
        raise ValueError("bad dataset dimensions")
    cfg = _PRESETS[preset]
    n_classes = cfg["n_classes"]
    rng = make_rng(seed)
    protos = {
        s: rng.normal(0, 1.0, (n_classes, dim)) for s in STREAM_NAMES
    }

    def sample(n_per_class):
        xs = {s: [] for s in STREAM_NAMES}
        ys = []
        for c in range(n_classes):
            shared = rng.normal(0, 1.0, (n_per_class, dim))
            for s in STREAM_NAMES:
                own = rng.normal(0, 1.0, (n_per_class, dim))
                noise = (
                    cfg["shared_noise"] * shared
                    + (1 - cfg["shared_noise"]) * own
                )
                xs[s].append(cfg["snr"][s] * protos[s][c] + noise)
            ys.extend([c] * n_per_class)
        return (
            {s: np.concatenate(v) for s, v in xs.items()},
            np.array(ys, dtype=np.int64),
        )

    train_x, train_y = sample(n_train_per_class)
    val_x, val_y = sample(n_val_per_class)
    return StreamDataset(train_x, train_y, val_x, val_y, n_classes)


def _train_one_stream(x, y, n_classes, init_seq, train_seq, epochs, lr,
                      hidden=()):
    """Train one classifier from its own spawned streams; returns the
    trained parameter vector (pure — the fan-out unit)."""
    model = MLP(x.shape[1], n_classes, hidden=hidden, seed=init_seq)
    sgd_train(model, x, y, lr=lr, epochs=epochs, batch_size=32,
              seed=train_seq)
    return model.get_params()


def train_stream_classifiers(
    data: StreamDataset, epochs: int = 30, lr: float = 0.3, seed: int = 0,
    backend: Union[None, str, "Backend"] = None,
) -> Dict[str, MLP]:
    """One softmax classifier per stream.

    Each stream draws init and training randomness from its own
    ``SeedSequence.spawn`` children (not the old ``seed + k`` offsets,
    whose streams can collide), and the three trainings fan out over
    *backend* with bit-identical results on every backend.
    """
    seqs = spawn_seqs(seed, 2 * len(data.streams))
    tasks = [
        Task(
            _train_one_stream,
            (data.train_x[s], data.train_y, data.n_classes,
             seqs[2 * k], seqs[2 * k + 1], epochs, lr),
            name=s,
        )
        for k, s in enumerate(data.streams)
    ]
    trained = run_ensemble(tasks, backend=get_backend(backend))
    models: Dict[str, MLP] = {}
    for s, params in zip(data.streams, trained):
        model = MLP(data.train_x[s].shape[1], data.n_classes, seed=0)
        model.set_params(params)
        models[s] = model
    return models


def combine_and_score(
    data: StreamDataset,
    models: Dict[str, MLP],
    seed: int = 0,
    backend: Union[None, str, "Backend"] = None,
) -> Dict[str, float]:
    """Validation accuracy of single streams and the four combiners.

    Returns Table 3's rows: per-stream accuracies plus
    ``simple-average``, ``weighted-average``, ``logistic-regression``,
    and ``shallow-nn``.  The two trained stackers ride the same
    fan-out machinery (and spawned seed streams) as the per-stream
    classifiers.
    """
    train_probs = {
        s: models[s].predict_proba(data.train_x[s]) for s in data.streams
    }
    val_probs = {
        s: models[s].predict_proba(data.val_x[s]) for s in data.streams
    }
    out: Dict[str, float] = {}
    for s in data.streams:
        out[s] = float(
            (val_probs[s].argmax(axis=1) == data.val_y).mean()
        )

    def acc(p):
        return float((p.argmax(axis=1) == data.val_y).mean())

    # simple average
    stacked_val = np.stack([val_probs[s] for s in data.streams])
    out["simple-average"] = acc(stacked_val.mean(axis=0))

    # accuracy-weighted average (weights from *training* accuracy)
    weights = np.array([
        (train_probs[s].argmax(axis=1) == data.train_y).mean()
        for s in data.streams
    ])
    weights = weights / weights.sum()
    out["weighted-average"] = acc(
        np.tensordot(weights, stacked_val, axes=1)
    )

    # stacking features: concatenated per-stream probabilities
    train_feat = np.concatenate(
        [train_probs[s] for s in data.streams], axis=1
    )
    val_feat = np.concatenate(
        [val_probs[s] for s in data.streams], axis=1
    )

    # stacker seeds: spawned children of a dedicated root (spawn_key
    # distinct from the per-stream trainers'), not seed+offset hacks
    stack_seqs = spawn_seqs(np.random.SeedSequence(seed).spawn(2)[1], 4)
    stack_params = run_ensemble(
        [
            Task(_train_one_stream,
                 (train_feat, data.train_y, data.n_classes,
                  stack_seqs[0], stack_seqs[1], 40, 0.5),
                 name="lr-stack"),
            Task(_train_one_stream,
                 (train_feat, data.train_y, data.n_classes,
                  stack_seqs[2], stack_seqs[3], 40, 0.3),
                 kwargs={"hidden": (32,)},
                 name="nn-stack"),
        ],
        backend=get_backend(backend),
    )
    lr_stack = MLP(train_feat.shape[1], data.n_classes, seed=0)
    lr_stack.set_params(stack_params[0])
    out["logistic-regression"] = float(
        (lr_stack.predict(val_feat) == data.val_y).mean()
    )

    nn_stack = MLP(train_feat.shape[1], data.n_classes, hidden=(32,), seed=0)
    nn_stack.set_params(stack_params[1])
    out["shallow-nn"] = float(
        (nn_stack.predict(val_feat) == data.val_y).mean()
    )
    return out
