"""Distributed-training algorithm simulators: SGD, ASGD, KAVG (§4.5).

The paper's finding: ASGD "has the same asymptotic convergence rate as
SGD when the staleness of gradient update is bounded, [but] the
learning rate assumed for ASGD convergence is usually too small for
practical purposes", and staleness is hard to control.  KAVG [34]
(learners run K local SGD steps, then average models) is bulk
synchronous, scales better, and "the optimal K for convergence is
usually greater than one".

All three run *for real* on any model exposing the
``gradient(x, y) -> (loss, flat_grad)`` / ``get_params`` /
``set_params`` interface of :class:`repro.dtrain.nn.MLP`.  Staleness in
the ASGD simulator is explicit: the server keeps a version history and
learners compute gradients against parameters ``staleness`` versions
old — the controlled experiment the paper's analysis needs.

Both learner loops fan out over :mod:`repro.par`.  KAVG's per-round
local-SGD legs are independent by construction (one spawned RNG stream
per learner, carried across rounds by round-tripping the generator
state through the worker), so every backend — including ``process`` —
is bit-exact against serial.  ASGD exploits its *bounded staleness*:
with staleness ``s``, the gradients for a block of up to ``s``
consecutive updates depend only on versions that exist before the
block starts, so they are computed in parallel and applied in order —
exactly the update sequence the serial loop produces.  Batch indices
are always drawn in the parent, in serial order, so the draws are
backend-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dtrain.nn import MLP
from repro.par import Backend, ShmStage, get_backend, map_fanout
from repro.util.rng import make_rng, spawn_rngs


def _mlp_blueprint(model: MLP) -> Tuple[int, int, Tuple[int, ...]]:
    """(n_in, n_classes, hidden) — enough to rebuild the architecture.

    Workers reconstruct the model from this and overwrite every weight
    via ``set_params``, so the rebuild seed is irrelevant.
    """
    n_in = model.layers[0].w.shape[0]
    hidden = tuple(l.w.shape[1] for l in model.layers[:-1])
    return n_in, model.n_classes, hidden


def _rebuild_mlp(blueprint: Tuple[int, int, Tuple[int, ...]]) -> MLP:
    n_in, n_classes, hidden = blueprint
    return MLP(n_in, n_classes, hidden=hidden, seed=0)


def _kavg_local_round(args):
    """One learner's K local SGD steps (pure: params in, params out)."""
    blueprint, sp, idx, k_steps, lr, batch_size, rng_state, sx, sy = args
    x = sx.asarray()
    y = sy.asarray()
    rng = np.random.default_rng()
    rng.bit_generator.state = rng_state
    model = _rebuild_mlp(blueprint)
    p = sp.asarray().copy()
    for _ in range(k_steps):
        batch = idx[rng.integers(0, idx.size, batch_size)]
        model.set_params(p)
        _, grad = model.gradient(x[batch], y[batch])
        p = p - lr * grad
    return p, rng.bit_generator.state


def _asgd_gradient(args):
    """One (possibly stale) gradient: pure function of params + batch.

    The block's stale parameter versions arrive stacked in one shared
    segment; each task reads its own row (zero-copy view).
    """
    blueprint, sp, row, idx, sx, sy = args
    model = _rebuild_mlp(blueprint)
    model.set_params(sp.asarray()[row])
    x = sx.asarray()
    y = sy.asarray()
    return model.gradient(x[idx], y[idx])


def _batches(x, y, batch_size, rng):
    n = x.shape[0]
    order = rng.permutation(n)
    for k in range(0, n, batch_size):
        idx = order[k:k + batch_size]
        yield x[idx], y[idx]


def sgd_train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    lr: float = 0.1,
    epochs: int = 5,
    batch_size: int = 32,
    seed: int = 0,
) -> List[float]:
    """Plain minibatch SGD; returns per-epoch mean loss."""
    if lr <= 0 or epochs < 0 or batch_size < 1:
        raise ValueError("bad SGD hyperparameters")
    rng = make_rng(seed)
    history: List[float] = []
    params = model.get_params()
    for _ in range(epochs):
        losses = []
        for xb, yb in _batches(x, y, batch_size, rng):
            model.set_params(params)
            loss, grad = model.gradient(xb, yb)
            params = params - lr * grad
            losses.append(loss)
        history.append(float(np.mean(losses)))
    model.set_params(params)
    return history


class AsgdServer:
    """Parameter-server ASGD with controllable gradient staleness.

    ``staleness`` s means every applied gradient was computed against
    the parameters from s updates ago (s=0 reduces to sequential SGD).
    """

    def __init__(self, model: MLP, lr: float, staleness: int = 0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.model = model
        self.lr = lr
        self.staleness = staleness
        self._versions: List[np.ndarray] = [model.get_params()]

    @property
    def params(self) -> np.ndarray:
        return self._versions[-1]

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_updates: int,
        batch_size: int = 32,
        seed: int = 0,
        backend: Union[None, str, Backend] = None,
    ) -> List[float]:
        """Apply *n_updates* (possibly stale) gradient updates.

        With a non-serial *backend* and ``staleness > 0``, gradients
        are computed in blocks of up to ``staleness`` updates — each
        depends only on versions that exist before the block starts —
        and applied in serial order, so losses and parameters are
        bit-exact against the serial path.  Batch indices are drawn in
        the parent either way.
        """
        if n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        rng = make_rng(seed)
        n = x.shape[0]
        be = get_backend(backend)
        if be.kind != "serial" and self.staleness > 0 and n_updates > 0:
            return self._train_blocked(x, y, n_updates, batch_size, rng, be)
        losses: List[float] = []
        for _ in range(n_updates):
            idx = rng.integers(0, n, batch_size)
            stale_idx = max(0, len(self._versions) - 1 - self.staleness)
            self.model.set_params(self._versions[stale_idx])
            loss, grad = self.model.gradient(x[idx], y[idx])
            new = self._versions[-1] - self.lr * grad
            self._versions.append(new)
            # bound history memory
            keep = self.staleness + 2
            if len(self._versions) > 4 * keep:
                self._versions = self._versions[-keep:]
            losses.append(loss)
        self.model.set_params(self._versions[-1])
        return losses

    def _train_blocked(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_updates: int,
        batch_size: int,
        rng: np.random.Generator,
        be: Backend,
    ) -> List[float]:
        """Bounded-staleness pipeline: fan out gradient blocks.

        For updates ``t .. t+B-1`` with ``B <= staleness``, every
        stale read targets a version of index ``<= t-1``, all of which
        exist when the block is dispatched; applying the returned
        gradients in order reproduces the serial version chain and
        truncation schedule exactly.
        """
        n = x.shape[0]
        blueprint = _mlp_blueprint(self.model)
        losses: List[float] = []
        keep = self.staleness + 2
        done = 0
        with ShmStage(be.kind) as stage:
            sx = stage.share(x)
            sy = stage.share(y)
            while done < n_updates:
                block = min(self.staleness, n_updates - done)
                # parent-side draws, serial order: backend-independent
                batches = [rng.integers(0, n, batch_size)
                           for _ in range(block)]
                stale_params = np.stack([
                    self._versions[
                        max(0, len(self._versions) - 1 - self.staleness + b)
                    ]
                    for b in range(block)
                ])
                # one segment per block for the weight exchange, not
                # one pickled vector per task
                with ShmStage(be.kind) as block_stage:
                    sp = block_stage.share(stale_params)
                    grads = map_fanout(
                        _asgd_gradient,
                        [(blueprint, sp, b, batches[b], sx, sy)
                         for b in range(block)],
                        backend=be,
                    )
                for loss, grad in grads:
                    new = self._versions[-1] - self.lr * grad
                    self._versions.append(new)
                    if len(self._versions) > 4 * keep:
                        self._versions = self._versions[-keep:]
                    losses.append(loss)
                done += block
        self.model.set_params(self._versions[-1])
        return losses


def kavg_train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    n_learners: int,
    k_steps: int,
    lr: float = 0.1,
    rounds: int = 10,
    batch_size: int = 32,
    seed: int = 0,
    backend: Union[None, str, Backend] = None,
) -> List[float]:
    """K-step averaging SGD [34].

    Data is partitioned across learners; each round every learner runs
    ``k_steps`` of local SGD from the shared model, then models are
    averaged (one global reduction per round).  Returns the global
    training loss after each round.

    The per-round learner legs fan out over *backend* (default: the
    ``REPRO_PAR`` environment variable).  Each learner owns a spawned
    RNG stream whose state round-trips through the worker, and the
    training set crosses process boundaries once via shared memory, so
    every backend produces bit-identical history and parameters.
    """
    if n_learners < 1 or k_steps < 1 or rounds < 0:
        raise ValueError("bad KAVG configuration")
    if lr <= 0:
        raise ValueError("lr must be positive")
    n = x.shape[0]
    shard = [np.arange(n)[i::n_learners] for i in range(n_learners)]
    rngs = spawn_rngs(seed, n_learners)
    params = model.get_params()
    history: List[float] = []
    be = get_backend(backend)
    blueprint = _mlp_blueprint(model)
    with ShmStage(be.kind) as stage:
        sx = stage.share(x)
        sy = stage.share(y)
        for _ in range(rounds):
            # the round's weight exchange: the global model crosses to
            # every learner through one shared segment
            with ShmStage(be.kind) as round_stage:
                sp = round_stage.share(params)
                outs = map_fanout(
                    _kavg_local_round,
                    [
                        (blueprint, sp, shard[l], k_steps, lr, batch_size,
                         rngs[l].bit_generator.state, sx, sy)
                        for l in range(n_learners)
                    ],
                    backend=be,
                )
            for l, (_, state) in enumerate(outs):
                rngs[l].bit_generator.state = state
            params = np.mean([p for p, _ in outs], axis=0)
            model.set_params(params)
            history.append(model.loss(x, y))
    return history


def kavg_reduction_count(rounds: int) -> int:
    """Global reductions KAVG needs (one per round, independent of K) —
    the communication-savings argument for K > 1."""
    return rounds
