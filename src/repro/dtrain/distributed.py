"""Distributed-training algorithm simulators: SGD, ASGD, KAVG (§4.5).

The paper's finding: ASGD "has the same asymptotic convergence rate as
SGD when the staleness of gradient update is bounded, [but] the
learning rate assumed for ASGD convergence is usually too small for
practical purposes", and staleness is hard to control.  KAVG [34]
(learners run K local SGD steps, then average models) is bulk
synchronous, scales better, and "the optimal K for convergence is
usually greater than one".

All three run *for real* on any model exposing the
``gradient(x, y) -> (loss, flat_grad)`` / ``get_params`` /
``set_params`` interface of :class:`repro.dtrain.nn.MLP`.  Staleness in
the ASGD simulator is explicit: the server keeps a version history and
learners compute gradients against parameters ``staleness`` versions
old — the controlled experiment the paper's analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtrain.nn import MLP
from repro.util.rng import make_rng, spawn_rngs


def _batches(x, y, batch_size, rng):
    n = x.shape[0]
    order = rng.permutation(n)
    for k in range(0, n, batch_size):
        idx = order[k:k + batch_size]
        yield x[idx], y[idx]


def sgd_train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    lr: float = 0.1,
    epochs: int = 5,
    batch_size: int = 32,
    seed: int = 0,
) -> List[float]:
    """Plain minibatch SGD; returns per-epoch mean loss."""
    if lr <= 0 or epochs < 0 or batch_size < 1:
        raise ValueError("bad SGD hyperparameters")
    rng = make_rng(seed)
    history: List[float] = []
    params = model.get_params()
    for _ in range(epochs):
        losses = []
        for xb, yb in _batches(x, y, batch_size, rng):
            model.set_params(params)
            loss, grad = model.gradient(xb, yb)
            params = params - lr * grad
            losses.append(loss)
        history.append(float(np.mean(losses)))
    model.set_params(params)
    return history


class AsgdServer:
    """Parameter-server ASGD with controllable gradient staleness.

    ``staleness`` s means every applied gradient was computed against
    the parameters from s updates ago (s=0 reduces to sequential SGD).
    """

    def __init__(self, model: MLP, lr: float, staleness: int = 0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.model = model
        self.lr = lr
        self.staleness = staleness
        self._versions: List[np.ndarray] = [model.get_params()]

    @property
    def params(self) -> np.ndarray:
        return self._versions[-1]

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_updates: int,
        batch_size: int = 32,
        seed: int = 0,
    ) -> List[float]:
        """Apply *n_updates* (possibly stale) gradient updates."""
        if n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        rng = make_rng(seed)
        n = x.shape[0]
        losses: List[float] = []
        for _ in range(n_updates):
            idx = rng.integers(0, n, batch_size)
            stale_idx = max(0, len(self._versions) - 1 - self.staleness)
            self.model.set_params(self._versions[stale_idx])
            loss, grad = self.model.gradient(x[idx], y[idx])
            new = self._versions[-1] - self.lr * grad
            self._versions.append(new)
            # bound history memory
            keep = self.staleness + 2
            if len(self._versions) > 4 * keep:
                self._versions = self._versions[-keep:]
            losses.append(loss)
        self.model.set_params(self._versions[-1])
        return losses


def kavg_train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    n_learners: int,
    k_steps: int,
    lr: float = 0.1,
    rounds: int = 10,
    batch_size: int = 32,
    seed: int = 0,
) -> List[float]:
    """K-step averaging SGD [34].

    Data is partitioned across learners; each round every learner runs
    ``k_steps`` of local SGD from the shared model, then models are
    averaged (one global reduction per round).  Returns the global
    training loss after each round.
    """
    if n_learners < 1 or k_steps < 1 or rounds < 0:
        raise ValueError("bad KAVG configuration")
    if lr <= 0:
        raise ValueError("lr must be positive")
    n = x.shape[0]
    shard = [np.arange(n)[i::n_learners] for i in range(n_learners)]
    rngs = spawn_rngs(seed, n_learners)
    params = model.get_params()
    history: List[float] = []
    for _ in range(rounds):
        locals_: List[np.ndarray] = []
        for learner in range(n_learners):
            p = params.copy()
            idx = shard[learner]
            rng = rngs[learner]
            for _ in range(k_steps):
                batch = idx[rng.integers(0, idx.size, batch_size)]
                model.set_params(p)
                _, grad = model.gradient(x[batch], y[batch])
                p = p - lr * grad
            locals_.append(p)
        params = np.mean(locals_, axis=0)
        model.set_params(params)
        history.append(model.loss(x, y))
    return history


def kavg_reduction_count(rounds: int) -> int:
    """Global reductions KAVG needs (one per round, independent of K) —
    the communication-savings argument for K > 1."""
    return rounds
