"""Variational-EM Latent Dirichlet Allocation.

The standard Blei/Ng/Jordan batch algorithm: per-document variational
E-step (fixed point on the topic responsibilities ``phi`` and the
Dirichlet posterior ``gamma``), then an M-step re-estimating the
topic-word distributions from aggregated sufficient statistics.  The
E-step is embarrassingly parallel over documents — which is exactly
what SparkPlug distributes.

The objective tracked is the EM lower bound restricted to the terms
that change (token likelihood under the variational posterior plus the
theta-prior term); the test suite checks it is non-decreasing, the
hallmark of a correct variational EM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import digamma, gammaln

from repro.lda.corpus import SyntheticCorpus
from repro.util.rng import make_rng

Doc = Tuple[np.ndarray, np.ndarray]


@dataclass
class LdaModel:
    """Model state: topic-word distributions and hyperparameters."""

    beta: np.ndarray          # (K, V), rows sum to 1
    alpha: float = 0.3
    eta: float = 0.01

    def __post_init__(self) -> None:
        if self.beta.ndim != 2:
            raise ValueError("beta must be (K, V)")
        if self.alpha <= 0 or self.eta <= 0:
            raise ValueError("hyperparameters must be positive")
        rows = self.beta.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError("beta rows must sum to 1")

    @property
    def n_topics(self) -> int:
        return self.beta.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.beta.shape[1]

    @staticmethod
    def random_init(n_topics: int, vocab_size: int, seed: int = 0,
                    alpha: float = 0.3, eta: float = 0.01) -> "LdaModel":
        rng = make_rng(seed)
        beta = rng.random((n_topics, vocab_size)) + 0.01
        beta /= beta.sum(axis=1, keepdims=True)
        return LdaModel(beta=beta, alpha=alpha, eta=eta)


def e_step(
    model: LdaModel,
    docs: Sequence[Doc],
    max_iters: int = 40,
    tol: float = 1e-4,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Variational E-step over *docs*.

    Returns (sufficient statistics (K, V), gammas (D, K), bound
    contribution).  The bound term is the per-document token
    likelihood bound sum_w c_w * log(sum_k phi_kw-weighted terms)
    evaluated in its numerically stable log-sum-exp form.
    """
    k = model.n_topics
    log_beta = np.log(np.maximum(model.beta, 1e-300))
    ss = np.zeros_like(model.beta)
    gammas = np.zeros((len(docs), k))
    bound = 0.0
    for d, (ids, counts) in enumerate(docs):
        gamma = np.full(k, model.alpha + counts.sum() / k)
        lb = log_beta[:, ids]  # (K, W)
        for _ in range(max_iters):
            elog_theta = digamma(gamma) - digamma(gamma.sum())
            log_phi = lb + elog_theta[:, None]
            log_norm = _logsumexp(log_phi, axis=0)
            phi = np.exp(log_phi - log_norm[None, :])
            gamma_new = model.alpha + phi @ counts
            if np.abs(gamma_new - gamma).max() < tol:
                gamma = gamma_new
                break
            gamma = gamma_new
        elog_theta = digamma(gamma) - digamma(gamma.sum())
        log_phi = lb + elog_theta[:, None]
        log_norm = _logsumexp(log_phi, axis=0)
        phi = np.exp(log_phi - log_norm[None, :])
        np.add.at(ss.T, ids, (phi * counts[None, :]).T)
        gammas[d] = gamma
        # per-doc bound: token terms + theta entropy/prior terms
        bound += float(counts @ log_norm)
        bound += float(
            gammaln(k * model.alpha) - k * gammaln(model.alpha)
            + np.sum(gammaln(gamma)) - gammaln(gamma.sum())
            + np.sum((model.alpha - gamma) * elog_theta)
        )
        # subtract E_q[log q(z)] - ... already folded: log_norm form
        # accounts for the phi entropy exactly (standard identity).
    return ss, gammas, bound


def m_step(model: LdaModel, ss: np.ndarray) -> LdaModel:
    """Re-estimate beta from sufficient statistics (smoothed MLE)."""
    if ss.shape != model.beta.shape:
        raise ValueError("sufficient statistics shape mismatch")
    beta = ss + model.eta
    beta /= beta.sum(axis=1, keepdims=True)
    return LdaModel(beta=beta, alpha=model.alpha, eta=model.eta)


def fit(
    corpus: SyntheticCorpus,
    n_topics: int,
    n_iters: int = 20,
    seed: int = 0,
) -> Tuple[LdaModel, List[float]]:
    """Single-process reference EM loop; returns (model, bound history)."""
    model = LdaModel.random_init(n_topics, corpus.vocab_size, seed=seed)
    history: List[float] = []
    for _ in range(n_iters):
        ss, _, bound = e_step(model, corpus.docs)
        history.append(bound)
        model = m_step(model, ss)
    return model, history


def perplexity(model: LdaModel, docs: Sequence[Doc]) -> float:
    """exp(-bound / tokens): lower is better."""
    ss, _, bound = e_step(model, docs)
    tokens = sum(float(c.sum()) for _, c in docs)
    return float(np.exp(-bound / max(tokens, 1.0)))


def topic_recovery_score(model: LdaModel, true_topics: np.ndarray) -> float:
    """Mean best-match cosine similarity between learned and true topics."""
    def normalize(m):
        return m / np.maximum(
            np.linalg.norm(m, axis=1, keepdims=True), 1e-300
        )

    learned = normalize(model.beta)
    truth = normalize(true_topics)
    sim = learned @ truth.T  # (K_learned, K_true)
    return float(sim.max(axis=0).mean())


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    m = a.max(axis=axis)
    return m + np.log(np.sum(np.exp(a - np.expand_dims(m, axis)), axis=axis))
