"""SparkPlug: distributed LDA on the mini Spark engine (Fig 2).

Per EM iteration:

1. **compute** — the E-step runs as ``map_partitions`` over document
   partitions, producing per-partition sufficient statistics.
2. **shuffle** — partial statistics are split into vocabulary blocks
   and exchanged all-to-all so each worker owns a block (the word-
   statistics regroup that stressed Spark's shuffle at 54M words).
3. **aggregate** — per-block partials reduce to the driver
   (all-to-one), which re-estimates beta and broadcasts it.

Results are exact: the distributed model matches the single-process
reference bit-for-bit given the same initialization (tested).  The
modeled cluster time lands in the engine's TimerRegistry under
``compute`` / ``shuffle`` / ``aggregate`` — the Fig 2 phases — and the
default-vs-optimized stack comparison reproduces the >2X improvement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.machine import Machine
from repro.lda.corpus import SyntheticCorpus
from repro.lda.vem import LdaModel, e_step, m_step
from repro.spark.engine import SparkEngine
from repro.spark.jvm import DEFAULT_STACK, JvmStack
from repro.util.timing import TimerRegistry

#: flops per token per E-step fixed-point iteration (K-dim vector work)
FLOPS_PER_TOKEN_PER_TOPIC = 12.0


class SparkPlugLDA:
    """Distributed variational-EM LDA driver."""

    def __init__(
        self,
        corpus: SyntheticCorpus,
        n_topics: int,
        engine: SparkEngine,
        shuffle_algorithm: str = "hash",
        aggregate_algorithm: str = "flat",
        seed: int = 0,
    ):
        if n_topics < 1:
            raise ValueError("need at least one topic")
        if shuffle_algorithm not in ("hash", "adaptive"):
            raise ValueError("bad shuffle algorithm")
        if aggregate_algorithm not in ("flat", "tree"):
            raise ValueError("bad aggregate algorithm")
        self.corpus = corpus
        self.engine = engine
        self.shuffle_algorithm = shuffle_algorithm
        self.aggregate_algorithm = aggregate_algorithm
        self.model = LdaModel.random_init(
            n_topics, corpus.vocab_size, seed=seed
        )
        self.partitions = engine.parallelize(corpus.docs)
        self.bound_history: List[float] = []

    # ------------------------------------------------------------------

    def iterate(self, n_iters: int = 1) -> LdaModel:
        """Run EM iterations; returns the updated model."""
        if n_iters < 0:
            raise ValueError("n_iters must be >= 0")
        for _ in range(n_iters):
            self._one_iteration()
        return self.model

    def _one_iteration(self) -> None:
        engine = self.engine
        model = self.model
        k, v = model.n_topics, model.vocab_size
        avg_doc_tokens = max(
            1.0, self.corpus.n_tokens / max(self.corpus.n_docs, 1)
        )

        # 1. compute: E-step per partition
        def estep_partition(docs):
            if not docs:
                return [(np.zeros((k, v)), 0.0)]
            ss, _, bound = e_step(model, docs)
            return [(ss, bound)]

        flops = FLOPS_PER_TOKEN_PER_TOPIC * k * avg_doc_tokens * 20
        partials = engine.map_partitions(
            self.partitions, estep_partition, flops_per_record=flops,
            name="compute",
        )

        # 2. shuffle: split stats into vocab blocks, exchange all-to-all
        p = engine.p
        block = max(1, -(-v // p))

        def split_blocks(part):
            out = []
            for ss, bound in part:
                for bid in range(p):
                    lo, hi = bid * block, min((bid + 1) * block, v)
                    if lo >= v:
                        break
                    out.append((bid, ss[:, lo:hi], bound if bid == 0 else 0.0))
            return out

        blocks = [split_blocks(part) for part in partials]
        grouped = engine.shuffle(
            blocks, key_fn=lambda rec: rec[0],
            algorithm=self.shuffle_algorithm,
        )

        # per-worker block reduction (free in the model: overlapped)
        def reduce_blocks(part):
            if not part:
                return []
            bid = part[0][0]
            total = part[0][1].copy()
            bound = part[0][2]
            for _, ss_blk, b in part[1:]:
                total += ss_blk
                bound += b
            return [(bid, total, bound)]

        reduced = [reduce_blocks(part) for part in grouped]

        # 3. aggregate: blocks to the driver (all-to-one)
        def seq(acc, rec):
            bid, ss_blk, bound = rec
            acc[0][bid] = ss_blk
            acc[1] += bound
            return acc

        def comb(a, b):
            a[0].update(b[0])
            a[1] += b[1]
            return a

        per_block_bytes = 8.0 * k * block
        acc = engine.aggregate(
            reduced, seq, comb, zero=[{}, 0.0],
            algorithm=self.aggregate_algorithm,
            payload_bytes=per_block_bytes,
        )
        block_map: Dict[int, np.ndarray] = acc[0]
        bound = acc[1]
        ss = np.zeros((k, v))
        for bid, ss_blk in block_map.items():
            lo = bid * block
            ss[:, lo:lo + ss_blk.shape[1]] = ss_blk

        # M-step + broadcast of the new model
        self.model = m_step(model, ss)
        engine.timers.add(
            "aggregate", engine.broadcast_time(8.0 * k * v)
        )
        self.bound_history.append(bound)

    # ------------------------------------------------------------------

    def phase_breakdown(self) -> Dict[str, float]:
        """Modeled cluster seconds per Fig 2 phase."""
        t = self.engine.timers
        return {name: t.total(name) for name in ("compute", "shuffle",
                                                 "aggregate")}

    @property
    def total_time(self) -> float:
        return sum(self.phase_breakdown().values())


def compare_stacks(
    corpus: SyntheticCorpus,
    n_topics: int,
    n_workers: int = 32,
    n_iters: int = 3,
    machine: Optional[Machine] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Fig 2: default stack + hash shuffle + flat aggregate vs
    optimized stack + adaptive shuffle + tree aggregate."""
    from repro.spark.jvm import OPTIMIZED_STACK

    results: Dict[str, Dict[str, float]] = {}
    for label, stack, shuffle_alg, agg_alg in (
        ("default", DEFAULT_STACK, "hash", "flat"),
        ("optimized", OPTIMIZED_STACK, "adaptive", "tree"),
    ):
        engine = SparkEngine(n_workers, machine=machine, stack=stack)
        lda = SparkPlugLDA(
            corpus, n_topics, engine,
            shuffle_algorithm=shuffle_alg,
            aggregate_algorithm=agg_alg,
            seed=seed,
        )
        lda.iterate(n_iters)
        breakdown = lda.phase_breakdown()
        breakdown["total"] = sum(breakdown.values())
        results[label] = breakdown
    return results
