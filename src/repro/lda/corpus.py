"""Synthetic multi-language Zipf corpus (the Wikipedia substitute).

The paper's scaling run used "the entire Wikipedia corpus, including
390 different languages with a total dictionary size of more than 54
million unique words".  We cannot ship Wikipedia; the generator below
preserves the statistics that drive LDA's distributed cost profile:

- Zipf-distributed word frequencies within each language,
- disjoint per-language vocabulary blocks (the reason the dictionary
  union explodes to tens of millions of words),
- documents drawn from latent topic mixtures (so LDA has real
  structure to recover, which the tests verify).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.util.rng import make_rng


@dataclass
class SyntheticCorpus:
    """Bag-of-words corpus.

    ``docs`` is a list of (word_ids, counts) integer-array pairs.
    ``true_topics`` holds the generating topic-word distributions when
    the corpus is synthetic (used by recovery tests).
    """

    vocab_size: int
    docs: List[Tuple[np.ndarray, np.ndarray]]
    n_languages: int = 1
    true_topics: Optional[np.ndarray] = None

    @property
    def n_docs(self) -> int:
        return len(self.docs)

    @property
    def n_tokens(self) -> int:
        return int(sum(int(c.sum()) for _, c in self.docs))

    def dense_matrix(self) -> np.ndarray:
        """(n_docs, vocab) count matrix — tests only, small corpora."""
        out = np.zeros((self.n_docs, self.vocab_size))
        for d, (w, c) in enumerate(self.docs):
            out[d, w] = c
        return out


def make_corpus(
    n_docs: int = 200,
    vocab_per_language: int = 300,
    n_languages: int = 2,
    n_topics: int = 5,
    doc_length: int = 80,
    zipf_exponent: float = 1.1,
    seed: int = 0,
) -> SyntheticCorpus:
    """Generate an LDA corpus with per-language vocabulary blocks.

    Topics are language-local (a topic never mixes languages, like
    real Wikipedia), with Zipf-tilted word distributions.
    """
    if min(n_docs, vocab_per_language, n_languages, n_topics,
           doc_length) < 1:
        raise ValueError("all corpus dimensions must be >= 1")
    if zipf_exponent <= 0:
        raise ValueError("zipf_exponent must be positive")
    rng = make_rng(seed)
    vocab_size = vocab_per_language * n_languages
    total_topics = n_topics * n_languages
    topics = np.zeros((total_topics, vocab_size))
    zipf = 1.0 / np.arange(1, vocab_per_language + 1) ** zipf_exponent
    for lang in range(n_languages):
        lo = lang * vocab_per_language
        for t in range(n_topics):
            weights = zipf * rng.random(vocab_per_language)
            # concentrate each topic on a random subset
            mask = rng.random(vocab_per_language) < 0.3
            weights = np.where(mask, weights, weights * 0.01)
            row = lang * n_topics + t
            topics[row, lo:lo + vocab_per_language] = weights / weights.sum()

    docs: List[Tuple[np.ndarray, np.ndarray]] = []
    alpha = 0.3
    for _ in range(n_docs):
        lang = int(rng.integers(n_languages))
        theta = rng.dirichlet(np.full(n_topics, alpha))
        mix = theta @ topics[lang * n_topics:(lang + 1) * n_topics]
        words = rng.choice(vocab_size, size=doc_length, p=mix)
        ids, counts = np.unique(words, return_counts=True)
        docs.append((ids.astype(np.int64), counts.astype(np.float64)))
    return SyntheticCorpus(
        vocab_size=vocab_size,
        docs=docs,
        n_languages=n_languages,
        true_topics=topics,
    )
