"""SparkPlug proxy: variational-EM LDA at (simulated) scale (§4.4).

- :mod:`repro.lda.corpus` — synthetic multi-language Zipf corpus
  generator (the Wikipedia substitute; DESIGN.md records why shape
  statistics are what matter).
- :mod:`repro.lda.vem` — variational-EM Latent Dirichlet Allocation:
  per-document E-step (phi/gamma fixed point), sufficient-statistics
  M-step, and a tractable evidence bound for convergence checks.
- :mod:`repro.lda.sparkplug` — the distributed driver over
  :class:`~repro.spark.engine.SparkEngine`: E-step as map_partitions,
  statistics exchange as shuffle, model reduction as aggregate, with
  Fig 2's per-phase time breakdown for the default vs optimized stack.
"""

from repro.lda.corpus import SyntheticCorpus, make_corpus
from repro.lda.vem import LdaModel, e_step, m_step
from repro.lda.sparkplug import SparkPlugLDA

__all__ = [
    "SyntheticCorpus",
    "make_corpus",
    "LdaModel",
    "e_step",
    "m_step",
    "SparkPlugLDA",
]
