"""ddcMD proxy: molecular dynamics with a generic pair infrastructure (§4.6).

The MD activity moved "the entire MD loop to the GPU, including bonded
and nonbonded energy terms, neighbor list construction, Langevin
thermostat, Berendsen barostat, velocity Verlet integrator, constraint
solver, and restraint", built a "templatized generic pair processing
infrastructure" for the zoo of short-range potentials, and beat
GROMACS on Martini-style membrane simulations.

- :mod:`repro.md.particles` — particle storage (struct-of-arrays, the
  layout conversion §4.6 calls out) and periodic boxes.
- :mod:`repro.md.neighbor` — cell lists + Verlet neighbor lists with
  skin-based reuse.
- :mod:`repro.md.potentials` — the generic pair infrastructure:
  Lennard-Jones, exp-6 (Buckingham), and Martini-style shifted LJ all
  plug the same two-function interface into one processor.
- :mod:`repro.md.bonded` — harmonic bonds and angles (the
  pointer-rich-data-marshaling story's computational payload).
- :mod:`repro.md.integrators` — velocity Verlet, Langevin thermostat,
  Berendsen barostat, SHAKE constraints.
- :mod:`repro.md.ddcmd` — the assembled double-precision all-GPU
  simulation with its 46-kernel trace profile.
- :mod:`repro.md.gromacs_baseline` — the comparison code: single
  precision, 8 fused kernels, CPU/GPU load-splitting model.
"""

from repro.md.particles import ParticleSystem, PeriodicBox
from repro.md.neighbor import CellList, NeighborList
from repro.md.potentials import (
    Exp6,
    LennardJones,
    MartiniLJ,
    PairProcessor,
)
from repro.md.bonded import AngleTerm, BondTerm
from repro.md.integrators import (
    BerendsenBarostat,
    LangevinThermostat,
    ShakeConstraints,
    VelocityVerlet,
)
from repro.md.ddcmd import DdcMD, make_martini_membrane
from repro.md.gromacs_baseline import GromacsBaseline, modeled_step_times

__all__ = [
    "ParticleSystem",
    "PeriodicBox",
    "CellList",
    "NeighborList",
    "LennardJones",
    "Exp6",
    "MartiniLJ",
    "PairProcessor",
    "BondTerm",
    "AngleTerm",
    "VelocityVerlet",
    "LangevinThermostat",
    "BerendsenBarostat",
    "ShakeConstraints",
    "DdcMD",
    "make_martini_membrane",
    "GromacsBaseline",
    "modeled_step_times",
]
