"""The templatized generic pair-processing infrastructure (§4.6).

"Given the ubiquitous need to process pairs of particles in MD
potentials, we developed a templatized generic pair processing
infrastructure that can be used to efficiently implement a diverse set
of potential forms on GPUs."

Here the template parameter is a :class:`PairPotential`: any object
exposing ``cutoff`` and a vectorized ``energy_force(r2)`` returning
per-pair energy and ``f_over_r`` (so the processor never takes a square
root it does not need).  :class:`PairProcessor` does everything else —
minimum-image displacements, cutoff masking, force/energy/virial
accumulation, per-type-pair mixing — identically for every potential.

Potentials provided: :class:`LennardJones`, :class:`Exp6`
(Buckingham), and :class:`MartiniLJ` (LJ with the Martini-style
shift-to-zero at the cutoff so forces are continuous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

import numpy as np

from repro.md.particles import ParticleSystem
from repro.obs import metrics as _metrics
from repro.obs import validate as _validate


class PairPotential(Protocol):
    cutoff: float

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(energy, f_over_r) per pair; r2 is squared distance."""
        ...


@dataclass(frozen=True)
class LennardJones:
    """Truncated 12-6 Lennard-Jones."""

    epsilon: float = 1.0
    sigma: float = 1.0
    cutoff: float = 2.5

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.sigma <= 0 or self.cutoff <= 0:
            raise ValueError("LJ parameters must be positive")

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        s2 = self.sigma * self.sigma / r2
        s6 = s2 * s2 * s2
        s12 = s6 * s6
        e = 4.0 * self.epsilon * (s12 - s6)
        f_over_r = 24.0 * self.epsilon * (2.0 * s12 - s6) / r2
        return e, f_over_r

    def energy_force_into(self, r2: np.ndarray, e: np.ndarray,
                          f: np.ndarray, tmp: np.ndarray) -> None:
        """Allocation-free twin of :meth:`energy_force`.

        Writes per-pair energy into *e* and ``f_over_r`` into *f*
        using *tmp* as scratch; every per-pair value is bit-identical
        to the allocating path (same operation order), so the fused
        kernel inherits the validation contract for free.
        """
        np.divide(self.sigma * self.sigma, r2, out=tmp)   # s2
        np.multiply(tmp, tmp, out=f)
        np.multiply(f, tmp, out=f)                        # s6
        np.multiply(f, f, out=e)                          # s12
        np.subtract(e, f, out=tmp)                        # s12 - s6
        np.multiply(e, 2.0, out=e)
        np.subtract(e, f, out=f)                          # 2 s12 - s6
        np.multiply(f, 24.0 * self.epsilon, out=f)
        np.divide(f, r2, out=f)
        np.multiply(tmp, 4.0 * self.epsilon, out=e)


@dataclass(frozen=True)
class Exp6:
    """Buckingham exp-6: A exp(-B r) - C / r^6."""

    a: float = 1000.0
    b: float = 3.0
    c: float = 1.0
    cutoff: float = 3.0
    #: inner wall radius: exp-6 turns over unphysically at small r,
    #: so clamp below this separation (standard practice)
    r_min: float = 0.5

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c, self.cutoff, self.r_min) <= 0:
            raise ValueError("exp-6 parameters must be positive")

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        r = np.sqrt(np.maximum(r2, self.r_min * self.r_min))
        e = self.a * np.exp(-self.b * r) - self.c / r**6
        f_over_r = (self.a * self.b * np.exp(-self.b * r) / r
                    - 6.0 * self.c / r**8)
        return e, f_over_r


@dataclass(frozen=True)
class MartiniLJ:
    """Martini-style LJ with potential-and-force shift to zero at cutoff.

    The Martini coarse-grained force field uses shifted LJ so both the
    potential and the force vanish continuously at the cutoff — the
    property that lets it run at large timesteps.
    """

    epsilon: float = 1.0
    sigma: float = 0.47
    cutoff: float = 1.2

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.sigma <= 0 or self.cutoff <= 0:
            raise ValueError("Martini parameters must be positive")
        if self.cutoff <= self.sigma:
            raise ValueError("cutoff must exceed sigma")

    def _plain(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        s2 = self.sigma * self.sigma / r2
        s6 = s2 * s2 * s2
        s12 = s6 * s6
        e = 4.0 * self.epsilon * (s12 - s6)
        f_over_r = 24.0 * self.epsilon * (2.0 * s12 - s6) / r2
        return e, f_over_r

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        rc2 = np.asarray([self.cutoff * self.cutoff])
        e_c, f_c = self._plain(rc2)
        r = np.sqrt(r2)
        e, f_over_r = self._plain(r2)
        # linear force shift: F(r) -> F(r) - F(rc); E adjusted to match
        f_shift = f_c[0] * self.cutoff
        e_shifted = (
            e - e_c[0] + f_shift * (r - self.cutoff)
        )
        f_over_r_shifted = f_over_r - f_shift / r
        return e_shifted, f_over_r_shifted


def _pair_block_task(args):
    """Worker: fused evaluation of one contiguous pair-list block.

    Receives positions and index arrays as :class:`SharedArray`
    handles (zero-copy attach under process backends) plus the
    ``[lo, hi)`` block bounds; rebuilding the particle system from the
    shared positions is bit-exact because ``PeriodicBox.wrap`` is
    idempotent on already-wrapped coordinates.
    """
    pot, lengths, sx, spi, spj, lo, hi = args
    from repro.md.particles import ParticleSystem, PeriodicBox

    x = sx.asarray()
    pairs_i = np.ascontiguousarray(spi.asarray()[lo:hi])
    pairs_j = np.ascontiguousarray(spj.asarray()[lo:hi])
    system = ParticleSystem(x, PeriodicBox(lengths))
    proc = PairProcessor(pot)
    forces, energy, virial = proc._compute_fused(system, pairs_i, pairs_j)
    return forces.copy(), energy, virial


class _FusedWorkspace:
    """Preallocated pair-length scratch reused across force evals.

    The fused kernel's whole point is that between two calls on the
    same (reused) neighbor list, nothing is allocated: geometry,
    potential math, masking and the virial all run through these
    buffers, and the scatter writes into the same ``forces`` array.
    """

    __slots__ = ("m", "n", "dx", "r2", "tmp", "e", "f", "mask", "forces")

    def __init__(self, m: int, n: int):
        self.m = m
        self.n = n
        self.dx = np.empty((3, m))
        self.r2 = np.empty(m)
        self.tmp = np.empty(m)
        self.e = np.empty(m)
        self.f = np.empty(m)
        self.mask = np.empty(m)
        self.forces = np.empty((n, 3))


class PairProcessor:
    """Evaluate any pair potential over a neighbor list.

    ``potential`` may be one object (all pairs identical) or a dict
    keyed by sorted type pairs ``(ti, tj)`` for mixed systems.

    Force accumulation has three paths.  ``method="fused"`` (default,
    single-potential systems) runs one cross-kernel pipeline — gather,
    minimum image, potential math, cutoff mask, energy/virial
    reductions and the bincount scatter — entirely in preallocated
    per-pair workspaces with the cutoff applied as a 0/1 multiply, so
    a neighbor-list-reuse step does no gather-by-fancy-index copies
    and no allocation.  ``method="fast"`` scatters per-pair forces
    with ``np.bincount`` — one contiguous weighted histogram per
    component, the vectorized analog of the paper's
    contiguous-neighbor-list GPU accumulation — and is what ``fused``
    falls back to for type-pair tables (per-group gathers are the
    right shape there).  ``method="reference"`` keeps the original
    ``np.add.at`` scatter.  All paths compute the same sums; only fp
    summation order differs (and per-pair LJ terms in the fused path
    are bit-identical to the reference formula).
    """

    def __init__(self, potential, max_cutoff: Optional[float] = None):
        self._ws: Optional[_FusedWorkspace] = None
        if isinstance(potential, dict):
            if not potential:
                raise ValueError("empty potential table")
            self.table: Optional[Dict[Tuple[int, int], PairPotential]] = {
                tuple(sorted(k)): v for k, v in potential.items()
            }
            self.single: Optional[PairPotential] = None
            self.cutoff = max(v.cutoff for v in potential.values())
        else:
            self.table = None
            self.single = potential
            self.cutoff = potential.cutoff
        if max_cutoff is not None:
            self.cutoff = max_cutoff

    def _fused_workspace(self, m: int, n: int) -> _FusedWorkspace:
        if self._ws is None or self._ws.m != m or self._ws.n != n:
            self._ws = _FusedWorkspace(m, n)
        return self._ws

    def _compute_fused(
        self,
        system: ParticleSystem,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
    ) -> Tuple[np.ndarray, float, float]:
        """One fused pass over the pair list, zero allocations.

        Component-major geometry (``(3, m)`` workspaces) replaces the
        ``(m, 3)`` fancy-index gathers of the unfused paths: each
        component is a contiguous 1-D ``take`` / subtract / round
        chain, the cutoff is a 0/1 float multiply instead of an index
        selection, and the per-component scatter reuses the same
        ``bincount`` indices for every call on a reused neighbor list.
        """
        pot = self.single
        x = system.x.astype(np.float64, copy=False)
        n = system.n
        m = int(pairs_i.size)
        ws = self._fused_workspace(m, n)
        forces = ws.forces
        forces.fill(0.0)
        energy = 0.0
        virial = 0.0
        if m:
            box = system.box.array
            xt = np.ascontiguousarray(x.T)
            dx, r2, tmp = ws.dx, ws.r2, ws.tmp
            r2.fill(0.0)
            for d in range(3):
                dxd = dx[d]
                np.take(xt[d], pairs_i, out=dxd)
                np.take(xt[d], pairs_j, out=tmp)
                np.subtract(dxd, tmp, out=dxd)
                np.divide(dxd, box[d], out=tmp)
                np.round(tmp, out=tmp)
                np.multiply(tmp, box[d], out=tmp)
                np.subtract(dxd, tmp, out=dxd)
                np.multiply(dxd, dxd, out=tmp)
                np.add(r2, tmp, out=r2)
            e, f = ws.e, ws.f
            if hasattr(pot, "energy_force_into"):
                pot.energy_force_into(r2, e, f, tmp)
            else:
                ev, fv = pot.energy_force(r2)
                e[...] = ev
                f[...] = fv
            np.less_equal(r2, pot.cutoff * pot.cutoff, out=ws.mask)
            np.multiply(e, ws.mask, out=e)
            np.multiply(f, ws.mask, out=f)
            energy = float(e.sum())
            np.multiply(f, r2, out=tmp)
            virial = float(tmp.sum())
            for d in range(3):
                np.multiply(f, dx[d], out=tmp)
                forces[:, d] += np.bincount(pairs_i, weights=tmp,
                                            minlength=n)
                forces[:, d] -= np.bincount(pairs_j, weights=tmp,
                                            minlength=n)
        return forces, energy, virial

    def compute_fanout(
        self,
        system: ParticleSystem,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        backend=None,
        blocks: Optional[int] = None,
    ) -> Tuple[np.ndarray, float, float]:
        """Fan the fused pair kernel out over a ``repro.par`` backend.

        Positions and the neighbor-list index arrays are staged once
        as shared-memory segments (zero-copy attach under process
        backends); each worker evaluates one contiguous block of the
        pair list and the per-block partial forces/energy/virial are
        combined in fixed block order — deterministic for a given
        block count regardless of backend kind, worker count, or
        steal timing.  Type-pair tables and serial/single-worker
        backends fall through to :meth:`compute`.
        """
        from repro.par import ShmStage, get_backend, map_fanout

        be = get_backend(backend)
        m = int(pairs_i.size)
        nb = int(blocks) if blocks else 4 * be.workers
        nb = min(nb, max(1, m))
        if (self.table is not None or be.kind == "serial"
                or be.workers <= 1 or nb <= 1):
            return self.compute(system, pairs_i, pairs_j)
        bounds = np.linspace(0, m, nb + 1).astype(np.int64)
        pot = self.single
        lengths = tuple(float(l) for l in system.box.lengths)
        x64 = np.ascontiguousarray(system.x.astype(np.float64, copy=False))
        with ShmStage(be.kind) as stage:
            sx = stage.share(x64)
            spi = stage.share(np.ascontiguousarray(pairs_i, dtype=np.int64))
            spj = stage.share(np.ascontiguousarray(pairs_j, dtype=np.int64))
            payloads = [
                (pot, lengths, sx, spi, spj,
                 int(bounds[b]), int(bounds[b + 1]))
                for b in range(nb)
                if bounds[b + 1] > bounds[b]
            ]
            parts = map_fanout(_pair_block_task, payloads, backend=be)
        forces = np.zeros((system.n, 3))
        energy = 0.0
        virial = 0.0
        for fpart, e, w in parts:
            forces += fpart
            energy += e
            virial += w
        _metrics.counter("md.forces.evals").add()
        _metrics.counter("md.forces.fanout").add()
        if _validate.validation_enabled():
            f_ref, e_ref, w_ref = self.compute(
                system, pairs_i, pairs_j, method="reference"
            )
            _validate.check_allclose(
                "md.forces", forces.astype(system.dtype), f_ref,
                rtol=1e-9, atol=1e-9,
            )
            _validate.check_allclose(
                "md.forces.energy", [energy, virial], [e_ref, w_ref],
                rtol=1e-9, atol=1e-9,
            )
        return forces.astype(system.dtype), energy, virial

    def compute(
        self,
        system: ParticleSystem,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        method: str = "fused",
    ) -> Tuple[np.ndarray, float, float]:
        """Returns (forces (n,3), potential energy, virial).

        Virial convention: W = sum over pairs of r . F; pressure is
        then ``(2 K + W) / (3 V)``.
        """
        if method not in ("fused", "fast", "reference"):
            raise ValueError(f"unknown accumulation method {method!r}")
        if method == "fused" and self.table is not None:
            method = "fast"
        if method == "fused":
            forces, energy, virial = self._compute_fused(
                system, pairs_i, pairs_j
            )
            _metrics.counter("md.forces.evals").add()
            _metrics.counter("md.forces.fused").add()
            if _validate.validation_enabled():
                f_ref, e_ref, w_ref = self.compute(
                    system, pairs_i, pairs_j, method="reference"
                )
                _validate.check_allclose(
                    "md.forces", forces.astype(system.dtype), f_ref,
                    rtol=1e-9, atol=1e-9,
                )
                _validate.check_allclose(
                    "md.forces.energy", [energy, virial], [e_ref, w_ref],
                    rtol=1e-9, atol=1e-9,
                )
            return forces.astype(system.dtype), energy, virial
        x = system.x.astype(np.float64, copy=False)
        dx = system.box.minimum_image(x[pairs_i] - x[pairs_j])
        r2 = (dx * dx).sum(axis=1)
        n = system.n
        forces = np.zeros((n, 3))
        energy = 0.0
        virial = 0.0
        if self.single is not None:
            groups = [(self.single, np.arange(pairs_i.size))]
        else:
            ti = system.types[pairs_i]
            tj = system.types[pairs_j]
            lo = np.minimum(ti, tj)
            hi = np.maximum(ti, tj)
            groups = []
            for key, pot in self.table.items():
                sel = np.flatnonzero((lo == key[0]) & (hi == key[1]))
                if sel.size:
                    groups.append((pot, sel))
        for pot, sel in groups:
            r2s = r2[sel]
            within = r2s <= pot.cutoff * pot.cutoff
            idx = sel[within]
            if idx.size == 0:
                continue
            e, f_over_r = pot.energy_force(r2[idx])
            fvec = f_over_r[:, None] * dx[idx]
            if method == "fast":
                gi, gj = pairs_i[idx], pairs_j[idx]
                for d in range(3):
                    forces[:, d] += np.bincount(
                        gi, weights=fvec[:, d], minlength=n
                    )
                    forces[:, d] -= np.bincount(
                        gj, weights=fvec[:, d], minlength=n
                    )
            else:
                np.add.at(forces, pairs_i[idx], fvec)
                np.add.at(forces, pairs_j[idx], -fvec)
            energy += float(e.sum())
            virial += float((f_over_r * r2[idx]).sum())
        _metrics.counter("md.forces.evals").add()
        if method == "fast" and _validate.validation_enabled():
            # bincount-scatter contract: allclose to np.add.at up to
            # fp summation order
            f_ref, e_ref, w_ref = self.compute(
                system, pairs_i, pairs_j, method="reference"
            )
            _validate.check_allclose(
                "md.forces", forces.astype(system.dtype), f_ref,
                rtol=1e-9, atol=1e-9,
            )
            _validate.check_allclose(
                "md.forces.energy", [energy, virial], [e_ref, w_ref],
                rtol=1e-9, atol=1e-9,
            )
        return forces.astype(system.dtype), energy, virial
