"""The templatized generic pair-processing infrastructure (§4.6).

"Given the ubiquitous need to process pairs of particles in MD
potentials, we developed a templatized generic pair processing
infrastructure that can be used to efficiently implement a diverse set
of potential forms on GPUs."

Here the template parameter is a :class:`PairPotential`: any object
exposing ``cutoff`` and a vectorized ``energy_force(r2)`` returning
per-pair energy and ``f_over_r`` (so the processor never takes a square
root it does not need).  :class:`PairProcessor` does everything else —
minimum-image displacements, cutoff masking, force/energy/virial
accumulation, per-type-pair mixing — identically for every potential.

Potentials provided: :class:`LennardJones`, :class:`Exp6`
(Buckingham), and :class:`MartiniLJ` (LJ with the Martini-style
shift-to-zero at the cutoff so forces are continuous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

import numpy as np

from repro.md.particles import ParticleSystem
from repro.obs import metrics as _metrics
from repro.obs import validate as _validate


class PairPotential(Protocol):
    cutoff: float

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(energy, f_over_r) per pair; r2 is squared distance."""
        ...


@dataclass(frozen=True)
class LennardJones:
    """Truncated 12-6 Lennard-Jones."""

    epsilon: float = 1.0
    sigma: float = 1.0
    cutoff: float = 2.5

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.sigma <= 0 or self.cutoff <= 0:
            raise ValueError("LJ parameters must be positive")

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        s2 = self.sigma * self.sigma / r2
        s6 = s2 * s2 * s2
        s12 = s6 * s6
        e = 4.0 * self.epsilon * (s12 - s6)
        f_over_r = 24.0 * self.epsilon * (2.0 * s12 - s6) / r2
        return e, f_over_r


@dataclass(frozen=True)
class Exp6:
    """Buckingham exp-6: A exp(-B r) - C / r^6."""

    a: float = 1000.0
    b: float = 3.0
    c: float = 1.0
    cutoff: float = 3.0
    #: inner wall radius: exp-6 turns over unphysically at small r,
    #: so clamp below this separation (standard practice)
    r_min: float = 0.5

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c, self.cutoff, self.r_min) <= 0:
            raise ValueError("exp-6 parameters must be positive")

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        r = np.sqrt(np.maximum(r2, self.r_min * self.r_min))
        e = self.a * np.exp(-self.b * r) - self.c / r**6
        f_over_r = (self.a * self.b * np.exp(-self.b * r) / r
                    - 6.0 * self.c / r**8)
        return e, f_over_r


@dataclass(frozen=True)
class MartiniLJ:
    """Martini-style LJ with potential-and-force shift to zero at cutoff.

    The Martini coarse-grained force field uses shifted LJ so both the
    potential and the force vanish continuously at the cutoff — the
    property that lets it run at large timesteps.
    """

    epsilon: float = 1.0
    sigma: float = 0.47
    cutoff: float = 1.2

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.sigma <= 0 or self.cutoff <= 0:
            raise ValueError("Martini parameters must be positive")
        if self.cutoff <= self.sigma:
            raise ValueError("cutoff must exceed sigma")

    def _plain(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        s2 = self.sigma * self.sigma / r2
        s6 = s2 * s2 * s2
        s12 = s6 * s6
        e = 4.0 * self.epsilon * (s12 - s6)
        f_over_r = 24.0 * self.epsilon * (2.0 * s12 - s6) / r2
        return e, f_over_r

    def energy_force(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        rc2 = np.asarray([self.cutoff * self.cutoff])
        e_c, f_c = self._plain(rc2)
        r = np.sqrt(r2)
        e, f_over_r = self._plain(r2)
        # linear force shift: F(r) -> F(r) - F(rc); E adjusted to match
        f_shift = f_c[0] * self.cutoff
        e_shifted = (
            e - e_c[0] + f_shift * (r - self.cutoff)
        )
        f_over_r_shifted = f_over_r - f_shift / r
        return e_shifted, f_over_r_shifted


class PairProcessor:
    """Evaluate any pair potential over a neighbor list.

    ``potential`` may be one object (all pairs identical) or a dict
    keyed by sorted type pairs ``(ti, tj)`` for mixed systems.

    Force accumulation has two paths: ``method="fast"`` (default)
    scatters per-pair forces with ``np.bincount`` — one contiguous
    weighted histogram per component, the vectorized analog of the
    paper's contiguous-neighbor-list GPU accumulation — while
    ``method="reference"`` keeps the original ``np.add.at`` scatter.
    Both compute the same sums; only fp summation order differs.
    """

    def __init__(self, potential, max_cutoff: Optional[float] = None):
        if isinstance(potential, dict):
            if not potential:
                raise ValueError("empty potential table")
            self.table: Optional[Dict[Tuple[int, int], PairPotential]] = {
                tuple(sorted(k)): v for k, v in potential.items()
            }
            self.single: Optional[PairPotential] = None
            self.cutoff = max(v.cutoff for v in potential.values())
        else:
            self.table = None
            self.single = potential
            self.cutoff = potential.cutoff
        if max_cutoff is not None:
            self.cutoff = max_cutoff

    def compute(
        self,
        system: ParticleSystem,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        method: str = "fast",
    ) -> Tuple[np.ndarray, float, float]:
        """Returns (forces (n,3), potential energy, virial).

        Virial convention: W = sum over pairs of r . F; pressure is
        then ``(2 K + W) / (3 V)``.
        """
        if method not in ("fast", "reference"):
            raise ValueError(f"unknown accumulation method {method!r}")
        x = system.x.astype(np.float64, copy=False)
        dx = system.box.minimum_image(x[pairs_i] - x[pairs_j])
        r2 = (dx * dx).sum(axis=1)
        n = system.n
        forces = np.zeros((n, 3))
        energy = 0.0
        virial = 0.0
        if self.single is not None:
            groups = [(self.single, np.arange(pairs_i.size))]
        else:
            ti = system.types[pairs_i]
            tj = system.types[pairs_j]
            lo = np.minimum(ti, tj)
            hi = np.maximum(ti, tj)
            groups = []
            for key, pot in self.table.items():
                sel = np.flatnonzero((lo == key[0]) & (hi == key[1]))
                if sel.size:
                    groups.append((pot, sel))
        for pot, sel in groups:
            r2s = r2[sel]
            within = r2s <= pot.cutoff * pot.cutoff
            idx = sel[within]
            if idx.size == 0:
                continue
            e, f_over_r = pot.energy_force(r2[idx])
            fvec = f_over_r[:, None] * dx[idx]
            if method == "fast":
                gi, gj = pairs_i[idx], pairs_j[idx]
                for d in range(3):
                    forces[:, d] += np.bincount(
                        gi, weights=fvec[:, d], minlength=n
                    )
                    forces[:, d] -= np.bincount(
                        gj, weights=fvec[:, d], minlength=n
                    )
            else:
                np.add.at(forces, pairs_i[idx], fvec)
                np.add.at(forces, pairs_j[idx], -fvec)
            energy += float(e.sum())
            virial += float((f_over_r * r2[idx]).sum())
        _metrics.counter("md.forces.evals").add()
        if method == "fast" and _validate.validation_enabled():
            # bincount-scatter contract: allclose to np.add.at up to
            # fp summation order
            f_ref, e_ref, w_ref = self.compute(
                system, pairs_i, pairs_j, method="reference"
            )
            _validate.check_allclose(
                "md.forces", forces.astype(system.dtype), f_ref,
                rtol=1e-9, atol=1e-9,
            )
            _validate.check_allclose(
                "md.forces.energy", [energy, virial], [e_ref, w_ref],
                rtol=1e-9, atol=1e-9,
            )
        return forces.astype(system.dtype), energy, virial
