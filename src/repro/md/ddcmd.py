"""The assembled ddcMD proxy and a Martini-style membrane builder.

:class:`DdcMD` wires the pair infrastructure, bonded terms, integrator,
thermostat, barostat and constraints into the all-on-GPU simulation
loop §4.6 describes, recording the characteristic many-small-kernels
profile (46 kernels per step in the real code) when a tracing context
is bound.  Everything runs in double precision — one of the two
deliberate contrasts with the GROMACS baseline.

:func:`make_martini_membrane` builds the coarse-grained lipid-bilayer
workload the paper's comparison runs on: 3-bead lipids (head +
two tails) in two leaflets plus solvent beads, with Martini-style
shifted-LJ nonbonded interactions, harmonic bonds, and cosine angles.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec
from repro.guard.sentinels import default_monitor
from repro.md.bonded import AngleTerm, BondTerm
from repro.md.integrators import (
    BerendsenBarostat,
    LangevinThermostat,
    ShakeConstraints,
    VelocityVerlet,
)
from repro.md.neighbor import NeighborList
from repro.md.particles import ParticleSystem, PeriodicBox
from repro.md.potentials import MartiniLJ, PairProcessor
from repro.util.rng import make_rng

#: the real code's per-step kernel count (§4.6: "46 CUDA kernels")
DDCMD_KERNELS_PER_STEP = 46

#: bead type ids
HEAD, TAIL, WATER = 0, 1, 2


class DdcMD:
    """Double-precision all-GPU MD simulation proxy."""

    def __init__(
        self,
        system: ParticleSystem,
        pair_processor: PairProcessor,
        dt: float = 0.01,
        bonds: Optional[BondTerm] = None,
        angles: Optional[AngleTerm] = None,
        thermostat: Optional[LangevinThermostat] = None,
        barostat: Optional[BerendsenBarostat] = None,
        constraints: Optional[ShakeConstraints] = None,
        skin: float = 0.3,
        ctx: Optional[ExecutionContext] = None,
    ):
        self.system = system
        self.pairs = pair_processor
        self.bonds = bonds
        self.angles = angles
        self.thermostat = thermostat
        self.barostat = barostat
        self.constraints = constraints
        self.ctx = ctx
        self.nlist = NeighborList(pair_processor.cutoff, skin=skin)
        self.integrator = VelocityVerlet(self._forces, dt)
        self.potential_energy = 0.0
        self.virial = 0.0
        self.steps_taken = 0
        #: total energy recorded at the end of the last step (ABFT ref)
        self._abft_energy: Optional[float] = None

    def _forces(self, system: ParticleSystem
                ) -> Tuple[np.ndarray, float, float]:
        self.nlist.update(system)
        f, pe, virial = self.pairs.compute(
            system, self.nlist.pairs_i, self.nlist.pairs_j
        )
        # fused accumulation: bonded/angle scatters land directly in
        # the nonbonded force buffer instead of allocating their own
        # (n, 3) arrays and adding them afterwards
        if self.bonds is not None:
            _, eb = self.bonds.compute(system, out=f)
            pe += eb
        if self.angles is not None:
            _, ea = self.angles.compute(system, out=f)
            pe += ea
        return f, pe, virial

    def total_energy(self) -> float:
        return self.system.kinetic_energy() + self.potential_energy

    def _record_step_kernels(self, rebuilt: bool = False) -> None:
        """Record one step's kernel profile (46 launches, always).

        The real code's per-step budget is fixed at
        :data:`DDCMD_KERNELS_PER_STEP`; what this decomposition adds
        is *structure* the trace optimizer can act on: the neighbor
        build appears only on steps that actually rebuilt (the
        skip-rebuild displacement bound made it disappear from reuse
        steps), and the bonded/angle scatters are their own adjacent
        kernels so profitability-guided cross-kernel fusion (DESIGN
        §14) can merge them into the nonbonded accumulation.  Every
        kernel broken out comes out of the small-kernel remainder, so
        the total launch count per step never moves.
        """
        if self.ctx is None:
            return
        n = self.system.n
        npairs = max(self.nlist.n_pairs, 1)
        small_launches = DDCMD_KERNELS_PER_STEP - 1
        if rebuilt:
            # cell binning + candidate distance filter, only on steps
            # where the half-skin displacement bound tripped
            self.ctx.trace.record_kernel(KernelSpec(
                name="ddcmd-neighbor-build", flops=20.0 * npairs,
                bytes_read=8.0 * 3 * n + 8.0 * 2 * npairs,
                bytes_written=8.0 * 2 * npairs,
                compute_efficiency=0.2, bandwidth_efficiency=0.5,
            ))
            small_launches -= 1
        # the dominant nonbonded kernel ("over 30% of peak", §4.6)
        self.ctx.trace.record_kernel(KernelSpec(
            name="ddcmd-nonbonded", flops=55.0 * npairs,
            bytes_read=8.0 * 8 * npairs * 0.25,  # list reuse via cache
            bytes_written=8.0 * 3 * n,
            compute_efficiency=0.32, bandwidth_efficiency=0.7,
        ))
        if self.bonds is not None:
            self.ctx.trace.record_kernel(KernelSpec(
                name="ddcmd-bonded", flops=60.0 * self.bonds.n_bonds,
                bytes_read=8.0 * 6 * self.bonds.n_bonds,
                bytes_written=8.0 * 3 * n,
                compute_efficiency=0.25, bandwidth_efficiency=0.6,
            ))
            small_launches -= 1
        if self.angles is not None:
            self.ctx.trace.record_kernel(KernelSpec(
                name="ddcmd-angles", flops=130.0 * self.angles.n_angles,
                bytes_read=8.0 * 9 * self.angles.n_angles,
                bytes_written=8.0 * 3 * n,
                compute_efficiency=0.25, bandwidth_efficiency=0.6,
            ))
            small_launches -= 1
        # the remaining small kernels: integrator, thermostat,
        # barostat, constraint iterations, reductions
        self.ctx.trace.record_kernel(KernelSpec(
            name="ddcmd-small-kernels", flops=250.0 * n,
            bytes_read=8.0 * 6 * n, bytes_written=8.0 * 6 * n,
            launches=small_launches,
            compute_efficiency=0.3, bandwidth_efficiency=0.6,
        ))

    def step(self) -> None:
        builds_before = self.nlist.builds
        x_prev = self.system.x.copy()
        pe, virial = self.integrator.step(self.system)
        self.potential_energy, self.virial = pe, virial
        if self.constraints is not None:
            self.constraints.apply(self.system, x_prev=x_prev)
            self.integrator.invalidate_forces()
        if self.thermostat is not None:
            self.thermostat.apply(self.system, self.integrator.dt)
        if self.barostat is not None:
            self.barostat.apply(self.system, self.virial,
                                self.integrator.dt)
            self.integrator.invalidate_forces()
        self.steps_taken += 1
        self._abft_energy = self.total_energy()
        mon = default_monitor("md.ddcmd", magnitude_bound=1e12)
        if mon is not None:
            # one scalar check covers positions/velocities/forces: NaN
            # or a blow-up anywhere propagates into the total energy
            mon.check_value(self._abft_energy, "total energy",
                            context={"step": self.steps_taken})
        self._record_step_kernels(rebuilt=self.nlist.builds > builds_before)

    def run(self, n_steps: int) -> None:
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        for _ in range(n_steps):
            self.step()

    # ------------------------------------------------------------------
    # resilience protocol (checkpoint/restart + ABFT)
    # ------------------------------------------------------------------

    @property
    def progress(self) -> int:
        return self.steps_taken

    def checkpoint_state(self) -> Dict[str, Any]:
        """Snapshot everything the trajectory depends on.

        Beyond positions/velocities this must include the neighbor
        list (its skin-reuse decision depends on reference positions,
        and a different pair ordering changes force summation order —
        enough to break bit-for-bit replay), the integrator's cached
        forces, and the thermostat's RNG state.
        """
        sys = self.system
        cached = self.integrator._cached
        return {
            "x": sys.x.copy(),
            "v": sys.v.copy(),
            "box": tuple(sys.box.lengths),
            "steps_taken": self.steps_taken,
            "potential_energy": self.potential_energy,
            "virial": self.virial,
            "abft_energy": self._abft_energy,
            "cached_forces": (
                None if cached is None
                else (cached[0].copy(), cached[1], cached[2])
            ),
            "nlist": {
                "pairs_i": self.nlist.pairs_i.copy(),
                "pairs_j": self.nlist.pairs_j.copy(),
                "x_ref": (
                    None if self.nlist._x_ref is None
                    else self.nlist._x_ref.copy()
                ),
                "box_ref": (
                    None if self.nlist._box_ref is None
                    else self.nlist._box_ref.copy()
                ),
                "builds": self.nlist.builds,
                "reuses": self.nlist.reuses,
            },
            "thermostat_rng": (
                None if self.thermostat is None
                else copy.deepcopy(self.thermostat.rng.bit_generator.state)
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        sys = self.system
        sys.box = PeriodicBox(tuple(state["box"]))
        sys.x = state["x"].copy()
        sys.v = state["v"].copy()
        self.steps_taken = state["steps_taken"]
        self.potential_energy = state["potential_energy"]
        self.virial = state["virial"]
        self._abft_energy = state["abft_energy"]
        cached = state["cached_forces"]
        self.integrator._cached = (
            None if cached is None
            else (cached[0].copy(), cached[1], cached[2])
        )
        nl = state["nlist"]
        self.nlist.pairs_i = nl["pairs_i"].copy()
        self.nlist.pairs_j = nl["pairs_j"].copy()
        self.nlist._x_ref = (
            None if nl["x_ref"] is None else nl["x_ref"].copy()
        )
        self.nlist._box_ref = (
            None if nl["box_ref"] is None else nl["box_ref"].copy()
        )
        self.nlist.builds = nl["builds"]
        self.nlist.reuses = nl["reuses"]
        if self.thermostat is not None and state["thermostat_rng"] is not None:
            self.thermostat.rng.bit_generator.state = copy.deepcopy(
                state["thermostat_rng"]
            )

    def abft_error(self) -> float:
        """Relative jump of the live total energy from the value
        recorded at the end of the last step.  Physics moves this a
        few percent per step at most; a silent corruption of positions
        or velocities moves it by orders of magnitude."""
        if self._abft_energy is None:
            return 0.0
        e_now = self.total_energy()
        return abs(e_now - self._abft_energy) / (abs(self._abft_energy) + 1.0)

    def corrupt(self, rng, magnitude: float = 100.0) -> None:
        """Inject a silent corruption into one velocity component."""
        k = int(rng.integers(self.system.v.size))
        self.system.v.reshape(-1)[k] += magnitude


def make_martini_membrane(
    n_lipids_per_leaflet: int = 16,
    n_water: int = 64,
    seed: int = 0,
    temperature: float = 1.0,
) -> Tuple[ParticleSystem, PairProcessor, BondTerm, AngleTerm]:
    """Build a small bilayer: 3-bead lipids in two leaflets + water.

    Returns (system, pair_processor, bonds, angles) ready for
    :class:`DdcMD`.  Geometry: lipids on a square lattice in the x-y
    plane, heads facing the water on both sides.
    """
    if n_lipids_per_leaflet < 1 or n_water < 0:
        raise ValueError("bad membrane composition")
    rng = make_rng(seed)
    per_side = int(np.ceil(np.sqrt(n_lipids_per_leaflet)))
    spacing = 0.55
    lx = ly = per_side * spacing
    lz = 6.0
    z_mid = lz / 2
    bond_len = 0.35
    positions: List[np.ndarray] = []
    types: List[int] = []
    bonds_i: List[int] = []
    bonds_j: List[int] = []
    ang_i: List[int] = []
    ang_j: List[int] = []
    ang_k: List[int] = []

    def add_lipid(x0: float, y0: float, leaflet: int) -> None:
        base = len(types)
        direction = 1.0 if leaflet == 0 else -1.0
        # tail ends sit 0.3 off the midplane per leaflet, so the
        # tail-tail gap across leaflets (0.6) exceeds the LJ minimum
        z_tail_end = z_mid - direction * 0.3
        z_head = z_tail_end - direction * 2.0 * bond_len
        jit = 0.02 * (rng.random(2) - 0.5)
        for b, t in enumerate((HEAD, TAIL, TAIL)):
            positions.append(np.array([
                x0 + jit[0], y0 + jit[1],
                z_head + direction * b * bond_len,
            ]))
            types.append(t)
        bonds_i.extend([base, base + 1])
        bonds_j.extend([base + 1, base + 2])
        ang_i.append(base)
        ang_j.append(base + 1)
        ang_k.append(base + 2)

    count = 0
    for ix in range(per_side):
        for iy in range(per_side):
            if count >= n_lipids_per_leaflet:
                break
            x0, y0 = (ix + 0.5) * spacing, (iy + 0.5) * spacing
            add_lipid(x0, y0, leaflet=0)
            add_lipid(x0, y0, leaflet=1)
            count += 1

    # water beads on jittered lattices above and below the bilayer
    # (lattice placement avoids initial overlaps that would blow up
    # the shifted-LJ potential)
    water_per_side = int(np.ceil(np.sqrt(n_water / 2 / 2)))
    added = 0
    w_spacing_xy = lx / max(water_per_side, 1)
    for layer in range(4):
        if added >= n_water:
            break
        side = 1.0 if layer % 2 == 0 else -1.0
        z_w = z_mid + side * (1.6 + 0.55 * (layer // 2))
        for ix in range(water_per_side):
            for iy in range(water_per_side):
                if added >= n_water:
                    break
                jit = 0.1 * (rng.random(3) - 0.5)
                positions.append(np.array([
                    (ix + 0.5) * w_spacing_xy + jit[0],
                    (iy + 0.5) * w_spacing_xy + jit[1],
                    z_w + jit[2],
                ]))
                types.append(WATER)
                added += 1

    box = PeriodicBox((lx, ly, lz))
    system = ParticleSystem(
        np.array(positions), box,
        types=np.array(types, dtype=np.int64),
    )
    system.v = rng.normal(0, np.sqrt(temperature), system.x.shape)
    system.remove_drift()

    # Martini-style interaction table: heads and water like each other,
    # tails are hydrophobic.
    strong = MartiniLJ(epsilon=1.0, sigma=0.47, cutoff=1.2)
    weak = MartiniLJ(epsilon=0.4, sigma=0.47, cutoff=1.2)
    mid = MartiniLJ(epsilon=0.7, sigma=0.47, cutoff=1.2)
    table: Dict[Tuple[int, int], MartiniLJ] = {
        (HEAD, HEAD): strong,
        (HEAD, WATER): strong,
        (WATER, WATER): strong,
        (TAIL, TAIL): strong,
        (HEAD, TAIL): weak,
        (TAIL, WATER): weak,
    }
    processor = PairProcessor(table)
    bonds = BondTerm(np.array(bonds_i), np.array(bonds_j), k=150.0,
                     r0=bond_len)
    angles = AngleTerm(np.array(ang_i), np.array(ang_j), np.array(ang_k),
                       k=15.0, theta0=np.pi)
    return system, processor, bonds, angles
