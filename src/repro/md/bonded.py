"""Bonded interactions: harmonic bonds and angles.

ddcMD's bonded kernels were the GPU port's data-structure challenge
("serialization and marshaling of the nested, pointer-rich CPU data
structures"); computationally they are simple flat-array evaluations,
which is what we implement — the flat index arrays below are the
post-marshaling layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.md.particles import ParticleSystem


def _scatter(forces: np.ndarray, n: int, idx: np.ndarray,
             fvec: np.ndarray, sign: float = 1.0) -> None:
    """Accumulate per-term force vectors with a bincount scatter.

    The contiguous weighted-histogram scatter the pair processor uses;
    ``np.add.at`` on the same indices computes the same sums in a
    different fp order but is ~5x slower for these term counts.
    """
    for d in range(3):
        w = np.bincount(idx, weights=fvec[:, d], minlength=n)
        if sign < 0:
            forces[:, d] -= w
        else:
            forces[:, d] += w


@dataclass
class BondTerm:
    """Harmonic bonds: E = 1/2 k (r - r0)^2 over index pairs."""

    i: np.ndarray
    j: np.ndarray
    k: float
    r0: float

    def __post_init__(self) -> None:
        self.i = np.asarray(self.i, dtype=np.int64)
        self.j = np.asarray(self.j, dtype=np.int64)
        if self.i.shape != self.j.shape:
            raise ValueError("bond index arrays must match")
        if np.any(self.i == self.j):
            raise ValueError("bond connects a particle to itself")
        if self.k <= 0 or self.r0 <= 0:
            raise ValueError("bond parameters must be positive")

    @property
    def n_bonds(self) -> int:
        return self.i.shape[0]

    def compute(self, system: ParticleSystem,
                out: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, float]:
        """(forces, energy).

        With ``out`` given, forces are accumulated *into* it (fused
        accumulation: the caller's per-step force buffer takes the
        scatter directly, skipping the zeros + add round trip) and
        ``out`` is returned.
        """
        dx = system.box.minimum_image(
            system.x[self.i].astype(np.float64)
            - system.x[self.j].astype(np.float64)
        )
        r = np.sqrt((dx * dx).sum(axis=1))
        stretch = r - self.r0
        energy = float(0.5 * self.k * (stretch * stretch).sum())
        fmag = -self.k * stretch / np.maximum(r, 1e-300)
        fvec = fmag[:, None] * dx
        forces = np.zeros((system.n, 3)) if out is None else out
        _scatter(forces, system.n, self.i, fvec)
        _scatter(forces, system.n, self.j, fvec, sign=-1.0)
        if out is not None:
            return out, energy
        return forces.astype(system.dtype), energy


@dataclass
class AngleTerm:
    """Harmonic cosine angles: E = 1/2 k (cos th - cos th0)^2 over
    triplets (i, j, k) with j the vertex — the Martini angle form."""

    i: np.ndarray
    j: np.ndarray
    k_idx: np.ndarray
    k: float
    theta0: float

    def __post_init__(self) -> None:
        self.i = np.asarray(self.i, dtype=np.int64)
        self.j = np.asarray(self.j, dtype=np.int64)
        self.k_idx = np.asarray(self.k_idx, dtype=np.int64)
        if not (self.i.shape == self.j.shape == self.k_idx.shape):
            raise ValueError("angle index arrays must match")
        if self.k <= 0:
            raise ValueError("angle stiffness must be positive")
        self.cos0 = float(np.cos(self.theta0))

    @property
    def n_angles(self) -> int:
        return self.i.shape[0]

    def compute(self, system: ParticleSystem,
                out: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, float]:
        x = system.x.astype(np.float64)
        box = system.box
        a = box.minimum_image(x[self.i] - x[self.j])
        b = box.minimum_image(x[self.k_idx] - x[self.j])
        ra = np.sqrt((a * a).sum(axis=1))
        rb = np.sqrt((b * b).sum(axis=1))
        cos_t = (a * b).sum(axis=1) / np.maximum(ra * rb, 1e-300)
        cos_t = np.clip(cos_t, -1.0, 1.0)
        diff = cos_t - self.cos0
        energy = float(0.5 * self.k * (diff * diff).sum())
        # dE/dcos = k * diff; gradient of cos wrt positions
        coeff = (self.k * diff)[:, None]
        inv_ra_rb = 1.0 / np.maximum(ra * rb, 1e-300)[:, None]
        da = b * inv_ra_rb - a * (cos_t / np.maximum(ra * ra, 1e-300))[:, None]
        db = a * inv_ra_rb - b * (cos_t / np.maximum(rb * rb, 1e-300))[:, None]
        fi = -coeff * da
        fk = -coeff * db
        fj = -(fi + fk)
        forces = np.zeros((system.n, 3)) if out is None else out
        _scatter(forces, system.n, self.i, fi)
        _scatter(forces, system.n, self.j, fj)
        _scatter(forces, system.n, self.k_idx, fk)
        if out is not None:
            return out, energy
        return forces.astype(system.dtype), energy
