"""Time integration, thermostats, barostats, constraints (§4.6).

All four are on ddcMD's moved-to-GPU list.  Implementations are the
standard algorithms:

- :class:`VelocityVerlet` — symplectic two-stage integrator.
- :class:`LangevinThermostat` — BAOAB-flavored stochastic velocity
  update (exact Ornstein-Uhlenbeck step), preserving the Maxwell
  distribution at the target temperature.
- :class:`BerendsenBarostat` — weak-coupling volume rescaling toward a
  target pressure.
- :class:`ShakeConstraints` — iterative bond-length constraint solver
  ("the constraint solver kernel is an iterative kernel and relatively
  expensive", §4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.md.particles import ParticleSystem, PeriodicBox
from repro.util.rng import make_rng

ForceFn = Callable[[ParticleSystem], Tuple[np.ndarray, float, float]]


class VelocityVerlet:
    """Velocity Verlet with a pluggable force callback.

    ``force_fn(system) -> (forces, potential_energy, virial)``.
    """

    def __init__(self, force_fn: ForceFn, dt: float):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.force_fn = force_fn
        self.dt = dt
        self._cached: Optional[Tuple[np.ndarray, float, float]] = None

    def step(self, system: ParticleSystem) -> Tuple[float, float]:
        """One step; returns (potential_energy, virial) after the step."""
        dt = self.dt
        if self._cached is None:
            self._cached = self.force_fn(system)
        f, _, _ = self._cached
        inv_m = 1.0 / system.m[:, None]
        system.v += 0.5 * dt * f * inv_m
        system.x = system.box.wrap(system.x + dt * system.v)
        f_new, pe, virial = self.force_fn(system)
        system.v += 0.5 * dt * f_new * inv_m
        self._cached = (f_new, pe, virial)
        return pe, virial

    def invalidate_forces(self) -> None:
        """Call after anything moves particles outside step()."""
        self._cached = None


class LangevinThermostat:
    """Exact OU velocity update: v <- c1 v + c2 sqrt(T/m) xi."""

    def __init__(self, temperature: float, friction: float, seed: int = 0):
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if friction <= 0:
            raise ValueError("friction must be positive")
        self.temperature = temperature
        self.friction = friction
        self.rng = make_rng(seed)

    def apply(self, system: ParticleSystem, dt: float) -> None:
        c1 = np.exp(-self.friction * dt)
        c2 = np.sqrt(max(0.0, (1.0 - c1 * c1) * self.temperature))
        noise = self.rng.normal(0.0, 1.0, system.v.shape)
        system.v = (
            c1 * system.v + c2 * noise / np.sqrt(system.m)[:, None]
        ).astype(system.dtype)


class BerendsenBarostat:
    """Weak-coupling barostat: isotropic box/position rescaling."""

    def __init__(self, pressure: float, tau: float = 10.0,
                 compressibility: float = 0.05, max_scaling: float = 0.02):
        if tau <= 0 or compressibility <= 0:
            raise ValueError("tau and compressibility must be positive")
        self.pressure = pressure
        self.tau = tau
        self.compressibility = compressibility
        self.max_scaling = max_scaling

    def measure_pressure(self, system: ParticleSystem, virial: float
                         ) -> float:
        """P = (2 K + W) / (3 V)."""
        return (2.0 * system.kinetic_energy() + virial) / (
            3.0 * system.box.volume
        )

    def apply(self, system: ParticleSystem, virial: float, dt: float
              ) -> float:
        """Rescale toward target; returns the measured pressure."""
        p = self.measure_pressure(system, virial)
        mu = (
            1.0 - self.compressibility * dt / self.tau
            * (self.pressure - p)
        ) ** (1.0 / 3.0)
        mu = float(np.clip(mu, 1.0 - self.max_scaling,
                           1.0 + self.max_scaling))
        system.box = system.box.scaled(mu)
        system.x = system.box.wrap(system.x * mu)
        return p


class ShakeConstraints:
    """SHAKE: iterative projection onto bond-length constraints."""

    def __init__(self, i: np.ndarray, j: np.ndarray, lengths: np.ndarray,
                 tol: float = 1e-8, max_iter: int = 200):
        self.i = np.asarray(i, dtype=np.int64)
        self.j = np.asarray(j, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.float64)
        if not (self.i.shape == self.j.shape == self.lengths.shape):
            raise ValueError("constraint arrays must have equal shapes")
        if np.any(self.lengths <= 0):
            raise ValueError("constraint lengths must be positive")
        if tol <= 0:
            raise ValueError("tolerance must be positive")
        self.tol = tol
        self.max_iter = max_iter
        self.last_iterations = 0

    @property
    def n_constraints(self) -> int:
        return self.i.shape[0]

    def max_violation(self, system: ParticleSystem) -> float:
        dx = system.box.minimum_image(
            system.x[self.i].astype(np.float64)
            - system.x[self.j].astype(np.float64)
        )
        r = np.sqrt((dx * dx).sum(axis=1))
        return float(np.abs(r - self.lengths).max()) if r.size else 0.0

    def apply(self, system: ParticleSystem,
              x_prev: Optional[np.ndarray] = None) -> int:
        """Project positions onto the constraint manifold.

        ``x_prev`` (pre-step positions) gives the reference directions
        for proper SHAKE; without it the current directions are used.
        Returns the iteration count.
        """
        x = system.x.astype(np.float64).copy()
        ref = x if x_prev is None else np.asarray(x_prev, dtype=np.float64)
        inv_m_i = 1.0 / system.m[self.i]
        inv_m_j = 1.0 / system.m[self.j]
        box = system.box
        for it in range(1, self.max_iter + 1):
            dx = box.minimum_image(x[self.i] - x[self.j])
            r2 = (dx * dx).sum(axis=1)
            diff = r2 - self.lengths**2
            if np.abs(diff).max() <= self.tol:
                self.last_iterations = it - 1
                break
            dref = box.minimum_image(ref[self.i] - ref[self.j])
            denom = 2.0 * (inv_m_i + inv_m_j) * (dx * dref).sum(axis=1)
            denom = np.where(np.abs(denom) < 1e-300, 1e-300, denom)
            g = diff / denom
            corr = g[:, None] * dref
            np.add.at(x, self.i, -corr * inv_m_i[:, None])
            np.add.at(x, self.j, corr * inv_m_j[:, None])
        else:
            raise RuntimeError(
                f"SHAKE failed to converge in {self.max_iter} iterations"
            )
        system.x = system.box.wrap(x).astype(system.dtype)
        return self.last_iterations
