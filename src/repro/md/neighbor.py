"""Cell lists and Verlet neighbor lists.

Neighbor-list construction is one of the kernels ddcMD moved to the
GPU.  The structure here is the standard two-stage scheme: a
:class:`CellList` bins particles into cells no smaller than the
interaction range, then :class:`NeighborList` enumerates candidate
pairs from the 27-cell neighborhoods, keeps those within
``cutoff + skin``, and reuses the list until any particle has moved
half a skin — the classic Verlet-skin criterion.

Pair arrays are half lists (i < j) in flat ``(n_pairs,)`` index arrays:
exactly the contiguous layout the paper's "multiple threads per
particle neighbor list ... contiguous memory regions" optimization
wants.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.md.particles import ParticleSystem, PeriodicBox
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs import validate as _validate


class CellList:
    """Bin particles of *system* into cells of size >= cell_size."""

    def __init__(self, box: PeriodicBox, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.box = box
        self.dims = tuple(
            max(1, int(np.floor(l / cell_size))) for l in box.lengths
        )
        self.cell_lengths = tuple(
            l / d for l, d in zip(box.lengths, self.dims)
        )

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    def assign(self, x: np.ndarray) -> np.ndarray:
        """Cell index per particle."""
        dims = np.asarray(self.dims)
        cl = np.asarray(self.cell_lengths)
        idx = np.floor(x / cl).astype(np.int64)
        idx = np.mod(idx, dims)  # guard particles exactly at L
        nx, ny, nz = self.dims
        return (idx[:, 0] * ny + idx[:, 1]) * nz + idx[:, 2]

    def neighbor_cells(self, cell: int) -> np.ndarray:
        """The 27 periodic neighbor cells of *cell* (deduplicated)."""
        nx, ny, nz = self.dims
        cx, rem = divmod(cell, ny * nz)
        cy, cz = divmod(rem, nz)
        offsets = np.array(
            np.meshgrid([-1, 0, 1], [-1, 0, 1], [-1, 0, 1], indexing="ij")
        ).reshape(3, -1).T
        coords = (offsets + [cx, cy, cz]) % [nx, ny, nz]
        flat = (coords[:, 0] * ny + coords[:, 1]) * nz + coords[:, 2]
        return np.unique(flat)


class NeighborList:
    """Verlet half neighbor list with skin-based reuse.

    ``method`` selects the build kernel: ``"fast"`` (default) bins and
    queries in compiled code — a periodic :class:`scipy.spatial.cKDTree`
    over the wrapped coordinates, the whole candidate enumeration and
    distance cut in C; ``"reference"`` is the original per-cell Python
    loop, kept as the slow trusted implementation the fast path is
    tested against.  Both produce the same pair *set*; ordering may
    differ, which only permutes floating-point force summation.
    """

    def __init__(self, cutoff: float, skin: float = 0.3,
                 method: str = "fast"):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if skin < 0:
            raise ValueError("skin must be non-negative")
        if method not in ("fast", "reference"):
            raise ValueError(f"unknown build method {method!r}")
        self.cutoff = cutoff
        self.skin = skin
        self.method = method
        self.pairs_i: np.ndarray = np.empty(0, dtype=np.int64)
        self.pairs_j: np.ndarray = np.empty(0, dtype=np.int64)
        self._x_ref: Optional[np.ndarray] = None
        self._box_ref: Optional[np.ndarray] = None
        self.builds = 0
        self.reuses = 0

    @property
    def n_pairs(self) -> int:
        return self.pairs_i.shape[0]

    def needs_rebuild(self, system: ParticleSystem) -> bool:
        if self._x_ref is None or self._x_ref.shape != system.x.shape:
            return True
        if not np.array_equal(self._box_ref, system.box.array):
            return True
        dx = system.box.minimum_image(system.x - self._x_ref)
        max_disp = float(np.sqrt((dx * dx).sum(axis=1)).max())
        return max_disp > 0.5 * self.skin

    def update(self, system: ParticleSystem) -> None:
        """Rebuild if the skin criterion demands it."""
        if self.needs_rebuild(system):
            self.build(system)
        else:
            self.reuses += 1
            _metrics.counter("md.neighbor.reuses").add()

    def invalidate(self) -> None:
        """Drop the reference positions so the next update rebuilds.

        The guard layer's step-rejection recovery uses this: a
        stale/corrupted pair list is the classic source of exploding
        forces, and a forced rebuild is the cheapest fix to try.
        """
        self._x_ref = None
        self._box_ref = None

    def degenerate_box(self, system: ParticleSystem) -> bool:
        """True when any box length is below ``2 * (cutoff + skin)``.

        In that regime a periodic dimension has fewer than two full
        interaction cells, and single-image tree queries (the fast
        build) are not guaranteed correct across SciPy versions —
        older periodic kd-trees silently confine the search to the
        nearest image, missing (or on some versions rejecting) pairs
        whose minimum-image distance exceeds half the box.  The
        reference cell build handles any box (worst case it degrades
        to one all-pairs cell with exact minimum-image distances).
        """
        reach = self.cutoff + self.skin
        lengths = np.asarray(system.box.lengths, dtype=np.float64)
        return bool(np.min(lengths) < 2.0 * reach)

    def build(self, system: ParticleSystem) -> None:
        x = np.asarray(system.x, dtype=np.float64)
        with _trace.span("md.neighbor.build", n=system.n,
                         method=self.method):
            if self.method == "reference":
                self._build_reference(system, x)
            elif self.degenerate_box(system):
                # fast path unsafe: fall back to the trusted build
                _metrics.counter("md.neighbor.degenerate_fallbacks").add()
                self._build_reference(system, x)
            else:
                self._build_fast(system, x)
                if _validate.validation_enabled():
                    self._validate_fast_build(system, x)
        self._x_ref = x.copy()
        self._box_ref = system.box.array.copy()
        self.builds += 1
        _metrics.counter("md.neighbor.rebuilds").add()
        _metrics.gauge("md.neighbor.pairs").set(self.n_pairs)

    @staticmethod
    def _canonical_pairs(pi: np.ndarray, pj: np.ndarray) -> np.ndarray:
        """Order-independent (n_pairs, 2) canonical form of a half list."""
        lo = np.minimum(pi, pj)
        hi = np.maximum(pi, pj)
        order = np.lexsort((hi, lo))
        return np.stack([lo[order], hi[order]], axis=1)

    def _validate_fast_build(self, system: ParticleSystem,
                             x: np.ndarray) -> None:
        """Fast-build contract: same pair *set* as the reference build."""
        fast_i, fast_j = self.pairs_i, self.pairs_j
        try:
            self._build_reference(system, x)
            ref = self._canonical_pairs(self.pairs_i, self.pairs_j)
        finally:
            self.pairs_i, self.pairs_j = fast_i, fast_j
        fast = self._canonical_pairs(fast_i, fast_j)
        _validate.check(
            "md.neighbor", fast.shape == ref.shape
            and bool(np.array_equal(fast, ref)),
            f"fast build found {fast.shape[0]} pairs, "
            f"reference {ref.shape[0]}",
        )

    def _build_reference(self, system: ParticleSystem, x: np.ndarray) -> None:
        """Per-cell Python loop (the pre-vectorization implementation)."""
        reach = self.cutoff + self.skin
        cells = CellList(system.box, reach)
        cell_of = cells.assign(x)
        order = np.argsort(cell_of, kind="stable")
        sorted_cells = cell_of[order]
        # bucket boundaries per cell
        starts = np.searchsorted(sorted_cells, np.arange(cells.n_cells))
        ends = np.searchsorted(sorted_cells, np.arange(cells.n_cells),
                               side="right")
        pi, pj = [], []
        reach2 = reach * reach
        for cell in range(cells.n_cells):
            mine = order[starts[cell]:ends[cell]]
            if mine.size == 0:
                continue
            for nbr in cells.neighbor_cells(cell):
                if nbr < cell:
                    continue  # half enumeration over cell pairs
                theirs = order[starts[nbr]:ends[nbr]]
                if theirs.size == 0:
                    continue
                if nbr == cell:
                    ii, jj = np.triu_indices(mine.size, k=1)
                    ci, cj = mine[ii], mine[jj]
                else:
                    ci = np.repeat(mine, theirs.size)
                    cj = np.tile(theirs, mine.size)
                dx = system.box.minimum_image(x[ci] - x[cj])
                r2 = (dx * dx).sum(axis=1)
                keep = r2 <= reach2
                pi.append(ci[keep])
                pj.append(cj[keep])
        if pi:
            self.pairs_i = np.concatenate(pi)
            self.pairs_j = np.concatenate(pj)
        else:
            self.pairs_i = np.empty(0, dtype=np.int64)
            self.pairs_j = np.empty(0, dtype=np.int64)

    def _build_fast(self, system: ParticleSystem, x: np.ndarray) -> None:
        """Tree-accelerated build: bin + query entirely in compiled code.

        A broadcast rewrite of the per-cell loop (27-offset neighbor
        ids for every cell at once, ragged all-pairs expansion, one
        minimum-image pass) turns out memory-bound in NumPy: at
        cell size = reach only ~10% of the candidate pairs survive the
        distance cut, and streaming the other 90% through the gather /
        wrap / reduce pipeline costs more than the reference's loop
        overhead saves.  A periodic kd-tree keeps the whole candidate
        walk in C and never materializes rejected candidates.  Pair
        indices refer to the original (unwrapped) particle order;
        wrapping the coordinates into the box only canonicalizes them
        for the tree and cannot change periodic distances.
        """
        reach = self.cutoff + self.skin
        lengths = np.asarray(system.box.lengths, dtype=np.float64)
        xw = np.mod(x, lengths)
        # mod can return L itself when x is a tiny negative number
        xw[xw >= lengths] = 0.0
        tree = cKDTree(xw, boxsize=lengths)
        pairs = tree.query_pairs(reach, output_type="ndarray")
        self.pairs_i = np.ascontiguousarray(pairs[:, 0], dtype=np.int64)
        self.pairs_j = np.ascontiguousarray(pairs[:, 1], dtype=np.int64)

    def brute_force_reference(self, system: ParticleSystem
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """O(n^2) pair enumeration within cutoff+skin (for testing)."""
        x = np.asarray(system.x, dtype=np.float64)
        n = x.shape[0]
        ii, jj = np.triu_indices(n, k=1)
        dx = system.box.minimum_image(x[ii] - x[jj])
        r2 = (dx * dx).sum(axis=1)
        keep = r2 <= (self.cutoff + self.skin) ** 2
        return ii[keep], jj[keep]
