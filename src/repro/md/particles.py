"""Particle storage and periodic boxes.

Positions/velocities/forces are struct-of-arrays (``(n, 3)`` float64
arrays) — the AoS-to-SoA conversion §4.6 lists among the locality
optimizations.  :class:`PeriodicBox` provides minimum-image
displacement and wrapping for orthorhombic boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class PeriodicBox:
    """Orthorhombic periodic box with edge lengths ``lengths``."""

    lengths: Tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(l <= 0 for l in self.lengths):
            raise ValueError("box lengths must be positive")

    @property
    def volume(self) -> float:
        lx, ly, lz = self.lengths
        return lx * ly * lz

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.lengths, dtype=np.float64)

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Map positions into [0, L) per axis."""
        return np.mod(x, self.array)

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Minimum-image displacement vectors."""
        box = self.array
        return dx - box * np.round(dx / box)

    def scaled(self, factor: float) -> "PeriodicBox":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return PeriodicBox(tuple(l * factor for l in self.lengths))


class ParticleSystem:
    """State of an MD system: positions, velocities, types, masses."""

    def __init__(
        self,
        positions: np.ndarray,
        box: PeriodicBox,
        velocities: Optional[np.ndarray] = None,
        masses: Optional[np.ndarray] = None,
        types: Optional[np.ndarray] = None,
        dtype=np.float64,
    ):
        positions = np.asarray(positions, dtype=dtype)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        n = positions.shape[0]
        if n < 1:
            raise ValueError("need at least one particle")
        self.box = box
        self.x = box.wrap(positions).astype(dtype)
        self.v = (
            np.zeros_like(self.x)
            if velocities is None
            else np.asarray(velocities, dtype=dtype)
        )
        if self.v.shape != self.x.shape:
            raise ValueError("velocities shape mismatch")
        self.m = (
            np.ones(n, dtype=dtype)
            if masses is None
            else np.asarray(masses, dtype=dtype)
        )
        if self.m.shape != (n,) or np.any(self.m <= 0):
            raise ValueError("bad masses")
        self.types = (
            np.zeros(n, dtype=np.int64)
            if types is None
            else np.asarray(types, dtype=np.int64)
        )
        if self.types.shape != (n,):
            raise ValueError("types shape mismatch")
        self.f = np.zeros_like(self.x)

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def dtype(self):
        return self.x.dtype

    def kinetic_energy(self) -> float:
        return float(0.5 * np.sum(self.m[:, None] * self.v * self.v))

    def temperature(self) -> float:
        """Instantaneous kinetic temperature (kB = 1)."""
        dof = 3 * self.n
        return 2.0 * self.kinetic_energy() / dof

    def momentum(self) -> np.ndarray:
        return (self.m[:, None] * self.v).sum(axis=0)

    def remove_drift(self) -> None:
        """Zero the center-of-mass velocity."""
        total_m = self.m.sum()
        self.v -= self.momentum()[None, :] / total_m

    @staticmethod
    def random_gas(
        n: int,
        box: PeriodicBox,
        temperature: float = 1.0,
        seed: int = 0,
        min_separation: float = 0.0,
        dtype=np.float64,
    ) -> "ParticleSystem":
        """Random positions (lattice-jittered when min_separation > 0)
        with Maxwell-Boltzmann velocities."""
        rng = make_rng(seed)
        if min_separation > 0:
            # lattice placement guarantees separation
            per_axis = max(1, int(np.ceil(n ** (1 / 3))))
            spacing = min(box.lengths) / per_axis
            if spacing < min_separation:
                raise ValueError("box too small for requested separation")
            grid = np.stack(
                np.meshgrid(*[np.arange(per_axis)] * 3, indexing="ij"), -1
            ).reshape(-1, 3)[:n]
            jitter = (rng.random((n, 3)) - 0.5) * 0.1 * spacing
            x = (grid + 0.5) * spacing + jitter
        else:
            x = rng.random((n, 3)) * box.array
        v = rng.normal(0.0, np.sqrt(max(temperature, 0.0)), (n, 3))
        ps = ParticleSystem(x, box, velocities=v, dtype=dtype)
        ps.remove_drift()
        return ps
