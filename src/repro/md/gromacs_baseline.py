"""GROMACS-like baseline and the ddcMD-vs-GROMACS step-time model (§4.6).

The paper's comparison: "For the Martini simulation, only 8 CUDA
kernels are used in GROMACS as compared to 46 CUDA kernels in ddcMD.
GROMACS uses single precision while ddcMD uses double precision.  The
average elapsed time for each MD step of ddcMD is 2.31 ms while it is
2.88 ms for GROMACS when using a combination of 1 GPU and 1 CPU.  When
using 4 GPUs, ddcMD is faster by a factor of 1.3 ... In the MuMMI
framework, ddcMD is faster than GROMACS by a factor of 2.3 because
MuMMI uses CPUs for the macro model and in situ analysis."

Two deliverables:

- :class:`GromacsBaseline` — a *running* single-precision variant of
  the same Martini force field (fp32 state, fused force evaluation),
  so tests can quantify the fp64-vs-fp32 energy-drift difference that
  motivates ddcMD's double precision.
- :func:`modeled_step_times` — the analytic step-time model of both
  codes on a catalog machine, with ddcMD all-GPU and GROMACS
  CPU/GPU-split with per-step transfers.  This is what reproduces the
  paper's three numbers; every constant is documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.machine import Machine
from repro.md.bonded import AngleTerm, BondTerm
from repro.md.ddcmd import DDCMD_KERNELS_PER_STEP
from repro.md.integrators import VelocityVerlet
from repro.md.neighbor import NeighborList
from repro.md.particles import ParticleSystem
from repro.md.potentials import PairProcessor

#: GROMACS's fused per-step kernel count on this workload
GROMACS_KERNELS_PER_STEP = 8

#: Martini-scale average neighbors within the cutoff+skin sphere
AVG_NEIGHBORS = 60.0
#: flops per pair interaction (distance, LJ, shift, accumulation)
FLOPS_PER_PAIR = 55.0
#: per-particle flops for everything else (bonded, integrate, thermo)
FLOPS_PER_PARTICLE_OTHER = 250.0
#: nonbonded kernels reach "over 30% of peak" (§4.6)
EFF_NONBONDED = 0.32
#: CPU-side work efficiency for GROMACS's bonded/integration path
EFF_CPU = 0.35
#: fraction of per-particle "other" work GROMACS leaves on the CPU
GROMACS_CPU_WORK_FRACTION = 0.55


class GromacsBaseline:
    """Single-precision MD with one fused force path.

    Reuses the same potentials/bonded terms as :class:`DdcMD` but
    keeps all state in float32 — the precision contrast the paper
    notes.  Physics code paths are shared; only the dtype differs, so
    observed energy-drift differences are attributable to precision.
    """

    def __init__(
        self,
        system: ParticleSystem,
        pair_processor: PairProcessor,
        dt: float = 0.01,
        bonds: Optional[BondTerm] = None,
        angles: Optional[AngleTerm] = None,
        skin: float = 0.3,
    ):
        # demote state to fp32
        system.x = system.x.astype(np.float32)
        system.v = system.v.astype(np.float32)
        self.system = system
        self.pairs = pair_processor
        self.bonds = bonds
        self.angles = angles
        self.nlist = NeighborList(pair_processor.cutoff, skin=skin)
        self.integrator = VelocityVerlet(self._forces, dt)
        self.potential_energy = 0.0
        self.steps_taken = 0

    def _forces(self, system: ParticleSystem):
        self.nlist.update(system)
        f, pe, virial = self.pairs.compute(
            system, self.nlist.pairs_i, self.nlist.pairs_j
        )
        if self.bonds is not None:
            fb, eb = self.bonds.compute(system)
            f = (f + fb).astype(np.float32)
            pe += eb
        if self.angles is not None:
            fa, ea = self.angles.compute(system)
            f = (f + fa).astype(np.float32)
            pe += ea
        return f.astype(np.float32), pe, virial

    def total_energy(self) -> float:
        return self.system.kinetic_energy() + self.potential_energy

    def step(self) -> None:
        pe, _ = self.integrator.step(self.system)
        # box.wrap promotes through the float64 box lengths; demote so
        # the state stays genuinely single-precision
        self.system.x = self.system.x.astype(np.float32)
        self.system.v = self.system.v.astype(np.float32)
        self.potential_energy = pe
        self.steps_taken += 1

    def run(self, n_steps: int) -> None:
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        for _ in range(n_steps):
            self.step()


def modeled_step_times(
    machine: Machine,
    n_particles: int = 2_600_000,
    gpus: int = 1,
    cpu_sockets_for_md: float = 1.0,
    cpu_available_fraction: float = 1.0,
) -> Dict[str, float]:
    """Per-step times (seconds) for ddcMD and the GROMACS baseline.

    ``cpu_sockets_for_md`` — CPU resources GROMACS's load balancer can
    use; ``cpu_available_fraction`` scales them down when MuMMI's
    macro model and in-situ analysis occupy the cores (§4.6).

    ddcMD: everything on ``gpus`` GPUs (fp64), 46 launches.
    GROMACS: nonbonded on GPUs (fp32), a ``GROMACS_CPU_WORK_FRACTION``
    of the remaining work on CPUs, overlapped, plus per-step
    position/force transfers and 8 launches.
    """
    if machine.gpu is None:
        raise ValueError("step-time model needs a GPU machine")
    if gpus < 1 or gpus > machine.gpus_per_node:
        raise ValueError("bad GPU count")
    if not (0 < cpu_available_fraction <= 1.0):
        raise ValueError("cpu_available_fraction in (0, 1]")
    n = float(n_particles)
    pairs = n * AVG_NEIGHBORS / 2.0
    gpu = machine.gpu

    # --- ddcMD: all-GPU, double precision --------------------------------
    t_nb_64 = pairs * FLOPS_PER_PAIR / (gpu.peak_flops * gpus * EFF_NONBONDED)
    t_other_64 = n * FLOPS_PER_PARTICLE_OTHER / (
        gpu.peak_flops * gpus * EFF_NONBONDED
    )
    t_ddcmd = t_nb_64 + t_other_64 + DDCMD_KERNELS_PER_STEP * gpu.launch_overhead

    # --- GROMACS: fp32 nonbonded on GPU, rest split with the CPU ----------
    t_nb_32 = pairs * FLOPS_PER_PAIR / (
        gpu.peak_flops_sp * gpus * EFF_NONBONDED
    )
    cpu_peak = (
        machine.cpu.peak_flops * cpu_sockets_for_md * cpu_available_fraction
    )
    cpu_flops = n * FLOPS_PER_PARTICLE_OTHER * GROMACS_CPU_WORK_FRACTION
    gpu_extra = n * FLOPS_PER_PARTICLE_OTHER * (1 - GROMACS_CPU_WORK_FRACTION)
    t_cpu = cpu_flops / (cpu_peak * EFF_CPU)
    t_gpu_extra = gpu_extra / (gpu.peak_flops_sp * gpus * EFF_NONBONDED)
    # positions down + forces back, fp32, split across GPUs
    link = machine.host_device_link
    xfer_bytes = 2 * (n * 12.0) / gpus
    t_xfer = link.transfer_time(xfer_bytes)
    t_gromacs = (
        max(t_nb_32 + t_gpu_extra, t_cpu)
        + t_xfer
        + GROMACS_KERNELS_PER_STEP * gpu.launch_overhead
    )
    return {
        "ddcmd": t_ddcmd,
        "gromacs": t_gromacs,
        "speedup": t_gromacs / t_ddcmd,
        "gromacs_cpu_bound": t_cpu > t_nb_32 + t_gpu_extra,
    }
