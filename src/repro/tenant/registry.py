"""The multi-tenant admission surface: fair shares, brownout, breakers.

:class:`TenantRegistry` drops into the ``admission=`` slot of
:class:`~repro.sched.simulator.SimulatorSession` — it speaks the same
``admit`` / ``record_success`` / ``record_failure`` /
``checkpoint_state`` / ``restore_state`` protocol as the single-tenant
:class:`~repro.guard.deadline.AdmissionController` — but routes every
decision through per-tenant state:

- each tenant owns a private controller (queue limits, protected
  priority) and optionally a private breaker;
- per-tenant offered and admitted service rates are measured over a
  sliding window, feeding the weighted max-min arbiter
  (:func:`repro.tenant.arbiter.weighted_max_min`);
- a tenant offering more than its fair share is a **violator**: its
  excess arrivals are clipped (shed ``fair_share``) and its brownout
  ladder escalates.  While any violator is above fair share, the
  *pressure* shed reasons (``queue_saturated``, ``breaker_open``) are
  suppressed for compliant tenants — the machine's congestion is the
  violator's to absorb, not theirs.  Deadline sheds are physics and
  are never suppressed.

Every decision is a pure function of the event sequence (window
arithmetic, integer counters, no clocks, no hidden RNG), so a replayed
incident trace sheds, trips, and escalates bit-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.tenant.arbiter import jain_index, weighted_max_min
from repro.tenant.brownout import BrownoutLadder
from repro.tenant.recorder import FlightRecorder
from repro.tenant.spec import TenancySpec

__all__ = ["TenantRegistry"]

#: shed reasons that represent congestion (suppressible for compliant
#: tenants), as opposed to deadline physics
PRESSURE_REASONS = frozenset(
    {"queue_saturated", "breaker_open", "fair_share",
     "brownout_defer", "brownout_shed"}
)

_EPS = 1e-9


class _TenantState:
    """Live per-tenant machinery (controller, ladder, rate windows)."""

    __slots__ = ("spec", "controller", "ladder", "offered", "admitted",
                 "offered_total", "admitted_total", "shed_counter")

    def __init__(self, spec, ladder: BrownoutLadder):
        self.spec = spec
        self.controller = spec.make_controller()
        self.ladder = ladder
        self.shed_counter = _metrics.counter(
            f"guard.tenant.{spec.name}.shed"
        )
        #: (time, service) per arrival / admission inside the window
        self.offered: Deque[Tuple[float, float]] = deque()
        self.admitted: Deque[Tuple[float, float]] = deque()
        self.offered_total = 0.0
        self.admitted_total = 0.0


class TenantRegistry:
    """Shared-capacity fair-share admission over per-tenant guards."""

    #: protocol compatibility with AdmissionController consumers that
    #: introspect ``admission.breaker`` — the registry has one breaker
    #: *per tenant* instead (see :meth:`breaker_states`)
    breaker = None

    def __init__(self, spec: TenancySpec):
        self.spec = spec
        self.window = spec.window
        self.arbiter_enabled = spec.arbiter_enabled
        self.recorder = FlightRecorder(capacity=spec.recorder_capacity)
        self._tenants: Dict[str, _TenantState] = {
            t.name: _TenantState(
                t,
                BrownoutLadder.from_description(
                    spec.brownout, name=t.name
                ),
            )
            for t in spec.tenants
        }
        # global decision-order view (what TrafficReport fingerprints);
        # bounded like the single-tenant log
        self.shed_log: Deque[Tuple[Optional[int], str]] = deque(
            maxlen=4096
        )
        self.shed_count = 0
        self.admitted = 0
        #: introspection: the full arbiter picture behind the most
        #: recent admit() call (tests and the CLI read this)
        self.last_decision: Optional[Dict[str, Any]] = None
        #: anonymous-admit cell shared with the disabled fast path;
        #: ``None`` means per-job counting goes through ``admitted``
        self._fast_anon: Optional[list] = None
        if not self.arbiter_enabled:
            self._bind_disabled_fast_path()

    def _bind_disabled_fast_path(self) -> None:
        """Rebind the per-job entry points as instance closures.

        The A/B contract is that turning the arbiter off leaves only
        the per-tenant guard stack — the bench gates the registry at
        < 3% over a plain dict of standalone controllers — and at a
        few hundred nanoseconds per job the method-dispatch chain
        itself is the overhead: class-dict lookup, the
        ``arbiter_enabled`` test, and two attribute hops to reach the
        tenant table.  A closure bound as an instance attribute skips
        all three and delegates straight to the pre-bound
        ``controller.admit`` — the exact code a tenant would run with
        no registry at all — so the admit path adds one dict probe
        and nothing else.  Registry-side bookkeeping (global shed
        log, ``last_decision``, the per-tenant shed counter) happens
        only on the rare shed, and the global ``admitted`` count is
        folded back in lazily by :meth:`_sync_admitted` rather than
        bumped per job.  ``admit`` stays correct without this
        binding — the method body carries the same branch — so a
        registry whose flag is flipped after construction merely
        loses the shortcut, not the semantics.
        """
        tenants = self._tenants
        shed_disabled = self._shed_disabled
        anon = [0]
        self._fast_anon = anon
        admits = {
            name: state.controller.admit
            for name, state in tenants.items()
        }

        def _admit(job, now, queue_len, n_running, n_gpus):
            tenant = job.tenant
            admit = admits.get(tenant)
            if admit is None:
                if tenant is None:
                    anon[0] += 1
                    return True
                raise ValueError(f"job from unknown tenant {tenant!r}")
            if admit(job, now, queue_len, n_running, n_gpus):
                return True
            # the controller has already counted and logged the shed;
            # mirror it into the registry's global view
            state = tenants[tenant]
            return shed_disabled(
                state, job, tenant, state.controller.shed_log[-1][1]
            )

        record_breaker_success = {
            name: state.controller.breaker.record_success
            for name, state in tenants.items()
            if state.controller.breaker is not None
        }

        def _record_success(now, job=None):
            if job is not None:
                record = record_breaker_success.get(job.tenant)
                if record is not None:
                    record(now)

        self.admit = _admit
        self.record_success = _record_success

    # -- window arithmetic ---------------------------------------------

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        for state in self._tenants.values():
            while state.offered and state.offered[0][0] < cutoff:
                _, svc = state.offered.popleft()
                state.offered_total -= svc
            while state.admitted and state.admitted[0][0] < cutoff:
                _, svc = state.admitted.popleft()
                state.admitted_total -= svc
            # running subtraction drifts; an emptied window is exactly
            # zero, and near-zero negatives are FP residue, not demand
            if not state.offered or state.offered_total < 0.0:
                state.offered_total = max(0.0, sum(
                    svc for _, svc in state.offered
                ))
            if not state.admitted or state.admitted_total < 0.0:
                state.admitted_total = max(0.0, sum(
                    svc for _, svc in state.admitted
                ))

    def offered_rate(self, name: str, now: float) -> float:
        """Offered service rate over the sliding window.

        The divisor is the full window even early in the run — rates
        ramp up conservatively instead of spiking off a near-empty
        window, and the value stays a pure function of the arrivals
        seen (no wall-clock dependence to break replay).
        """
        del now
        return self._tenants[name].offered_total / self.window

    def admitted_rate(self, name: str, now: float) -> float:
        del now
        return self._tenants[name].admitted_total / self.window

    def fair_shares(self, n_gpus: int, now: float) -> Dict[str, float]:
        """Current weighted max-min shares of the machine's capacity
        (``n_gpus`` service-seconds per second)."""
        demands = {
            name: self.offered_rate(name, now) for name in self._tenants
        }
        weights = {
            name: state.spec.weight
            for name, state in self._tenants.items()
        }
        return weighted_max_min(demands, weights, float(n_gpus))

    def entitlement(self, name: str, now: float, n_gpus: int) -> float:
        """The share *name* would receive if it demanded the whole
        machine: its weighted max-min entitlement.

        The brownout ratio is measured against this, not the realized
        share — a satisfied tenant's share equals its demand, so
        ``offered / share`` is pinned at 1.0 inside the hysteresis
        band and an escalated ladder could never relax.  Against the
        entitlement the ratio falls as the tenant's load falls, and
        exceeds 1 exactly when the tenant is a violator (an
        unsatisfied tenant's exact demand does not move the fill, so
        entitlement == share for violators).
        """
        demands = {
            t: self.offered_rate(t, now) for t in self._tenants
        }
        demands[name] = float(n_gpus)  # a share can't exceed capacity
        weights = {
            t: state.spec.weight
            for t, state in self._tenants.items()
        }
        return weighted_max_min(demands, weights, float(n_gpus))[name]

    # -- the admission protocol ----------------------------------------

    def admit(self, job, now: float, queue_len: int, n_running: int,
              n_gpus: int) -> bool:
        tenant = getattr(job, "tenant", None)
        if tenant is None:
            # anonymous regime: no contract, no accounting, no shedding
            self.admitted += 1
            return True
        state = self._tenants.get(tenant)
        if state is None:
            raise ValueError(f"job from unknown tenant {tenant!r}")
        if not self.arbiter_enabled:
            # A/B mode: per-tenant guards only.  The sliding windows
            # exist solely to feed the arbiter, so skip the rate
            # bookkeeping entirely — this is what makes the disabled
            # configuration nearly free (the bench gates it < 3%)
            if state.controller.admit(job, now, queue_len, n_running,
                                      n_gpus):
                self.admitted += 1
                return True
            return self._shed_disabled(
                state, job, tenant, state.controller.shed_log[-1][1]
            )
        self._expire(now)
        state.offered.append((now, job.service))
        state.offered_total += job.service
        reason = self._decide(state, job, now, queue_len, n_running,
                              n_gpus)
        if reason is None:
            state.controller.admitted += 1
            state.admitted.append((now, job.service))
            state.admitted_total += job.service
            self.admitted += 1
            return True
        return self._shed(state, job, now, tenant, reason)

    def _shed_disabled(self, state, job, tenant: str,
                       reason: str) -> bool:
        """Registry-side mirror of a disabled-mode shed.

        The controller's own :meth:`AdmissionController.note_shed` has
        already run (counters, bounded log); this adds the global
        decision-order view.  The flight recorder stays idle here on
        purpose: with the arbiter off the rate windows are not
        maintained, so no SLO breach or overload trip can ever mark
        the run :meth:`incident_worthy` — a ring nobody will dump is
        not worth a note per shed on the fast path.
        """
        state.shed_counter.add()
        self.shed_count += 1
        self.shed_log.append((getattr(job, "job_id", None), reason))
        self.last_decision = {
            "tenant": tenant, "reason": reason,
            "shares": None, "violators": [], "rung": "admit",
        }
        return False

    def _shed(self, state, job, now: float, tenant: str,
              reason: str) -> bool:
        state.controller.note_shed(job, reason)
        state.shed_counter.add()
        self.shed_count += 1
        self.shed_log.append((getattr(job, "job_id", None), reason))
        self.recorder.note(
            "shed", now, tenant=tenant,
            job_id=getattr(job, "job_id", None), reason=reason,
        )
        return False

    def _decide(self, state, job, now: float, queue_len: int,
                n_running: int, n_gpus: int) -> Optional[str]:
        """The shed reason for *job*, or ``None`` to admit."""
        base = state.controller.decide(
            job, now, queue_len, n_running, n_gpus
        )
        shares = self.fair_shares(n_gpus, now)
        violators = [
            name for name in sorted(self._tenants)
            if self.offered_rate(name, now) > shares[name] + _EPS
        ]
        name = state.spec.name
        share = shares[name]
        ratio = (
            0.0 if state.offered_total <= _EPS
            else self.offered_rate(name, now)
            / self.entitlement(name, now, n_gpus)
        )
        old_rung = state.ladder.rung
        rung = state.ladder.observe(ratio, now)
        if rung != old_rung:
            self.recorder.note(
                "ladder", now, tenant=name, from_rung=old_rung,
                to_rung=rung, ratio=ratio,
            )
        is_violator = name in violators
        reason: Optional[str] = None
        if is_violator and (
            self.admitted_rate(name, now) + job.service / self.window
            > share + _EPS
        ):
            # the noisy neighbor is clipped to its fair share before
            # any compliant tenant sheds a single job
            reason = "fair_share"
        elif is_violator and state.ladder.at_least("shed") \
                and job.priority < state.spec.protect_priority:
            # brownout bites only while the tenant is still over its
            # share — the escalated rung persists (hysteresis) but a
            # tenant back in compliance is not punished for its past
            reason = "brownout_shed"
        elif is_violator and state.ladder.at_least("defer") \
                and job.deadline is None:
            reason = "brownout_defer"
        elif base is not None:
            if base in PRESSURE_REASONS and name not in violators \
                    and violators:
                # congestion caused by someone above fair share is not
                # this tenant's to absorb
                _metrics.counter("guard.tenant.shed_suppressed").add()
                reason = None
            else:
                reason = base
        self.last_decision = {
            "tenant": name, "reason": reason, "shares": shares,
            "violators": violators, "rung": rung,
        }
        return reason

    def record_success(self, now: float, job=None) -> None:
        tenant = getattr(job, "tenant", None)
        state = self._tenants.get(tenant) if tenant is not None else None
        if state is None:
            return  # anonymous job, or caller without job identity
        breaker = state.controller.breaker
        if breaker is not None:
            # trips only move on failures, so there is no transition
            # for the recorder to witness here
            breaker.record_success(now)

    def record_failure(self, now: float, job=None) -> None:
        tenant = getattr(job, "tenant", None)
        state = self._tenants.get(tenant) if tenant is not None else None
        if state is None:
            return  # anonymous job, or caller without job identity
        breaker = state.controller.breaker
        if breaker is None:
            return
        trips_before = breaker.trips
        breaker.record_failure(now)
        if breaker.trips != trips_before:
            self.recorder.note(
                "breaker_trip", now, tenant=tenant,
                trips=breaker.trips,
            )

    # -- health and incident surface -----------------------------------

    @property
    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    @property
    def trips(self) -> int:
        """Breaker trips across all tenants."""
        return sum(
            s.controller.breaker.trips
            for s in self._tenants.values()
            if s.controller.breaker is not None
        )

    def degraded(self, name: str) -> bool:
        """Should *name*'s coupled campaigns serve from a surrogate?"""
        return self._tenants[name].ladder.at_least("degrade")

    def rung(self, name: str) -> str:
        return self._tenants[name].ladder.rung

    def slo_breaches(self, n_gpus: int, now: float) -> List[str]:
        """Tenants admitted below their goodput floor while offering
        at least that much — the SLO-breach incident trigger."""
        shares = self.fair_shares(n_gpus, now)
        out = []
        for name in sorted(self._tenants):
            floor = self._tenants[name].spec.goodput_floor
            if floor <= 0:
                continue
            need = floor * shares[name]
            if self.offered_rate(name, now) >= need - _EPS \
                    and self.admitted_rate(name, now) < need - _EPS:
                out.append(name)
        return out

    def incident_worthy(self, n_gpus: int, now: float) -> bool:
        """Overload trip or SLO breach: should an incident be dumped?"""
        if self.trips:
            return True
        if any(
            s.ladder.at_least("degrade") for s in self._tenants.values()
        ):
            return True
        return bool(self.slo_breaches(n_gpus, now))

    def fairness(self) -> float:
        """Jain index over per-tenant admitted service per weight."""
        return jain_index(
            s.admitted_total / s.spec.weight
            for s in self._tenants.values()
        )

    def breaker_states(self) -> Dict[str, Optional[Dict[str, Any]]]:
        return {
            name: (
                None if s.controller.breaker is None
                else s.controller.breaker.checkpoint_state()
            )
            for name, s in sorted(self._tenants.items())
        }

    def tenant_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant counters for reports and the incident header."""
        return {
            name: {
                "admitted": s.controller.admitted,
                "shed": s.controller.shed_count,
                "rung": s.ladder.rung,
                "ladder_transitions": s.ladder.transitions,
                "breaker_trips": (
                    0 if s.controller.breaker is None
                    else s.controller.breaker.trips
                ),
            }
            for name, s in sorted(self._tenants.items())
        }

    # -- checkpoint protocol -------------------------------------------

    def _sync_admitted(self) -> None:
        """Fold the fast path's distributed admit counts back into
        ``admitted`` (the closure counts on each controller plus an
        anonymous-job cell instead of touching this attribute per
        job)."""
        if self._fast_anon is not None:
            self.admitted = self._fast_anon[0] + sum(
                s.controller.admitted for s in self._tenants.values()
            )

    def checkpoint_state(self) -> Dict[str, Any]:
        self._sync_admitted()
        return {
            "tenants": {
                name: {
                    "controller": s.controller.checkpoint_state(),
                    "ladder": s.ladder.checkpoint_state(),
                    "offered": list(s.offered),
                    "admitted": list(s.admitted),
                    "offered_total": s.offered_total,
                    "admitted_total": s.admitted_total,
                }
                for name, s in self._tenants.items()
            },
            "shed_log": list(self.shed_log),
            "shed_count": self.shed_count,
            "admitted": self.admitted,
            "recorder": self.recorder.checkpoint_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        for name, st in state["tenants"].items():
            s = self._tenants[name]
            s.controller.restore_state(st["controller"])
            s.ladder.restore_state(st["ladder"])
            s.offered = deque((t, v) for t, v in st["offered"])
            s.admitted = deque((t, v) for t, v in st["admitted"])
            s.offered_total = st["offered_total"]
            s.admitted_total = st["admitted_total"]
        self.shed_log = deque(
            ((j, r) for j, r in state["shed_log"]), maxlen=4096
        )
        self.shed_count = state["shed_count"]
        self.admitted = state["admitted"]
        if self._fast_anon is not None:
            # reconstruct the anonymous-admit cell so a later
            # _sync_admitted() reproduces the checkpointed total
            self._fast_anon[0] = self.admitted - sum(
                s.controller.admitted for s in self._tenants.values()
            )
        self.recorder.restore_state(state["recorder"])
