"""Incident flight recorder: bounded transition ring + WAL'd dumps.

During a run the recorder keeps a bounded ring buffer of guard-layer
transitions — shed decisions, breaker trips, brownout ladder moves —
plus a baseline snapshot of the ``guard.*`` counters.  On an SLO
breach or overload trip (:meth:`TenantRegistry.incident_worthy`) the
driver dumps an **incident trace**: the complete job stream plus a
header carrying the driver description (tenancy included), the ring
contents, the ``guard.*`` counter deltas, and the run's replay
fingerprint.  The file is a plain
:class:`~repro.traffic.trace.TrafficTrace` in
:class:`~repro.durable.wal.WriteAheadLog` framing (``sync=True``:
incidents must survive the machine, not just the process), so

- ``python -m repro.traffic`` replays it bit-exactly for post-mortem
  A/B against alternate tenant configs,
- a recorder killed mid-dump leaves a torn tail that strict loading
  rejects and lenient loading truncates to the committed prefix, and
- :func:`verify_incident` can demand the replayed fingerprint match
  the one recorded at dump time, bit for bit.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.obs import metrics as _metrics
from repro.obs.metrics import snapshot_prefix
from repro.traffic.trace import TrafficTrace

__all__ = [
    "FlightRecorder",
    "incident_paths",
    "record_incident",
    "replay_incident",
    "verify_incident",
]


class FlightRecorder:
    """Bounded ring of admission/breaker/ladder transitions."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        #: transitions rotated out of the bounded ring
        self.dropped = 0
        #: ``guard.*`` counter baseline the dump diffs against
        self._baseline = snapshot_prefix("guard.")

    def note(self, kind: str, t: float, **detail: Any) -> None:
        """Record one transition (oldest entries rotate out)."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        # the kwargs dict is already a fresh allocation owned by this
        # call — claim it as the event record instead of copying it
        detail["kind"] = kind
        detail["t"] = t
        self.events.append(detail)

    def guard_deltas(self) -> Dict[str, float]:
        """``guard.*`` counter movement since the recorder started."""
        current = snapshot_prefix("guard.")
        return {
            k: current[k] - self._baseline.get(k, 0)
            for k in current
            if current[k] != self._baseline.get(k, 0)
        }

    def summary(self, reason: str) -> Dict[str, Any]:
        return {
            "reason": reason,
            "events": [dict(e) for e in self.events],
            "events_dropped": self.dropped,
            "guard_deltas": self.guard_deltas(),
        }

    def dump_incident(
        self,
        path: Union[str, Path],
        jobs,
        driver_description: Dict[str, Any],
        fingerprint: Dict[str, Any],
        reason: str = "overload",
        extra: Optional[Dict[str, Any]] = None,
    ) -> TrafficTrace:
        """Write the WAL-framed incident trace (fsync per frame)."""
        incident = self.summary(reason)
        if extra:
            incident.update(extra)
        meta = {
            "driver": driver_description,
            "n_jobs": len(jobs),
            "incident": incident,
            # kept in the header for pre-trailer readers; the same
            # fingerprint is sealed into the v2 trailer below
            "fingerprint": fingerprint,
        }
        trace = TrafficTrace.record(path, list(jobs), meta=meta,
                                    sync=True, fingerprint=fingerprint)
        _metrics.counter("tenant.incidents_dumped").add()
        return trace

    # -- checkpoint protocol -------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        return {
            "events": [dict(e) for e in self.events],
            "dropped": self.dropped,
            "baseline": dict(self._baseline),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.events = deque(
            (dict(e) for e in state["events"]), maxlen=self.capacity
        )
        self.dropped = state["dropped"]
        self._baseline = dict(state["baseline"])


def record_incident(
    path: Union[str, Path], jobs, driver, reason: Optional[str] = None
):
    """Run *jobs* under a tenancy-mode driver; dump an incident when
    one is worth dumping.

    Returns ``(trace_or_None, report)``: the trace is ``None`` when
    the run finished healthy (no breaker trip, no tenant at the
    degrade rung, no goodput-floor breach) and *reason* was not
    forced.  Pass an explicit *reason* to dump unconditionally
    (drills, bench gates).
    """
    jobs = list(jobs)
    report = driver.run(jobs)
    registry = report.registry
    if registry is None:
        raise ValueError(
            "incident recording requires a tenancy-mode driver"
        )
    worthy = registry.incident_worthy(
        driver.n_gpus, report.result.makespan
    )
    if reason is None and not worthy:
        return None, report
    trace = registry.recorder.dump_incident(
        path, jobs, driver.describe(), report.fingerprint(),
        reason=reason or "overload",
        extra={"tenant_summary": registry.tenant_summary()},
    )
    return trace, report


def replay_incident(
    path: Union[str, Path], strict: bool = True
) -> Tuple[Any, TrafficTrace]:
    """Re-run an incident trace through a driver rebuilt from its
    header; returns ``(TrafficReport, TrafficTrace)``.

    ``strict=False`` replays the surviving prefix of a torn trace
    (post-crash triage) — the fingerprint check then only makes sense
    against a fresh replay, not the recorded one.
    """
    from repro.traffic.driver import OpenLoopDriver

    trace = TrafficTrace.load(path, strict=strict)
    driver = OpenLoopDriver.from_description(trace.meta["driver"])
    report = driver.run(trace.jobs)
    _metrics.counter("tenant.incidents_replayed").add()
    return report, trace


def verify_incident(path: Union[str, Path]):
    """Replay *path* twice; demand both fingerprints match each other
    **and** the fingerprint recorded at dump time.  Returns the replay
    report; raises ``AssertionError`` on any divergence."""
    first, trace = replay_incident(path)
    second, _ = replay_incident(path)
    if first.fingerprint() != second.fingerprint():
        raise AssertionError(
            f"{path}: incident replay diverged from itself — "
            "nondeterministic driver state leaked between runs"
        )
    # prefer the sealed trailer (v2); fall back to the header copy
    # older incident dumps carried
    recorded = trace.fingerprint or trace.meta.get("fingerprint")
    if recorded is not None and first.fingerprint() != recorded:
        raise AssertionError(
            f"{path}: incident replay diverged from the recorded "
            "fingerprint — the post-mortem is not looking at the "
            "outage it thinks it is"
        )
    return first


def incident_paths(directory: Union[str, Path]) -> List[Path]:
    """Every incident trace under *directory*, sorted by name."""
    return sorted(Path(directory).glob("incident-*.trace"))
