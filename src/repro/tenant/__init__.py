"""Multi-tenant isolation and overload control.

The paper's Sierra workload is a shared machine serving many competing
campaigns at once; this package gives the reproduction that regime's
robustness layer on top of the existing guard + traffic + sched stack:

- :mod:`repro.tenant.spec` — :class:`TenantSpec` /
  :class:`TenancySpec`: per-tenant SLO contracts (fair-share weight,
  protected priority, goodput floor, private breaker), declarative and
  trace-header round-trippable.
- :mod:`repro.tenant.arbiter` — exact weighted max-min fair shares by
  progressive filling, plus :func:`jain_index`.
- :mod:`repro.tenant.brownout` — the hysteretic degradation ladder
  (admit -> defer -> degrade -> shed).
- :mod:`repro.tenant.registry` — :class:`TenantRegistry`, the
  drop-in multi-tenant replacement for the single-tenant
  :class:`~repro.guard.deadline.AdmissionController` in the cluster
  simulator's admission slot: noisy neighbors are clipped to their
  fair share before any compliant tenant sheds.
- :mod:`repro.tenant.recorder` — the incident flight recorder:
  bounded transition ring, WAL-framed incident traces, bit-exact
  post-mortem replay.
- :mod:`repro.tenant.scenario` — canned pile-up scenarios for bench,
  CI, and the ``python -m repro.tenant`` demo.
"""

from repro.tenant.arbiter import jain_index, weighted_max_min
from repro.tenant.brownout import RUNGS, BrownoutLadder
from repro.tenant.recorder import (
    FlightRecorder,
    incident_paths,
    record_incident,
    replay_incident,
    verify_incident,
)
from repro.tenant.registry import TenantRegistry
from repro.tenant.scenario import PileupBundle, multitenant_pileup
from repro.tenant.spec import TenancySpec, TenantSpec

__all__ = [
    "BrownoutLadder",
    "FlightRecorder",
    "PileupBundle",
    "RUNGS",
    "TenancySpec",
    "TenantRegistry",
    "TenantSpec",
    "incident_paths",
    "jain_index",
    "multitenant_pileup",
    "record_incident",
    "replay_incident",
    "verify_incident",
    "weighted_max_min",
]
