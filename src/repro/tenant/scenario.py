"""Canned multi-tenant pile-up scenarios (bench + CI + CLI).

The canonical robustness experiment from the issue: several compliant
tenants each offering just under their fair share, plus one noisy
tenant offering a multiple of its share.  The builder synthesizes each
tenant's stream from its own :class:`~repro.traffic.population.UserPopulation`
and Poisson arrival process (seeded independently per tenant, so
streams are reproducible and uncorrelated), tags every job with its
tenant, and interleaves the streams into one offered-load sequence.

The bundle also keeps the per-tenant job lists so a gate can run each
compliant tenant *in isolation* — same jobs, empty machine — and
compare p99 turnaround / shed rate against the pile-up run, which is
exactly the noisy-neighbor containment the arbiter must deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sched.simulator import Job
from repro.tenant.spec import TenancySpec, TenantSpec
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.population import UserPopulation

__all__ = ["PileupBundle", "multitenant_pileup"]

#: job-id stride per tenant: keeps ids globally unique and makes the
#: owning tenant recoverable from a bare id during triage
_ID_STRIDE = 1_000_000


@dataclass(frozen=True)
class PileupBundle:
    """One synthesized pile-up: the contract, the load, the pieces."""

    tenancy: TenancySpec
    #: the interleaved offered-load sequence (arrival-sorted)
    jobs: Tuple[Job, ...]
    #: each tenant's own stream (isolated-baseline inputs)
    jobs_by_tenant: Dict[str, Tuple[Job, ...]]
    #: per-tenant offered arrival rates (jobs per time unit)
    rates: Dict[str, float]
    #: the noisy tenant's name
    noisy: str


def multitenant_pileup(
    n_gpus: int = 8,
    n_compliant: int = 3,
    noisy_factor: float = 4.0,
    compliant_load: float = 0.8,
    n_jobs_per_tenant: int = 300,
    mean_service: float = 4.0,
    seed: int = 0,
    window: float = 50.0,
    protect_priority: int = 1,
    goodput_floor: float = 0.25,
    breaker_failure_threshold: int = 8,
) -> PileupBundle:
    """Build the standard one-noisy-neighbor pile-up.

    Capacity splits evenly across ``n_compliant + 1`` equal-weight
    tenants; compliant tenants offer ``compliant_load`` x their fair
    share, the noisy tenant offers ``noisy_factor`` x.  Jobs per
    tenant, not duration, bounds the experiment so short CI runs and
    long bench runs share one builder.
    """
    if n_compliant < 1:
        raise ValueError("need at least one compliant tenant")
    if noisy_factor <= 1.0:
        raise ValueError("noisy_factor must exceed 1 (else nobody "
                         "violates)")
    if not (0.0 < compliant_load <= 1.0):
        raise ValueError("compliant_load in (0, 1]")
    n_tenants = n_compliant + 1
    # equal weights: each tenant's fair share of the machine is
    # n_gpus / n_tenants service-seconds per second, i.e. an arrival
    # rate of share / mean_service jobs per second
    share_rate = n_gpus / (n_tenants * mean_service)
    names = [f"tenant{k}" for k in range(n_compliant)]
    noisy = "noisy"
    specs = [
        TenantSpec(
            name=name,
            weight=1.0,
            protect_priority=protect_priority,
            goodput_floor=goodput_floor,
            breaker_failure_threshold=breaker_failure_threshold,
        )
        for name in names + [noisy]
    ]
    tenancy = TenancySpec(tenants=tuple(specs), window=window)
    rates = {name: compliant_load * share_rate for name in names}
    rates[noisy] = noisy_factor * share_rate
    jobs_by_tenant: Dict[str, Tuple[Job, ...]] = {}
    for idx, name in enumerate(names + [noisy]):
        tenant_seed = seed * 131 + idx
        population = UserPopulation(
            n_users=10_000,
            seed=tenant_seed,
            mean_service=mean_service,
            tenant=name,
        )
        arrivals = PoissonArrivals(rates[name]).sample(
            n_jobs_per_tenant, seed=tenant_seed
        )
        jobs_by_tenant[name] = tuple(
            population.jobs_for(arrivals, job_id_base=idx * _ID_STRIDE)
        )
    merged = sorted(
        (j for stream in jobs_by_tenant.values() for j in stream),
        key=lambda j: (j.arrival, j.job_id),
    )
    return PileupBundle(
        tenancy=tenancy,
        jobs=tuple(merged),
        jobs_by_tenant=jobs_by_tenant,
        rates=rates,
        noisy=noisy,
    )
