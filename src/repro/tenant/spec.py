"""Declarative tenant configuration (trace-header-able).

A :class:`TenantSpec` is one campaign's SLO contract: its fair-share
weight, the priority below which its work may be pressure-shed, its
goodput floor (the fraction of fair share below which the tenant is
considered SLO-breached), and its private breaker/queue limits.  A
:class:`TenancySpec` is the whole machine's contract — every tenant
plus the shared arbiter window and brownout thresholds — and follows
the repo's spec idiom (:class:`repro.traffic.driver.ChaosSpec`):
frozen, ``describe()``/``from_description()`` round-trippable through
JSON trace headers, with ``make()`` building the live object.  That
round trip is what lets an incident trace rebuild the exact tenant
configuration it was recorded under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.guard.deadline import AdmissionController, CircuitBreaker

__all__ = ["TenantSpec", "TenancySpec"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's SLO contract and guard configuration."""

    name: str
    #: fair-share weight in the weighted max-min arbiter
    weight: float = 1.0
    #: jobs below this priority may be pressure-shed (queue_saturated,
    #: breaker_open, brownout); higher-priority work is protected
    protect_priority: int = 0
    #: SLO floor: admitted service below ``goodput_floor`` x fair
    #: share flags an SLO breach (and trips the flight recorder dump)
    goodput_floor: float = 0.0
    #: deadline-slack multiplier this tenant's populations are built
    #: with (scenario knob; carried here so the incident header
    #: documents the contract the tenant was sold)
    deadline_slack: float = 1.0
    max_queue: Optional[int] = None
    breaker_failure_threshold: Optional[int] = None
    breaker_recovery_time: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if not (0.0 <= self.goodput_floor <= 1.0):
            raise ValueError(
                f"tenant {self.name!r}: goodput_floor in [0, 1]"
            )
        if self.deadline_slack <= 0:
            raise ValueError(
                f"tenant {self.name!r}: deadline_slack must be > 0"
            )

    def make_controller(self) -> AdmissionController:
        """This tenant's private admission controller (+ breaker)."""
        breaker = None
        if self.breaker_failure_threshold is not None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_failure_threshold,
                recovery_time=self.breaker_recovery_time,
                name=f"tenant.{self.name}",
            )
        return AdmissionController(
            max_queue=self.max_queue,
            protect_priority=self.protect_priority,
            breaker=breaker,
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "protect_priority": self.protect_priority,
            "goodput_floor": self.goodput_floor,
            "deadline_slack": self.deadline_slack,
            "max_queue": self.max_queue,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_recovery_time": self.breaker_recovery_time,
        }

    @classmethod
    def from_description(cls, desc: Dict[str, Any]) -> "TenantSpec":
        return cls(
            name=desc["name"],
            weight=desc["weight"],
            protect_priority=desc["protect_priority"],
            goodput_floor=desc["goodput_floor"],
            deadline_slack=desc.get("deadline_slack", 1.0),
            max_queue=desc["max_queue"],
            breaker_failure_threshold=desc["breaker_failure_threshold"],
            breaker_recovery_time=desc["breaker_recovery_time"],
        )


@dataclass(frozen=True)
class TenancySpec:
    """The machine-wide multi-tenant contract."""

    tenants: Tuple[TenantSpec, ...]
    #: sliding window (simulated seconds) over which per-tenant
    #: offered/admitted rates are measured for the arbiter
    window: float = 50.0
    #: kill switch for A/B runs: with the arbiter off, the registry
    #: degenerates to independent per-tenant controllers (no
    #: fair-share clipping, no brownout)
    arbiter_enabled: bool = True
    #: brownout hysteresis thresholds (None = ladder defaults)
    brownout: Optional[Dict[str, float]] = None
    #: flight-recorder ring capacity
    recorder_capacity: int = 256

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.recorder_capacity < 1:
            raise ValueError("recorder_capacity must be >= 1")

    def spec_for(self, name: str) -> TenantSpec:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(f"unknown tenant {name!r}")

    def make(self):
        """Build the live :class:`~repro.tenant.TenantRegistry`."""
        from repro.tenant.registry import TenantRegistry

        return TenantRegistry(self)

    def describe(self) -> Dict[str, Any]:
        return {
            "tenants": [t.describe() for t in self.tenants],
            "window": self.window,
            "arbiter_enabled": self.arbiter_enabled,
            "brownout": (
                None if self.brownout is None else dict(self.brownout)
            ),
            "recorder_capacity": self.recorder_capacity,
        }

    @classmethod
    def from_description(cls, desc: Dict[str, Any]) -> "TenancySpec":
        return cls(
            tenants=tuple(
                TenantSpec.from_description(t) for t in desc["tenants"]
            ),
            window=desc["window"],
            arbiter_enabled=desc["arbiter_enabled"],
            brownout=desc.get("brownout"),
            recorder_capacity=desc.get("recorder_capacity", 256),
        )
