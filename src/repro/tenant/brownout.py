"""Brownout ladder: declarative graceful degradation with hysteresis.

Instead of the guard layer's binary admit/shed, a tenant under
pressure descends a ladder of progressively cheaper service levels:

====================  =====================================================
rung                  behavior at admission time
====================  =====================================================
``admit``             normal service, full fidelity
``defer``             best-effort jobs (no deadline) are shed; deadline
                      work still flows
``degrade``           additionally signals coupled campaigns to serve
                      from their surrogate rung (the MuMMI
                      macro-surrogate path) — the registry exposes this
                      via :meth:`TenantRegistry.degraded`
``shed``              hard shed: everything below the tenant's protected
                      priority is refused
====================  =====================================================

The ladder is driven by the tenant's measured load ratio
(offered rate / fair share).  Two thresholds with a gap between them
give hysteresis — the ratio must fall well below the escalation point
before the ladder relaxes — and each observation moves at most one
rung, so a noisy load signal cannot make service levels flap
arrival-to-arrival.  Transitions are deterministic functions of the
observation sequence (and are counted + flight-recorded), preserving
the bit-exact replay contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics

__all__ = ["BrownoutLadder", "RUNGS"]

#: service levels, best first; index = severity
RUNGS: Tuple[str, ...] = ("admit", "defer", "degrade", "shed")


class BrownoutLadder:
    """Hysteretic rung selector over a measured load ratio.

    ``observe(ratio, now)`` escalates one rung when the ratio is at or
    above ``up_threshold``, relaxes one rung when it is at or below
    ``down_threshold``, and holds otherwise.  ``up_threshold`` must
    exceed ``down_threshold`` strictly — the gap *is* the hysteresis.
    """

    def __init__(
        self,
        up_threshold: float = 1.5,
        down_threshold: float = 0.9,
        name: str = "tenant",
    ):
        if down_threshold <= 0:
            raise ValueError("down_threshold must be positive")
        if up_threshold <= down_threshold:
            raise ValueError(
                "up_threshold must exceed down_threshold (the gap is "
                "the hysteresis)"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.name = name
        self.rung_index = 0
        self.transitions = 0
        #: ``(now, from_rung, to_rung, ratio)`` per move, in order
        self.history: List[Tuple[float, str, str, float]] = []

    @property
    def rung(self) -> str:
        return RUNGS[self.rung_index]

    def observe(self, ratio: float, now: float = 0.0) -> str:
        """Feed one load measurement; returns the (new) current rung."""
        if ratio < 0:
            raise ValueError("load ratio must be nonnegative")
        step = 0
        if ratio >= self.up_threshold and self.rung_index < len(RUNGS) - 1:
            step = 1
        elif ratio <= self.down_threshold and self.rung_index > 0:
            step = -1
        if step:
            old = self.rung
            self.rung_index += step
            self.transitions += 1
            self.history.append((now, old, self.rung, float(ratio)))
            _metrics.counter(
                f"guard.brownout.{self.name}."
                f"{'escalations' if step > 0 else 'relaxations'}"
            ).add()
        return self.rung

    def at_least(self, rung: str) -> bool:
        """Is the ladder at *rung* or worse?"""
        return self.rung_index >= RUNGS.index(rung)

    # -- checkpoint protocol -------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        return {
            "rung_index": self.rung_index,
            "transitions": self.transitions,
            "history": [list(h) for h in self.history],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.rung_index = state["rung_index"]
        self.transitions = state["transitions"]
        self.history = [
            (t, a, b, r) for t, a, b, r in state.get("history", [])
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "up_threshold": self.up_threshold,
            "down_threshold": self.down_threshold,
        }

    @classmethod
    def from_description(
        cls, desc: Optional[Dict[str, Any]], name: str = "tenant"
    ) -> "BrownoutLadder":
        if desc is None:
            return cls(name=name)
        return cls(
            up_threshold=desc["up_threshold"],
            down_threshold=desc["down_threshold"],
            name=name,
        )
