"""Weighted max-min fair arbitration over shared cluster capacity.

The allocation primitive under :class:`repro.tenant.TenantRegistry`:
given each tenant's measured demand (offered service rate over a
sliding window) and its SLO weight, split the machine's service
capacity so that

- no tenant gets more than it asked for,
- unused demand is redistributed to tenants that can use it
  (work conservation), and
- whenever demand exceeds capacity, the constrained tenants receive
  shares proportional to their weights (weighted max-min dominance:
  you cannot raise one tenant's share without lowering that of a
  tenant with an equal-or-smaller share-per-weight).

This is classic progressive filling ("water-filling"): raise a common
water level ``w`` and give each tenant ``min(demand_i, w * weight_i)``
until capacity is exhausted.  The implementation iterates over
bottleneck sets instead of bisecting on ``w``, so the result is an
exact fixed point of the definition (no tolerance parameter) and a
pure, deterministic function of its inputs — which is what lets a
replayed incident trace reproduce every fair-share shed decision
bit-for-bit.

:func:`jain_index` is the standard fairness summary the bench gate
reports: 1.0 when every tenant's normalized allocation is equal,
``1/n`` in the pathological one-tenant-takes-all case.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

__all__ = ["weighted_max_min", "jain_index"]


def weighted_max_min(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
) -> Dict[str, float]:
    """Weighted max-min fair shares of *capacity* across tenants.

    *demands* maps tenant name to nonnegative demand (service-seconds
    per second); *weights* maps each tenant in *demands* to a positive
    SLO weight.  Returns ``{name: share}`` with

    - ``0 <= share <= demand`` for every tenant,
    - ``sum(shares) == min(capacity, sum(demands))`` up to floating
      point (work conservation), and
    - every unsatisfied tenant (``share < demand``) holding the same
      ``share / weight`` water level.
    """
    if capacity < 0:
        raise ValueError("capacity must be nonnegative")
    names = sorted(demands)
    for name in names:
        if demands[name] < 0:
            raise ValueError(f"tenant {name!r}: negative demand")
        if name not in weights or weights[name] <= 0:
            raise ValueError(f"tenant {name!r}: weight must be positive")
    shares = {name: 0.0 for name in names}
    total_demand = sum(demands[name] for name in names)
    if total_demand <= capacity:
        # uncontended: everyone gets exactly what they asked for
        for name in names:
            shares[name] = float(demands[name])
        return shares
    # progressive filling: repeatedly satisfy every tenant whose
    # demand sits below the current water level, remove it from the
    # pool, and refill the remainder.  Each pass freezes at least one
    # tenant, so the loop runs at most n times.
    remaining = float(capacity)
    active = list(names)
    while active:
        weight_sum = sum(weights[name] for name in active)
        water = remaining / weight_sum
        frozen = [
            name for name in active if demands[name] <= water * weights[name]
        ]
        if not frozen:
            # every active tenant is demand-constrained by the water
            # level: final proportional split
            for name in active:
                shares[name] = water * weights[name]
            break
        for name in frozen:
            shares[name] = float(demands[name])
            remaining -= demands[name]
        active = [name for name in active if name not in frozen]
    return shares


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    Computed over per-tenant normalized allocations (delivered service
    divided by weight).  1.0 means perfectly even; ``1/n`` means one
    tenant took everything.  Empty or all-zero input reads as fair
    (1.0): nothing was delivered, so nothing was delivered unevenly.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    if any(v < 0 for v in xs):
        raise ValueError("allocations must be nonnegative")
    total = sum(xs)
    if total == 0.0:
        return 1.0
    # normalize by the mean first: subnormal allocations square to
    # exactly 0.0 (underflow) and huge ones square to inf, either of
    # which breaks the ratio even though the index is scale-invariant
    mean = total / len(xs)
    ys = [v / mean for v in xs]
    return sum(ys) ** 2 / (len(ys) * sum(v * v for v in ys))
