"""CLI: multi-tenant pile-up demo + incident record/replay check.

``python -m repro.tenant`` synthesizes the standard one-noisy-neighbor
pile-up, drives it through the fair-share registry (optionally with
chaos active), prints the per-tenant outcome and Jain fairness index,
dumps an incident trace, and verifies the incident replays with a
bit-identical fingerprint.  Exits nonzero if no incident was worth
dumping when one was expected, or if the replay diverges — this is the
CI ``tenant-chaos`` entry point.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from dataclasses import replace as _dc_replace
from pathlib import Path

from repro.tenant.arbiter import jain_index
from repro.tenant.recorder import record_incident, verify_incident
from repro.tenant.scenario import multitenant_pileup
from repro.traffic.driver import ChaosSpec, OpenLoopDriver


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tenant",
        description="multi-tenant pile-up + incident replay check",
    )
    ap.add_argument("--out", type=Path, default=None,
                    help="incident directory (default: a temp dir)")
    ap.add_argument("--gpus", type=int, default=8)
    ap.add_argument("--tenants", type=int, default=3,
                    help="number of compliant tenants")
    ap.add_argument("--noisy-factor", type=float, default=4.0)
    ap.add_argument("--jobs", type=int, default=300,
                    help="jobs per tenant")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--chaos-mtbf", type=float, default=150.0,
                    help="fault-injector MTBF (0 disables chaos)")
    ap.add_argument("--no-arbiter", action="store_true",
                    help="disable fair-share arbitration (A/B mode)")
    args = ap.parse_args(argv)

    out = args.out
    if out is None:
        out = Path(tempfile.mkdtemp(prefix="repro-tenant-"))
    out.mkdir(parents=True, exist_ok=True)

    bundle = multitenant_pileup(
        n_gpus=args.gpus, n_compliant=args.tenants,
        noisy_factor=args.noisy_factor,
        n_jobs_per_tenant=args.jobs, seed=args.seed,
    )
    tenancy = bundle.tenancy
    if args.no_arbiter:
        tenancy = _dc_replace(tenancy, arbiter_enabled=False)
    driver = OpenLoopDriver(
        n_gpus=args.gpus,
        policy="fcfs",
        tenancy=tenancy,
        chaos=(
            None if args.chaos_mtbf <= 0
            else ChaosSpec(mtbf=args.chaos_mtbf, seed=args.seed)
        ),
    )

    incident_path = out / "incident-pileup.trace"
    trace, report = record_incident(
        incident_path, bundle.jobs, driver, reason="pileup-drill"
    )
    result = report.result
    print(f"[tenant] pile-up: {len(bundle.jobs)} jobs, "
          f"{args.tenants}+1 tenants on {args.gpus} GPUs "
          f"(noisy at {args.noisy_factor:g}x fair share, "
          f"arbiter {'off' if args.no_arbiter else 'on'})")
    for name in sorted(bundle.rates):
        summary = report.tenant_summary[name]
        print(f"[tenant]   {name:<10} offered_rate="
              f"{bundle.rates[name]:.3f} "
              f"completed={result.tenant_completed.get(name, 0):>4} "
              f"shed={result.tenant_shed.get(name, 0):>4} "
              f"p99_turnaround="
              f"{result.tenant_turnaround_percentile(name, 99.0):8.2f} "
              f"rung={summary['rung']} "
              f"trips={summary['breaker_trips']}")
    fairness = jain_index(
        result.tenant_completed_service.get(name, 0.0)
        for name in sorted(bundle.rates)
    )
    print(f"[tenant] jain_fairness={fairness:.3f} "
          f"trips={report.trips} shed={result.shed} "
          f"completed={result.completed}")

    try:
        verify_incident(incident_path)
    except AssertionError as exc:
        print(f"[tenant] INCIDENT REPLAY FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"[tenant] incident trace replayed bit-exactly "
          f"({incident_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
