"""Tiled transpose: the RAJA-vs-CUDA micro-study (§4.11).

"They implemented a tiling transpose in RAJA and directly in CUDA.
Ultimately, the native CUDA transpose significantly outperformed the
RAJA one."  Both variants here compute the identical result (tested);
they differ in the kernel spec they record — the CUDA version gets the
shared-memory-tile treatment (coalesced reads *and* writes), the RAJA
version the strided-write penalty plus the abstraction overhead.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec

TILE = 32


def _tiled_transpose(a: np.ndarray, tile: int = TILE) -> np.ndarray:
    """Blocked transpose (the actual data movement both variants do)."""
    n, m = a.shape
    out = np.empty((m, n), dtype=a.dtype)
    for i0 in range(0, n, tile):
        for j0 in range(0, m, tile):
            block = a[i0:i0 + tile, j0:j0 + tile]
            out[j0:j0 + tile, i0:i0 + tile] = block.T
    return out


def transpose_raja_style(a: np.ndarray,
                         ctx: Optional[ExecutionContext] = None
                         ) -> np.ndarray:
    """RAJA kernel-API transpose: correct, but the generated code
    cannot stage tiles in shared memory, so one access direction stays
    uncoalesced."""
    out = _tiled_transpose(a)
    if ctx is not None:
        nbytes = float(a.nbytes)
        ctx.trace.record_kernel(KernelSpec(
            name="transpose-raja",
            flops=0.0,
            bytes_read=nbytes,
            bytes_written=nbytes,
            compute_efficiency=0.5,
            # strided writes waste most of each cache line, and the
            # dispatch adds the usual abstraction penalty
            bandwidth_efficiency=0.18,
        ))
    return out


def transpose_cuda_style(a: np.ndarray,
                         ctx: Optional[ExecutionContext] = None
                         ) -> np.ndarray:
    """Hand-CUDA transpose: shared-memory tiles make both directions
    coalesced."""
    out = _tiled_transpose(a)
    if ctx is not None:
        nbytes = float(a.nbytes)
        ctx.trace.record_kernel(KernelSpec(
            name="transpose-cuda",
            flops=0.0,
            bytes_read=nbytes,
            bytes_written=nbytes,
            compute_efficiency=0.5,
            bandwidth_efficiency=0.75,
            uses_shared_memory=True,
        ))
    return out
