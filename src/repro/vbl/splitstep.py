"""Split-step (angular spectrum) beam propagation.

The scalar paraxial field E(x, y) advances a distance dz by

    E <- IFFT( FFT(E) * exp(-i (kx^2 + ky^2) dz / (2 k0)) )

(diffraction in the spectral domain), interleaved with spatial-domain
amplifier/phase steps (the "triply-nested loops that update the
electric field") executed through the mini-RAJA kernel API so the
backend and its launch accounting match the paper's setup.

Validation anchors: analytic Gaussian-beam spreading
(w(z) = w0 sqrt(1 + (z/zR)^2)) and Parseval/energy conservation of the
pure-diffraction step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.forall import ExecPolicy, ExecutionContext, Forall
from repro.core.kernels import KernelSpec


@dataclass(frozen=True)
class BeamGrid:
    """Transverse computational grid: n x n points, extent L (meters)."""

    n: int
    length: float
    wavelength: float = 1.053e-6  # NIF-like 1053 nm

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("grid too small")
        if self.length <= 0 or self.wavelength <= 0:
            raise ValueError("length and wavelength must be positive")

    @property
    def dx(self) -> float:
        return self.length / self.n

    @property
    def k0(self) -> float:
        return 2.0 * np.pi / self.wavelength

    def coords(self) -> Tuple[np.ndarray, np.ndarray]:
        x = (np.arange(self.n) - self.n / 2) * self.dx
        return np.meshgrid(x, x, indexing="ij")

    def spatial_frequencies(self) -> Tuple[np.ndarray, np.ndarray]:
        k = 2.0 * np.pi * np.fft.fftfreq(self.n, d=self.dx)
        return np.meshgrid(k, k, indexing="ij")


def gaussian_beam(grid: BeamGrid, waist: float, amplitude: float = 1.0
                  ) -> np.ndarray:
    """Fundamental Gaussian at its waist (flat phase)."""
    if waist <= 0:
        raise ValueError("waist must be positive")
    x, y = grid.coords()
    return amplitude * np.exp(-(x * x + y * y) / (waist * waist)).astype(
        np.complex128
    )


class SplitStepPropagator:
    """Propagate a complex field through diffraction + gain steps."""

    def __init__(
        self,
        grid: BeamGrid,
        ctx: Optional[ExecutionContext] = None,
        policy: ExecPolicy = ExecPolicy.SIMD,
    ):
        self.grid = grid
        self.ctx = ctx if ctx is not None else ExecutionContext()
        self.forall = Forall(self.ctx, policy)
        kx, ky = grid.spatial_frequencies()
        self._k_perp2 = kx * kx + ky * ky

    # ------------------------------------------------------------------

    def diffraction_step(self, field: np.ndarray, dz: float) -> np.ndarray:
        """One angular-spectrum diffraction step over distance dz."""
        if field.shape != (self.grid.n, self.grid.n):
            raise ValueError("field shape mismatch")
        spec = np.fft.fft2(field)
        spec *= np.exp(-1j * self._k_perp2 * dz / (2.0 * self.grid.k0))
        out = np.fft.ifft2(spec)
        self._record_fft_kernels()
        return out

    def amplifier_step(self, field: np.ndarray, gain: np.ndarray,
                       phase: Optional[np.ndarray] = None) -> np.ndarray:
        """Spatial-domain field update: E *= sqrt(gain) * exp(i phase).

        Runs through the mini-RAJA kernel API (the forallN / Kernel
        structure of §4.11).
        """
        n = self.grid.n
        if gain.shape != (n, n):
            raise ValueError("gain shape mismatch")
        if np.any(gain < 0):
            raise ValueError("gain must be non-negative")
        out = np.empty_like(field)
        amp = np.sqrt(gain)
        ph = np.exp(1j * phase) if phase is not None else None

        def body(i, j):
            val = field[i, j] * amp[i, j]
            if ph is not None:
                val = val * ph[i, j]
            out[i, j] = val

        self.forall.kernel(
            "vbl-amplifier", (n, n), body,
            flops_per_elem=10, bytes_per_elem=48,
        )
        return out

    def propagate(
        self,
        field: np.ndarray,
        distance: float,
        n_steps: int,
        gain: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Split-step march: n_steps diffraction (+optional gain) steps."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        dz = distance / n_steps
        out = field
        for _ in range(n_steps):
            out = self.diffraction_step(out, dz)
            if gain is not None:
                out = self.amplifier_step(out, gain)
        return out

    # ------------------------------------------------------------------

    def _record_fft_kernels(self) -> None:
        n = self.grid.n
        # cuFFT-style 2D complex FFT: 5 N^2 log2(N^2) flops x2 (fwd+inv)
        flops = 2 * 5.0 * n * n * 2 * np.log2(max(n, 2))
        self.ctx.trace.record_kernel(KernelSpec(
            name="vbl-fft", flops=flops,
            bytes_read=16.0 * n * n * 4, bytes_written=16.0 * n * n * 2,
            launches=2,
            compute_efficiency=0.5, bandwidth_efficiency=0.8,
        ))

    @staticmethod
    def fluence(field: np.ndarray) -> np.ndarray:
        """|E|^2 — what Fig 9 plots."""
        return np.abs(field) ** 2

    def energy(self, field: np.ndarray) -> float:
        return float(self.fluence(field).sum() * self.grid.dx**2)

    def beam_radius(self, field: np.ndarray) -> float:
        """1/e^2-equivalent radius from the second moment."""
        f = self.fluence(field)
        total = f.sum()
        if total <= 0:
            raise ValueError("zero-energy field")
        x, y = self.grid.coords()
        cx = (f * x).sum() / total
        cy = (f * y).sum() / total
        var = (f * ((x - cx) ** 2 + (y - cy) ** 2)).sum() / total
        # Gaussian: <r^2> = w^2/2 per axis -> w = sqrt(2*var/2)... for
        # 2D: var = w^2/2, so w = sqrt(2 var / ... ); derive: for
        # I ~ exp(-2 r^2/w^2), <x^2+y^2> = w^2/2.
        return float(np.sqrt(2.0 * var))

    def rayleigh_range(self, waist: float) -> float:
        return np.pi * waist**2 / self.grid.wavelength

    def analytic_waist(self, w0: float, z: float) -> float:
        zr = self.rayleigh_range(w0)
        return w0 * np.sqrt(1.0 + (z / zr) ** 2)
