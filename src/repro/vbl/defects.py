"""Phase-defect propagation: the Fig 9 experiment.

"Two 150 micron phase defects (lower left) cause ripples to appear in
the fluence of the beam after propagating 10 meters."  The experiment:
stamp two small Gaussian phase bumps on an otherwise smooth beam,
propagate 10 m, and measure the fluence modulation (ripple contrast)
that diffraction develops around the defects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vbl.splitstep import BeamGrid, SplitStepPropagator, gaussian_beam


def apply_phase_defects(
    field: np.ndarray,
    grid: BeamGrid,
    centers: Sequence[Tuple[float, float]],
    radius: float,
    depth: float = np.pi / 2,
) -> np.ndarray:
    """Stamp Gaussian phase bumps of *radius* at *centers* (meters)."""
    if radius <= 0:
        raise ValueError("defect radius must be positive")
    x, y = grid.coords()
    phase = np.zeros(field.shape)
    for cx, cy in centers:
        r2 = (x - cx) ** 2 + (y - cy) ** 2
        phase += depth * np.exp(-r2 / (radius * radius))
    return field * np.exp(1j * phase)


def ripple_contrast(fluence: np.ndarray, mask: Optional[np.ndarray] = None
                    ) -> float:
    """Peak-to-mean fluence modulation inside *mask* (default: the
    central half of the aperture)."""
    if mask is None:
        n = fluence.shape[0]
        q = n // 4
        mask = np.zeros_like(fluence, dtype=bool)
        mask[q:-q, q:-q] = True
    vals = fluence[mask]
    mean = vals.mean()
    if mean <= 0:
        raise ValueError("empty fluence region")
    return float((vals.max() - mean) / mean)


def fig9_experiment(
    n: int = 256,
    aperture: float = 5e-3,          # 5 mm computational window
    beam_waist: float = 1.2e-3,
    defect_radius: float = 150e-6,   # the paper's 150 um defects
    distance: float = 10.0,          # 10 m of propagation
    n_steps: int = 20,
    seed: int = 0,
) -> Dict[str, float]:
    """Run the defect and no-defect propagations; return ripple metrics.

    Returns contrast values before/after propagation with and without
    defects — Fig 9's qualitative content as numbers.
    """
    grid = BeamGrid(n=n, length=aperture)
    prop = SplitStepPropagator(grid)
    base = gaussian_beam(grid, waist=beam_waist)
    # defects in the lower-left, as in the figure
    centers = [(-1.0e-3, -1.0e-3), (-0.4e-3, -1.2e-3)]
    defective = apply_phase_defects(base, grid, centers, defect_radius)

    clean_out = prop.propagate(base, distance, n_steps)
    defect_out = prop.propagate(defective, distance, n_steps)

    f_clean0 = prop.fluence(base)
    f_defect0 = prop.fluence(defective)
    f_clean1 = prop.fluence(clean_out)
    f_defect1 = prop.fluence(defect_out)
    return {
        "contrast_clean_initial": ripple_contrast(f_clean0),
        "contrast_defect_initial": ripple_contrast(f_defect0),
        "contrast_clean_final": ripple_contrast(f_clean1),
        "contrast_defect_final": ripple_contrast(f_defect1),
        "energy_initial": prop.energy(defective),
        "energy_final": prop.energy(defect_out),
    }
