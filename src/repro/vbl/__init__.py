"""Virtual Beamline proxy: split-step laser propagation (§4.11, Fig 9).

VBL's split-step algorithm has "two main parts: discrete fast Fourier
transforms and triply-nested loops that update the electric field";
cuFFT handled the FFTs, RAJA's nested-loop API the field updates, and
a hand-CUDA tiled transpose beat the RAJA one.  The GPUDirect study
found cudaMemcpy overtakes GPUDirect beyond a few kilobytes (H2D) /
a few hundred bytes (D2H), with Unified Memory equivalent to 64 KiB
blocks.

- :mod:`repro.vbl.splitstep` — the beam propagator: angular-spectrum
  diffraction steps (FFT-based), amplifier-gain field updates through
  the mini-RAJA kernel API, Gaussian-beam analytic validation,
  energy/Parseval accounting.
- :mod:`repro.vbl.transpose` — tiled transpose in "RAJA" and "CUDA"
  styles: identical results, different modeled kernel efficiency (the
  measured gap).
- :mod:`repro.vbl.defects` — phase-defect scenarios: the Fig 9
  experiment (two 150 um phase defects ripple the fluence after 10 m).
- :mod:`repro.vbl.transfer` — the GPUDirect vs cudaMemcpy vs UM
  crossover model.
"""

from repro.vbl.splitstep import BeamGrid, SplitStepPropagator, gaussian_beam
from repro.vbl.transpose import transpose_cuda_style, transpose_raja_style
from repro.vbl.defects import apply_phase_defects, fig9_experiment
from repro.vbl.transfer import TransferPath, crossover_size, transfer_time

__all__ = [
    "BeamGrid",
    "SplitStepPropagator",
    "gaussian_beam",
    "transpose_raja_style",
    "transpose_cuda_style",
    "apply_phase_defects",
    "fig9_experiment",
    "TransferPath",
    "transfer_time",
    "crossover_size",
]
