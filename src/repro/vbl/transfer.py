"""GPUDirect vs cudaMemcpy vs Unified Memory transfer model (§4.11).

"Initial measurements showed that using cudaMemcpy for transfers from
CPU to GPU will overtake GPUDirect for transfers of a few kilobytes or
more; and for transfers from GPU to CPU for a few hundred bytes or
more.  VBL uses CUDA Unified Memory, which is equivalent to
transferring blocks of 64 kilobytes."

Mechanism: GPUDirect writes map straight over the link (near-zero
setup, modest streaming rate); cudaMemcpy pays a driver setup latency
but then streams at full NVLink bandwidth.  Crossovers fall where
setup amortizes — a few KB H2D and a few hundred B D2H, per the
asymmetric setup costs below.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.memory import UM_PAGE_BYTES


class TransferPath(enum.Enum):
    GPUDIRECT = "gpudirect"
    MEMCPY = "memcpy"
    UNIFIED = "um"


#: (setup latency s, bandwidth B/s) per (path, direction).
#: GPUDirect (mapped access) has near-zero setup but streams at
#: CPU-store (h2d) or uncached-device-read (d2h) rates; cudaMemcpy
#: pays driver setup then runs at NVLink speed.
_PARAMS = {
    (TransferPath.GPUDIRECT, "h2d"): (0.4e-6, 0.73e9),
    (TransferPath.GPUDIRECT, "d2h"): (0.4e-6, 55e6),
    (TransferPath.MEMCPY, "h2d"): (6.0e-6, 70e9),
    (TransferPath.MEMCPY, "d2h"): (6.0e-6, 65e9),
}


def transfer_time(path: TransferPath, nbytes: float,
                  direction: str = "h2d") -> float:
    """Modeled transfer time for *nbytes* along *path*."""
    if nbytes < 0:
        raise ValueError("negative transfer size")
    if direction not in ("h2d", "d2h"):
        raise ValueError("direction must be 'h2d' or 'd2h'")
    if path is TransferPath.UNIFIED:
        # UM migrates whole 64 KiB blocks through the memcpy machinery
        blocks = max(1, -(-int(nbytes) // UM_PAGE_BYTES))
        lat, bw = _PARAMS[(TransferPath.MEMCPY, direction)]
        return blocks * (lat + UM_PAGE_BYTES / bw)
    lat, bw = _PARAMS[(path, direction)]
    return lat + nbytes / bw


def crossover_size(direction: str = "h2d") -> float:
    """Bytes at which cudaMemcpy overtakes GPUDirect.

    Solve lat_m + n/bw_m = lat_g + n/bw_g.
    """
    lat_g, bw_g = _PARAMS[(TransferPath.GPUDIRECT, direction)]
    lat_m, bw_m = _PARAMS[(TransferPath.MEMCPY, direction)]
    return (lat_m - lat_g) / (1.0 / bw_g - 1.0 / bw_m)
