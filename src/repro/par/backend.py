"""Pluggable execution backends: ``serial`` / ``thread`` / ``process``
plus the work-stealing ``steal-thread`` / ``steal-process`` variants.

One fan-out API, five engines:

- **serial** — an inline loop in the caller's process.  The reference
  semantics; its overhead over a bare ``for`` loop is one function
  call and one result-unwrap per item (< 3%, gated by the
  ``par_fanout`` bench case).
- **thread** — a cached :class:`~concurrent.futures.ThreadPoolExecutor`.
  Overlaps waits (simulated service, I/O, lock-released numpy);
  shares the parent's metrics registry and tracer directly.
- **process** — a cached :class:`~concurrent.futures.ProcessPoolExecutor`
  (fork context where available).  True parallelism; guard/validate
  env config is re-applied per chunk, large operands ride
  :class:`~repro.par.shm.SharedArray` segments, and each chunk ships
  back its counter/gauge deltas and trace spans, which the parent
  merges into the process-wide registries on join.
- **steal-thread / steal-process** — work-stealing variants for
  fine-grained or skewed task sets (:mod:`repro.par.steal`).  Instead
  of static pre-chunking, a parent-side scheduler holds per-worker
  deques of index ranges; owners nibble small chunks off the front of
  their own deque and idle workers steal half of the largest victim's
  remaining range from the back, splitting down to a minimum grain.
  Same determinism/obs/error contract as the static backends.

Backend selection: an explicit ``backend=`` argument wins, otherwise
the ``REPRO_PAR`` environment variable (``serial`` when unset).  Both
accept ``kind`` or ``kind:N`` (worker count), e.g. ``process:4``.

Determinism contract: for a pure task function, ``map_fanout`` returns
bit-identical results for every backend, worker count, and chunk size
— results are ordered by input index, dispatch is chunked but
reassembled in order, and RNG material must be passed *into* tasks
(pre-spawned per task via ``SeedSequence.spawn``), never derived from
worker identity.  Workers never start nested pools: ``REPRO_PAR`` is
forced to ``serial`` inside every worker chunk.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.guard.deadline import Deadline
from repro.guard.errors import DeadlineExceededError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.par.errors import ParError, WorkerCrashError, WorkerTaskError

#: Environment variable selecting the default backend (``kind[:N]``).
BACKEND_ENV = "REPRO_PAR"

#: Config propagated into process workers on every chunk (re-read per
#: chunk so mode flips in the parent reach long-lived pool workers).
PROPAGATED_ENV = (
    "REPRO_GUARD",
    "REPRO_OBS_VALIDATE",
    "REPRO_JIT_CACHE_DIR",
)

KINDS = ("serial", "thread", "process", "steal-thread", "steal-process")

#: trace records buffered per worker chunk before the oldest drop
WORKER_TRACE_CAPACITY = 65536


@dataclass(frozen=True)
class Backend:
    """A resolved execution backend: engine kind + worker count."""

    kind: str
    workers: int

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"backend kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def parse_backend_spec(spec: str) -> Tuple[str, Optional[int]]:
    """``"process:4"`` -> ``("process", 4)``; bare kind -> ``(kind, None)``."""
    raw = spec.strip().lower()
    kind, sep, count = raw.partition(":")
    if kind not in KINDS:
        raise ValueError(
            f"backend spec {spec!r}: kind must be one of {KINDS}"
        )
    if not sep:
        return kind, None
    try:
        workers = int(count)
    except ValueError:
        raise ValueError(f"backend spec {spec!r}: bad worker count") from None
    if workers < 1:
        raise ValueError(f"backend spec {spec!r}: workers must be >= 1")
    return kind, workers


def backend_from_env() -> str:
    """The ``REPRO_PAR`` value, or ``"serial"`` when unset/empty."""
    return os.environ.get(BACKEND_ENV, "").strip() or "serial"


def get_backend(
    spec: Union[None, str, Backend] = None,
    workers: Optional[int] = None,
) -> Backend:
    """Resolve *spec* (argument > ``REPRO_PAR`` env > serial)."""
    if isinstance(spec, Backend):
        if workers is not None and workers != spec.workers:
            return Backend(spec.kind, workers)
        return spec
    kind, spec_workers = parse_backend_spec(
        spec if spec is not None else backend_from_env()
    )
    n = workers if workers is not None else spec_workers
    if n is None:
        n = 1 if kind == "serial" else max(1, os.cpu_count() or 1)
    return Backend(kind, n)


@dataclass
class Task:
    """One unit of ensemble work: a callable plus its arguments."""

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Optional[Dict[str, Any]] = None
    name: Optional[str] = None

    def run(self) -> Any:
        return self.fn(*self.args, **(self.kwargs or {}))


# ---------------------------------------------------------------------------
# worker-side chunk execution
# ---------------------------------------------------------------------------


class _TaskFailure:
    """Picklable record of one failed task (crossed back to the parent)."""

    __slots__ = ("index", "error_type", "message", "worker_traceback",
                 "exception")

    def __init__(self, index: int, error_type: str, message: str,
                 worker_traceback: str = "", exception=None):
        self.index = index
        self.error_type = error_type
        self.message = message
        self.worker_traceback = worker_traceback
        self.exception = exception  # in-process backends only

    def __getstate__(self):
        # the live exception object stays on the worker side
        return (self.index, self.error_type, self.message,
                self.worker_traceback)

    def __setstate__(self, state):
        self.index, self.error_type, self.message, self.worker_traceback = (
            state
        )
        self.exception = None


def _run_items(fn, items: Sequence[Any], start: int,
               deadline_at: Optional[float]) -> List[Tuple[bool, Any]]:
    """Run a chunk; each slot is ``(ok, value-or-_TaskFailure)``."""
    out: List[Tuple[bool, Any]] = []
    for off, item in enumerate(items):
        index = start + off
        if deadline_at is not None and time.time() >= deadline_at:
            out.append((False, _TaskFailure(
                index, "DeadlineExceededError",
                f"fan-out deadline expired before task {index}",
            )))
            continue
        try:
            out.append((True, fn(item)))
        except BaseException as exc:  # surfaced as typed errors on join
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            out.append((False, _TaskFailure(
                index, type(exc).__name__, str(exc),
                traceback.format_exc(), exception=exc,
            )))
    return out


def _apply_env(env: Dict[str, Optional[str]]) -> None:
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def _process_worker_chunk(payload):
    """Entry point executed inside a pool worker (top-level, picklable)."""
    fn, items, start, env, deadline_at, capture_obs, want_trace = payload
    _apply_env(env)
    sink = None
    if want_trace:
        sink = _trace.RingBufferSink(capacity=WORKER_TRACE_CAPACITY)
        _trace.TRACER.enable(sink)
    before = _metrics.snapshot() if capture_obs else None
    try:
        results = _run_items(fn, items, start, deadline_at)
    finally:
        if sink is not None:
            _trace.TRACER.remove_sink(sink)
    counters = gauges = spans = None
    if capture_obs:
        after = _metrics.snapshot()
        counters = {
            name: value - before["counters"].get(name, 0)
            for name, value in after["counters"].items()
            if value != before["counters"].get(name, 0)
        }
        gauges = {
            name: value
            for name, value in after["gauges"].items()
            if value != before["gauges"].get(name)
        }
    if sink is not None:
        pid = os.getpid()
        spans = [dict(rec, worker_pid=pid) for rec in sink]
    return results, counters, gauges, spans


def _merge_obs(counters, gauges, spans) -> None:
    """Fold one chunk's child observability back into the parent."""
    if counters:
        for name, delta in counters.items():
            _metrics.counter(name).add(delta)
    if gauges:
        for name, value in gauges.items():
            _metrics.gauge(name).set(value)
    if spans and _trace.TRACER.enabled:
        for rec in spans:
            _trace.TRACER._emit(rec)


# ---------------------------------------------------------------------------
# cached pools
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[str, int, str], Any] = {}
_POOLS_LOCK = threading.Lock()


def _worker_bootstrap() -> None:
    """Pool-worker initializer: workers never start nested pools."""
    os.environ[BACKEND_ENV] = "serial"


def _mp_context():
    """The multiprocessing context process pools are built on."""
    try:
        import multiprocessing as mp

        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


def _pool_key(kind: str, workers: int) -> Tuple[str, int, str]:
    """Cache key: (kind, workers, mp context name).

    The context name matters: a pool forked under one start method
    must not be reused if the preferred context changes (e.g. a test
    monkeypatching to spawn), or chunk payloads pickled for one
    context land on workers bootstrapped under another.
    """
    if kind == "thread":
        return (kind, workers, "")
    ctx = _mp_context()
    return (kind, workers, getattr(ctx, "_name", None) or "default")


def _get_pool(kind: str, workers: int):
    key = _pool_key(kind, workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if kind == "thread":
                pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-par",
                )
            else:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=_mp_context(),
                    initializer=_worker_bootstrap,
                )
            _POOLS[key] = pool
    return pool


def _drop_pool(kind: str, workers: int) -> None:
    with _POOLS_LOCK:
        pool = _POOLS.pop(_pool_key(kind, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every cached executor (tests, interpreter exit).

    Also sweeps the shared-memory registry: any segment still owned
    once the pools are gone has no worker left to consume it and is
    reported (and reclaimed) as a leak.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
    from repro.par import shm as _shm

    _shm.sweep_leaked_segments(warn=True)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# the fan-out API
# ---------------------------------------------------------------------------


def _deadline_at(deadline: Union[None, float, Deadline]) -> Optional[float]:
    """Normalize to an absolute wall-clock time (``time.time`` scale)."""
    if deadline is None:
        return None
    if isinstance(deadline, Deadline):
        return deadline.at
    budget = float(deadline)
    if budget <= 0:
        raise ValueError("deadline budget must be positive")
    return time.time() + budget


def _unwrap(wrapped: List[Tuple[bool, Any]], kind: str) -> List[Any]:
    for ok, value in wrapped:
        if ok:
            continue
        f: _TaskFailure = value
        if f.error_type == "DeadlineExceededError":
            _metrics.counter("par.deadline_expired").add()
            raise DeadlineExceededError(
                f.message, where="par.map_fanout",
                context={"task_index": f.index, "backend": kind},
            )
        _metrics.counter("par.task_errors").add()
        err = WorkerTaskError(f.index, f.error_type, f.message,
                              f.worker_traceback)
        if f.exception is not None:
            raise err from f.exception
        raise err
    return [value for _, value in wrapped]


def _chunk_ok(future) -> bool:
    """True when a chunk's result is safely in hand despite the break."""
    if not future.done() or future.cancelled():
        return False
    return future.exception() is None


def _pending_indices(futures, starts: List[int], chunk: int,
                     n_items: int) -> List[int]:
    """Input indices with no delivered result when the pool broke.

    Chunks whose futures completed cleanly before the break are done;
    everything else — futures that were cancelled, errored, or never
    submitted (``submit`` itself raised on a broken pool) — still owes
    its index range.
    """
    pending: List[int] = []
    for i, start in enumerate(starts):
        if i < len(futures) and _chunk_ok(futures[i]):
            continue
        pending.extend(range(start, min(start + chunk, n_items)))
    return pending


def _chunk_bounds(n_items: int, workers: int,
                  chunk_size: Optional[int]) -> int:
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size
    # ~4 chunks per worker: load-balances stragglers without drowning
    # the queue in per-item dispatch overhead
    return max(1, -(-n_items // (workers * 4)))


def map_fanout(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    backend: Union[None, str, Backend] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    deadline: Union[None, float, Deadline] = None,
    capture_obs: bool = True,
) -> List[Any]:
    """Apply *fn* to every item, in input order, on the chosen backend.

    The workhorse primitive: chunked dispatch, ordered reassembly,
    typed failures (:class:`WorkerTaskError` / :class:`WorkerCrashError`
    / :class:`~repro.guard.errors.DeadlineExceededError`), and — for
    the process backend — per-chunk guard-env propagation plus child
    metric/span merge on join.  For pure *fn* the result list is
    bit-identical across backends, worker counts, and chunk sizes.
    """
    items = list(items)
    be = get_backend(backend, workers)
    if not items:
        return []
    deadline_at = _deadline_at(deadline)
    if be.kind == "serial":
        return _unwrap(_run_items(fn, items, 0, deadline_at), "serial")

    if be.kind.startswith("steal-"):
        from repro.par.steal import steal_fanout

        # chunk_size doubles as the minimum steal grain: ranges are
        # split on steal, but never below this many items
        return steal_fanout(
            fn, items, be, deadline_at=deadline_at,
            capture_obs=capture_obs, min_grain=chunk_size,
        )

    chunk = _chunk_bounds(len(items), be.workers, chunk_size)
    starts = list(range(0, len(items), chunk))
    _metrics.counter("par.fanouts").add()
    _metrics.counter(f"par.fanouts.{be.kind}").add()
    _metrics.counter("par.tasks_dispatched").add(len(items))

    if be.kind == "thread":
        pool = _get_pool("thread", be.workers)
        futures = [
            pool.submit(_run_items, fn, items[s:s + chunk], s, deadline_at)
            for s in starts
        ]
        wrapped: List[Tuple[bool, Any]] = []
        for future in futures:
            wrapped.extend(future.result())
        return _unwrap(wrapped, "thread")

    # process backend
    env = {key: os.environ.get(key) for key in PROPAGATED_ENV}
    want_trace = _trace.TRACER.enabled
    pool = _get_pool("process", be.workers)
    payloads = [
        (fn, items[s:s + chunk], s, env, deadline_at, capture_obs,
         want_trace)
        for s in starts
    ]
    wrapped = []
    futures: List[Any] = []
    try:
        # submit stays inside the guard: a crash in an early chunk can
        # mark the pool broken while later chunks are still being
        # submitted, and then submit itself raises BrokenProcessPool
        futures = [pool.submit(_process_worker_chunk, p) for p in payloads]
        for future in futures:
            results, counters, gauges, spans = future.result()
            _merge_obs(counters, gauges, spans)
            wrapped.extend(results)
    except BrokenExecutor as exc:
        _drop_pool("process", be.workers)
        _metrics.counter("par.worker_crashes").add()
        pending = _pending_indices(futures, starts, chunk, len(items))
        raise WorkerCrashError(
            f"a process worker died mid-fan-out ({exc!r}); "
            "the broken pool was discarded", backend="process",
            pending_indices=pending,
        ) from exc
    return _unwrap(wrapped, "process")


def _call_task(task: Task) -> Any:
    return task.run()


def run_ensemble(
    tasks: Iterable[Task],
    *,
    backend: Union[None, str, Backend] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    deadline: Union[None, float, Deadline] = None,
    capture_obs: bool = True,
) -> List[Any]:
    """Run heterogeneous :class:`Task`\\ s; results in task order."""
    task_list = list(tasks)
    for t in task_list:
        if not isinstance(t, Task):
            raise TypeError("run_ensemble expects repro.par.Task objects")
    return map_fanout(
        _call_task, task_list, backend=backend, workers=workers,
        chunk_size=chunk_size, deadline=deadline, capture_obs=capture_obs,
    )
