"""Work-stealing fan-out executor: ``steal-thread`` / ``steal-process``.

The static backends in :mod:`repro.par.backend` pre-chunk the input
into ``~4 * workers`` fixed ranges.  That is the right call for chunky,
uniform tasks, but it loses badly on the two shapes the paper's
workload is full of: *many tiny tasks* (dispatch overhead per item
dominates unless chunks are large) and *skewed tasks* (one fixed chunk
ends up holding most of the work and one worker chews it alone while
the rest idle).

This module keeps the chunking decision *online* instead:

- A parent-side :class:`StealScheduler` holds one deque of
  ``(start, end)`` index ranges per worker, seeded with an even
  contiguous partition of the input.
- An **owner** takes work from the *front* of its own deque, at most
  ``min_grain`` items at a time (chunked self-scheduling), so its
  remaining range shrinks front-to-back.
- An idle worker (**thief**) picks the victim with the most remaining
  work and steals the *back half* of the victim's last range —
  splitting on steal, never below ``min_grain``.  Front/back
  separation keeps owner and thief out of each other's cache lines
  (here: out of each other's index ranges) and recursively subdivides
  whatever region turns out to be expensive.

Determinism: the schedule is timing-dependent but the *results* are
not — every chunk writes into its own disjoint ``wrapped[start:end]``
slice and the assembled list is in input order, so for a pure task
function the output is bit-identical to the serial backend.  Failures
ride the same typed surface as the static backends
(:class:`~repro.par.errors.WorkerTaskError`, ordered-first on join;
:class:`~repro.par.errors.WorkerCrashError` with precise
``pending_indices``; ``DeadlineExceededError`` per expired item).

``steal-thread`` runs dedicated (non-pooled) worker threads so a
stealing fan-out can never deadlock against the cached thread pool;
a fan-out issued *inside* a steal worker degrades to an inline serial
loop, mirroring the ``REPRO_PAR=serial`` bootstrap of process workers.
``steal-process`` pumps chunks through the cached fork pool, one
in-flight chunk per logical slot, reusing the static backend's worker
entry point so guard-env propagation and obs merge-on-join behave
identically.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.par.errors import WorkerCrashError

STEAL_KINDS = ("steal-thread", "steal-process")

#: Default grain divisor per worker: thread chunks are cheap to
#: dispatch (one lock acquire), process chunks cost a pickle round
#: trip, so the process grain is coarser.
_THREAD_GRAIN_DIV = 64
_PROCESS_GRAIN_DIV = 16

_IN_STEAL_WORKER = threading.local()


def default_min_grain(kind: str, n_items: int, workers: int) -> int:
    """The smallest range a steal may split down to."""
    div = _THREAD_GRAIN_DIV if kind == "steal-thread" else _PROCESS_GRAIN_DIV
    return max(1, n_items // (workers * div))


class StealScheduler:
    """Per-worker deques of index ranges with a steal-half protocol.

    All state lives in the parent; workers call :meth:`next_chunk`
    under one lock.  Ranges are half-open ``(start, end)`` pairs over
    the input index space.
    """

    def __init__(self, n_items: int, workers: int, min_grain: int):
        if n_items < 0 or workers < 1:
            raise ValueError("need n_items >= 0 and workers >= 1")
        self.n_items = n_items
        self.workers = workers
        self.min_grain = max(1, int(min_grain))
        self._lock = threading.Lock()
        self._deques: List[deque] = [deque() for _ in range(workers)]
        # even contiguous partition; empty slots are legal (n < workers)
        bounds = [round(w * n_items / workers) for w in range(workers + 1)]
        for w in range(workers):
            if bounds[w] < bounds[w + 1]:
                self._deques[w].append((bounds[w], bounds[w + 1]))
        self.steals = 0
        self.splits = 0
        self.chunks = 0

    def next_chunk(self, wid: int) -> Optional[Tuple[int, int]]:
        """The next ``(start, end)`` range for worker *wid*, else None.

        Owners nibble ``min_grain`` items off the front of their own
        deque; an empty owner steals half of the busiest victim's back
        range first.  Returns ``None`` only when no work remains
        anywhere.
        """
        with self._lock:
            dq = self._deques[wid]
            if not dq and not self._steal_into(wid):
                return None
            s, e = dq.popleft()
            if e - s > self.min_grain:
                dq.appendleft((s + self.min_grain, e))
                self.splits += 1
                e = s + self.min_grain
            self.chunks += 1
            return s, e

    def _steal_into(self, wid: int) -> bool:
        victim, most = -1, 0
        for w, dq in enumerate(self._deques):
            if w == wid or not dq:
                continue
            remaining = sum(e - s for s, e in dq)
            if remaining > most:
                victim, most = w, remaining
        if victim < 0:
            return False
        s, e = self._deques[victim].pop()
        if e - s > self.min_grain:
            mid = s + (e - s) // 2
            self._deques[victim].append((s, mid))
            self._deques[wid].append((mid, e))
        else:
            self._deques[wid].append((s, e))
        self.steals += 1
        return True

    def pending_spans(self) -> List[Tuple[int, int]]:
        """Ranges not yet handed out (crash accounting)."""
        with self._lock:
            return [span for dq in self._deques for span in dq]


def in_steal_worker() -> bool:
    """True when the calling thread is a steal-thread worker."""
    return getattr(_IN_STEAL_WORKER, "active", False)


def _steal_thread_fanout(fn, items: Sequence[Any], workers: int,
                         deadline_at: Optional[float],
                         min_grain: int) -> List[Tuple[bool, Any]]:
    from repro.par.backend import _run_items

    n = len(items)
    sched = StealScheduler(n, workers, min_grain)
    wrapped: List[Any] = [None] * n

    def loop(wid: int) -> None:
        _IN_STEAL_WORKER.active = True
        try:
            while True:
                span = sched.next_chunk(wid)
                if span is None:
                    return
                s, e = span
                wrapped[s:e] = _run_items(fn, items[s:e], s, deadline_at)
        finally:
            _IN_STEAL_WORKER.active = False

    # dedicated threads, not the cached pool: a fan-out issued while
    # the pool is saturated with steal workers would deadlock
    threads = [
        threading.Thread(target=loop, args=(w,),
                         name=f"repro-steal-{w}", daemon=True)
        for w in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    _record_sched(sched)
    return wrapped


def _steal_process_fanout(fn, items: Sequence[Any], workers: int,
                          deadline_at: Optional[float], capture_obs: bool,
                          min_grain: int) -> List[Tuple[bool, Any]]:
    from repro.par.backend import (
        PROPAGATED_ENV,
        _drop_pool,
        _get_pool,
        _merge_obs,
        _process_worker_chunk,
    )

    n = len(items)
    sched = StealScheduler(n, workers, min_grain)
    env = {key: os.environ.get(key) for key in PROPAGATED_ENV}
    want_trace = _trace.TRACER.enabled
    pool = _get_pool("process", workers)
    wrapped: List[Any] = [None] * n
    inflight: Dict[Any, Tuple[int, Tuple[int, int]]] = {}

    def submit(slot: int) -> bool:
        span = sched.next_chunk(slot)
        if span is None:
            return False
        s, e = span
        payload = (fn, items[s:e], s, env, deadline_at, capture_obs,
                   want_trace)
        inflight[pool.submit(_process_worker_chunk, payload)] = (slot, span)
        return True

    try:
        # one in-flight chunk per logical slot; each completion refills
        # its own slot, so the scheduler sees slot ids as worker ids
        for slot in range(workers):
            if not submit(slot):
                break
        while inflight:
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                slot, (s, e) = inflight.pop(future)
                results, counters, gauges, spans = future.result()
                _merge_obs(counters, gauges, spans)
                wrapped[s:e] = results
                submit(slot)
    except BrokenExecutor as exc:
        _drop_pool("process", workers)
        _metrics.counter("par.worker_crashes").add()
        # precise accounting: anything without a delivered result —
        # queued in the scheduler, in flight, or lost to a raced
        # submit — is still owed
        pending = [i for i in range(n) if wrapped[i] is None]
        raise WorkerCrashError(
            f"a process worker died mid-steal-fan-out ({exc!r}); "
            "the broken pool was discarded", backend="steal-process",
            pending_indices=pending,
        ) from exc
    _record_sched(sched)
    return wrapped


def _record_sched(sched: StealScheduler) -> None:
    _metrics.counter("par.steal.chunks").add(sched.chunks)
    if sched.steals:
        _metrics.counter("par.steal.steals").add(sched.steals)
    if sched.splits:
        _metrics.counter("par.steal.splits").add(sched.splits)


def steal_fanout(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    be,
    *,
    deadline_at: Optional[float] = None,
    capture_obs: bool = True,
    min_grain: Optional[int] = None,
) -> List[Any]:
    """Run *fn* over *items* on a work-stealing backend, in order.

    Called from :func:`repro.par.backend.map_fanout`; *be* is a
    resolved ``Backend`` whose kind is in :data:`STEAL_KINDS`.
    """
    from repro.par.backend import _run_items, _unwrap

    if be.kind not in STEAL_KINDS:
        raise ValueError(f"not a steal backend: {be.kind!r}")
    n = len(items)
    if min_grain is not None and min_grain < 1:
        raise ValueError("min_grain must be >= 1")
    grain = min_grain or default_min_grain(be.kind, n, be.workers)

    if in_steal_worker():
        # nested fan-out inside a steal worker: degrade to an inline
        # serial loop (the thread-side twin of the process workers'
        # forced REPRO_PAR=serial bootstrap)
        return _unwrap(_run_items(fn, items, 0, deadline_at), be.kind)

    _metrics.counter("par.fanouts").add()
    _metrics.counter(f"par.fanouts.{be.kind}").add()
    _metrics.counter("par.tasks_dispatched").add(n)

    if be.kind == "steal-thread":
        wrapped = _steal_thread_fanout(fn, items, be.workers, deadline_at,
                                       grain)
    else:
        wrapped = _steal_process_fanout(fn, items, be.workers, deadline_at,
                                        capture_obs, grain)
    return _unwrap(wrapped, be.kind)
