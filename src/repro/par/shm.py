"""Shared-memory NumPy array transport for process fan-outs.

Pickling a large operand into every chunk payload is the classic
fan-out tax: an ``(n, d)`` training set is serialized once per chunk
and copied once per worker.  :class:`SharedArray` moves the payload
into a ``multiprocessing.shared_memory`` segment once; what crosses
the pipe afterwards is a ``(name, shape, dtype)`` handle, and every
worker maps the same physical pages read-only-by-convention.

For the serial and thread backends the class degrades to a plain
by-reference wrapper (same process, same address space — there is
nothing to transport), so call sites can use one code path for all
three backends:

>>> sx = SharedArray.share(x, backend_kind)    # parent, once
>>> ... map_fanout(fn, [(sx, ...) for ...])    # handle in payloads
>>> x = sx.asarray()                           # worker, zero-copy
>>> sx.unlink()                                # parent, when done

The contract is read-only: workers must not write through
:meth:`asarray` views (the segment is shared; a write would race the
other workers and break the serial/process bit-exactness contract).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

try:  # stdlib since 3.8; guarded for exotic minimal builds
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - always present on CPython
    _shm = None


def _fork_available() -> bool:
    try:
        import multiprocessing as mp

        mp.get_context("fork")
        return True
    except ValueError:  # pragma: no cover - non-fork platforms
        return False


def _unregister_tracker(name: str) -> None:
    """Detach *name* from the attaching process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even when merely attaching (fixed only in 3.13's
    ``track=False``).  The parent owns the segment's lifetime, so a
    *spawn*-context worker — which runs its own tracker — must
    unregister or its tracker double-frees the segment at exit.
    Fork-context workers (what :mod:`repro.par` uses when available)
    inherit the parent's tracker, where the attach-register is a
    set-no-op; unregistering there would strip the parent's own entry
    and break the eventual ``unlink``, so it is skipped.
    """
    if _fork_available():
        return
    try:  # pragma: no cover - spawn-only platforms
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedArray:
    """Picklable handle to an ndarray for cross-process fan-out."""

    def __init__(self, array: np.ndarray,
                 segment: Optional[Any] = None, owner: bool = False):
        self._array = array
        self._segment = segment
        self._owner = owner

    @classmethod
    def share(cls, array: np.ndarray, backend_kind: str = "process"
              ) -> "SharedArray":
        """Wrap *array* for transport under *backend_kind*.

        Only the process backend pays for a shared segment (plus one
        copy into it); serial and thread backends share the caller's
        array by reference.
        """
        array = np.asarray(array)
        if backend_kind != "process" or _shm is None:
            return cls(array)
        seg = _shm.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
        view[...] = array
        return cls(view, segment=seg, owner=True)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def asarray(self) -> np.ndarray:
        """The wrapped array (zero-copy in every backend)."""
        return self._array

    def unlink(self) -> None:
        """Release the shared segment (parent side, once, when done)."""
        seg, self._segment = self._segment, None
        if seg is None:
            return
        # drop the buffer view before closing the mapping
        self._array = np.array(self._array, copy=True)
        seg.close()
        if self._owner:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- pickling: segment-backed arrays travel as handles -------------

    def __getstate__(self):
        if self._segment is not None:
            return ("handle", self._segment.name, self._array.shape,
                    self._array.dtype.str)
        return ("inline", self._array)

    def __setstate__(self, state):
        if state[0] == "inline":
            self.__init__(state[1])
            return
        _, name, shape, dtype = state
        seg = _shm.SharedMemory(name=name)
        _unregister_tracker(name)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        self.__init__(array, segment=seg, owner=False)
