"""Shared-memory NumPy array transport for process fan-outs.

Pickling a large operand into every chunk payload is the classic
fan-out tax: an ``(n, d)`` training set is serialized once per chunk
and copied once per worker.  :class:`SharedArray` moves the payload
into a ``multiprocessing.shared_memory`` segment once; what crosses
the pipe afterwards is a ``(name, shape, dtype)`` handle, and every
worker maps the same physical pages read-only-by-convention.

For the serial and thread backends the class degrades to a plain
by-reference wrapper (same process, same address space — there is
nothing to transport), so call sites can use one code path for every
backend.  The staging handshake used by the hot paths (minikin zone
solves, KAVG/ASGD weight exchange, MuMMI candidate eval, md pair
forces) is the :class:`ShmStage` context manager:

>>> with ShmStage(backend.kind) as stage:
...     sx = stage.share(x)                    # parent, once
...     out = map_fanout(fn, [(sx, i) for i in parts], backend=backend)
... # segments released here, even if the fan-out raised

Lifecycle is refcounted on the owner side: every segment is tracked
in a module registry; :meth:`SharedArray.close` drops one reference
and the segment is unlinked when the count reaches zero
(:meth:`SharedArray.addref` takes an extra one when a segment feeds
two overlapping fan-outs).  ``close`` is idempotent, ``asarray`` after
close raises, attaching to an already-released segment raises a clean
:class:`~repro.par.errors.ParError`, and whatever is still registered
when the cached pools shut down is reported — and reclaimed — by
:func:`sweep_leaked_segments` as a leak.

The contract is read-only: workers must not write through
:meth:`asarray` views (the segment is shared; a write would race the
other workers and break the serial/process bit-exactness contract).
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

try:  # stdlib since 3.8; guarded for exotic minimal builds
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - always present on CPython
    _shm = None

from repro.par.errors import ParError

#: backend kinds whose workers live in other processes (and therefore
#: need a real shared segment rather than a by-reference wrapper)
PROCESS_KINDS = ("process", "steal-process")


def _fork_available() -> bool:
    try:
        import multiprocessing as mp

        mp.get_context("fork")
        return True
    except ValueError:  # pragma: no cover - non-fork platforms
        return False


def _unregister_tracker(name: str) -> None:
    """Detach *name* from the attaching process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even when merely attaching (fixed only in 3.13's
    ``track=False``).  The parent owns the segment's lifetime, so a
    *spawn*-context worker — which runs its own tracker — must
    unregister or its tracker double-frees the segment at exit.
    Fork-context workers (what :mod:`repro.par` uses when available)
    inherit the parent's tracker, where the attach-register is a
    set-no-op; unregistering there would strip the parent's own entry
    and break the eventual ``unlink``, so it is skipped.
    """
    if _fork_available():
        return
    try:  # pragma: no cover - spawn-only platforms
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class _OwnedSegment:
    """Registry record for one parent-owned segment."""

    __slots__ = ("segment", "refs")

    def __init__(self, segment: Any):
        self.segment = segment
        self.refs = 1


_REGISTRY: Dict[str, _OwnedSegment] = {}
_REGISTRY_LOCK = threading.Lock()


def live_segments() -> Tuple[str, ...]:
    """Names of segments this process still owns (leak detector probe)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def sweep_leaked_segments(warn: bool = False) -> List[str]:
    """Force-release every still-owned segment; returns their names.

    Called on pool shutdown (and from tests): a segment still in the
    registry at that point has no consumer left and is a leak — some
    staging path exited without closing.  The sweep reclaims the OS
    resources so a leak can't outlive the interpreter, and optionally
    warns so the offending path gets fixed rather than papered over.
    """
    with _REGISTRY_LOCK:
        leaked = dict(_REGISTRY)
        _REGISTRY.clear()
    for name, owned in leaked.items():
        try:
            owned.segment.close()
            owned.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    names = sorted(leaked)
    if names and warn:
        warnings.warn(
            f"repro.par.shm: swept {len(names)} leaked shared-memory "
            f"segment(s): {', '.join(names)}",
            ResourceWarning, stacklevel=2,
        )
    return names


def _release_owned(name: str) -> None:
    """Drop one owner reference; unlink the segment at zero."""
    with _REGISTRY_LOCK:
        owned = _REGISTRY.get(name)
        if owned is None:
            return
        owned.refs -= 1
        if owned.refs > 0:
            return
        del _REGISTRY[name]
    owned.segment.close()
    try:
        owned.segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


class SharedArray:
    """Picklable, refcounted handle to an ndarray for process fan-out."""

    def __init__(self, array: np.ndarray,
                 segment: Optional[Any] = None, owner: bool = False):
        self._array = array
        self._segment = segment
        self._owner = owner
        self._closed = False

    @classmethod
    def share(cls, array: np.ndarray, backend_kind: str = "process"
              ) -> "SharedArray":
        """Wrap *array* for transport under *backend_kind*.

        Only the process-based backends pay for a shared segment (plus
        one copy into it); serial and thread backends share the
        caller's array by reference.
        """
        array = np.asarray(array)
        if backend_kind not in PROCESS_KINDS or _shm is None:
            return cls(array)
        seg = _shm.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
        view[...] = array
        with _REGISTRY_LOCK:
            _REGISTRY[seg.name] = _OwnedSegment(seg)
        return cls(view, segment=seg, owner=True)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def closed(self) -> bool:
        return self._closed

    def asarray(self) -> np.ndarray:
        """The wrapped array (zero-copy in every backend)."""
        if self._closed:
            raise ParError(
                "SharedArray is closed; the segment may already be "
                "unlinked — stage a fresh handle instead"
            )
        return self._array

    def addref(self) -> "SharedArray":
        """A fresh owner handle on the same segment (close it too).

        Lets one staged segment feed two overlapping fan-outs: each
        scope closes its own handle and the segment is unlinked when
        the last one goes.
        """
        if self._closed:
            raise ParError("cannot addref a closed SharedArray")
        if not (self._owner and self._segment is not None):
            return SharedArray(self._array)
        with _REGISTRY_LOCK:
            owned = _REGISTRY.get(self._segment.name)
            if owned is None:
                raise ParError(
                    "SharedArray segment already released from the "
                    "registry; cannot addref"
                )
            owned.refs += 1
        return SharedArray(self._array, segment=self._segment, owner=True)

    def close(self) -> None:
        """Release this handle (idempotent).

        Owner side: drops one registry reference; the segment is
        unlinked when the last reference goes.  Worker side: detaches
        the local mapping.  After close, :meth:`asarray` raises.
        """
        if self._closed:
            return
        self._closed = True
        seg, self._segment = self._segment, None
        self._array = None
        if seg is None:
            return
        if self._owner:
            _release_owned(seg.name)
        else:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - live views in worker
                pass

    # backwards-compatible spelling used by the original call sites;
    # identical to close() under the refcounted lifecycle
    unlink = close

    # -- pickling: segment-backed arrays travel as handles -------------

    def __getstate__(self):
        if self._closed:
            raise ParError("cannot pickle a closed SharedArray")
        if self._segment is not None:
            return ("handle", self._segment.name, self._array.shape,
                    self._array.dtype.str)
        return ("inline", self._array)

    def __setstate__(self, state):
        if state[0] == "inline":
            self.__init__(state[1])
            return
        _, name, shape, dtype = state
        try:
            seg = _shm.SharedMemory(name=name)
        except FileNotFoundError:
            raise ParError(
                f"cannot attach SharedArray segment {name!r}: it was "
                "already closed/unlinked by its owner (stage handles "
                "must outlive the fan-out that consumes them)"
            ) from None
        _unregister_tracker(name)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        self.__init__(array, segment=seg, owner=False)


class ShmStage:
    """Staging scope: share arrays for one fan-out, release on exit.

    Guarantees release even when the fan-out raises (worker exception,
    crash, deadline) — the classic leak path is a ``share`` followed
    by an exception before the matching ``unlink``.  Reusable pattern
    for every shm hot path; cheap no-op for in-process backends.
    """

    def __init__(self, backend_kind: str = "process"):
        self.backend_kind = backend_kind
        self._handles: List[SharedArray] = []
        self._closed = False

    def share(self, array: np.ndarray) -> SharedArray:
        if self._closed:
            raise ParError("ShmStage is closed")
        handle = SharedArray.share(array, self.backend_kind)
        self._handles.append(handle)
        return handle

    def adopt(self, handle: SharedArray) -> SharedArray:
        """Tie an existing handle's release to this stage's exit."""
        if self._closed:
            raise ParError("ShmStage is closed")
        self._handles.append(handle)
        return handle

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        handles, self._handles = self._handles, []
        for handle in reversed(handles):
            handle.close()

    def __enter__(self) -> "ShmStage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
