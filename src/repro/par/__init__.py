"""Parallel execution backend for the repro workload (``repro.par``).

The paper's premise is a heterogeneous, massively parallel machine
(§2: 4 GPUs + 44 cores per Sierra node), and nearly every campaign in
this repo — KAVG/ASGD learner rounds, the three-stream ensemble, MuMMI
per-cycle micro evaluation, minikin zone sweeps, the bench case runner
— is an embarrassingly parallel fan-out.  ``repro.par`` gives them one
engine with interchangeable backends (``serial`` / ``thread`` /
``process`` plus the work-stealing ``steal-thread`` / ``steal-process``
variants, selected per call or via ``REPRO_PAR``), under a hard
determinism contract: *for pure task functions, every backend returns
bit-identical results* (see DESIGN.md §12 and §14).

Public surface:

- :func:`map_fanout` — ordered, chunked map over items.
- :func:`run_ensemble` — heterogeneous :class:`Task` fan-out.
- :class:`SharedArray` — shared-memory transport for large operands,
  refcounted; :class:`ShmStage` scopes a staging handshake to one
  fan-out and :func:`live_segments` / :func:`sweep_leaked_segments`
  expose the leak detector that runs on pool shutdown.
- :func:`get_backend` / :class:`Backend` — spec resolution
  (``"process:4"``, env default, worker counts).
- :class:`WorkerTaskError` / :class:`WorkerCrashError` /
  :class:`PoisonTaskError` — typed failure surface (a dead worker
  never hangs the parent; a crash reports its ``pending_indices``).
- :class:`Supervisor` — self-healing worker pool: heartbeat liveness,
  automatic replacement with capped backoff, poison-task quarantine,
  WAL-journaled completions for exact resubmission after a kill.
- :func:`shutdown_pools` — drop the cached executors (tests/atexit).

Observability composes: process-backend chunks ship their counter and
gauge deltas and their trace spans back to the parent, which merges
them into the process-wide registries on join — ``obs.snapshot()``
after a fan-out reads the same regardless of backend.  Guard config
(``REPRO_GUARD``, ``REPRO_OBS_VALIDATE``) is re-propagated into
workers on every chunk, and a wall-clock deadline (float budget or
:class:`repro.guard.deadline.Deadline`) is enforced before each task.
"""

from repro.par.backend import (
    BACKEND_ENV,
    Backend,
    PROPAGATED_ENV,
    Task,
    backend_from_env,
    get_backend,
    map_fanout,
    parse_backend_spec,
    run_ensemble,
    shutdown_pools,
)
from repro.par.errors import (
    ParError,
    PoisonTaskError,
    WorkerCrashError,
    WorkerTaskError,
)
from repro.par.shm import (
    SharedArray,
    ShmStage,
    live_segments,
    sweep_leaked_segments,
)
from repro.par.steal import STEAL_KINDS, StealScheduler
from repro.par.supervisor import Supervisor

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "PROPAGATED_ENV",
    "ParError",
    "PoisonTaskError",
    "STEAL_KINDS",
    "SharedArray",
    "ShmStage",
    "StealScheduler",
    "Supervisor",
    "Task",
    "WorkerCrashError",
    "WorkerTaskError",
    "backend_from_env",
    "get_backend",
    "live_segments",
    "map_fanout",
    "parse_backend_spec",
    "run_ensemble",
    "shutdown_pools",
    "sweep_leaked_segments",
]
