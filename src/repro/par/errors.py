"""Typed errors for the parallel execution backend.

Every failure mode a fan-out can hit surfaces as a subclass of
:class:`ParError`, never as a bare pool exception or a hang:

- :class:`WorkerTaskError` — the task function raised.  Carries the
  task index, the original exception type name, and (for in-process
  backends) chains the original exception as ``__cause__``; for the
  process backend, where the original traceback object cannot cross
  the pipe, the formatted worker traceback rides along as text.
- :class:`WorkerCrashError` — a worker *process* died without
  returning (segfault, ``os._exit``, OOM kill).  Raised from the
  executor's broken-pool signal; the dead pool is evicted from the
  cache so the next fan-out gets a fresh one.  Carries
  ``pending_indices`` — the input indices whose results never came
  back — so callers (and :class:`repro.par.Supervisor`) can resubmit
  precisely instead of re-running the whole fan-out.
- :class:`PoisonTaskError` — one task index crashed its worker
  ``max_task_crashes`` times in a row and was quarantined by the
  supervisor; retrying it again would just keep killing workers.

Deadline expiry inside a worker is not a :class:`ParError`: it is
re-raised in the parent as the guard layer's
:class:`~repro.guard.errors.DeadlineExceededError`, so callers that
already catch guard errors need no new handling for parallel runs.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ParError(RuntimeError):
    """Base class for parallel-backend failures."""


class WorkerTaskError(ParError):
    """A task function raised inside a worker."""

    def __init__(self, task_index: int, error_type: str, message: str,
                 worker_traceback: str = ""):
        super().__init__(
            f"task {task_index} failed with {error_type}: {message}"
        )
        self.task_index = task_index
        self.error_type = error_type
        self.worker_traceback = worker_traceback


class WorkerCrashError(ParError):
    """A worker process died without returning a result.

    ``pending_indices`` lists the input indices whose results were
    still outstanding when the pool broke — exactly the work a caller
    must resubmit.  Empty when the crash site could not be narrowed
    (e.g. the executor broke before any chunk was submitted).
    """

    def __init__(self, message: str, backend: Optional[str] = None,
                 pending_indices: Sequence[int] = ()):
        super().__init__(message)
        self.backend = backend
        self.pending_indices = tuple(pending_indices)


class PoisonTaskError(ParError):
    """A task index was quarantined after repeatedly crashing workers."""

    def __init__(self, task_index: int, crashes: int):
        super().__init__(
            f"task {task_index} crashed its worker {crashes} times "
            "and was quarantined as a poison task"
        )
        self.task_index = task_index
        self.crashes = crashes
